"""Fig. 6: KL divergence and top-1 accuracy vs support threshold.

Training size fixed at the maximum; the paper finds lower support thresholds
give higher accuracy (more, finer meta-rules survive), with the best
accuracy at support 0.001 under best-averaged/best-weighted voting.
"""

import numpy as np

from repro.bench import ALL_VOTING_METHODS, run_single_attribute_experiment
from repro.core import VoterChoice, VotingScheme

NETWORKS = ["BN8", "BN9"]


def _sweep(config, supports):
    table = {}
    for theta in supports:
        cfg = config.scaled(support_threshold=theta)
        per_method = {m: [] for m in ALL_VOTING_METHODS}
        for name in NETWORKS:
            runs = run_single_attribute_experiment(name, cfg)
            for m in ALL_VOTING_METHODS:
                per_method[m].append(runs[m].score)
        table[theta] = {
            m: (
                float(np.mean([s.mean_kl for s in scores])),
                float(np.mean([s.top1_accuracy for s in scores])),
            )
            for m, scores in per_method.items()
        }
    return table


def test_fig6(benchmark, report, base_config, scale):
    supports = [0.001, 0.01, 0.02, 0.05, 0.1]
    cfg = base_config.scaled(
        training_size=100_000 if scale == "paper" else 6000
    )
    table = benchmark.pedantic(
        _sweep, args=(cfg, supports), rounds=1, iterations=1
    )
    headers = ["support"]
    for choice, scheme in ALL_VOTING_METHODS:
        headers += [f"{choice.value}-{scheme.value} KL",
                    f"{choice.value}-{scheme.value} top1"]
    rows = []
    for theta in supports:
        row = [theta]
        for m in ALL_VOTING_METHODS:
            kl, top1 = table[theta][m]
            row += [round(kl, 4), round(top1, 3)]
        rows.append(row)
    report(
        "fig6",
        headers,
        rows,
        title="Fig 6: KL and top-1 accuracy vs support threshold",
    )
    best_avg = (VoterChoice.BEST, VotingScheme.AVERAGED)
    # Shape: the lowest support threshold is at least as accurate as the
    # highest (more evidence admitted into the ensemble).
    assert table[supports[0]][best_avg][0] <= table[supports[-1]][best_avg][0] + 0.02
