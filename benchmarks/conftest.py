"""Shared benchmark configuration.

Every bench regenerates one of the paper's tables or figures.  Results are
printed (visible with ``pytest -s``) and always written to
``benchmarks/results/<name>.txt`` so a default captured run still produces
the artifacts.

Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``quick`` (default) — minutes-scale run: reduced training sizes, one
  network instance, one split, capped test tuples.  Trends remain visible.
* ``paper``             — the paper's settings (3x3 repetitions, up to 100k
  training tuples).  Expect hours in pure Python.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import ExperimentConfig, format_table

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    scale = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if scale not in ("quick", "paper"):
        raise ValueError("REPRO_BENCH_SCALE must be 'quick' or 'paper'")
    return scale


@pytest.fixture(scope="session")
def scale() -> str:
    return bench_scale()


@pytest.fixture(scope="session")
def base_config(scale) -> ExperimentConfig:
    """The shared experiment configuration at the selected scale."""
    if scale == "paper":
        return ExperimentConfig(
            training_size=100_000,
            support_threshold=0.001,
            num_instances=3,
            num_splits=3,
            max_test_tuples=None,
            seed=2011,
        )
    return ExperimentConfig(
        training_size=3000,
        support_threshold=0.005,
        num_instances=1,
        num_splits=1,
        max_test_tuples=40,
        seed=2011,
    )


@pytest.fixture(scope="session")
def report():
    """Print a table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, headers, rows, title: str = "", chart: str = ""):
        text = format_table(headers, rows, title=title)
        if chart:
            text = text + "\n\n" + chart
        print()
        print(text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        return text

    return _report
