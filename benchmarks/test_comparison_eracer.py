"""MRSL vs an ERACER-style baseline — the comparison the paper planned.

Section VII: "A thorough comparison with their method is in our immediate
plans."  We compare MRSL (best-averaged voting, Gibbs for multi-missing)
against the naive-Bayes + relaxation comparator of
:mod:`repro.bench.eracer` on (a) a catalog network and (b) the census
dataset, scoring both against exact posteriors.
"""

import numpy as np
import pytest

from repro.bayesnet import forward_sample_relation, make_network
from repro.bench import NaiveBayesImputer, aggregate, mask_relation, score_prediction
from repro.bench.metrics import true_joint_posterior
from repro.core import estimate_joint, learn_mrsl
from repro.datasets import load_census
from repro.relational import Relation


def _compare(net, data, rng, num_tuples, num_missing, num_samples, theta):
    train, test = data.split(0.9, rng)
    test = Relation.from_codes(test.schema, test.codes[:num_tuples])
    masked = list(mask_relation(test, num_missing, rng))

    model = learn_mrsl(train, support_threshold=theta).model
    imputer = NaiveBayesImputer().fit(train)

    mrsl_scores, nb_scores = [], []
    for t in masked:
        true = true_joint_posterior(net, t)
        if t.num_missing == 1:
            from repro.core import infer_single

            pos = t.missing_positions[0]
            cpd = infer_single(t, model[pos], "best", "averaged")
            pred = type(true)(
                [(o,) for o in cpd.outcomes], cpd.probs
            )
        else:
            pred = estimate_joint(
                model, t, num_samples=num_samples, burn_in=150, rng=0
            ).distribution
        mrsl_scores.append(score_prediction(true, pred))
        nb_scores.append(score_prediction(true, imputer.predict_joint(t)))
    return aggregate(mrsl_scores), aggregate(nb_scores)


@pytest.mark.parametrize("source", ["BN8", "census"])
def test_mrsl_vs_eracer_baseline(benchmark, report, base_config, scale, source):
    rng = np.random.default_rng(17)
    n = 40_000 if scale == "paper" else 6000
    num_tuples = 100 if scale == "paper" else 25
    if source == "census":
        data, net = load_census(n, rng=rng)
    else:
        net = make_network(source, rng)
        data = forward_sample_relation(net, n, rng)

    theta = 0.001 if source == "census" else 0.005

    def run():
        one_mrsl, one_nb = _compare(net, data, rng, num_tuples, 1, 1000, theta)
        two_mrsl, two_nb = _compare(net, data, rng, num_tuples, 2, 1000, theta)
        return {
            (1, "mrsl"): one_mrsl, (1, "naive-bayes"): one_nb,
            (2, "mrsl"): two_mrsl, (2, "naive-bayes"): two_nb,
        }

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (k, method, round(score.mean_kl, 4), round(score.top1_accuracy, 3))
        for (k, method), score in sorted(table.items(), key=lambda kv: kv[0])
    ]
    report(
        f"comparison_eracer_{source}",
        ["missing", "method", "mean KL", "top-1"],
        rows,
        title=f"MRSL vs naive-Bayes relaxation baseline ({source})",
    )
    if source == "BN8":
        # On random-CPT networks MRSL's joint-body conditioning dominates
        # the naive-Bayes factorization on both measures.
        for k in (1, 2):
            assert (
                table[(k, "mrsl")].mean_kl
                <= table[(k, "naive-bayes")].mean_kl + 0.05
            ), k
    else:
        # Census (smooth, near-monotone CPDs) flatters naive Bayes: its
        # low-variance pairwise statistics can beat rule-support-limited
        # MRSL on KL at quick-scale training sizes, while top-1 stays at
        # parity or better for MRSL.  An honest negative-space finding the
        # paper's planned comparison would have surfaced.
        tol = 0.05 if scale == "paper" else 0.12  # 25-tuple quick sample
        for k in (1, 2):
            assert (
                table[(k, "mrsl")].top1_accuracy
                >= table[(k, "naive-bayes")].top1_accuracy - tol
            ), k
