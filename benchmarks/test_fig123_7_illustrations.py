"""Figs 1-3 and 7: the paper's illustrative figures, regenerated.

These figures are worked examples rather than measurements; regenerating
them checks the pipeline reproduces the paper's narrative objects:

* Fig. 1 — the incomplete matchmaking relation and a derived ``Δt12`` block;
* Fig. 2 — the MRSL for ``age`` (we print the mined lattice);
* Fig. 3 — the tuple DAG over a subset of Fig. 1's incomplete tuples;
* Fig. 7 — the topology schematics of the catalog networks.
"""

from repro.bayesnet.catalog import get_spec
from repro.core import TupleDAG, derive_probabilistic_database, learn_mrsl
from repro.relational import Relation, Schema, make_tuple

SCHEMA = Schema.from_domains(
    {
        "age": ["20", "30", "40"],
        "edu": ["HS", "BS", "MS"],
        "inc": ["50K", "100K"],
        "nw": ["100K", "500K"],
    }
)
ROWS = [
    ["20", "HS", "?", "?"], ["20", "BS", "50K", "100K"],
    ["20", "?", "50K", "?"], ["20", "HS", "100K", "500K"],
    ["20", "?", "?", "?"], ["20", "HS", "50K", "100K"],
    ["20", "HS", "50K", "500K"], ["?", "HS", "?", "?"],
    ["30", "BS", "100K", "100K"], ["30", "?", "100K", "?"],
    ["30", "HS", "?", "?"], ["30", "MS", "?", "?"],
    ["40", "BS", "100K", "100K"], ["40", "HS", "?", "?"],
    ["40", "BS", "50K", "500K"], ["40", "HS", "?", "500K"],
    ["40", "HS", "100K", "500K"],
]


def test_fig1_derived_block(benchmark, report):
    relation = Relation.from_rows(SCHEMA, ROWS)

    def run():
        return derive_probabilistic_database(
            relation, support_threshold=0.1,
            num_samples=2000, burn_in=200, rng=0,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    t12 = next(
        b for b in result.database.blocks
        if b.base.value("age") == "30" and b.base.value("edu") == "MS"
    )
    rows = [
        (f"t12.{i + 1}",) + tuple(completed.values()) + (round(p, 2),)
        for i, (completed, p) in enumerate(t12.completions())
    ]
    report(
        "fig1_block_t12",
        ["id", "age", "edu", "inc", "nw", "prob"],
        rows,
        title="Fig 1 call-out: derived block for t12 <30, MS, ?, ?>",
    )
    assert len(rows) == 4
    assert sum(r[-1] for r in rows) == 1.0


def test_fig2_mrsl_for_age(benchmark, report):
    relation = Relation.from_rows(SCHEMA, ROWS)
    result = benchmark.pedantic(
        lambda: learn_mrsl(relation, support_threshold=0.1),
        rounds=1, iterations=1,
    )
    lattice = result.model["age"]
    rows = [
        (m.body_size, round(m.weight, 2), m.describe(SCHEMA))
        for m in sorted(lattice, key=lambda m: (m.body_size, m.body))
    ]
    report(
        "fig2_mrsl_age",
        ["level", "W", "meta-rule"],
        rows,
        title="Fig 2: the mined MRSL for attribute 'age'",
    )
    # The lattice has the Fig. 2 shape: a root P(age) with weight 1 and
    # deeper refinements below it.
    assert rows[0] == (0, 1.0, "P(age)")
    assert lattice.max_body_size >= 2


def test_fig3_tuple_dag(benchmark, report):
    tuples = {
        "t1": make_tuple(SCHEMA, {"age": "20", "edu": "HS"}),
        "t3": make_tuple(SCHEMA, {"age": "20", "inc": "50K"}),
        "t5": make_tuple(SCHEMA, {"age": "20"}),
        "t8": make_tuple(SCHEMA, {"edu": "HS"}),
        "t11": make_tuple(SCHEMA, {"age": "30", "edu": "HS"}),
        "t12": make_tuple(SCHEMA, {"age": "30", "edu": "MS"}),
    }
    dag = benchmark.pedantic(
        lambda: TupleDAG(list(tuples.values())), rounds=1, iterations=1
    )
    names = {t: n for n, t in tuples.items()}
    rows = []
    for node in dag.nodes:
        children = sorted(names[c.tuple] for c in node.children)
        rows.append(
            (
                names[node.tuple],
                "root" if not node.parents else "",
                ", ".join(children) or "-",
            )
        )
    report(
        "fig3_tuple_dag",
        ["tuple", "role", "subsumees"],
        rows,
        title="Fig 3: the tuple DAG over {t1, t3, t5, t8, t11, t12}",
    )
    # Fig. 3's two-level DAG: t5 and t8 are the shared roots and t1 sits
    # under both.  t12 <30, MS, ?, ?> disagrees with t8 on edu, so by
    # Def. 2.4 nothing subsumes it — it is its own root.
    roots = {names[n.tuple] for n in dag.roots()}
    assert roots == {"t5", "t8", "t12"}
    t1_parents = {
        names[p.tuple] for p in dag.node(tuples["t1"]).parents
    }
    assert t1_parents == {"t5", "t8"}


def test_fig7_topologies(benchmark, report):
    networks = ["BN8", "BN9", "BN13", "BN14", "BN17", "BN18", "BN19", "BN20"]

    def run():
        rows = []
        for name in networks:
            spec = get_spec(name)
            topo = spec.topology()
            rows.append(
                (
                    name,
                    spec.family,
                    max(spec.cardinalities),
                    topo.depth(),
                    " ".join(f"{p}->{c}" for p, c in topo.edges[:6])
                    + (" ..." if len(topo.edges) > 6 else ""),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig7_topologies",
        ["network", "family", "card", "depth", "edges (prefix)"],
        rows,
        title="Fig 7: reconstructed topology schematics",
    )
    families = {name: family for name, family, _, _, _ in rows}
    assert families["BN8"] == "crown"
    assert families["BN13"] == "line"
