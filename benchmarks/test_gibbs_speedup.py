"""Vectorized multi-chain Gibbs kernel vs the scalar sampler (fig. 11 shape).

A multi-missing census workload — the Algorithm 3 regime where every
missing attribute of every tuple needs one conditional CPD and one draw
per sweep — derived twice with identical settings: once on the scalar
tuple-DAG sampler (``gibbs_vectorized=False``, the pre-kernel code path)
and once on the vectorized lock-step ensemble.  Both runs are serial and
single-threaded, so the speedup measures vectorization alone, not
parallelism; the bar therefore applies on any host.

The bench asserts the vectorized kernel is at least ``MIN_SPEEDUP`` times
faster (override via ``REPRO_MIN_GIBBS_SPEEDUP``), records the table to
``benchmarks/results/gibbs_speedup.txt``, and writes the machine-readable
``benchmarks/results/BENCH_gibbs.json``.  A ``gibbs_chains=4`` row rides
along to show multi-chain pooling lands at essentially the same wall-clock
as one chain (the mixing knob is free); it carries no speedup gate.

Samples differ between the kernels (different, equally admissible draws of
the same randomized procedure — see docs/execution.md); the scalar-vs-
vectorized equivalence suite lives in ``tests/test_gibbs_vectorized.py``.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.api.config import DeriveConfig
from repro.bench.masking import mask_relation
from repro.core import derive_probabilistic_database, learn_mrsl
from repro.datasets.census import load_census
from repro.relational import Relation

RESULTS_DIR = Path(__file__).parent / "results"

#: Required vectorized-over-scalar speedup.  Both runs are serial, so this
#: is a pure single-thread kernel comparison and holds on shared runners.
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_GIBBS_SPEEDUP", "4.0"))


def _setup(scale):
    training = 20_000 if scale == "paper" else 2500
    doubles = 600 if scale == "paper" else 160
    triples = 300 if scale == "paper" else 80
    support = 0.001 if scale == "paper" else 0.005
    rng = np.random.default_rng(2011)
    train, _ = load_census(training, rng)
    model = learn_mrsl(train, support_threshold=support).model
    two_part, _ = load_census(doubles, rng)
    three_part, _ = load_census(triples, rng)
    incomplete = list(mask_relation(two_part, 2, rng)) + list(
        mask_relation(three_part, 3, rng)
    )
    relation = Relation(train.schema, incomplete)
    return model, relation


def test_gibbs_speedup(report, scale):
    model, relation = _setup(scale)
    num_samples = 500 if scale == "paper" else 200
    base = DeriveConfig(num_samples=num_samples, burn_in=20, seed=2011)

    variants = (
        ("scalar", base.replacing(gibbs_vectorized=False)),
        ("vectorized", base),
        ("vectorized x4 chains", base.replacing(gibbs_chains=4)),
    )
    rows = []
    times = {}
    for label, cfg in variants:
        start = time.perf_counter()
        result = derive_probabilistic_database(
            relation, config=cfg, model=model
        )
        elapsed = time.perf_counter() - start
        times[label] = elapsed
        stats = result.sampling_stats
        rows.append(
            (
                label,
                result.exec_report.num_shards,
                len(result.database.blocks),
                stats.total_draws,
                round(elapsed, 3),
            )
        )

    speedup = times["scalar"] / max(times["vectorized"], 1e-9)
    pooled = times["scalar"] / max(times["vectorized x4 chains"], 1e-9)
    rows.append(("speedup", "-", "-", "-", round(speedup, 2)))

    report(
        "gibbs_speedup",
        ["kernel", "shards", "blocks", "total draws", "time (s)"],
        rows,
        title="Vectorized ensemble Gibbs vs scalar tuple-DAG sampler "
        "(census, 2- and 3-missing tuples, serial executor)",
        chart=(
            f"pooling 4 chains/tuple: {pooled:.2f}x over scalar "
            f"(vs {speedup:.2f}x for 1 chain)\n"
            f"host cpus: {os.cpu_count() or 1} (unused: both runs serial)"
        ),
    )
    (RESULTS_DIR / "BENCH_gibbs.json").write_text(
        json.dumps(
            {
                "benchmark": "gibbs_speedup",
                "scale": scale,
                "workload": {
                    "tuples": relation.num_incomplete,
                    "num_samples": num_samples,
                    "burn_in": 20,
                    "seed": 2011,
                },
                "seconds": {k: round(v, 4) for k, v in times.items()},
                "speedup": round(speedup, 3),
                "speedup_4_chains": round(pooled, 3),
                "min_speedup": MIN_SPEEDUP,
                "host_cpus": os.cpu_count() or 1,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized Gibbs kernel only {speedup:.2f}x faster than the "
        f"scalar sampler (required {MIN_SPEEDUP}x)"
    )
