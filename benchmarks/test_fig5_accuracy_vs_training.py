"""Fig. 5: KL divergence and top-1 accuracy vs training set size.

At support 0.001 the paper finds: KL decreases up to ~5000 training points
then plateaus; *best* methods win for large training sets while *all*
methods are more graceful at very small ones (bias/variance trade-off).
"""

import numpy as np

from repro.bench import ALL_VOTING_METHODS, run_single_attribute_experiment
from repro.core import VoterChoice, VotingScheme

NETWORKS = ["BN8", "BN9"]


def _sweep(config, sizes):
    table = {}
    for size in sizes:
        cfg = config.scaled(training_size=size)
        per_method = {m: [] for m in ALL_VOTING_METHODS}
        for name in NETWORKS:
            runs = run_single_attribute_experiment(name, cfg)
            for m in ALL_VOTING_METHODS:
                per_method[m].append(runs[m].score)
        table[size] = {
            m: (
                float(np.mean([s.mean_kl for s in scores])),
                float(np.mean([s.top1_accuracy for s in scores])),
            )
            for m, scores in per_method.items()
        }
    return table


def test_fig5(benchmark, report, base_config, scale):
    sizes = (
        [1000, 5000, 20_000, 50_000, 100_000]
        if scale == "paper"
        else [300, 1500, 6000]
    )
    cfg = base_config.scaled(
        support_threshold=0.001 if scale == "paper" else 0.005
    )
    table = benchmark.pedantic(_sweep, args=(cfg, sizes), rounds=1, iterations=1)
    headers = ["training size"]
    for choice, scheme in ALL_VOTING_METHODS:
        headers += [f"{choice.value}-{scheme.value} KL",
                    f"{choice.value}-{scheme.value} top1"]
    rows = []
    for size in sizes:
        row = [size]
        for m in ALL_VOTING_METHODS:
            kl, top1 = table[size][m]
            row += [round(kl, 4), round(top1, 3)]
        rows.append(row)
    report(
        "fig5",
        headers,
        rows,
        title="Fig 5: KL and top-1 accuracy vs training set size",
    )
    best_avg = (VoterChoice.BEST, VotingScheme.AVERAGED)
    kl_first = table[sizes[0]][best_avg][0]
    kl_last = table[sizes[-1]][best_avg][0]
    # Shape: more training data means lower (or equal) KL.
    assert kl_last <= kl_first + 0.02
    # Top-1 accuracy does not degrade with data.
    top_first = table[sizes[0]][best_avg][1]
    top_last = table[sizes[-1]][best_avg][1]
    assert top_last >= top_first - 0.05
