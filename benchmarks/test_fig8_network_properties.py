"""Fig. 8: accuracy of inference vs network properties.

(a) topology/depth has no direct effect: BN18, BN19, BN20 (10 attrs, card 2,
    depths 2/3/5) show no accuracy difference;
(b) network size matters for crown networks: BN8, BN9, BN17, BN18
    (4/6/8/10 attrs) — smaller networks are more accurate;
(c) attribute cardinality matters for line networks: BN13-BN16 (card
    2/4/6/8) — lower cardinality is more accurate.

All runs use best-averaged voting, the paper's most accurate configuration.
"""

import pytest

from repro.bench import run_single_attribute_experiment
from repro.core import VoterChoice, VotingScheme

BEST_AVG = ((VoterChoice.BEST, VotingScheme.AVERAGED),)


def _kl(name, config):
    runs = run_single_attribute_experiment(name, config, methods=BEST_AVG)
    return runs[BEST_AVG[0]].score.mean_kl


@pytest.fixture(scope="module")
def cfg(base_config, scale):
    if scale == "paper":
        return base_config
    return base_config.scaled(training_size=8000, support_threshold=0.005)


def test_fig8a_topology_has_no_effect(benchmark, report, cfg, scale):
    networks = {"BN18": 2, "BN19": 3, "BN20": 5}
    kls = benchmark.pedantic(
        lambda: {n: _kl(n, cfg) for n in networks}, rounds=1, iterations=1
    )
    report(
        "fig8a",
        ["network", "depth", "avg KL"],
        [(n, networks[n], round(kls[n], 4)) for n in networks],
        title="Fig 8(a): KL vs network depth (10 attrs, card 2)",
    )
    values = list(kls.values())
    # "No difference in accuracy among these networks": spread stays small.
    # Full convergence of the deeper networks needs paper-scale training;
    # quick scale allows a wider (but still flat-ish) band.
    assert max(values) - min(values) < (0.1 if scale == "paper" else 0.2)


def test_fig8b_size_matters_for_crowns(benchmark, report, cfg):
    networks = {"BN8": 4, "BN9": 6, "BN17": 8, "BN18": 10}
    kls = benchmark.pedantic(
        lambda: {n: _kl(n, cfg) for n in networks}, rounds=1, iterations=1
    )
    report(
        "fig8b",
        ["network", "num attrs", "avg KL"],
        [(n, networks[n], round(kls[n], 4)) for n in networks],
        title="Fig 8(b): KL vs number of attributes (crown networks)",
    )
    # Shape: the smallest crown is at least as accurate as the largest.
    assert kls["BN8"] <= kls["BN18"] + 0.02


def test_fig8c_cardinality_matters_for_lines(benchmark, report, cfg, scale):
    networks = {"BN13": 2, "BN14": 4, "BN15": 6, "BN16": 8}
    if scale != "paper":
        # Drop the card-8 network in quick mode (largest domain, slowest).
        networks.pop("BN16")
    kls = benchmark.pedantic(
        lambda: {n: _kl(n, cfg) for n in networks}, rounds=1, iterations=1
    )
    report(
        "fig8c",
        ["network", "cardinality", "avg KL"],
        [(n, networks[n], round(kls[n], 4)) for n in networks],
        title="Fig 8(c): KL vs attribute cardinality (line networks)",
    )
    names = sorted(networks, key=lambda n: networks[n])
    # Shape: lower cardinality is more accurate end-to-end.
    assert kls[names[0]] <= kls[names[-1]] + 0.02
