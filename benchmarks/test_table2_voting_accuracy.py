"""Table II: accuracy of single-variable inference per voting method.

The paper reports top-1 accuracy and KL divergence for the four voting
methods over 14 networks at support 0.001 / training size 100k.  Key shape:
*best averaged* and *best weighted* are no less accurate than the *all*
methods, and strictly better on a significant subset; KL <= 0.1 typically
implies top-1 above 90%.
"""

import pytest

from repro.bench import ALL_VOTING_METHODS, run_single_attribute_experiment
from repro.core import VoterChoice, VotingScheme

PAPER_NETWORKS = [
    "BN1", "BN2", "BN3", "BN4", "BN5", "BN6", "BN7",
    "BN8", "BN9", "BN10", "BN11", "BN12", "BN17", "BN18",
]
QUICK_NETWORKS = ["BN1", "BN4", "BN8", "BN9", "BN17"]


@pytest.fixture(scope="module")
def networks(scale):
    return PAPER_NETWORKS if scale == "paper" else QUICK_NETWORKS


def _run_all(networks, config):
    out = {}
    for name in networks:
        out[name] = run_single_attribute_experiment(name, config)
    return out


def test_table2(benchmark, report, networks, base_config, scale):
    cfg = base_config if scale == "paper" else base_config.scaled(
        training_size=5000, support_threshold=0.005
    )
    results = benchmark.pedantic(
        _run_all, args=(networks, cfg), rounds=1, iterations=1
    )
    headers = ["network"]
    for choice, scheme in ALL_VOTING_METHODS:
        label = f"{choice.value} {scheme.value}"
        headers += [f"{label} top-1", f"{label} KL"]
    rows = []
    for name in networks:
        row = [name]
        for method in ALL_VOTING_METHODS:
            score = results[name][method].score
            row += [round(score.top1_accuracy, 2), round(score.mean_kl, 3)]
        rows.append(row)
    report(
        "table2",
        headers,
        rows,
        title="Table II: accuracy of single-variable inference",
    )

    best_avg = (VoterChoice.BEST, VotingScheme.AVERAGED)
    all_avg = (VoterChoice.ALL, VotingScheme.AVERAGED)
    all_wgt = (VoterChoice.ALL, VotingScheme.WEIGHTED)
    # The "no less accurate" claim holds at the paper's scale (100k training,
    # support 0.001); at quick scale small-sample noise needs more slack.
    tol = 0.02 if scale == "paper" else 0.1
    strictly_better = 0
    for name in networks:
        kl_best = results[name][best_avg].score.mean_kl
        kl_all = results[name][all_avg].score.mean_kl
        kl_all_w = results[name][all_wgt].score.mean_kl
        # best averaged is no less accurate than the all methods.
        assert kl_best <= min(kl_all, kl_all_w) + tol, name
        if kl_best < min(kl_all, kl_all_w) - 0.01:
            strictly_better += 1
    # ...and strictly more accurate on a subset of the networks.
    assert strictly_better >= 1

    # KL <= 0.1 should coincide with strong top-1 accuracy.
    for name in networks:
        score = results[name][best_avg].score
        if score.mean_kl <= 0.1:
            assert score.top1_accuracy >= 0.6, name
