"""Fig. 4: building the MRSL model.

(a) model-building time vs training set size (support fixed at 0.02);
(b) model-building time vs support (training size fixed);
(c) model size vs support (training size fixed).

The paper averages over 10 networks with 4-6 attributes; the quick scale
uses 4 representatives of that set and smaller training sizes.  The shapes
to reproduce: (a) linear growth, (b)/(c) super-linear decay with support,
model size dropping particularly sharply.
"""

import numpy as np
import pytest

from repro.bench import run_learning_experiment

#: The paper's Fig. 4 pool: networks with 4-6 attrs, card 2-8.
PAPER_NETWORKS = [
    "BN1", "BN2", "BN3", "BN4", "BN5",
    "BN8", "BN9", "BN10", "BN11", "BN12",
]
QUICK_NETWORKS = ["BN1", "BN4", "BN8", "BN10"]


@pytest.fixture(scope="module")
def networks(scale):
    return PAPER_NETWORKS if scale == "paper" else QUICK_NETWORKS


def _sweep_training(networks, config, sizes):
    rows = []
    for size in sizes:
        cfg = config.scaled(training_size=size, support_threshold=0.02)
        runs = [run_learning_experiment(n, cfg) for n in networks]
        rows.append(
            (
                size,
                float(np.mean([r.learn_time_sec for r in runs])),
                float(np.mean([r.model_size for r in runs])),
            )
        )
    return rows


def _sweep_support(networks, config, supports, training_size):
    rows = []
    for theta in supports:
        cfg = config.scaled(
            training_size=training_size, support_threshold=theta
        )
        runs = [run_learning_experiment(n, cfg) for n in networks]
        rows.append(
            (
                theta,
                float(np.mean([r.learn_time_sec for r in runs])),
                float(np.mean([r.model_size for r in runs])),
            )
        )
    return rows


def test_fig4a_time_vs_training_size(benchmark, report, networks, base_config, scale):
    sizes = (
        [1000, 10_000, 20_000, 50_000, 100_000]
        if scale == "paper"
        else [500, 1000, 2000, 4000]
    )
    rows = benchmark.pedantic(
        _sweep_training, args=(networks, base_config, sizes),
        rounds=1, iterations=1,
    )
    report(
        "fig4a",
        ["training size", "build time (s)", "model size"],
        [(s, t, m) for s, t, m in rows],
        title="Fig 4(a): model building time vs training set size (support=0.02)",
    )
    times = [t for _, t, _ in rows]
    # Shape: time grows with training size...
    assert times[-1] > times[0]
    # ...roughly linearly: doubling data should not blow time up
    # super-quadratically (generous bound for timer noise).
    ratio = times[-1] / max(times[0], 1e-9)
    size_ratio = sizes[-1] / sizes[0]
    assert ratio < size_ratio ** 2 * 5
    # Model size stays approximately constant with training size (paper).
    sizes_col = [m for _, _, m in rows]
    assert max(sizes_col) < 4 * max(min(sizes_col), 1.0)


def test_fig4b_time_vs_support(benchmark, report, networks, base_config, scale):
    supports = [0.001, 0.01, 0.02, 0.05, 0.1]
    training = 10_000 if scale == "paper" else 2000
    rows = benchmark.pedantic(
        _sweep_support, args=(networks, base_config, supports, training),
        rounds=1, iterations=1,
    )
    report(
        "fig4b",
        ["support", "build time (s)", "model size"],
        rows,
        title=f"Fig 4(b): model building time vs support (training={training})",
    )
    times = [t for _, t, _ in rows]
    # Shape: build time decreases (super-linearly) with increasing support.
    assert times[0] > times[-1]


def test_fig4c_model_size_vs_support(benchmark, report, networks, base_config, scale):
    supports = [0.001, 0.01, 0.02, 0.05, 0.1]
    training = 10_000 if scale == "paper" else 2000
    rows = benchmark.pedantic(
        _sweep_support, args=(networks, base_config, supports, training),
        rounds=1, iterations=1,
    )
    report(
        "fig4c",
        ["support", "build time (s)", "model size"],
        rows,
        title=f"Fig 4(c): model size vs support (training={training})",
    )
    sizes = [m for _, _, m in rows]
    # Shape: model size drops monotonically and sharply with support.
    assert all(a >= b for a, b in zip(sizes, sizes[1:]))
    assert sizes[0] > 2 * sizes[-1]
