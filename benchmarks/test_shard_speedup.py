"""Sharded process-pool derivation vs serial on the census workload.

Full-relation derivation — Algorithm 2 over a large single-missing batch
plus Algorithm 3 Gibbs over multi-missing tuples — run once on the
``SerialExecutor`` and once on a 4-worker ``ProcessExecutor``.  The bench
asserts the two databases are bit-for-bit identical (the runtime's core
guarantee) and records wall-clock plus per-shard placement stats to
``benchmarks/results/shard_speedup.txt``.

The Gibbs phase runs the vectorized ensemble kernel (the default), so the
workload is sized for it: census multi-missing masks collapse to a few
hundred *distinct* tuples (duplicates share blocks and cost nothing
extra), and per-shard work scales with ``num_samples`` — large enough
here that shard compute, not pool startup, dominates the comparison.

The speedup bar only applies on multi-core hosts: a process pool cannot
beat serial execution on a single CPU, so single-core runners record the
honest numbers without failing.  Override via ``REPRO_MIN_SHARD_SPEEDUP``.
"""

import os
import time

import numpy as np

from repro.api.config import DeriveConfig
from repro.bench.masking import mask_relation
from repro.core import derive_probabilistic_database, learn_mrsl
from repro.datasets.census import load_census
from repro.relational import Relation

#: Required process-over-serial speedup on hosts with >= 2 CPUs.  The Gibbs
#: phase is pure Python and embarrassingly parallel across subsumption
#: components, so 4 workers on 4 cores typically land well above this.
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_SHARD_SPEEDUP", "1.3"))

WORKERS = 4


def _setup(scale):
    training = 20_000 if scale == "paper" else 2500
    singles = 16_000 if scale == "paper" else 8000
    multis = 8000 if scale == "paper" else 4000
    support = 0.001 if scale == "paper" else 0.005
    rng = np.random.default_rng(2011)
    train, _ = load_census(training, rng)
    model = learn_mrsl(train, support_threshold=support).model
    single_part, _ = load_census(singles, rng)
    multi_part, _ = load_census(multis, rng)
    incomplete = list(mask_relation(single_part, 1, rng)) + list(
        mask_relation(multi_part, (2, 3), rng)
    )
    relation = Relation(train.schema, incomplete)
    return model, relation


def _identical(a, b):
    assert len(a.blocks) == len(b.blocks)
    for ba, bb in zip(a.blocks, b.blocks):
        assert ba.base == bb.base
        assert ba.distribution.outcomes == bb.distribution.outcomes
        assert (ba.distribution.probs == bb.distribution.probs).all()


def test_shard_speedup(report, scale):
    model, relation = _setup(scale)
    base = DeriveConfig(
        num_samples=1000 if scale == "quick" else 2000,
        burn_in=50,
        seed=2011,
    )
    runs = {}
    rows = []
    for executor, workers in (("serial", 1), ("process", WORKERS)):
        cfg = base.replacing(executor=executor, workers=workers)
        start = time.perf_counter()
        result = derive_probabilistic_database(
            relation, config=cfg, model=model
        )
        elapsed = time.perf_counter() - start
        runs[executor] = (result, elapsed)
        exec_report = result.exec_report
        rows.append(
            (
                executor,
                workers,
                exec_report.num_shards,
                len(result.database.blocks),
                round(elapsed, 3),
                len({t.worker for t in exec_report.timings}),
            )
        )

    serial_time = runs["serial"][1]
    process_time = runs["process"][1]
    speedup = serial_time / max(process_time, 1e-9)
    rows.append(("speedup", "-", "-", "-", round(speedup, 2), "-"))

    # Per-shard placement stats for the process run: where the time went.
    shard_rows = [
        (t.key[:28], t.kind, t.tuples, t.groups, round(t.elapsed, 4), t.worker)
        for t in runs["process"][0].exec_report.slowest(8)
    ]
    chart_lines = ["slowest process shards (key, kind, tuples, groups, s, worker):"]
    chart_lines += ["  " + "  ".join(str(c) for c in r) for r in shard_rows]
    cpus = os.cpu_count() or 1
    chart_lines.append(f"host cpus: {cpus}")

    report(
        "shard_speedup",
        ["executor", "workers", "shards", "blocks", "time (s)", "distinct workers"],
        rows,
        title="Sharded derivation: 4-worker process pool vs serial "
        "(census, single- and multi-missing)",
        chart="\n".join(chart_lines),
    )

    # Bit-identity is unconditional: sharding is an optimization, never an
    # approximation.
    _identical(runs["serial"][0].database, runs["process"][0].database)

    if cpus >= 2:
        assert speedup >= MIN_SPEEDUP, (
            f"process executor only {speedup:.2f}x faster than serial "
            f"(required {MIN_SPEEDUP}x on a {cpus}-cpu host)"
        )
