"""Fig. 11: efficiency of multi-variable inference — tuple-DAG vs baseline.

Sample size (total sampled points) and wall-clock time as a function of
workload size, with 500 points sampled per incomplete tuple.  Shapes to
reproduce: both grow linearly with workload size; tuple-DAG clearly
outperforms tuple-at-a-time and grows with a much lower slope.
"""

import time

import numpy as np
import pytest

from repro.bayesnet import forward_sample_relation, make_network
from repro.bench import mask_relation
from repro.core import learn_mrsl, workload_sampling

NETWORKS = ["BN8", "BN9"]


def _make_workload(name, config, workload_size, seed=0):
    rng = np.random.default_rng(seed)
    net = make_network(name, rng)
    data = forward_sample_relation(net, config.training_size, rng)
    model = learn_mrsl(data, support_threshold=config.support_threshold).model
    test = forward_sample_relation(net, workload_size, rng)
    num_attrs = len(net)
    masked = mask_relation(test, list(range(2, num_attrs)), rng)
    return model, list(masked)


def _run(model, workload, strategy, num_samples, burn_in):
    start = time.perf_counter()
    _, stats = workload_sampling(
        model, workload, num_samples=num_samples, burn_in=burn_in,
        strategy=strategy, rng=1,
    )
    return stats.total_draws, time.perf_counter() - start


@pytest.fixture(scope="module")
def params(scale):
    if scale == "paper":
        return [500, 1000, 2000, 3000], 500, 100
    return [40, 80, 160], 120, 30


def test_fig11(benchmark, report, base_config, params, scale):
    workload_sizes, num_samples, burn_in = params
    cfg = base_config if scale == "paper" else base_config.scaled(
        training_size=3000
    )
    rows = []

    def run():
        for name in NETWORKS:
            for wsize in workload_sizes:
                model, workload = _make_workload(name, cfg, wsize)
                for strategy in ("tuple_at_a_time", "tuple_dag"):
                    draws, elapsed = _run(
                        model, workload, strategy, num_samples, burn_in
                    )
                    rows.append(
                        (name, wsize, strategy, draws, round(elapsed, 3))
                    )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    from repro.bench import ascii_chart

    chart = ascii_chart(
        {
            f"{name}/{strategy}": [
                (w, d)
                for n, w, s, d, _ in rows
                if n == name and s == strategy
            ]
            for name in NETWORKS
            for strategy in ("tuple_at_a_time", "tuple_dag")
        },
        x_label="workload size",
        y_label="sample size (draws)",
    )
    report(
        "fig11",
        ["network", "workload", "strategy", "sample size", "time (s)"],
        rows,
        title=f"Fig 11: tuple-DAG vs tuple-at-a-time ({num_samples} points/tuple)",
        chart=chart,
    )

    for name in NETWORKS:
        for wsize in workload_sizes:
            sub = {
                strat: (draws, t)
                for n, w, strat, draws, t in rows
                if n == name and w == wsize
            }
            dag_draws, dag_time = sub["tuple_dag"]
            base_draws, base_time = sub["tuple_at_a_time"]
            # Shape: tuple-DAG draws strictly fewer points in all cases.
            assert dag_draws < base_draws, (name, wsize)

        # Shape: the DAG's sample-size slope is visibly lower.
        dag_series = sorted(
            (w, d) for n, w, s, d, _ in rows
            if n == name and s == "tuple_dag"
        )
        base_series = sorted(
            (w, d) for n, w, s, d, _ in rows
            if n == name and s == "tuple_at_a_time"
        )
        dag_slope = (dag_series[-1][1] - dag_series[0][1]) / (
            dag_series[-1][0] - dag_series[0][0]
        )
        base_slope = (base_series[-1][1] - base_series[0][1]) / (
            base_series[-1][0] - base_series[0][0]
        )
        assert dag_slope < base_slope, name
