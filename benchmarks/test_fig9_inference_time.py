"""Fig. 9: single-attribute inference time vs model size.

The paper batches 1000/5000/10000 test tuples and finds inference time
scales linearly with both model size and batch size (0.153 ms/tuple for
models under 10k meta-rules on their hardware; absolute pure-Python numbers
differ, the linear shape is what we reproduce).
"""

import time

import numpy as np
import pytest

from repro.bayesnet import forward_sample_relation, make_network
from repro.bench import mask_relation
from repro.core import infer_all_single_missing, learn_mrsl

#: Networks chosen to span a range of model sizes.
NETWORKS = ["BN8", "BN10", "BN11"]


def _prepare(name, training, support, batch, seed=0):
    rng = np.random.default_rng(seed)
    net = make_network(name, rng)
    data = forward_sample_relation(net, training, rng)
    model = learn_mrsl(data, support_threshold=support).model
    test = forward_sample_relation(net, batch, rng)
    masked = list(mask_relation(test, 1, rng))
    return model, masked


def _time_inference(model, masked):
    start = time.perf_counter()
    infer_all_single_missing(masked, model)
    return time.perf_counter() - start


@pytest.fixture(scope="module")
def batches(scale):
    return [1000, 5000, 10_000] if scale == "paper" else [200, 500, 1000]


def test_fig9(benchmark, report, base_config, batches, scale):
    training = 20_000 if scale == "paper" else 3000
    support = 0.001 if scale == "paper" else 0.005
    rows = []

    def run():
        for name in NETWORKS:
            for batch in batches:
                model, masked = _prepare(name, training, support, batch)
                elapsed = _time_inference(model, masked)
                rows.append(
                    (
                        name,
                        model.size(),
                        batch,
                        round(elapsed, 4),
                        round(1000 * elapsed / batch, 4),
                    )
                )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "fig9",
        ["network", "model size", "batch", "time (s)", "ms/tuple"],
        rows,
        title="Fig 9: inference time vs model size and batch size",
    )
    # Shape 1: within a network, time grows linearly with batch size.
    for name in NETWORKS:
        series = [(b, t) for n, _, b, t, _ in rows if n == name]
        series.sort()
        small_b, small_t = series[0]
        big_b, big_t = series[-1]
        ratio = big_t / max(small_t, 1e-9)
        assert ratio < (big_b / small_b) * 3, f"{name} batch scaling super-linear"
    # Shape 2: larger models cost more per tuple (linear-in-model-size trend).
    per_tuple = {}
    for name, msize, b, t, ms in rows:
        per_tuple.setdefault(name, []).append((msize, ms))
    avg_cost = {
        name: float(np.mean([ms for _, ms in vals]))
        for name, vals in per_tuple.items()
    }
    sizes = {name: vals[0][0] for name, vals in per_tuple.items()}
    smallest = min(NETWORKS, key=lambda n: sizes[n])
    largest = max(NETWORKS, key=lambda n: sizes[n])
    assert avg_cost[smallest] <= avg_cost[largest] * 1.5
