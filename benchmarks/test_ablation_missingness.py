"""Ablation: robustness to the missingness mechanism (MCAR / MAR / MNAR).

The paper's evaluation treats missing-value occurrence uniformly (MCAR) and
explicitly avoids assuming a missingness model for the *method*.  This
ablation measures what happens when the training data's missing values are
*not* uniform: under MNAR the complete portion ``Rc`` is a biased sample,
so meta-rule CPDs inherit that bias — a deployment caveat worth
quantifying.
"""

import numpy as np

from repro.bayesnet import forward_sample_relation, make_network
from repro.bench import (
    aggregate,
    mask_relation_mar,
    mask_relation_mnar,
    score_prediction,
)
from repro.bench.metrics import true_single_posterior
from repro.core import infer_single, learn_mrsl
from repro.relational import Relation
from repro.relational.tuples import MISSING_CODE, RelTuple

TARGET = "x3"


def _corrupt_training(train, mechanism, rng):
    if mechanism == "mcar":
        codes = train.codes.copy()
        pos = train.schema.index(TARGET)
        drop = rng.random(len(train)) < 0.3
        codes[drop, pos] = MISSING_CODE
        return Relation.from_codes(train.schema, codes)
    if mechanism == "mar":
        return mask_relation_mar(
            train, TARGET, "x0", rng, high_rate=0.55, low_rate=0.05
        )
    if mechanism == "mnar":
        return mask_relation_mnar(train, TARGET, rng, rates=[0.05, 0.55])
    raise ValueError(mechanism)


def test_ablation_missingness_mechanisms(benchmark, report, base_config, scale):
    rng = np.random.default_rng(41)
    net = make_network("BN9", rng)
    n = 60_000 if scale == "paper" else 8000
    data = forward_sample_relation(net, n, rng)
    train, test = data.split(0.9, rng)
    test = Relation.from_codes(test.schema, test.codes[:80])
    pos = test.schema.index(TARGET)

    def run():
        rows = []
        for mechanism in ("mcar", "mar", "mnar"):
            corrupted = _corrupt_training(
                train, mechanism, np.random.default_rng(7)
            )
            model = learn_mrsl(corrupted, support_threshold=0.005).model
            scores = []
            for t in test:
                codes = t.codes.copy()
                codes[pos] = MISSING_CODE
                masked = RelTuple(test.schema, codes)
                true = true_single_posterior(net, masked)
                pred = infer_single(masked, model[pos])
                scores.append(score_prediction(true, pred))
            agg = aggregate(scores)
            rows.append(
                (
                    mechanism,
                    corrupted.num_complete,
                    round(agg.mean_kl, 4),
                    round(agg.top1_accuracy, 3),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_missingness",
        ["mechanism", "training points", "KL", "top-1"],
        rows,
        title=f"Ablation: training-data missingness mechanism (BN9, target {TARGET})",
    )
    kls = {mech: kl for mech, _, kl, _ in rows}
    # MCAR and MAR training losses are benign (Rc remains representative for
    # the target's conditionals); MNAR biases Rc, so it should never come
    # out cleanly best, and typically comes out worst.
    assert kls["mcar"] <= kls["mnar"] + 0.02
