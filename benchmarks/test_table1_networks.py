"""Table I: characteristics of the 20 Bayesian networks.

Regenerates the paper's Table I from the reconstructed topology catalog and
checks domain size and depth match the published values exactly.
"""

from repro.bayesnet import table1_rows
from repro.bayesnet.catalog import PUBLISHED_TABLE1


def test_table1(benchmark, report):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    report(
        "table1",
        ["network", "num. attrs", "avg card", "dom. size", "depth"],
        rows,
        title="Table I: characteristics of the 20 Bayesian networks",
    )
    for name, num_attrs, avg_card, dom_size, depth in rows:
        pub_attrs, pub_avg, pub_size, pub_depth = PUBLISHED_TABLE1[name]
        assert num_attrs == pub_attrs
        assert dom_size == pub_size
        assert depth == pub_depth
        assert abs(avg_card - pub_avg) <= 0.6
