"""Ablation benches for the design choices DESIGN.md calls out.

* joint Gibbs vs the independence-assuming product (Section V's motivation);
* all-at-a-time sampling waste (the 94%-wasted-samples argument);
* the maxItemsets cap's effect on learning time vs accuracy;
* the smoothing floor's role in keeping KL finite.
"""

import time

import numpy as np
import pytest

from repro.bayesnet import forward_sample_relation, make_network
from repro.bench import independent_product
from repro.bench.metrics import true_joint_posterior
from repro.core import estimate_joint, learn_mrsl, workload_sampling
from repro.relational import make_tuple


@pytest.fixture(scope="module")
def line_setup(base_config, scale):
    """A line network: strongly chained correlations stress independence."""
    rng = np.random.default_rng(7)
    net = make_network("BN13", rng)
    training = 50_000 if scale == "paper" else 5000
    data = forward_sample_relation(net, training, rng)
    model = learn_mrsl(data, support_threshold=0.005).model
    return net, data.schema, model


def test_ablation_gibbs_vs_independent_product(benchmark, report, base_config, scale):
    # Build a dedicated line-network instance with moderately smooth CPTs
    # (alpha=0.8): skewed enough that the chain correlations matter, smooth
    # enough that the Gibbs kernel mixes within the sample budget.  With
    # near-deterministic CPTs the posterior is multimodal and a single
    # chain (the paper's Algorithm 3 setting) mixes too slowly to compare.
    from repro.bayesnet.catalog import get_spec
    from repro.bayesnet.generator import generate_instance
    from repro.relational import RelTuple
    from repro.relational.tuples import MISSING_CODE

    rng = np.random.default_rng(7)
    net = generate_instance(
        get_spec("BN13").topology(), rng, concentration=0.8
    )
    training = 50_000 if scale == "paper" else 5000
    data = forward_sample_relation(net, training, rng)
    model = learn_mrsl(data, support_threshold=0.005).model
    schema = data.schema
    test = forward_sample_relation(
        net, 10 if scale != "paper" else 100, np.random.default_rng(3)
    )
    # Mask three *adjacent* chain positions: x2, x3, x4 are strongly
    # dependent given the rest, which is exactly the regime where the
    # independence assumption breaks (Section V's argument).  Uniform
    # masking often picks d-separated positions where the product is fine.
    masked = []
    for t in test:
        codes = t.codes.copy()
        codes[[2, 3, 4]] = MISSING_CODE
        masked.append(RelTuple(schema, codes))
    num_samples = 2000

    def run():
        rows = []
        gibbs_kls, prod_kls = [], []
        for t in masked:
            true = true_joint_posterior(net, t)
            block = estimate_joint(
                model, t, num_samples=num_samples, burn_in=300, rng=0
            )
            kl_g = true.kl_divergence(block.distribution)
            kl_p = true.kl_divergence(independent_product(model, t))
            gibbs_kls.append(kl_g)
            prod_kls.append(kl_p)
        rows.append(("gibbs joint", round(float(np.mean(gibbs_kls)), 4)))
        rows.append(("independent product", round(float(np.mean(prod_kls)), 4)))
        return rows, float(np.mean(gibbs_kls)), float(np.mean(prod_kls))

    rows, kl_gibbs, kl_prod = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_independent_product",
        ["method", "mean KL"],
        rows,
        title="Ablation: joint Gibbs vs independence-assuming product (BN13, 3 missing)",
    )
    # Joint sampling beats the unwarranted-independence product when the
    # missing attributes are genuinely dependent (Section V's motivation).
    assert kl_gibbs < kl_prod


def test_ablation_all_at_a_time_waste(benchmark, report, line_setup):
    """Sampling the full space wastes draws on non-matching points."""
    net, schema, model = line_setup
    # A tuple whose known portion has modest support: most unclamped
    # samples will not match it.
    t = make_tuple(schema, {"x0": "v0", "x1": "v1", "x2": "v0"})

    def run():
        out = {}
        for strategy in ("tuple_at_a_time", "all_at_a_time"):
            _, stats = workload_sampling(
                model, [t], num_samples=150, burn_in=30,
                strategy=strategy, rng=2, max_draws=500_000,
            )
            out[strategy] = stats.total_draws
        return out

    draws = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_all_at_a_time",
        ["strategy", "total draws for 150 samples"],
        sorted(draws.items()),
        title="Ablation: clamped vs unclamped sampling for one selective tuple",
    )
    # The paper's argument: unclamped sampling needs far more draws.
    assert draws["all_at_a_time"] > 2 * draws["tuple_at_a_time"]


def test_ablation_max_itemsets_cap(benchmark, report, base_config, scale):
    """The Section III cap trades mining depth for bounded build time."""
    rng = np.random.default_rng(11)
    net = make_network("BN10", rng)
    training = 20_000 if scale == "paper" else 4000
    data = forward_sample_relation(net, training, rng)

    def run():
        rows = []
        for cap in (25, 100, 1000):
            start = time.perf_counter()
            result = learn_mrsl(
                data, support_threshold=0.002, max_itemsets=cap
            )
            elapsed = time.perf_counter() - start
            rows.append(
                (cap, round(elapsed, 4), result.model_size,
                 result.itemsets.truncated)
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_max_itemsets",
        ["maxItemsets", "build time (s)", "model size", "truncated"],
        rows,
        title="Ablation: the maxItemsets cap (BN10)",
    )
    # Model size is monotone in the cap; tighter caps truncate.
    sizes = [size for _, _, size, _ in rows]
    assert sizes == sorted(sizes)
    assert rows[0][3] is True


def test_ablation_smoothing_keeps_kl_finite(benchmark, report, line_setup):
    """Without the 1e-5 floor, unseen completions would make KL infinite."""
    net, schema, model = line_setup
    t = make_tuple(schema, {"x0": "v0", "x1": "v1", "x2": "v0"})

    def run():
        true = true_joint_posterior(net, t)
        block = estimate_joint(model, t, num_samples=40, burn_in=10, rng=0)
        smoothed_kl = true.kl_divergence(block.distribution)
        # Rebuild the same estimate with no smoothing floor: zero-count
        # outcomes become impossible and KL blows up whenever the exact
        # posterior touches them.
        from repro.core.gibbs import GibbsSampler, samples_to_distribution

        sampler = GibbsSampler(model, rng=0)
        chain = sampler.chain(t)
        chain.run_burn_in(10)
        samples = [chain.step() for _ in range(40)]
        unsmoothed = samples_to_distribution(schema, t, samples, floor=0.0)
        raw_kl = true.kl_divergence(unsmoothed)
        return smoothed_kl, raw_kl

    smoothed_kl, raw_kl = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_smoothing",
        ["estimator", "KL(true || est)"],
        [
            ("smoothed (floor=1e-5)", round(smoothed_kl, 4)),
            ("unsmoothed (floor=0)", raw_kl),
        ],
        title="Ablation: smoothing floor keeps KL finite (40-sample estimate)",
    )
    assert np.isfinite(smoothed_kl)
    # With only 40 samples of a 2^3-outcome space, some outcome is unseen
    # with overwhelming probability, making the unsmoothed KL infinite.
    assert raw_kl == float("inf") or raw_kl > smoothed_kl


def test_ablation_extended_voting(benchmark, report, base_config, scale):
    """The extension methods vs the paper's four (single-attribute accuracy).

    ``root`` voting is the naive-marginal floor every ensemble method must
    beat; ``log_pool`` is an alternative combiner that rewards consensus.
    """
    from repro.bench import run_single_attribute_experiment
    from repro.core import VoterChoice, VotingScheme

    methods = (
        (VoterChoice.ALL, VotingScheme.AVERAGED),
        (VoterChoice.BEST, VotingScheme.AVERAGED),
        (VoterChoice.BEST, VotingScheme.WEIGHTED),
        (VoterChoice.ALL, VotingScheme.LOG_POOL),
        (VoterChoice.ROOT, VotingScheme.AVERAGED),
    )
    cfg = base_config if scale == "paper" else base_config.scaled(
        training_size=5000
    )

    def run():
        table = {}
        for name in ("BN1", "BN9"):
            runs = run_single_attribute_experiment(name, cfg, methods=methods)
            for m, r in runs.items():
                kl, top1 = table.get(m, (0.0, 0.0))
                table[m] = (kl + r.score.mean_kl / 2, top1 + r.score.top1_accuracy / 2)
        return table

    table = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (f"{c.value} {s.value}", round(kl, 4), round(top1, 3))
        for (c, s), (kl, top1) in table.items()
    ]
    report(
        "ablation_extended_voting",
        ["method", "mean KL", "top-1"],
        rows,
        title="Ablation: extension voting methods vs the paper's (BN1+BN9 avg)",
    )
    root_kl = table[(VoterChoice.ROOT, VotingScheme.AVERAGED)][0]
    best_kl = table[(VoterChoice.BEST, VotingScheme.AVERAGED)][0]
    # Any real ensemble must beat the evidence-blind marginal floor.
    assert best_kl < root_kl
