"""Ablations: model pruning (partial materialization) and label noise.

* **Pruning** — Section VIII's partial-materialization direction: drop
  meta-rules below a weight threshold and measure the model-size/accuracy
  trade-off.  A heavily pruned model should stay well above the naive
  marginal floor while shrinking several-fold.
* **Label noise** — the cars dataset's rule-based class under increasing
  noise: MRSL's top-1 accuracy should degrade gracefully, tracking the
  Bayes-optimal ceiling ``1 - noise x (1 - 1/|classes|)``.
"""

import numpy as np

from repro.bayesnet import forward_sample_relation, make_network
from repro.bench import aggregate, mask_relation, score_prediction
from repro.bench.metrics import true_single_posterior
from repro.core import infer_single, learn_mrsl
from repro.datasets import load_cars
from repro.relational import Relation


def test_ablation_model_pruning(benchmark, report, base_config, scale):
    rng = np.random.default_rng(23)
    net = make_network("BN9", rng)
    training = 50_000 if scale == "paper" else 6000
    data = forward_sample_relation(net, training, rng)
    train, test = data.split(0.9, rng)
    test = Relation.from_codes(test.schema, test.codes[:60])
    masked = list(mask_relation(test, 1, rng))
    full = learn_mrsl(train, support_threshold=0.002).model

    def evaluate(model):
        scores = []
        for t in masked:
            true = true_single_posterior(net, t)
            pred = infer_single(t, model[t.missing_positions[0]])
            scores.append(score_prediction(true, pred))
        return aggregate(scores)

    def run():
        rows = []
        for min_weight in (0.0, 0.01, 0.05, 0.2, 1.0):
            model = full.pruned(min_weight)
            score = evaluate(model)
            rows.append(
                (min_weight, model.size(),
                 round(score.mean_kl, 4), round(score.top1_accuracy, 3))
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_pruning",
        ["min weight", "model size", "KL", "top-1"],
        rows,
        title="Ablation: meta-rule pruning (partial materialization, BN9)",
    )
    sizes = [size for _, size, _, _ in rows]
    kls = [kl for _, _, kl, _ in rows]
    # Size shrinks monotonically with the pruning threshold...
    assert sizes == sorted(sizes, reverse=True)
    # ...and accuracy degrades monotonically-ish: the unpruned model is the
    # best, the marginal-only model (min_weight=1.0) is the worst.
    assert kls[0] <= kls[-1]
    # A mild prune keeps most of the accuracy with a smaller model.
    assert sizes[1] <= sizes[0]
    assert kls[1] <= kls[-1]


def test_ablation_label_noise(benchmark, report, base_config, scale):
    noise_levels = (0.0, 0.1, 0.25, 0.4)
    n = 30_000 if scale == "paper" else 8000

    def run():
        rows = []
        for noise in noise_levels:
            rng = np.random.default_rng(31)
            rel = load_cars(n, rng=rng, label_noise=noise)
            train, test = rel.split(0.9, rng)
            model = learn_mrsl(train, support_threshold=0.002).model
            hits = 0
            trials = 100
            for i in range(trials):
                t = test[i]
                masked = t.restrict([0, 1, 2, 3, 4])
                pred = infer_single(masked, model["class"])
                hits += pred.top1() == t.value("class")
            ceiling = 1.0 - noise * (1.0 - 1.0 / 3.0)
            rows.append((noise, hits / trials, round(ceiling, 3)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "ablation_label_noise",
        ["label noise", "MRSL top-1", "Bayes ceiling"],
        rows,
        title="Ablation: rule recovery under label noise (cars dataset)",
    )
    accs = [acc for _, acc, _ in rows]
    # Accuracy decreases with noise but stays well above chance (1/3).
    assert accs[0] > accs[-1]
    assert all(acc > 0.34 for acc in accs)
    # Clean-rule accuracy is high.
    assert accs[0] > 0.85
