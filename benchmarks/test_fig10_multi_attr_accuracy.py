"""Fig. 10: prediction accuracy of multi-variable inference.

KL divergence vs Gibbs samples per tuple, for a varying number of missing
attributes, on BN8 (very accurate), BN17 (larger, lower accuracy) and BN2
(the paper's anomalous case).  Shapes to reproduce on BN8/BN17: accuracy
improves with more samples per tuple, and fewer missing values are easier.
"""

import pytest

from repro.bench import run_multi_attribute_experiment


def _sweep(name, config, sample_counts, missing_counts):
    table = {}
    for k in missing_counts:
        for n in sample_counts:
            run = run_multi_attribute_experiment(
                name, config, num_missing=k,
                num_samples=n, burn_in=max(50, n // 10),
            )
            table[(k, n)] = run.score
    return table


@pytest.fixture(scope="module")
def sweep_params(scale):
    if scale == "paper":
        return [500, 1000, 2000, 5000], {"BN8": [2, 3, 4], "BN17": [2, 3, 4, 5], "BN2": [2, 3, 4]}
    return [100, 400, 1200], {"BN8": [2, 3], "BN17": [2, 4], "BN2": [2, 3]}


@pytest.fixture(scope="module")
def cfg(base_config, scale):
    if scale == "paper":
        return base_config
    return base_config.scaled(
        training_size=4000, support_threshold=0.005, max_test_tuples=15
    )


@pytest.mark.parametrize("network", ["BN8", "BN17", "BN2"])
def test_fig10(benchmark, report, cfg, sweep_params, network):
    sample_counts, missing_by_net = sweep_params
    missing_counts = missing_by_net[network]
    table = benchmark.pedantic(
        _sweep, args=(network, cfg, sample_counts, missing_counts),
        rounds=1, iterations=1,
    )
    rows = [
        (k, n, round(table[(k, n)].mean_kl, 4),
         round(table[(k, n)].top1_accuracy, 3))
        for k in missing_counts
        for n in sample_counts
    ]
    report(
        f"fig10_{network}",
        ["missing", "points/tuple", "KL", "top-1"],
        rows,
        title=f"Fig 10: multi-variable inference accuracy on {network}",
    )
    if network in ("BN8", "BN17"):
        # Shape: more samples per tuple do not hurt accuracy.
        for k in missing_counts:
            first = table[(k, sample_counts[0])].mean_kl
            last = table[(k, sample_counts[-1])].mean_kl
            assert last <= first + 0.1, (network, k)
        # Shape: fewer missing values are not harder.
        easiest = missing_counts[0]
        hardest = missing_counts[-1]
        n = sample_counts[-1]
        assert table[(easiest, n)].mean_kl <= table[(hardest, n)].mean_kl + 0.1
    # Top-1 accuracy stays well above the random-guess floor throughout.
    for k in missing_counts:
        floor = 1.0 / (2 ** k if network != "BN2" else 5 ** k)
        assert table[(k, sample_counts[-1])].top1_accuracy > floor
