"""Compiled vs naive inference engine on the census single-missing workload.

The compiled engine groups a batch by evidence signature and answers each
group with one vectorized match + combine; the naive path re-enumerates
voters per tuple.  This bench derives the same masked census batch both
ways, checks the outputs are bit-for-bit identical, and records the
speedup — the acceptance bar is >= 3x on the inference phase.
"""

import os
import time

import numpy as np

from repro.bench.masking import mask_relation
from repro.core import BatchInferenceEngine, learn_mrsl
from repro.core.inference import infer_all_single_missing
from repro.datasets.census import load_census

#: Acceptance bar: compiled must beat naive by at least this factor.
#: Typical serial runs measure ~4x; noisy shared runners can override via
#: ``REPRO_MIN_SPEEDUP`` (CI uses a looser bound) without weakening the
#: bit-for-bit equality assertion, which always holds.
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_SPEEDUP", "3.0"))


def _setup(scale):
    training = 20_000 if scale == "paper" else 3000
    batch = 20_000 if scale == "paper" else 6000
    support = 0.001 if scale == "paper" else 0.005
    rng = np.random.default_rng(2011)
    data, _ = load_census(training, rng)
    model = learn_mrsl(data, support_threshold=support).model
    test, _ = load_census(batch, rng)
    masked = list(mask_relation(test, 1, rng))
    return model, masked


def test_engine_speedup(benchmark, report, scale):
    model, masked = _setup(scale)
    rows = []
    results = {}

    def run():
        for engine in ("naive", "compiled"):
            start = time.perf_counter()
            results[engine] = infer_all_single_missing(
                masked, model, engine=engine
            )
            elapsed = time.perf_counter() - start
            rows.append(
                (
                    engine,
                    model.size(),
                    len(masked),
                    round(elapsed, 4),
                    round(1000 * elapsed / len(masked), 4),
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)

    naive_time = rows[0][3]
    compiled_time = rows[1][3]
    speedup = naive_time / max(compiled_time, 1e-9)
    rows.append(("speedup", "-", "-", round(speedup, 2), "-"))
    report(
        "engine_speedup",
        ["engine", "model size", "batch", "time (s)", "ms/tuple"],
        rows,
        title="Compiled batch-inference engine vs naive voter enumeration "
        "(census, single missing attribute)",
    )

    # The two engines must agree exactly: the compiled path is an
    # optimization, never an approximation.
    for a, b in zip(results["naive"], results["compiled"]):
        assert a.outcomes == b.outcomes
        assert (a.probs == b.probs).all()
    assert speedup >= MIN_SPEEDUP, (
        f"compiled engine only {speedup:.2f}x faster than naive "
        f"(required {MIN_SPEEDUP}x)"
    )


def test_engine_cache_amortization(report, scale):
    """Repeat batches are nearly free: the signature LRU absorbs them."""
    model, masked = _setup(scale)
    engine = BatchInferenceEngine(model)

    start = time.perf_counter()
    engine.infer_batch_codes(masked)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    engine.infer_batch_codes(masked)
    warm = time.perf_counter() - start

    info = engine.cache_info()
    rows = [
        ("cold batch", len(masked), info["groups_computed"], round(cold, 4)),
        ("warm batch", len(masked), 0, round(warm, 4)),
    ]
    report(
        "engine_cache",
        ["pass", "tuples", "groups computed", "time (s)"],
        rows,
        title="Evidence-signature cache amortization (census)",
    )
    assert info["groups_computed"] < len(masked)
    assert warm < cold
