"""Incremental (delta) re-derive vs full re-derive after a small ChangeSet.

The mutable-database workload: a census relation whose incomplete part is
dominated by multi-missing (Gibbs) tuples takes a ChangeSet touching a
handful of *single-missing* rows.  Lineage-driven invalidation marks only
those rows dirty — every Gibbs shard's content key is unchanged, so all the
expensive sampling work carries over verbatim and the delta path re-runs a
few RNG-free compiled-engine shards.

The bench derives the updated relation twice — ``update_policy="full"``
(re-derive everything) and ``"delta"`` — from the same previous result,
asserts the two databases are bit-identical (the equivalence invariant,
unconditional), and asserts the delta path is at least ``MIN_SPEEDUP``
times faster (override via ``REPRO_MIN_INCR_SPEEDUP``).  Results go to
``benchmarks/results/incremental_speedup.txt`` and the machine-readable
``benchmarks/results/BENCH_incremental.json``.

The favorable shape is the point: updates that touch multi-missing tuples
dirty their whole 128-tuple Gibbs batch (see docs/updates.md), so a
ChangeSet rewriting the entire incomplete part would see no win.  The gate
measures the common case — small updates against a large derived database.
"""

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.api.config import DeriveConfig
from repro.bench.masking import mask_relation
from repro.core import derive_probabilistic_database, learn_mrsl
from repro.datasets.census import load_census
from repro.relational import ChangeSet, Relation, update

RESULTS_DIR = Path(__file__).parent / "results"

#: Required full-over-delta speedup.  The delta run executes only a few
#: compiled-engine shards while the full run re-samples every Gibbs batch,
#: so the bar holds on shared runners (no parallelism involved: both serial).
MIN_SPEEDUP = float(os.environ.get("REPRO_MIN_INCR_SPEEDUP", "5.0"))

#: Rows the ChangeSet touches.
NUM_UPDATES = 10


def _setup(scale):
    training = 20_000 if scale == "paper" else 2500
    singles = 120 if scale == "paper" else 60
    doubles = 600 if scale == "paper" else 280
    triples = 300 if scale == "paper" else 140
    support = 0.001 if scale == "paper" else 0.005
    rng = np.random.default_rng(2011)
    train, _ = load_census(training, rng)
    model = learn_mrsl(train, support_threshold=support).model
    one_part, _ = load_census(singles, rng)
    two_part, _ = load_census(doubles, rng)
    three_part, _ = load_census(triples, rng)
    incomplete = (
        list(mask_relation(one_part, 1, rng))
        + list(mask_relation(two_part, 2, rng))
        + list(mask_relation(three_part, 3, rng))
    )
    relation = Relation(train.schema, incomplete)
    return model, relation


def _single_touching_changeset(relation, k=NUM_UPDATES):
    """Update one known cell on each of ``k`` single-missing rows."""
    ops = []
    for i, t in enumerate(relation):
        if t.num_missing != 1:
            continue
        attr = next(
            a.name for p, a in enumerate(t.schema)
            if p not in t.missing_positions
        )
        other = next(v for v in t.schema[attr].domain if v != t.value(attr))
        ops.append(update(i, {attr: other}, source="bench"))
        if len(ops) == k:
            break
    assert len(ops) == k, "workload has too few single-missing rows"
    return ChangeSet(ops)


def test_incremental_speedup(report, scale):
    model, relation = _setup(scale)
    num_samples = 500 if scale == "paper" else 200
    config = DeriveConfig(num_samples=num_samples, burn_in=20, seed=2011)

    baseline = derive_probabilistic_database(relation, config=config, model=model)

    updated = relation.copy()
    outcome = updated.apply_changeset(_single_touching_changeset(relation))
    assert len(outcome.updated) == NUM_UPDATES

    times = {}
    results = {}
    for policy in ("full", "delta"):
        start = time.perf_counter()
        results[policy] = derive_probabilistic_database(
            updated, config=config, previous=baseline, update_policy=policy
        )
        times[policy] = time.perf_counter() - start

    # The invariant, unconditional: delta == full re-derive, bit for bit.
    full_db, delta_db = results["full"].database, results["delta"].database
    assert len(full_db.blocks) == len(delta_db.blocks)
    for a, b in zip(full_db.blocks, delta_db.blocks):
        assert a.base == b.base
        assert a.distribution.outcomes == b.distribution.outcomes
        assert (a.distribution.probs == b.distribution.probs).all()

    delta_report = results["delta"].exec_report
    speedup = times["full"] / max(times["delta"], 1e-9)
    rows = [
        (
            policy,
            results[policy].exec_report.num_shards,
            results[policy].exec_report.carried_over,
            results[policy].exec_report.carried_tuples,
            round(times[policy], 3),
        )
        for policy in ("full", "delta")
    ] + [("speedup", "-", "-", "-", round(speedup, 2))]

    report(
        "incremental_speedup",
        ["policy", "executed shards", "carried shards", "carried tuples", "time (s)"],
        rows,
        title=f"Incremental re-derive after a {NUM_UPDATES}-row ChangeSet "
        "(census, single-missing rows touched, Gibbs batches carried)",
        chart=(
            f"workload: {relation.num_incomplete} incomplete tuples, "
            f"{NUM_UPDATES} touched; delta executed "
            f"{delta_report.num_shards} shards, carried "
            f"{delta_report.carried_over}"
        ),
    )
    (RESULTS_DIR / "BENCH_incremental.json").write_text(
        json.dumps(
            {
                "benchmark": "incremental_speedup",
                "scale": scale,
                "workload": {
                    "tuples": relation.num_incomplete,
                    "touched": NUM_UPDATES,
                    "num_samples": num_samples,
                    "burn_in": 20,
                    "seed": 2011,
                },
                "seconds": {k: round(v, 4) for k, v in times.items()},
                "speedup": round(speedup, 3),
                "executed_shards": delta_report.num_shards,
                "carried_over": delta_report.carried_over,
                "carried_tuples": delta_report.carried_tuples,
                "min_speedup": MIN_SPEEDUP,
                "host_cpus": os.cpu_count() or 1,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    # Every Gibbs batch must have carried: the ChangeSet touched singles only.
    assert delta_report.carried_over > 0
    assert delta_report.carried_tuples == relation.num_incomplete - NUM_UPDATES
    assert speedup >= MIN_SPEEDUP, (
        f"incremental re-derive only {speedup:.2f}x faster than the full "
        f"re-derive (required {MIN_SPEEDUP}x)"
    )
