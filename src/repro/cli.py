"""Command-line interface: derive probabilistic databases from CSV files.

Usage::

    python -m repro derive data.csv --support 0.01 --output blocks.csv
    python -m repro update data.csv changes.json --output blocks.csv
    python -m repro inspect data.csv --support 0.01 --attribute age
    python -m repro learn data.csv --support 0.01 --model model.json
    python -m repro serve data.csv --port 8642

``derive`` reads an incomplete CSV (``"?"`` marks missing values), learns
the MRSL model, infers a distribution for every incomplete tuple, and writes
the probabilistic relation: one row per completion, with a ``block`` id and
a ``prob`` column — the format of the paper's Fig. 1 call-out.

``update`` derives the same way, then applies a ChangeSet JSON file
(inserts/updates/retractions, each tagged with a source id) to the base
table and re-derives incrementally: blocks whose lineage the ChangeSet did
not touch are carried over verbatim, only dirty shards re-execute
(``--policy full`` forces a from-scratch re-derive of the updated table;
both policies produce the same database).

``serve`` starts the JSON inference service (:mod:`repro.api`) over stdlib
HTTP, optionally deriving a database from a CSV at startup so queries can be
answered immediately.

Every pipeline default is read from :class:`~repro.api.config.DeriveConfig`,
so the CLI can never drift from the library again.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from .api.config import DeriveConfig
from .bench.reporting import format_table
from .core.derive import derive_probabilistic_database
from .core.engine import ENGINES
from .exec.base import EXECUTORS, FAILURE_POLICIES
from .core.inference import VoterChoice, VotingScheme
from .core.learning import learn_mrsl
from .core.persistence import load_model, save_model
from .relational.io import read_csv

__all__ = ["main", "build_parser", "config_from_args"]

#: The single source of truth for every pipeline default.
DEFAULTS = DeriveConfig()


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Derive probabilistic databases with inference ensembles "
        "(Stoyanovich et al., ICDE 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, input_required: bool = True) -> None:
        if input_required:
            p.add_argument(
                "input", type=Path, help="incomplete CSV ('?' = missing)"
            )
        p.add_argument(
            "--support", type=float, default=DEFAULTS.support_threshold,
            help="Apriori support threshold theta "
            f"(default {DEFAULTS.support_threshold})",
        )
        p.add_argument(
            "--max-itemsets", type=int, default=DEFAULTS.max_itemsets,
            help="per-round frequent itemset cap "
            f"(default {DEFAULTS.max_itemsets})",
        )

    def pipeline(p: argparse.ArgumentParser) -> None:
        """Knobs shared by every command that runs the full pipeline."""
        p.add_argument(
            "--voters", choices=[v.value for v in VoterChoice],
            default=DEFAULTS.v_choice,
        )
        p.add_argument(
            "--voting", choices=[v.value for v in VotingScheme],
            default=DEFAULTS.v_scheme,
        )
        p.add_argument(
            "--engine", choices=list(ENGINES), default=DEFAULTS.engine,
            help="inference engine: 'compiled' batches voting by evidence "
            "signature; 'naive' is the scalar reference path (default: "
            f"{DEFAULTS.engine})",
        )
        p.add_argument(
            "--executor", choices=list(EXECUTORS), default=DEFAULTS.executor,
            help="derivation runtime: run shards in-process ('serial'), on "
            "a thread pool, or on worker processes rebuilt from the model "
            "JSON; results are bit-identical for every choice (default: "
            f"{DEFAULTS.executor})",
        )
        p.add_argument(
            "--workers", type=int, default=DEFAULTS.workers,
            help="worker threads/processes for the shard executor "
            f"(default {DEFAULTS.workers})",
        )
        p.add_argument(
            "--samples", type=int, default=DEFAULTS.num_samples,
            help="Gibbs samples per multi-missing tuple "
            f"(default {DEFAULTS.num_samples})",
        )
        p.add_argument(
            "--burn-in", type=int, default=DEFAULTS.burn_in,
            help=f"Gibbs burn-in sweeps (default {DEFAULTS.burn_in})",
        )
        p.add_argument(
            "--gibbs-chains", type=int, default=DEFAULTS.gibbs_chains,
            help="independent Gibbs chains pooled per multi-missing tuple "
            "in the vectorized ensemble kernel "
            f"(default {DEFAULTS.gibbs_chains})",
        )
        p.add_argument(
            "--gibbs-vectorized", choices=("on", "off"),
            default="on" if DEFAULTS.gibbs_vectorized else "off",
            help="multi-missing Gibbs kernel: 'on' runs all chains of a "
            "shard's tuples in lock step on the compiled engine; 'off' is "
            "the scalar tuple-DAG oracle (same posterior, different "
            "equally-valid seeded samples; default: "
            f"{'on' if DEFAULTS.gibbs_vectorized else 'off'})",
        )
        p.add_argument(
            "--seed", type=int, default=DEFAULTS.seed,
            help="sampler seed (default: fresh entropy)",
        )
        p.add_argument(
            "--failure-policy", choices=list(FAILURE_POLICIES),
            default=DEFAULTS.failure_policy,
            help="what an unrecoverable executor failure does: 'strict' "
            "raises with the partial shard report, 'degrade' falls back "
            "process->thread->serial and keeps deriving "
            f"(default: {DEFAULTS.failure_policy})",
        )
        p.add_argument(
            "--shard-retries", type=int, default=DEFAULTS.shard_retries,
            help="retries per shard with deterministic exponential backoff "
            f"(default {DEFAULTS.shard_retries})",
        )
        p.add_argument(
            "--shard-deadline", type=float, default=DEFAULTS.shard_deadline,
            help="seconds one shard attempt may run before it is treated "
            "as hung and its worker pool rebuilt (default: unlimited)",
        )

    derive = sub.add_parser("derive", help="derive the probabilistic relation")
    common(derive)
    pipeline(derive)
    derive.add_argument(
        "--output", type=Path, default=None,
        help="output CSV (default: stdout)",
    )
    derive.add_argument(
        "--progress", action="store_true",
        help="render a shard-progress bar on stderr while deriving "
        "(shards done, tuples completed, elapsed, ETA)",
    )

    update = sub.add_parser(
        "update",
        help="apply a ChangeSet to the base table and re-derive incrementally",
    )
    common(update)
    update.add_argument(
        "changes", type=Path,
        help="ChangeSet JSON: {\"ops\": [{\"op\": \"update\", \"index\": 3, "
        "\"set\": {\"inc\": \"40K\"}, \"source\": \"hr\"}, ...]}",
    )
    pipeline(update)
    update.add_argument(
        "--trust", default=None,
        help="comma-separated source ids, most trusted first; conflicting "
        "cell writes resolve in this order (unlisted sources tie last)",
    )
    update.add_argument(
        "--policy", choices=("delta", "full"), default=DEFAULTS.update_policy,
        help="re-derive mode: 'delta' carries untouched blocks over and "
        "executes only dirty shards, 'full' re-derives everything "
        f"(default: {DEFAULTS.update_policy})",
    )
    update.add_argument(
        "--output", type=Path, default=None,
        help="output CSV of the updated probabilistic relation "
        "(default: stdout)",
    )
    update.add_argument(
        "--save-updated", type=Path, default=None,
        help="also write the post-update base table as an incomplete CSV "
        "(for audit, or to re-derive from scratch and compare)",
    )
    update.add_argument(
        "--progress", action="store_true",
        help="render a shard-progress bar on stderr during the re-derive "
        "(carried-over shard counts included)",
    )

    inspect = sub.add_parser("inspect", help="print a learned semi-lattice")
    common(inspect)
    inspect.add_argument(
        "--attribute", required=True, help="attribute whose MRSL to print"
    )

    learn = sub.add_parser("learn", help="learn and save the MRSL model")
    common(learn)
    learn.add_argument("--model", type=Path, required=True,
                       help="output JSON model path")

    show = sub.add_parser("model-info", help="summarize a saved model")
    show.add_argument("model", type=Path, help="JSON model path")

    serve = sub.add_parser(
        "serve", help="serve the JSON inference API over HTTP"
    )
    serve.add_argument(
        "input", type=Path, nargs="?", default=None,
        help="optional incomplete CSV to derive at startup "
        "(registered as model/database 'default')",
    )
    common(serve, input_required=False)
    pipeline(serve)
    serve.add_argument(
        "--model", type=Path, default=None,
        help="preload a saved MRSL model JSON as 'default'",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642)
    serve.add_argument(
        "--state-dir", type=Path, default=None,
        help="directory for the durable job journal (SQLite); async jobs "
        "interrupted by a crash or restart resume from their completed "
        "shards when the server next starts with the same directory",
    )
    return parser


def config_from_args(args: argparse.Namespace) -> DeriveConfig:
    """The :class:`DeriveConfig` an argparse namespace describes."""
    trust = getattr(args, "trust", None)
    return DeriveConfig(
        trust=(
            () if trust is None
            else tuple(s.strip() for s in trust.split(",") if s.strip())
        ),
        update_policy=getattr(args, "policy", DEFAULTS.update_policy),
        support_threshold=args.support,
        max_itemsets=args.max_itemsets,
        v_choice=getattr(args, "voters", DEFAULTS.v_choice),
        v_scheme=getattr(args, "voting", DEFAULTS.v_scheme),
        num_samples=getattr(args, "samples", DEFAULTS.num_samples),
        burn_in=getattr(args, "burn_in", DEFAULTS.burn_in),
        seed=getattr(args, "seed", DEFAULTS.seed),
        engine=getattr(args, "engine", DEFAULTS.engine),
        executor=getattr(args, "executor", DEFAULTS.executor),
        workers=getattr(args, "workers", DEFAULTS.workers),
        gibbs_chains=getattr(args, "gibbs_chains", DEFAULTS.gibbs_chains),
        gibbs_vectorized=(
            getattr(
                args,
                "gibbs_vectorized",
                "on" if DEFAULTS.gibbs_vectorized else "off",
            )
            == "on"
        ),
        failure_policy=getattr(
            args, "failure_policy", DEFAULTS.failure_policy
        ),
        shard_retries=getattr(args, "shard_retries", DEFAULTS.shard_retries),
        shard_deadline=getattr(
            args, "shard_deadline", DEFAULTS.shard_deadline
        ),
    )


class _ProgressBar:
    """Single-line stderr progress bar fed by a ProgressTracker's events."""

    WIDTH = 28

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        self._drawn = False

    def __call__(self, kind, snapshot, *rest) -> None:
        filled = int(self.WIDTH * snapshot.fraction_done)
        bar = "#" * filled + "-" * (self.WIDTH - filled)
        self.stream.write(f"\r[{bar}] {snapshot.describe()}")
        self.stream.flush()
        self._drawn = True

    def finish(self) -> None:
        if self._drawn:
            self.stream.write("\n")
            self.stream.flush()


def _write_blocks(db, names, output: Path | None) -> None:
    """Write a probabilistic database as the Fig. 1 block/prob CSV."""
    out = output.open("w", newline="") if output else sys.stdout
    try:
        writer = csv.writer(out)
        writer.writerow(("block", "prob") + names)
        for t in db.certain:
            writer.writerow(("-", "1.0") + t.values())
        for i, block in enumerate(db.blocks):
            for completed, prob in block.completions():
                writer.writerow((str(i), f"{prob:.6g}") + completed.values())
    finally:
        if output:
            out.close()


def _cmd_derive(args: argparse.Namespace) -> int:
    relation = read_csv(args.input)
    config = config_from_args(args)
    tracker = None
    bar = None
    if args.progress:
        from .jobs.progress import ProgressTracker

        bar = _ProgressBar()
        tracker = ProgressTracker(workers=config.parallelism, on_event=bar)
    try:
        result = derive_probabilistic_database(
            relation,
            config=config,
            on_plan=None if tracker is None else tracker.on_plan,
            on_shard=None if tracker is None else tracker.on_shard,
        )
    finally:
        if bar is not None:
            bar.finish()
    db = result.database
    _write_blocks(db, relation.schema.names, args.output)
    print(
        f"derived {len(db.blocks)} blocks over {len(db.certain)} certain "
        f"tuples (model: {result.model.size()} meta-rules, "
        f"engine: {args.engine})",
        file=sys.stderr,
    )
    if result.exec_report is not None:
        print(result.exec_report.summary(), file=sys.stderr)
    return 0


def _cmd_update(args: argparse.Namespace) -> int:
    from .api.session import Session
    from .relational.io import write_csv
    from .relational.updates import ChangeSet

    relation = read_csv(args.input)
    changeset = ChangeSet.from_json(args.changes.read_text())
    config = config_from_args(args)
    session = Session(config)
    bar = None
    progress = None
    if args.progress:
        bar = _ProgressBar()
        progress = lambda snapshot: bar(None, snapshot)  # noqa: E731
    try:
        session.derive(relation)
        updated = session.apply_updates(changeset, progress=progress)
    finally:
        if bar is not None:
            bar.finish()
    outcome = updated.outcome
    db = updated.result.database
    _write_blocks(db, relation.schema.names, args.output)
    if args.save_updated is not None:
        write_csv(session.relation(), args.save_updated)
    print(
        f"applied {len(changeset.ops)} ops from {args.changes}: "
        f"{len(outcome.updated)} updated, {len(outcome.retracted)} "
        f"retracted, {len(outcome.inserted_tuples)} inserted "
        f"({len(outcome.conflicts)} conflicts, {len(outcome.ties)} ties)",
        file=sys.stderr,
    )
    print(
        f"re-derived ({updated.policy}): {len(db.blocks)} blocks over "
        f"{len(db.certain)} certain tuples",
        file=sys.stderr,
    )
    if updated.result.exec_report is not None:
        print(updated.result.exec_report.summary(), file=sys.stderr)
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    relation = read_csv(args.input)
    if args.attribute not in relation.schema:
        print(
            f"error: no attribute {args.attribute!r}; "
            f"schema has {relation.schema.names}",
            file=sys.stderr,
        )
        return 2
    result = learn_mrsl(
        relation,
        support_threshold=args.support,
        max_itemsets=args.max_itemsets,
    )
    lattice = result.model[args.attribute]
    print(f"MRSL for {args.attribute!r}: {len(lattice)} meta-rules")
    print(lattice.describe(relation.schema))
    return 0


def _cmd_learn(args: argparse.Namespace) -> int:
    relation = read_csv(args.input)
    result = learn_mrsl(
        relation,
        support_threshold=args.support,
        max_itemsets=args.max_itemsets,
    )
    save_model(result.model, args.model)
    print(
        f"saved {result.model_size} meta-rules over "
        f"{len(relation.schema)} attributes to {args.model}",
        file=sys.stderr,
    )
    return 0


def _cmd_model_info(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    rows = [
        (
            model.schema[lat.head_attribute].name,
            len(lat),
            lat.max_body_size,
            round(lat.root.weight, 4) if lat.root else "-",
        )
        for lat in model
    ]
    print(
        format_table(
            ["attribute", "meta-rules", "max body", "root weight"],
            rows,
            title=f"MRSL model: {model.size()} meta-rules",
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so the lighter subcommands never pay for the API layer.
    from .api.http import serve
    from .api.service import InferenceService
    from .api.session import Session

    session = Session(config_from_args(args))
    jobs = None
    if args.state_dir is not None:
        from .jobs import JobManager, JobStore

        store = JobStore(args.state_dir)
        jobs = JobManager(prefix="derive", store=store)
        print(
            f"durable job journal at {store.path}", file=sys.stderr
        )
    if args.model is not None:
        session.load_model(args.model)
        print(f"loaded model 'default' from {args.model}", file=sys.stderr)
    if args.input is not None:
        relation = read_csv(args.input)
        result = session.derive(relation)
        print(
            f"derived database 'default': {len(result.database.blocks)} "
            f"blocks over {len(result.database.certain)} certain tuples",
            file=sys.stderr,
        )
    service = InferenceService(session, jobs=jobs)
    if args.state_dir is not None:
        resumed = service.resume_jobs()
        if resumed:
            print(
                f"resumed {len(resumed)} interrupted job(s): "
                + ", ".join(resumed),
                file=sys.stderr,
            )
    serve(service, host=args.host, port=args.port)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "derive": _cmd_derive,
        "update": _cmd_update,
        "inspect": _cmd_inspect,
        "learn": _cmd_learn,
        "model-info": _cmd_model_info,
        "serve": _cmd_serve,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
