"""Command-line interface: derive probabilistic databases from CSV files.

Usage::

    python -m repro derive data.csv --support 0.01 --output blocks.csv
    python -m repro inspect data.csv --support 0.01 --attribute age
    python -m repro learn data.csv --support 0.01 --model model.json

``derive`` reads an incomplete CSV (``"?"`` marks missing values), learns
the MRSL model, infers a distribution for every incomplete tuple, and writes
the probabilistic relation: one row per completion, with a ``block`` id and
a ``prob`` column — the format of the paper's Fig. 1 call-out.
"""

from __future__ import annotations

import argparse
import csv
import sys
from pathlib import Path

from .bench.reporting import format_table
from .core.derive import derive_probabilistic_database
from .core.engine import DEFAULT_ENGINE, ENGINES
from .core.learning import learn_mrsl
from .core.persistence import load_model, save_model
from .relational.io import read_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Derive probabilistic databases with inference ensembles "
        "(Stoyanovich et al., ICDE 2011)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("input", type=Path, help="incomplete CSV ('?' = missing)")
        p.add_argument(
            "--support", type=float, default=0.01,
            help="Apriori support threshold theta (default 0.01)",
        )
        p.add_argument(
            "--max-itemsets", type=int, default=1000,
            help="per-round frequent itemset cap (default 1000)",
        )

    derive = sub.add_parser("derive", help="derive the probabilistic relation")
    common(derive)
    derive.add_argument(
        "--output", type=Path, default=None,
        help="output CSV (default: stdout)",
    )
    derive.add_argument(
        "--voters", choices=["all", "best", "root"], default="best"
    )
    derive.add_argument(
        "--voting", choices=["averaged", "weighted", "log_pool"],
        default="averaged",
    )
    derive.add_argument(
        "--engine", choices=list(ENGINES), default=DEFAULT_ENGINE,
        help="inference engine: 'compiled' batches voting by evidence "
        "signature; 'naive' is the scalar reference path (default: "
        f"{DEFAULT_ENGINE})",
    )
    derive.add_argument("--samples", type=int, default=2000,
                        help="Gibbs samples per multi-missing tuple")
    derive.add_argument("--burn-in", type=int, default=200)
    derive.add_argument("--seed", type=int, default=0)

    inspect = sub.add_parser("inspect", help="print a learned semi-lattice")
    common(inspect)
    inspect.add_argument(
        "--attribute", required=True, help="attribute whose MRSL to print"
    )

    learn = sub.add_parser("learn", help="learn and save the MRSL model")
    common(learn)
    learn.add_argument("--model", type=Path, required=True,
                       help="output JSON model path")

    show = sub.add_parser("model-info", help="summarize a saved model")
    show.add_argument("model", type=Path, help="JSON model path")
    return parser


def _cmd_derive(args: argparse.Namespace) -> int:
    relation = read_csv(args.input)
    result = derive_probabilistic_database(
        relation,
        support_threshold=args.support,
        max_itemsets=args.max_itemsets,
        v_choice=args.voters,
        v_scheme=args.voting,
        num_samples=args.samples,
        burn_in=args.burn_in,
        rng=args.seed,
        engine=args.engine,
    )
    db = result.database
    out = args.output.open("w", newline="") if args.output else sys.stdout
    try:
        writer = csv.writer(out)
        writer.writerow(("block", "prob") + relation.schema.names)
        for t in db.certain:
            writer.writerow(("-", "1.0") + t.values())
        for i, block in enumerate(db.blocks):
            for completed, prob in block.completions():
                writer.writerow((str(i), f"{prob:.6g}") + completed.values())
    finally:
        if args.output:
            out.close()
    print(
        f"derived {len(db.blocks)} blocks over {len(db.certain)} certain "
        f"tuples (model: {result.model.size()} meta-rules, "
        f"engine: {args.engine})",
        file=sys.stderr,
    )
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    relation = read_csv(args.input)
    if args.attribute not in relation.schema:
        print(
            f"error: no attribute {args.attribute!r}; "
            f"schema has {relation.schema.names}",
            file=sys.stderr,
        )
        return 2
    result = learn_mrsl(
        relation,
        support_threshold=args.support,
        max_itemsets=args.max_itemsets,
    )
    lattice = result.model[args.attribute]
    print(f"MRSL for {args.attribute!r}: {len(lattice)} meta-rules")
    print(lattice.describe(relation.schema))
    return 0


def _cmd_learn(args: argparse.Namespace) -> int:
    relation = read_csv(args.input)
    result = learn_mrsl(
        relation,
        support_threshold=args.support,
        max_itemsets=args.max_itemsets,
    )
    save_model(result.model, args.model)
    print(
        f"saved {result.model_size} meta-rules over "
        f"{len(relation.schema)} attributes to {args.model}",
        file=sys.stderr,
    )
    return 0


def _cmd_model_info(args: argparse.Namespace) -> int:
    model = load_model(args.model)
    rows = [
        (
            model.schema[lat.head_attribute].name,
            len(lat),
            lat.max_body_size,
            round(lat.root.weight, 4) if lat.root else "-",
        )
        for lat in model
    ]
    print(
        format_table(
            ["attribute", "meta-rules", "max body", "root weight"],
            rows,
            title=f"MRSL model: {model.size()} meta-rules",
        )
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "derive": _cmd_derive,
        "inspect": _cmd_inspect,
        "learn": _cmd_learn,
        "model-info": _cmd_model_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
