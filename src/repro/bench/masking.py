"""Test-set masking: turning complete tuples into incomplete ones.

The experimental framework (Section VI-A) processes the test split by
replacing one or several attribute values per tuple with ``"?"``; *which*
attributes are replaced is chosen uniformly at random (MCAR — missing
completely at random).

The paper stresses that its *method* assumes no missingness model, only its
*evaluation* does; :func:`mask_relation_mar` and :func:`mask_relation_mnar`
provide the other two standard mechanisms so robustness to non-uniform
missingness can be measured too:

* **MAR** (missing at random) — whether a value is dropped depends on
  *observed* values of other attributes;
* **MNAR** (missing not at random) — whether a value is dropped depends on
  the *value itself*.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..relational.relation import Relation
from ..relational.tuples import MISSING_CODE, RelTuple

__all__ = [
    "mask_tuple",
    "mask_relation",
    "mask_relation_mar",
    "mask_relation_mnar",
]


def mask_tuple(
    t: RelTuple, num_missing: int, rng: np.random.Generator
) -> RelTuple:
    """Replace ``num_missing`` uniformly chosen attribute values with ``?``."""
    k = len(t.schema)
    if not 1 <= num_missing <= k:
        raise ValueError(
            f"num_missing must be between 1 and {k}, got {num_missing}"
        )
    positions = rng.choice(k, size=num_missing, replace=False)
    codes = t.codes.copy()
    codes[positions] = MISSING_CODE
    return RelTuple(t.schema, codes)


def mask_relation(
    relation: Relation,
    num_missing: int | Sequence[int],
    rng: np.random.Generator,
) -> Relation:
    """Mask every tuple of a complete relation.

    ``num_missing`` is either a fixed count or a sequence of counts to choose
    from uniformly per tuple (the paper's "one or several attribute values
    are replaced" setting).
    """
    counts: np.ndarray
    if isinstance(num_missing, int):
        counts = np.full(len(relation), num_missing)
    else:
        options = np.asarray(list(num_missing), dtype=int)
        if options.size == 0:
            raise ValueError("num_missing sequence must be non-empty")
        counts = rng.choice(options, size=len(relation))
    masked = [
        mask_tuple(t, int(c), rng) for t, c in zip(relation, counts)
    ]
    return Relation(relation.schema, masked)


def mask_relation_mar(
    relation: Relation,
    target: str,
    trigger: str,
    rng: np.random.Generator,
    high_rate: float = 0.6,
    low_rate: float = 0.05,
) -> Relation:
    """MAR masking: drop ``target`` at a rate depending on ``trigger``'s value.

    Rows whose (always observed) ``trigger`` attribute holds its *first*
    domain value lose ``target`` with probability ``high_rate``; other rows
    with ``low_rate``.  The missingness depends only on observed data — the
    MAR regime, under which likelihood-based inference remains unbiased.
    """
    if not (0.0 <= low_rate <= 1.0 and 0.0 <= high_rate <= 1.0):
        raise ValueError("rates must be within [0, 1]")
    schema = relation.schema
    target_pos = schema.index(target)
    trigger_pos = schema.index(trigger)
    if target_pos == trigger_pos:
        raise ValueError("target and trigger must be different attributes")
    codes = relation.codes.copy()
    triggered = codes[:, trigger_pos] == 0
    rates = np.where(triggered, high_rate, low_rate)
    drop = rng.random(len(relation)) < rates
    codes[drop, target_pos] = MISSING_CODE
    return Relation.from_codes(schema, codes)


def mask_relation_mnar(
    relation: Relation,
    target: str,
    rng: np.random.Generator,
    rates: Sequence[float] | None = None,
) -> Relation:
    """MNAR masking: drop ``target`` at a rate depending on its own value.

    ``rates[i]`` is the drop probability when the value's code is ``i``
    (default: linearly increasing from 0.05 to 0.6 across the domain — e.g.
    high incomes are the ones people decline to report).  The mechanism
    depends on the *unobserved* value: the regime where naive learners
    acquire bias.
    """
    schema = relation.schema
    target_pos = schema.index(target)
    card = schema[target_pos].cardinality
    if rates is None:
        rates_arr = np.linspace(0.05, 0.6, card)
    else:
        rates_arr = np.asarray(list(rates), dtype=float)
        if rates_arr.shape != (card,):
            raise ValueError(f"need one rate per domain value ({card})")
        if ((rates_arr < 0) | (rates_arr > 1)).any():
            raise ValueError("rates must be within [0, 1]")
    codes = relation.codes.copy()
    value_rates = rates_arr[codes[:, target_pos]]
    drop = rng.random(len(relation)) < value_rates
    codes[drop, target_pos] = MISSING_CODE
    return Relation.from_codes(schema, codes)
