"""The experimental framework of Section VI-A.

The pipeline, exactly as described in the paper:

1. take a network topology (Table I catalog) and instantiate parameters
   randomly — **3 network instances per topology**, all results averaged;
2. forward-sample a complete dataset of the requested size;
3. split into training (90%) and test (10%) — **3 random splits**, averaged;
4. learn the MRSL model from the training split;
5. mask one or more uniformly chosen attribute values per test tuple;
6. run inference over the masked test set;
7. score predicted distributions against the generating network's exact
   posteriors (KL divergence, top-1 accuracy).

Experiments run at a configurable scale: paper-scale settings (100k training
tuples, 3x3 repetitions) are expensive in pure Python, so
:class:`ExperimentConfig` defaults are modest and the benchmark harness
scales them through ``REPRO_BENCH_SCALE`` (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np

from ..bayesnet.catalog import make_network
from ..bayesnet.generator import DEFAULT_CONCENTRATION
from ..bayesnet.network import BayesianNetwork
from ..bayesnet.sampler import forward_sample_relation
from ..core.inference import VoterChoice, VotingScheme, infer_single
from ..core.learning import learn_mrsl
from ..core.tuple_dag import SamplingStats, workload_sampling
from ..relational.relation import Relation
from .masking import mask_relation
from .metrics import (
    AccuracyScore,
    aggregate,
    score_prediction,
    true_joint_posterior,
    true_single_posterior,
)

__all__ = [
    "ExperimentConfig",
    "ALL_VOTING_METHODS",
    "LearningRun",
    "SingleAttributeRun",
    "MultiAttributeRun",
    "run_learning_experiment",
    "run_single_attribute_experiment",
    "run_multi_attribute_experiment",
]

#: The four method combinations of Table II, in its column order.
ALL_VOTING_METHODS: tuple[tuple[VoterChoice, VotingScheme], ...] = (
    (VoterChoice.ALL, VotingScheme.AVERAGED),
    (VoterChoice.ALL, VotingScheme.WEIGHTED),
    (VoterChoice.BEST, VotingScheme.AVERAGED),
    (VoterChoice.BEST, VotingScheme.WEIGHTED),
)


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of the Section VI-A pipeline."""

    training_size: int = 5000
    support_threshold: float = 0.01
    max_itemsets: int = 1000
    #: random network instances per topology (paper: 3)
    num_instances: int = 3
    #: random train/test splits per instance (paper: 3)
    num_splits: int = 3
    test_fraction: float = 0.1
    #: cap on scored test tuples per split (None = all); keeps pure-Python
    #: runtimes sane without changing the estimators
    max_test_tuples: int | None = 200
    concentration: float = DEFAULT_CONCENTRATION
    seed: int = 0

    def scaled(self, **overrides) -> "ExperimentConfig":
        """A copy with some fields replaced (convenience for sweeps)."""
        return replace(self, **overrides)


@dataclass
class LearningRun:
    """Averaged outcome of repeated Algorithm 1 runs (Fig. 4 measurements)."""

    network: str
    training_size: int
    support_threshold: float
    learn_time_sec: float
    model_size: float
    truncated: bool


@dataclass
class SingleAttributeRun:
    """Averaged single-missing-attribute accuracy (Table II, Figs 5-6, 8, 9)."""

    network: str
    method: tuple[VoterChoice, VotingScheme]
    score: AccuracyScore
    #: wall-clock seconds spent in Algorithm 2 across all scored tuples
    inference_time_sec: float
    model_size: float


@dataclass
class MultiAttributeRun:
    """Averaged multi-missing-attribute accuracy (Figs 10-11)."""

    network: str
    num_missing: int
    num_samples: int
    strategy: str
    score: AccuracyScore
    wall_time_sec: float
    stats: SamplingStats


def _instances(
    network_name: str, config: ExperimentConfig
) -> list[tuple[BayesianNetwork, np.random.Generator]]:
    """The seeded network instances for one experiment."""
    out = []
    for i in range(config.num_instances):
        rng = np.random.default_rng((config.seed, i))
        network = make_network(network_name, rng, concentration=config.concentration)
        out.append((network, rng))
    return out


def _dataset_size(config: ExperimentConfig) -> int:
    """Total sample count so the training split hits ``training_size``."""
    return max(int(round(config.training_size / (1.0 - config.test_fraction))), 2)


def _splits(
    data: Relation, config: ExperimentConfig, rng: np.random.Generator
) -> list[tuple[Relation, Relation]]:
    return [
        data.split(1.0 - config.test_fraction, rng)
        for _ in range(config.num_splits)
    ]


def run_learning_experiment(
    network_name: str, config: ExperimentConfig
) -> LearningRun:
    """Measure Algorithm 1: learning time and model size (Fig. 4)."""
    times = []
    sizes = []
    truncated = False
    for network, rng in _instances(network_name, config):
        data = forward_sample_relation(network, config.training_size, rng)
        start = time.perf_counter()
        result = learn_mrsl(
            data,
            support_threshold=config.support_threshold,
            max_itemsets=config.max_itemsets,
        )
        times.append(time.perf_counter() - start)
        sizes.append(result.model_size)
        truncated = truncated or result.itemsets.truncated
    return LearningRun(
        network=network_name,
        training_size=config.training_size,
        support_threshold=config.support_threshold,
        learn_time_sec=float(np.mean(times)),
        model_size=float(np.mean(sizes)),
        truncated=truncated,
    )


def run_single_attribute_experiment(
    network_name: str,
    config: ExperimentConfig,
    methods: tuple[tuple[VoterChoice, VotingScheme], ...] = ALL_VOTING_METHODS,
) -> dict[tuple[VoterChoice, VotingScheme], SingleAttributeRun]:
    """The Section VI-C experiment: accuracy of single-attribute inference.

    Returns one averaged :class:`SingleAttributeRun` per voting method.
    """
    per_method_scores: dict[tuple, list[tuple[float, bool]]] = {
        m: [] for m in methods
    }
    per_method_time = {m: 0.0 for m in methods}
    model_sizes = []
    for network, rng in _instances(network_name, config):
        data = forward_sample_relation(network, _dataset_size(config), rng)
        for train, test in _splits(data, config, rng):
            model = learn_mrsl(
                train,
                support_threshold=config.support_threshold,
                max_itemsets=config.max_itemsets,
            ).model
            model_sizes.append(model.size())
            if config.max_test_tuples is not None and len(test) > config.max_test_tuples:
                test = Relation.from_codes(
                    test.schema, test.codes[: config.max_test_tuples]
                )
            masked = mask_relation(test, 1, rng)
            for t in masked:
                true = true_single_posterior(network, t)
                pos = t.missing_positions[0]
                for method in methods:
                    choice, scheme = method
                    start = time.perf_counter()
                    predicted = infer_single(t, model[pos], choice, scheme)
                    per_method_time[method] += time.perf_counter() - start
                    per_method_scores[method].append(
                        score_prediction(true, predicted)
                    )
    return {
        method: SingleAttributeRun(
            network=network_name,
            method=method,
            score=aggregate(scores),
            inference_time_sec=per_method_time[method],
            model_size=float(np.mean(model_sizes)),
        )
        for method, scores in per_method_scores.items()
    }


def run_multi_attribute_experiment(
    network_name: str,
    config: ExperimentConfig,
    num_missing: int,
    num_samples: int = 500,
    burn_in: int = 100,
    strategy: str = "tuple_dag",
    v_choice: VoterChoice | str = VoterChoice.BEST,
    v_scheme: VotingScheme | str = VotingScheme.AVERAGED,
) -> MultiAttributeRun:
    """The Section VI-D experiment: sampling-based multi-attribute inference."""
    scores: list[tuple[float, bool]] = []
    wall = 0.0
    totals = SamplingStats()
    for network, rng in _instances(network_name, config):
        data = forward_sample_relation(network, _dataset_size(config), rng)
        for train, test in _splits(data, config, rng):
            model = learn_mrsl(
                train,
                support_threshold=config.support_threshold,
                max_itemsets=config.max_itemsets,
            ).model
            if config.max_test_tuples is not None and len(test) > config.max_test_tuples:
                test = Relation.from_codes(
                    test.schema, test.codes[: config.max_test_tuples]
                )
            masked = mask_relation(test, num_missing, rng)
            workload = list(masked)
            start = time.perf_counter()
            blocks, stats = workload_sampling(
                model,
                workload,
                num_samples=num_samples,
                burn_in=burn_in,
                strategy=strategy,
                v_choice=v_choice,
                v_scheme=v_scheme,
                rng=rng,
            )
            wall += time.perf_counter() - start
            totals.total_draws += stats.total_draws
            totals.burn_in_draws += stats.burn_in_draws
            totals.shared_tuples += stats.shared_tuples
            totals.promoted_tuples += stats.promoted_tuples
            for t, block in zip(workload, blocks):
                true = true_joint_posterior(network, t)
                scores.append(score_prediction(true, block.distribution))
    return MultiAttributeRun(
        network=network_name,
        num_missing=num_missing,
        num_samples=num_samples,
        strategy=strategy,
        score=aggregate(scores),
        wall_time_sec=wall,
        stats=totals,
    )
