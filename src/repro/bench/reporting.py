"""Plain-text tables for benchmark output.

Every benchmark prints the same rows/series the paper reports; these helpers
keep that output aligned and consistent across the harness.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "print_table", "format_series"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> None:
    """Print :func:`format_table` output (benchmarks' reporting path)."""
    print()
    print(format_table(headers, rows, title=title))


def format_series(
    x_label: str,
    y_label: str,
    points: Iterable[tuple[object, object]],
    title: str = "",
) -> str:
    """Render an (x, y) series as a two-column table — one paper figure line."""
    return format_table([x_label, y_label], points, title=title)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)
