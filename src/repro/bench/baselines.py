"""Baselines the paper compares against (implicitly or explicitly).

* :func:`independent_product` — the Section V strawman: estimate each
  missing attribute's CPD separately with Algorithm 2 and take the product,
  "relying on independence assumptions that are not warranted".
* :func:`random_guess_top1` — the random-guessing top-1 floor quoted in the
  Fig. 10 discussion (e.g. "3% for random guessing").
"""

from __future__ import annotations

from itertools import product

import numpy as np

from ..core.inference import VoterChoice, VotingScheme, infer_single_codes
from ..core.mrsl import MRSLModel
from ..probdb.distribution import Distribution
from ..relational.tuples import RelTuple

__all__ = ["independent_product", "random_guess_top1"]


def independent_product(
    model: MRSLModel,
    t: RelTuple,
    v_choice: VoterChoice | str = VoterChoice.BEST,
    v_scheme: VotingScheme | str = VotingScheme.AVERAGED,
) -> Distribution:
    """Joint estimate as the product of per-attribute CPDs.

    Each missing attribute is inferred with only the *observed* attributes as
    evidence (the other missing attributes stay unknown), and the joint is
    the outer product — i.e. missing attributes are assumed conditionally
    independent.  Outcomes are value tuples in missing-position order,
    matching :func:`~repro.bench.metrics.true_joint_posterior`.
    """
    missing = t.missing_positions
    if not missing:
        raise ValueError("tuple has no missing attributes")
    schema = t.schema
    marginals = [
        infer_single_codes(t, model[pos], v_choice, v_scheme) for pos in missing
    ]
    domains = [schema[pos].domain for pos in missing]
    outcomes = []
    probs = []
    for combo in product(*(range(len(d)) for d in domains)):
        outcomes.append(tuple(d[c] for d, c in zip(domains, combo)))
        p = 1.0
        for m, c in zip(marginals, combo):
            p *= float(m[c])
        probs.append(p)
    return Distribution(outcomes, np.asarray(probs))


def random_guess_top1(t: RelTuple) -> float:
    """Probability of guessing the most likely completion uniformly."""
    missing = t.missing_positions
    space = 1
    for pos in missing:
        space *= t.schema[pos].cardinality
    return 1.0 / space
