"""ASCII line charts for benchmark figures.

The paper's figures are line charts; the bench harness renders each series
as a terminal-friendly scatter/line plot appended to the result tables, so
a quick-scale run produces figure-shaped artifacts without matplotlib.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["ascii_chart"]


def ascii_chart(
    series: dict[str, Sequence[tuple[float, float]]],
    width: int = 60,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render named (x, y) series on one shared-axis ASCII canvas.

    Each series gets a marker character (``*``, ``o``, ``+``, ``x``, ...);
    the legend maps markers back to names.  Points are plotted at their
    nearest cell; later series overwrite earlier ones on collisions.
    """
    if not series:
        raise ValueError("need at least one series")
    if width < 10 or height < 4:
        raise ValueError("canvas too small")
    points = [p for pts in series.values() for p in pts]
    if not points:
        raise ValueError("series contain no points")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#@%&"
    legend = []
    for marker, (name, pts) in zip(markers, series.items()):
        legend.append(f"{marker} = {name}")
        for x, y in pts:
            col = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = [f"{y_label} (top={y_hi:g}, bottom={y_lo:g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:g} .. {x_hi:g}")
    lines.append(" " + "   ".join(legend))
    return "\n".join(lines)
