"""An ERACER-style comparator: naive-Bayes local models + relaxation.

Related work (Section VII) singles out ERACER [23] — statistical inference
and cleaning built on relational dependency networks with locally-learned
CPDs — and says "a thorough comparison with their method is in our immediate
plans".  The original system is closed-source and relational; we implement
the closest single-relation equivalent that exercises the same ideas:

* a **naive-Bayes local model** per attribute: ``P(a | rest) ∝ P(a) x
  prod_o P(o | a)`` with Laplace-smoothed tables learned from the complete
  data (a classic dependency-network local learner, different from MRSL's
  rule ensembles);
* **iterative relaxation** for multiple missing values: each missing
  attribute keeps a soft belief; beliefs are updated in rounds using the
  other attributes' current expected evidence (mean-field style), until the
  beliefs stop moving;
* the joint estimate is the product of the converged marginals — ERACER,
  like most cleaning systems, predicts per-cell marginals.

This gives the benchmark suite a genuinely different method to compare
accuracy against (see ``benchmarks/test_comparison_eracer.py``).
"""

from __future__ import annotations

from itertools import product
from typing import Hashable

import numpy as np

from ..probdb.distribution import Distribution
from ..relational.relation import Relation
from ..relational.tuples import RelTuple

__all__ = ["NaiveBayesImputer"]


class NaiveBayesImputer:
    """Per-attribute naive-Bayes CPDs with mean-field multi-value inference."""

    def __init__(self, laplace: float = 1.0, max_rounds: int = 50, tol: float = 1e-6):
        if laplace <= 0:
            raise ValueError("laplace must be positive")
        self.laplace = laplace
        self.max_rounds = max_rounds
        self.tol = tol
        self._priors: list[np.ndarray] | None = None
        #: cond[a][o] is a (card_a, card_o) table P(o | a), for o != a
        self._cond: list[dict[int, np.ndarray]] | None = None
        self.schema = None

    # -- learning -----------------------------------------------------------------

    def fit(self, relation: Relation) -> "NaiveBayesImputer":
        """Estimate priors and pairwise conditionals from the complete part."""
        complete = relation.complete_part()
        codes = complete.codes
        schema = relation.schema
        k = len(schema)
        cards = schema.cardinalities
        priors = []
        cond: list[dict[int, np.ndarray]] = [dict() for _ in range(k)]
        for a in range(k):
            counts = np.bincount(codes[:, a], minlength=cards[a]).astype(float)
            counts += self.laplace
            priors.append(counts / counts.sum())
        for a in range(k):
            for o in range(k):
                if o == a:
                    continue
                table = np.full((cards[a], cards[o]), self.laplace)
                np.add.at(table, (codes[:, a], codes[:, o]), 1.0)
                table /= table.sum(axis=1, keepdims=True)
                cond[a][o] = table
        self._priors = priors
        self._cond = cond
        self.schema = schema
        return self

    def _require_fit(self) -> None:
        if self._priors is None:
            raise RuntimeError("call fit() before predicting")

    # -- single-attribute prediction -------------------------------------------------

    def _posterior_given_soft(
        self,
        attr: int,
        hard: dict[int, int],
        soft: dict[int, np.ndarray],
    ) -> np.ndarray:
        """``P(attr | evidence)`` with hard codes and soft beliefs as evidence.

        Mean-field update: soft evidence contributes the expectation of
        ``log P(o | attr)`` under the current belief for ``o``.
        """
        assert self._priors is not None and self._cond is not None
        log_post = np.log(self._priors[attr])
        for o, code in hard.items():
            log_post += np.log(self._cond[attr][o][:, code])
        for o, belief in soft.items():
            log_post += belief @ np.log(self._cond[attr][o]).T
        log_post -= log_post.max()
        post = np.exp(log_post)
        return post / post.sum()

    def predict_marginals(self, t: RelTuple) -> dict[str, Distribution]:
        """Converged per-attribute marginals for every missing value of ``t``."""
        self._require_fit()
        schema = t.schema
        missing = list(t.missing_positions)
        if not missing:
            raise ValueError("tuple has no missing attributes")
        hard = {
            int(pos): int(t.codes[pos]) for pos in t.complete_positions
        }
        cards = schema.cardinalities
        beliefs = {a: np.full(cards[a], 1.0 / cards[a]) for a in missing}
        for _ in range(self.max_rounds):
            delta = 0.0
            for a in missing:
                others_soft = {o: b for o, b in beliefs.items() if o != a}
                updated = self._posterior_given_soft(a, hard, others_soft)
                delta = max(delta, float(np.abs(updated - beliefs[a]).max()))
                beliefs[a] = updated
            if delta < self.tol:
                break
        return {
            schema[a].name: Distribution(schema[a].domain, beliefs[a])
            for a in missing
        }

    def predict_joint(self, t: RelTuple) -> Distribution:
        """Joint prediction as the product of converged marginals.

        Outcomes are value tuples in missing-position order, matching
        :func:`repro.bench.metrics.true_joint_posterior`.
        """
        marginals = self.predict_marginals(t)
        schema = t.schema
        missing = list(t.missing_positions)
        domains = [schema[a].domain for a in missing]
        names = [schema[a].name for a in missing]
        outcomes: list[Hashable] = []
        probs = []
        for combo in product(*domains):
            outcomes.append(tuple(combo))
            p = 1.0
            for name, value in zip(names, combo):
                p *= marginals[name][value]
            probs.append(p)
        return Distribution(outcomes, np.asarray(probs))

    def impute(self, t: RelTuple) -> RelTuple:
        """Fill every missing value with its most probable prediction."""
        marginals = self.predict_marginals(t)
        assignment = {name: dist.top1() for name, dist in marginals.items()}
        return t.complete_with(assignment)
