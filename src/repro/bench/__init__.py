"""Experimental framework: Section VI's pipeline, metrics and baselines."""

from .baselines import independent_product, random_guess_top1
from .charts import ascii_chart
from .eracer import NaiveBayesImputer
from .framework import (
    ALL_VOTING_METHODS,
    ExperimentConfig,
    LearningRun,
    MultiAttributeRun,
    SingleAttributeRun,
    run_learning_experiment,
    run_multi_attribute_experiment,
    run_single_attribute_experiment,
)
from .masking import (
    mask_relation,
    mask_relation_mar,
    mask_relation_mnar,
    mask_tuple,
)
from .sweeps import Sweep, SweepResult
from .metrics import (
    AccuracyScore,
    aggregate,
    score_prediction,
    true_joint_posterior,
    true_single_posterior,
)
from .reporting import format_series, format_table, print_table

__all__ = [
    "ExperimentConfig",
    "ALL_VOTING_METHODS",
    "LearningRun",
    "SingleAttributeRun",
    "MultiAttributeRun",
    "run_learning_experiment",
    "run_single_attribute_experiment",
    "run_multi_attribute_experiment",
    "mask_tuple",
    "mask_relation",
    "mask_relation_mar",
    "mask_relation_mnar",
    "AccuracyScore",
    "score_prediction",
    "aggregate",
    "true_single_posterior",
    "true_joint_posterior",
    "independent_product",
    "random_guess_top1",
    "NaiveBayesImputer",
    "format_table",
    "print_table",
    "format_series",
    "ascii_chart",
    "Sweep",
    "SweepResult",
]
