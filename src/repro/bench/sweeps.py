"""Parameter sweeps with persisted results.

The paper's evaluation is a grid of (network x training size x support x
method) runs; this module provides the generic machinery the benchmark
harness and downstream experimenters share: declare a grid, run a function
at every point, and persist all outcomes as JSON for later tabulation.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from itertools import product
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, Sequence

__all__ = ["SweepResult", "Sweep"]


@dataclass
class SweepResult:
    """One grid point's outcome: parameters, value, wall-clock seconds."""

    params: dict[str, Any]
    value: Any
    elapsed_sec: float

    def to_jsonable(self) -> dict[str, Any]:
        return {
            "params": self.params,
            "value": self.value,
            "elapsed_sec": self.elapsed_sec,
        }


@dataclass
class Sweep:
    """A named cartesian parameter grid.

    Example::

        sweep = Sweep("fig4b", grid={
            "support": [0.001, 0.01, 0.1],
            "network": ["BN8", "BN9"],
        })
        results = sweep.run(lambda support, network: measure(...))
        sweep.save(results, "results/fig4b.json")
    """

    name: str
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)

    def points(self) -> Iterator[dict[str, Any]]:
        """Every parameter combination, in deterministic grid order."""
        if not self.grid:
            yield {}
            return
        keys = list(self.grid)
        for combo in product(*(self.grid[k] for k in keys)):
            yield dict(zip(keys, combo))

    def __len__(self) -> int:
        n = 1
        for values in self.grid.values():
            n *= len(values)
        return n

    def run(
        self,
        fn: Callable[..., Any],
        on_point: Callable[[dict[str, Any], Any], None] | None = None,
    ) -> list[SweepResult]:
        """Call ``fn(**params)`` at every grid point.

        ``on_point`` is an optional progress callback receiving the params
        and the returned value (e.g. for live logging).
        """
        results = []
        for params in self.points():
            start = time.perf_counter()
            value = fn(**params)
            elapsed = time.perf_counter() - start
            results.append(SweepResult(dict(params), value, elapsed))
            if on_point is not None:
                on_point(params, value)
        return results

    def save(self, results: Sequence[SweepResult], path: str | Path) -> None:
        """Persist results (values must be JSON-serializable)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "sweep": self.name,
            "grid": {k: list(v) for k, v in self.grid.items()},
            "results": [r.to_jsonable() for r in results],
        }
        path.write_text(json.dumps(doc, indent=2))

    @staticmethod
    def load(path: str | Path) -> tuple["Sweep", list[SweepResult]]:
        """Load a sweep and its results from :meth:`save` output."""
        doc = json.loads(Path(path).read_text())
        sweep = Sweep(doc["sweep"], grid=doc["grid"])
        results = [
            SweepResult(r["params"], r["value"], r["elapsed_sec"])
            for r in doc["results"]
        ]
        return sweep, results

    @staticmethod
    def tabulate(
        results: Sequence[SweepResult],
        x: str,
        value_key: Callable[[Any], Any] = lambda v: v,
    ) -> list[tuple[Any, Any]]:
        """Extract an ``(x, value)`` series from the results."""
        return [
            (r.params[x], value_key(r.value)) for r in results
        ]
