"""Accuracy metrics of Section VI-A: KL divergence and top-1 agreement.

Predictions are scored against the *true* distributions of the generating
Bayesian network.  KL divergence is directed ``KL(true || predicted)`` — how
badly the prediction explains the truth; it is finite whenever the
prediction is strictly positive, which MRSL CPDs guarantee by smoothing.
Top-1 accuracy is the fraction of tuples where the predicted mode equals the
true mode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..bayesnet.elimination import joint_posterior, posterior
from ..bayesnet.network import BayesianNetwork
from ..probdb.distribution import Distribution
from ..relational.tuples import RelTuple

__all__ = [
    "AccuracyScore",
    "score_prediction",
    "aggregate",
    "true_single_posterior",
    "true_joint_posterior",
]


@dataclass
class AccuracyScore:
    """Mean KL divergence and top-1 accuracy over a batch of predictions."""

    mean_kl: float
    top1_accuracy: float
    count: int

    def __str__(self) -> str:
        return (
            f"KL={self.mean_kl:.4f}  top-1={self.top1_accuracy:.2%}  "
            f"(n={self.count})"
        )


def score_prediction(true: Distribution, predicted: Distribution) -> tuple[float, bool]:
    """``(KL(true || predicted), top-1 match)`` for one tuple."""
    return true.kl_divergence(predicted), true.same_top1(predicted)


def aggregate(scores: Sequence[tuple[float, bool]]) -> AccuracyScore:
    """Average per-tuple scores into an :class:`AccuracyScore`."""
    if not scores:
        raise ValueError("cannot aggregate zero scores")
    kls = [kl for kl, _ in scores]
    hits = [hit for _, hit in scores]
    return AccuracyScore(
        mean_kl=sum(kls) / len(kls),
        top1_accuracy=sum(hits) / len(hits),
        count=len(scores),
    )


def _evidence_of(t: RelTuple) -> dict[str, int]:
    """Observed attribute codes of ``t`` as an evidence mapping."""
    schema = t.schema
    return {
        schema[pos].name: int(t.codes[pos]) for pos in t.complete_positions
    }


def true_single_posterior(
    network: BayesianNetwork, t: RelTuple
) -> Distribution:
    """Exact ``P(missing attr | observed attrs)`` over domain *values*.

    ``t`` must miss exactly one attribute; the network's variables must
    coincide with the tuple's schema attributes (as produced by
    ``BayesianNetwork.to_schema``).
    """
    missing = t.missing_positions
    if len(missing) != 1:
        raise ValueError("tuple must have exactly one missing attribute")
    pos = missing[0]
    schema = t.schema
    dist = posterior(network, schema[pos].name, _evidence_of(t))
    values = [schema[pos].value(int(code)) for code in dist.outcomes]
    return Distribution(values, dist.probs)


def true_joint_posterior(
    network: BayesianNetwork, t: RelTuple
) -> Distribution:
    """Exact joint posterior over the missing attributes, as value tuples.

    Outcome format matches :class:`~repro.probdb.blocks.TupleBlock`: tuples
    of domain values ordered by the tuple's missing positions.
    """
    missing = t.missing_positions
    if not missing:
        raise ValueError("tuple has no missing attributes")
    schema = t.schema
    names = [schema[pos].name for pos in missing]
    dist = joint_posterior(network, names, _evidence_of(t))
    value_outcomes = [
        tuple(schema[pos].value(int(code)) for pos, code in zip(missing, combo))
        for combo in dist.outcomes
    ]
    return Distribution(value_outcomes, dist.probs)
