"""repro: a reproduction of "Deriving Probabilistic Databases with Inference
Ensembles" (Stoyanovich, Davidson, Milo, Tannen — ICDE 2011).

The library learns Meta-Rule Semi-Lattices (MRSL) from the complete portion
of an incomplete relation and uses them — via ensemble voting and ordered
Gibbs sampling — to derive a disjoint-independent probabilistic database
over the missing values.

Quickstart::

    from repro import Schema, Relation, derive_probabilistic_database

    schema = Schema.from_domains({
        "age": ["20", "30", "40"],
        "edu": ["HS", "BS", "MS"],
        "inc": ["50K", "100K"],
        "nw": ["100K", "500K"],
    })
    rel = Relation.from_rows(schema, rows)   # rows may contain "?"
    result = derive_probabilistic_database(rel, support_threshold=0.05)
    for block in result.database.blocks:
        print(block.base, block.distribution)
"""

from .bayesnet import (
    BayesianNetwork,
    forward_sample_relation,
    joint_posterior,
    make_network,
    posterior,
)
from .core import (
    DeriveResult,
    GibbsEnsemble,
    GibbsSampler,
    LazyDeriver,
    LearnResult,
    MRSL,
    MRSLModel,
    MetaRule,
    VoterChoice,
    VotingScheme,
    derive_probabilistic_database,
    ensemble_sampling,
    estimate_joint,
    infer_single,
    learn_mrsl,
    load_model,
    mine_frequent_itemsets,
    save_model,
    workload_sampling,
)

# Imported after .core: repro.api reads its defaults from the core modules.
from .api import (
    DeriveConfig,
    InferenceService,
    Q,
    SelectionQuery,
    SelfJoinQuery,
    Session,
)
from .exec import (
    DerivationCancelled,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    execute_derivation,
    plan_shards,
    stream_derivation,
)
from .jobs import (
    Job,
    JobManager,
    ProgressSnapshot,
    ProgressTracker,
)
from .probdb import (
    Distribution,
    PossibleWorld,
    ProbabilisticDatabase,
    QueryEngine,
    TupleBlock,
    expected_count,
)
from .relational import (
    MISSING,
    Attribute,
    Relation,
    RelTuple,
    Schema,
    make_tuple,
    read_csv,
    write_csv,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # relational
    "Attribute",
    "Schema",
    "Relation",
    "RelTuple",
    "MISSING",
    "make_tuple",
    "read_csv",
    "write_csv",
    # probdb
    "Distribution",
    "TupleBlock",
    "ProbabilisticDatabase",
    "PossibleWorld",
    "expected_count",
    # core
    "mine_frequent_itemsets",
    "learn_mrsl",
    "LearnResult",
    "MRSL",
    "MRSLModel",
    "MetaRule",
    "VoterChoice",
    "VotingScheme",
    "infer_single",
    "GibbsSampler",
    "GibbsEnsemble",
    "estimate_joint",
    "workload_sampling",
    "ensemble_sampling",
    "derive_probabilistic_database",
    "DeriveResult",
    "LazyDeriver",
    "save_model",
    "load_model",
    "QueryEngine",
    # bayesnet
    "BayesianNetwork",
    "make_network",
    "forward_sample_relation",
    "posterior",
    "joint_posterior",
    # api
    "DeriveConfig",
    "Session",
    "Q",
    "SelectionQuery",
    "SelfJoinQuery",
    "InferenceService",
    # exec
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "plan_shards",
    "stream_derivation",
    "execute_derivation",
    "DerivationCancelled",
    # jobs
    "Job",
    "JobManager",
    "ProgressTracker",
    "ProgressSnapshot",
]
