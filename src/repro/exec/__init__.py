"""Sharded parallel derivation: planner, pluggable executors, collector.

The derivation step (Algorithm 2 over single-missing blocks, Algorithm 3
over multi-missing components) is embarrassingly parallel given the learned
MRSL.  This package turns it into a plan/execute/collect pipeline:

* :mod:`.plan`      — partition a workload into shards keyed by evidence
  signature (single-missing) and subsumption component (multi-missing);
* :mod:`.executors` — run shards serially, on threads, or on worker
  processes rebuilt from the persisted model JSON;
* :mod:`.runtime`   — stream completed blocks back as shards finish, with
  per-shard timing diagnostics.

Determinism guarantee: single shards are RNG-free and multi shards carry
seeds derived from the config seed plus a stable shard key, so every
executor produces bit-identical results for any worker count.

Only :mod:`.base` is imported by :mod:`repro.api.config` (for the
``executor``/``workers`` knobs); everything here is safe to import without
touching the api layer.
"""

from .base import (
    DEFAULT_EXECUTOR,
    DEFAULT_FAILURE_POLICY,
    DEFAULT_WORKERS,
    EXECUTORS,
    FAILURE_POLICIES,
    DerivationCancelled,
    ExecReport,
    RetryPolicy,
    Shard,
    ShardExecutionError,
    ShardFailure,
    ShardPlan,
    ShardResult,
    ShardTiming,
    WorkerPoolError,
    validate_executor,
    validate_failure_policy,
    validate_workers,
)
from .executors import (
    ExecContext,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    get_executor,
)
from .faults import (
    FAULT_KINDS,
    FAULT_PLAN_ENV,
    FaultInjected,
    FaultPlan,
    ShardFault,
    apply_fault,
    bind_faults,
    resolve_fault_plan,
)
from .plan import multi_shard_layout, plan_shards, resolve_base_seed, shard_seed
from .runtime import (
    ExecOutcome,
    execute_delta,
    execute_derivation,
    multi_batch_for,
    stream_derivation,
)
from .work import ShardKnobs, multi_shard_blocks, run_shard, single_shard_blocks

__all__ = [
    "EXECUTORS",
    "DEFAULT_EXECUTOR",
    "DEFAULT_WORKERS",
    "FAILURE_POLICIES",
    "DEFAULT_FAILURE_POLICY",
    "validate_executor",
    "validate_failure_policy",
    "validate_workers",
    "DerivationCancelled",
    "RetryPolicy",
    "ShardFailure",
    "ShardExecutionError",
    "WorkerPoolError",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultInjected",
    "FaultPlan",
    "ShardFault",
    "apply_fault",
    "bind_faults",
    "resolve_fault_plan",
    "Shard",
    "ShardPlan",
    "ShardResult",
    "ShardTiming",
    "ExecReport",
    "ExecContext",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "plan_shards",
    "multi_shard_layout",
    "resolve_base_seed",
    "shard_seed",
    "ShardKnobs",
    "single_shard_blocks",
    "multi_shard_blocks",
    "run_shard",
    "ExecOutcome",
    "stream_derivation",
    "execute_derivation",
    "execute_delta",
    "multi_batch_for",
]
