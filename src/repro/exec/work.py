"""Shard kernels: the per-shard computation, runnable in any process.

Two kernels, one per shard kind:

* :func:`single_shard_blocks` — Algorithm 2 over a batch of single-missing
  tuples.  This is the computation that used to live inline in
  :func:`repro.core.derive.single_missing_blocks`; it is hoisted here so
  the serial path, thread workers, and process workers all run the exact
  same code (and therefore produce bit-identical distributions).

* :func:`multi_shard_blocks` — Algorithm 3 Gibbs over one multi shard,
  seeded with the shard's deterministic seed.  Under the default knobs
  (compiled engine, ``tuple_dag`` strategy, ``gibbs_vectorized`` on) the
  shard's tuples run as one vectorized
  :func:`~repro.core.tuple_dag.ensemble_sampling` batch — all chains of
  all tuples in lock step; otherwise the scalar
  :func:`~repro.core.tuple_dag.workload_sampling` oracle serves the shard
  exactly as before.

The ``_process_*`` functions are the :class:`ProcessExecutor` worker
protocol: the initializer receives the persisted model JSON (never a
pickled live engine), rebuilds the model, validates it against the parent's
compiled-engine metadata, and keeps one warm
:class:`~repro.core.engine.BatchInferenceEngine` per worker process for the
life of the pool.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.engine import BatchInferenceEngine
from ..core.inference import VoterChoice, VotingScheme, infer_single
from ..core.mrsl import MRSLModel
from ..core.tuple_dag import ensemble_sampling, workload_sampling
from ..probdb.blocks import TupleBlock
from ..probdb.distribution import Distribution
from ..relational.tuples import RelTuple
from .base import Shard, ShardResult
from .faults import ShardFault, apply_fault

__all__ = [
    "ShardKnobs",
    "single_shard_blocks",
    "multi_shard_blocks",
    "run_shard",
]


@dataclass(frozen=True)
class ShardKnobs:
    """The pipeline knobs a shard kernel needs, as picklable primitives."""

    v_choice: str
    v_scheme: str
    engine: str
    num_samples: int
    burn_in: int
    strategy: str
    gibbs_chains: int = 1
    gibbs_vectorized: bool = True

    @classmethod
    def from_config(cls, cfg: Any) -> "ShardKnobs":
        """Extract the kernel knobs from any DeriveConfig-shaped object."""
        return cls(
            v_choice=cfg.v_choice,
            v_scheme=cfg.v_scheme,
            engine=cfg.engine,
            num_samples=cfg.num_samples,
            burn_in=cfg.burn_in,
            strategy=cfg.strategy,
            gibbs_chains=getattr(cfg, "gibbs_chains", 1),
            gibbs_vectorized=getattr(cfg, "gibbs_vectorized", True),
        )

    @property
    def vectorized_gibbs(self) -> bool:
        """Whether multi shards run the vectorized ensemble kernel.

        Requires the compiled engine (the naive engine is the scalar
        oracle) and the default ``tuple_dag`` strategy — the explicit
        ablation strategies (``tuple_at_a_time``, ``all_at_a_time``) keep
        their faithful scalar implementations.
        """
        return (
            self.gibbs_vectorized
            and self.engine == "compiled"
            and self.strategy == "tuple_dag"
        )


def single_shard_blocks(
    tuples: Sequence[RelTuple],
    model: MRSLModel,
    knobs: ShardKnobs,
    batch_engine: BatchInferenceEngine | None = None,
) -> list[TupleBlock]:
    """Blocks for a batch of single-missing tuples under the chosen engine.

    The compiled path groups the batch by evidence signature and serves
    each group with one matrix combine; the naive path loops tuple-at-a-time
    and is kept as the correctness oracle.
    """
    v_choice = VoterChoice(knobs.v_choice)
    v_scheme = VotingScheme(knobs.v_scheme)
    if knobs.engine == "naive":
        blocks = []
        for t in tuples:
            attr = t.missing_positions[0]
            cpd = infer_single(t, model[attr], v_choice, v_scheme)
            # Block outcomes are 1-tuples of values, per TupleBlock's
            # convention.
            outcomes = [(value,) for value in cpd.outcomes]
            blocks.append(TupleBlock(t, Distribution(outcomes, cpd.probs)))
        return blocks
    if batch_engine is None:
        batch_engine = BatchInferenceEngine(model, v_choice, v_scheme)
    cpds = batch_engine.infer_batch(tuples, v_choice, v_scheme)
    # Tuples sharing a CPD (same evidence signature) share one immutable
    # block distribution; only the per-tuple base differs.  Wrapping the
    # value-level Distribution (rather than the raw CPD vector) matters for
    # the oracle guarantee: the naive path normalizes twice — once inside
    # infer_single, once here — and bit-for-bit parity requires the same.
    shared: dict[int, Distribution] = {}
    blocks = []
    for t, cpd in zip(tuples, cpds):
        dist = shared.get(id(cpd))
        if dist is None:
            outcomes = [(value,) for value in cpd.outcomes]
            dist = Distribution(outcomes, cpd.probs)
            shared[id(cpd)] = dist
        blocks.append(TupleBlock(t, dist))
    return blocks


def multi_shard_blocks(
    tuples: Sequence[RelTuple],
    model: MRSLModel,
    knobs: ShardKnobs,
    seed: int,
    batch_engine: BatchInferenceEngine | None = None,
):
    """Algorithm 3 over one multi shard with its own seeded RNG.

    Returns ``(blocks, stats)`` exactly as
    :func:`~repro.core.tuple_dag.workload_sampling` does.  The per-shard
    generator is what makes the result independent of which worker (or how
    many workers) ran the shard.  Under the vectorized knobs the shard's
    tuple batch runs as one lock-step
    :func:`~repro.core.tuple_dag.ensemble_sampling` ensemble, reusing the
    worker's warm ``batch_engine``; otherwise the scalar oracle runs (and
    builds its own engine, exactly as before the vectorized kernel).
    """
    if knobs.vectorized_gibbs:
        return ensemble_sampling(
            model,
            list(tuples),
            num_samples=knobs.num_samples,
            burn_in=knobs.burn_in,
            chains=knobs.gibbs_chains,
            v_choice=knobs.v_choice,
            v_scheme=knobs.v_scheme,
            rng=np.random.default_rng(seed),
            batch_engine=batch_engine,
        )
    return workload_sampling(
        model,
        list(tuples),
        num_samples=knobs.num_samples,
        burn_in=knobs.burn_in,
        strategy=knobs.strategy,
        v_choice=knobs.v_choice,
        v_scheme=knobs.v_scheme,
        rng=np.random.default_rng(seed),
        engine=knobs.engine,
    )


def run_shard(
    shard: Shard,
    model: MRSLModel,
    knobs: ShardKnobs,
    batch_engine: BatchInferenceEngine | None = None,
    worker: str = "main",
    fault: ShardFault | None = None,
    deadline: float | None = None,
    allow_crash: bool = False,
) -> ShardResult:
    """Run one shard through the matching kernel, timing it.

    ``fault`` is this attempt's injected fault (test/chaos harness only);
    it fires before the kernel so a faulted attempt never produces blocks.
    """
    start = time.perf_counter()
    apply_fault(fault, deadline=deadline, allow_crash=allow_crash)
    if shard.kind == "single":
        blocks = single_shard_blocks(
            shard.tuples, model, knobs, batch_engine=batch_engine
        )
        stats = None
    elif shard.kind == "multi":
        assert shard.seed is not None, "multi shards carry a seed"
        blocks, stats = multi_shard_blocks(
            shard.tuples, model, knobs, shard.seed, batch_engine=batch_engine
        )
    else:
        raise ValueError(f"unknown shard kind {shard.kind!r}")
    return ShardResult(
        key=shard.key,
        kind=shard.kind,
        indices=shard.indices,
        blocks=tuple(blocks),
        stats=stats,
        elapsed=time.perf_counter() - start,
        worker=worker,
    )


# -- ProcessExecutor worker protocol ----------------------------------------

#: Per-worker-process state: built once by the pool initializer, reused by
#: every shard the worker runs (the "one warm engine per worker" invariant).
_WORKER_STATE: dict[str, Any] | None = None


def _process_worker_init(
    model_doc: Mapping[str, Any],
    knobs: ShardKnobs,
    expected_metadata: Mapping[str, Any] | None,
) -> None:
    """Rebuild the model from its persisted JSON form inside the worker.

    The parent ships :func:`~repro.core.persistence.model_to_dict` output
    plus its compiled-engine metadata; the worker rebuilds and *validates*
    that its compiled structures match the parent's before serving shards.
    """
    global _WORKER_STATE
    from ..core.persistence import model_from_dict, verify_compiled_metadata

    model = model_from_dict(dict(model_doc))
    engine = (
        BatchInferenceEngine(model, knobs.v_choice, knobs.v_scheme)
        if knobs.engine == "compiled"
        else None
    )
    if expected_metadata is not None:
        # Validate (and warm) the engine's own compiled structures rather
        # than compiling a throwaway second copy.
        verify_compiled_metadata(
            model,
            expected_metadata,
            compiled=None if engine is None else engine.compiled,
        )
    _WORKER_STATE = {"model": model, "engine": engine, "knobs": knobs}


def _process_run_shard(
    shard: Shard,
    fault: ShardFault | None = None,
    deadline: float | None = None,
) -> ShardResult:
    """Run one shard against the worker's warm state.

    ``fault`` is decided per attempt by the parent's retry loop and shipped
    with the task; a ``"crash"`` fault hard-exits this worker, breaking the
    pool — exactly the failure mode the parent's recovery path handles.
    """
    state = _WORKER_STATE
    if state is None:  # pragma: no cover - initializer always runs first
        raise RuntimeError("worker process was not initialized")
    return run_shard(
        shard,
        state["model"],
        state["knobs"],
        batch_engine=state["engine"],
        worker=f"pid-{os.getpid()}",
        fault=fault,
        deadline=deadline,
        allow_crash=True,
    )
