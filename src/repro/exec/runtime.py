"""The derivation runtime: plan, execute, and collect in one call.

:func:`stream_derivation` is the streaming face — it plans the workload and
yields :class:`~repro.exec.base.ShardResult` objects as shards finish, so a
caller (the lazy deriver, a progress bar, a service handler) can consume
completed blocks without waiting for the whole workload.
:func:`execute_derivation` is the collecting face — it drains the stream
into blocks in workload order, merges the Gibbs cost counters, and returns
per-shard timing diagnostics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

import numpy as np

from ..core.compiled import CompiledModel
from ..core.tuple_dag import SamplingStats
from .base import (
    DEFAULT_FAILURE_POLICY,
    DerivationCancelled,
    ExecReport,
    RetryPolicy,
    Shard,
    ShardExecutionError,
    ShardPlan,
    ShardResult,
    WorkerPoolError,
)
from .executors import ExecContext, Executor, get_executor
from .faults import FaultPlan, resolve_fault_plan
from .plan import (
    MULTI_TUPLES_PER_SHARD,
    _pack_single_shards,
    _single_groups,
    plan_shards,
    resolve_base_seed,
    shard_seed,
)
from .work import ShardKnobs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.engine import BatchInferenceEngine
    from ..core.mrsl import MRSLModel
    from ..probdb.blocks import TupleBlock
    from ..probdb.invalidate import CarryStore
    from ..relational.tuples import RelTuple

__all__ = [
    "ExecOutcome",
    "stream_derivation",
    "execute_derivation",
    "execute_delta",
    "multi_batch_for",
]


def _context(
    model: "MRSLModel",
    config: Any,
    batch_engine: "BatchInferenceEngine | None",
    faults: "FaultPlan | Any" = None,
) -> ExecContext:
    """Build the executor context for ``config``, failure knobs included."""
    return ExecContext(
        model=model,
        knobs=ShardKnobs.from_config(config),
        batch_engine=batch_engine,
        retry=RetryPolicy.from_config(config),
        failure_policy=getattr(
            config, "failure_policy", DEFAULT_FAILURE_POLICY
        ),
        faults=resolve_fault_plan(faults, config),
    )


def multi_batch_for(config: Any) -> int | None:
    """The ``multi_batch`` the runtime would pass the planner for ``config``.

    Delta derivation must replay the previous run's layout with the same
    batching to recover its shard keys, so this mapping is public.
    """
    knobs = ShardKnobs.from_config(config)
    return MULTI_TUPLES_PER_SHARD if knobs.vectorized_gibbs else None


@dataclass
class ExecOutcome:
    """Everything one executed derivation workload produced."""

    #: one block per workload tuple, in workload order
    blocks: "list[TupleBlock]"
    #: merged Gibbs cost counters across all multi shards
    stats: SamplingStats
    #: per-shard timing / placement diagnostics
    report: ExecReport
    plan: ShardPlan


def _merge_stats(into: SamplingStats, stats: SamplingStats) -> None:
    into.total_draws += stats.total_draws
    into.burn_in_draws += stats.burn_in_draws
    into.shared_tuples += stats.shared_tuples
    into.promoted_tuples += stats.promoted_tuples


def stream_derivation(
    tuples: "Sequence[RelTuple]",
    model: "MRSLModel",
    config: Any,
    rng: np.random.Generator | int | None = None,
    batch_engine: "BatchInferenceEngine | None" = None,
    executor: "Executor | str | None" = None,
    plan: ShardPlan | None = None,
    faults: "FaultPlan | Any" = None,
) -> Iterator[ShardResult]:
    """Plan ``tuples`` and yield shard results as they complete.

    ``config`` is any :class:`~repro.api.config.DeriveConfig`-shaped object
    (the knobs are read as attributes, so this module never imports the api
    layer).  ``executor`` overrides ``config.executor``/``config.workers``
    when given; ``plan`` skips planning when the caller already has one.
    ``faults`` injects a :class:`~repro.exec.faults.FaultPlan` (tests and
    chaos runs only).
    """
    chosen = get_executor(
        config.executor if executor is None else executor, config.workers
    )
    context = _context(model, config, batch_engine, faults)
    if plan is None:
        plan = _plan(tuples, model, config, rng, chosen, context)
    yield from chosen.run(plan, context)


def _plan(
    tuples, model, config, rng, chosen: Executor, context: ExecContext
) -> ShardPlan:
    """Plan the workload, reusing compiled structures where possible.

    Serial execution warms the context's engine up front so the planner's
    signature computation and the kernels share one compiled model instead
    of compiling twice.  When the vectorized Gibbs kernel will serve the
    multi shards, subsumption components are packed into ensemble-sized
    batches (:data:`~repro.exec.plan.MULTI_TUPLES_PER_SHARD`); the batch
    target never depends on the worker count, so per-shard seeds — and
    results — stay identical across executors and pool sizes.
    """
    compiled = None
    if context.batch_engine is None and chosen.name == "serial":
        context.warm_engine()
    if context.batch_engine is not None:
        compiled = context.batch_engine.compiled
    return plan_shards(
        tuples,
        model,
        workers=chosen.workers,
        seed=config.seed,
        rng=rng,
        compiled=compiled,
        multi_batch=(
            MULTI_TUPLES_PER_SHARD
            if context.knobs.vectorized_gibbs
            else None
        ),
    )


def execute_derivation(
    tuples: "Sequence[RelTuple]",
    model: "MRSLModel",
    config: Any,
    rng: np.random.Generator | int | None = None,
    batch_engine: "BatchInferenceEngine | None" = None,
    executor: "Executor | str | None" = None,
    on_shard: Callable[[ShardResult], None] | None = None,
    on_plan: Callable[[ShardPlan], None] | None = None,
    should_stop: Callable[[], bool] | None = None,
    faults: "FaultPlan | Any" = None,
) -> ExecOutcome:
    """Derive blocks for ``tuples``, collecting the stream in input order.

    ``on_plan`` is invoked once with the :class:`ShardPlan` before any shard
    runs, and ``on_shard`` with every :class:`ShardResult` as it lands — the
    progress hooks for long derivations.  ``should_stop`` is polled at shard
    boundaries (before the first shard and after each completed one); when
    it returns true the collector closes the stream — cancelling shards not
    yet started — and raises :class:`~repro.exec.base.DerivationCancelled`
    carrying the partial report.  Shards already running on pool workers
    finish, but their results are discarded; no blocks escape a cancelled
    run.

    Failure semantics ride on the config: each shard gets
    ``config.shard_retries`` retries with deterministic exponential backoff
    and an optional ``config.shard_deadline``; failed attempts, pool
    restarts, and executor downgrades are recorded on the returned
    :class:`~repro.exec.base.ExecReport`.  An exhausted shard or a
    repeatedly dying pool raises :class:`~repro.exec.base.ShardExecutionError`
    / :class:`~repro.exec.base.WorkerPoolError` with the partial report
    attached as ``exc.report`` (``failure_policy="strict"``), or degrades
    process→thread→serial and completes (``"degrade"``).
    """
    chosen = get_executor(
        config.executor if executor is None else executor, config.workers
    )
    context = _context(model, config, batch_engine, faults)
    plan = _plan(tuples, model, config, rng, chosen, context)
    if on_plan is not None:
        on_plan(plan)
    blocks: "list[TupleBlock | None]" = [None] * len(tuples)
    report = ExecReport(
        executor=chosen.name,
        workers=chosen.workers,
        num_shards=len(plan),
        num_tuples=len(tuples),
    )
    return _run_plan(
        chosen, context, plan, blocks, report, on_shard, should_stop
    )


def _run_plan(
    chosen: Executor,
    context: ExecContext,
    plan: ShardPlan,
    blocks: "list[TupleBlock | None]",
    report: ExecReport,
    on_shard: Callable[[ShardResult], None] | None,
    should_stop: Callable[[], bool] | None,
) -> ExecOutcome:
    """Drain a plan's shard stream into ``blocks``, filling ``report``.

    Shared collector of the full and delta paths; ``blocks`` may arrive
    pre-filled at carried positions, only planned shards are awaited.
    """
    groups_by_key = {shard.key: shard.groups for shard in plan.shards}
    stats = SamplingStats()
    start = time.perf_counter()

    def _cancelled_at(done: int) -> DerivationCancelled:
        report.elapsed = time.perf_counter() - start
        return DerivationCancelled(
            f"derivation cancelled after {done} of {len(plan)} shards",
            report=report,
        )

    if should_stop is not None and should_stop():
        raise _cancelled_at(0)
    stream = chosen.run(plan, context)
    executed = 0
    try:
        for result in stream:
            for idx, block in zip(result.indices, result.blocks):
                blocks[idx] = block
            if result.stats is not None:
                _merge_stats(stats, result.stats)
            report.add(result, groups_by_key.get(result.key, 1))
            executed += 1
            if on_shard is not None:
                on_shard(result)
            if should_stop is not None and should_stop():
                raise _cancelled_at(executed)
    except (ShardExecutionError, WorkerPoolError) as exc:
        report.elapsed = time.perf_counter() - start
        if exc.report is None:
            exc.report = report
        raise
    finally:
        # Closing the stream cancels futures the pools have not started.
        close = getattr(stream, "close", None)
        if close is not None:
            close()
        # Failure accounting outlives the stream — copy it even when the
        # run is about to raise, so exc.report carries the full story.
        report.failures = list(context.failures)
        report.degraded = list(context.degradations)
        report.pool_restarts = context.pool_restarts
    report.elapsed = time.perf_counter() - start
    missing = [i for i, b in enumerate(blocks) if b is None]
    if missing:  # pragma: no cover - executors yield every planned shard
        raise RuntimeError(f"shard execution left {len(missing)} tuples unfilled")
    return ExecOutcome(blocks=blocks, stats=stats, report=report, plan=plan)


def execute_delta(
    tuples: "Sequence[RelTuple]",
    model: "MRSLModel",
    config: Any,
    carry: "CarryStore",
    rng: np.random.Generator | int | None = None,
    batch_engine: "BatchInferenceEngine | None" = None,
    executor: "Executor | str | None" = None,
    on_shard: Callable[[ShardResult], None] | None = None,
    on_plan: Callable[[ShardPlan], None] | None = None,
    should_stop: Callable[[], bool] | None = None,
    faults: "FaultPlan | Any" = None,
) -> ExecOutcome:
    """Derive blocks for ``tuples``, reusing a previous run's clean blocks.

    The new workload is laid out exactly as :func:`execute_derivation`
    would plan it; every shard whose content already exists in ``carry``
    is served verbatim (recorded as a carried shard in the report), and
    only dirty shards execute.  Dirty multi shards are seeded with
    ``carry.base_seed`` under the keys a from-scratch plan would assign,
    so the assembled database is bit-identical to a from-scratch derive
    of the updated table with that base seed — for every executor.  When
    the previous run had no multi-missing work, the base seed resolves
    fresh from ``rng``/``config.seed`` as usual.
    """
    chosen = get_executor(
        config.executor if executor is None else executor, config.workers
    )
    context = _context(model, config, batch_engine, faults)
    split = carry.split(tuples, multi_batch_for(config))

    compiled = None
    if split.dirty_single or split.carried_single:
        if context.batch_engine is None and chosen.name == "serial":
            context.warm_engine()
        if context.batch_engine is not None:
            compiled = context.batch_engine.compiled
        else:
            compiled = CompiledModel(model)

    shards: list[Shard] = []
    if split.dirty_single:
        shards.extend(
            _pack_single_shards(
                _single_groups(split.dirty_single, compiled), chosen.workers
            )
        )
    base_seed: int | None = None
    if split.dirty_multi or split.carried_multi:
        base_seed = (
            carry.base_seed
            if carry.base_seed is not None
            else resolve_base_seed(rng, config.seed)
        )
    for key, batch in split.dirty_multi:
        shards.append(
            Shard(
                key=key,
                kind="multi",
                indices=tuple(idx for idx, _ in batch),
                tuples=tuple(t for _, t in batch),
                seed=shard_seed(base_seed, key),
                groups=len({t for _, t in batch}),
            )
        )

    # Account carried work at shard granularity: carried singles are packed
    # exactly like dirty ones (results don't depend on packing), carried
    # multi batches keep their layout keys.
    carried_shards: list[Shard] = []
    if split.carried_single:
        carried_shards.extend(
            _pack_single_shards(
                _single_groups(split.carried_single, compiled), chosen.workers
            )
        )
    for key, batch in split.carried_multi:
        carried_shards.append(
            Shard(
                key=key,
                kind="multi",
                indices=tuple(idx for idx, _ in batch),
                tuples=tuple(t for _, t in batch),
                groups=len({t for _, t in batch}),
            )
        )

    plan = ShardPlan(
        shards=tuple(shards),
        num_tuples=split.num_dirty_tuples,
        base_seed=base_seed,
        carried_over=len(carried_shards),
        carried_tuples=len(split.carried),
    )
    if on_plan is not None:
        on_plan(plan)

    blocks: "list[TupleBlock | None]" = [None] * len(tuples)
    for idx, block in split.carried.items():
        blocks[idx] = block
    report = ExecReport(
        executor=chosen.name,
        workers=chosen.workers,
        num_shards=len(plan),
        num_tuples=len(tuples),
    )
    for shard in carried_shards:
        report.add_carried(shard.key, shard.kind, len(shard), shard.groups)
    return _run_plan(
        chosen, context, plan, blocks, report, on_shard, should_stop
    )
