"""Pluggable shard executors: serial, thread pool, process pool.

All three run the same shard kernels (:mod:`repro.exec.work`) over the same
plan (:mod:`repro.exec.plan`) and stream :class:`~repro.exec.base.ShardResult`
objects as shards finish, so they are interchangeable:

* :class:`SerialExecutor` — in-process, in plan order; the default.  With a
  warm engine passed in (the session path) it is bit-identical to the
  pre-executor code.
* :class:`ThreadExecutor` — a thread pool sharing the in-process model, one
  warm engine per worker thread (the engine's LRU is not thread-safe, and
  per-thread engines also avoid lock contention on the hot path).
* :class:`ProcessExecutor` — a process pool whose initializer receives the
  persisted model JSON and the parent's compiled-engine metadata, rebuilds
  one warm engine per worker, and validates the rebuild.  Live engines are
  never pickled.

Because multi-missing shards carry deterministic per-shard seeds and
single-missing shards are RNG-free, all executors produce bit-identical
results for any worker count.
"""

from __future__ import annotations

import multiprocessing
import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, TYPE_CHECKING

from ..core.engine import BatchInferenceEngine
from .base import (
    DEFAULT_WORKERS,
    ShardPlan,
    ShardResult,
    validate_workers,
)
from .work import (
    ShardKnobs,
    _process_run_shard,
    _process_worker_init,
    run_shard,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.mrsl import MRSLModel

__all__ = [
    "ExecContext",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
]


@dataclass
class ExecContext:
    """Everything an executor needs beyond the plan itself.

    ``batch_engine`` is the caller's warm engine (the session path); serial
    execution reuses it so its CPD cache keeps carrying over.  ``model_doc``
    and ``compiled_metadata`` are built lazily by :class:`ProcessExecutor`
    unless the caller supplies them.
    """

    model: "MRSLModel"
    knobs: ShardKnobs
    batch_engine: BatchInferenceEngine | None = None
    model_doc: Mapping[str, Any] | None = None
    compiled_metadata: Mapping[str, Any] | None = None

    def warm_engine(self) -> BatchInferenceEngine | None:
        """The in-process engine for serial execution (built on first use)."""
        if self.batch_engine is None and self.knobs.engine == "compiled":
            self.batch_engine = BatchInferenceEngine(
                self.model, self.knobs.v_choice, self.knobs.v_scheme
            )
        return self.batch_engine


class Executor:
    """Common interface: stream shard results for a plan."""

    name = "abstract"

    def __init__(self, workers: int = DEFAULT_WORKERS):
        self.workers = validate_workers(workers)

    def run(
        self, plan: ShardPlan, context: ExecContext
    ) -> Iterator[ShardResult]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialExecutor(Executor):
    """Run shards one after another in the calling process (the default)."""

    name = "serial"

    def run(
        self, plan: ShardPlan, context: ExecContext
    ) -> Iterator[ShardResult]:
        engine = context.warm_engine()
        for shard in plan.shards:
            yield run_shard(
                shard, context.model, context.knobs, batch_engine=engine
            )


class ThreadExecutor(Executor):
    """Run shards on a thread pool sharing the in-process model.

    Useful when the per-shard work releases the GIL (NumPy combines) or the
    caller wants streaming overlap without process startup cost.  Each
    worker thread keeps its own warm engine: the LRU cache is not
    thread-safe, and sharing one would serialize the hot path anyway.
    """

    name = "thread"

    def run(
        self, plan: ShardPlan, context: ExecContext
    ) -> Iterator[ShardResult]:
        if not plan.shards:
            return
        local = threading.local()
        model, knobs = context.model, context.knobs

        def task(shard):
            engine = getattr(local, "engine", None)
            if engine is None and knobs.engine == "compiled":
                engine = BatchInferenceEngine(
                    model, knobs.v_choice, knobs.v_scheme
                )
                local.engine = engine
            return run_shard(
                shard,
                model,
                knobs,
                batch_engine=engine,
                worker=threading.current_thread().name,
            )

        with ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-exec"
        ) as pool:
            yield from _stream(pool.submit(task, s) for s in plan.shards)


class ProcessExecutor(Executor):
    """Run shards on a process pool rebuilt from the persisted model JSON.

    The pool initializer ships :func:`~repro.core.persistence.model_to_dict`
    output (plus the parent's compiled-engine metadata for validation) to
    every worker, which rebuilds one warm
    :class:`~repro.core.engine.BatchInferenceEngine` for its lifetime —
    live engines and their caches are never pickled.
    """

    name = "process"

    #: validate workers' rebuilt compiled structures against the parent's
    verify_rebuild = True

    def run(
        self, plan: ShardPlan, context: ExecContext
    ) -> Iterator[ShardResult]:
        if not plan.shards:
            return
        from ..core.persistence import compiled_metadata, model_to_dict

        model_doc = context.model_doc
        if model_doc is None:
            model_doc = model_to_dict(context.model)
        metadata = context.compiled_metadata
        if metadata is None and self.verify_rebuild:
            warm = context.batch_engine
            metadata = compiled_metadata(
                context.model, None if warm is None else warm.compiled
            )
        # Fork keeps worker startup cheap on POSIX, but forking a
        # multithreaded parent (e.g. a derive request inside the threaded
        # HTTP server) can inherit locks held by threads that do not exist
        # in the child; prefer forkserver/spawn there.  The initializer
        # rebuilds from JSON either way, so behavior is identical.
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods and threading.active_count() == 1:
            method = "fork"
        elif "forkserver" in methods:
            method = "forkserver"
        else:
            method = "spawn"
        mp_context = multiprocessing.get_context(method)
        with ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=mp_context,
            initializer=_process_worker_init,
            initargs=(model_doc, context.knobs, metadata),
        ) as pool:
            yield from _stream(
                pool.submit(_process_run_shard, s) for s in plan.shards
            )


def _stream(futures) -> Iterator[ShardResult]:
    """Yield results as they complete; cancel the rest on first failure."""
    pending = set(futures)
    try:
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                yield future.result()
    finally:
        for future in pending:
            future.cancel()


#: executor name -> class, the registry behind every ``executor=`` knob.
EXECUTOR_CLASSES = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def get_executor(
    executor: "Executor | str", workers: int = DEFAULT_WORKERS
) -> Executor:
    """Resolve an executor instance from a name (or pass one through)."""
    if isinstance(executor, Executor):
        return executor
    cls = EXECUTOR_CLASSES.get(executor)
    if cls is None:
        raise ValueError(
            f"executor must be one of {tuple(EXECUTOR_CLASSES)}, "
            f"got {executor!r}"
        )
    return cls(workers)
