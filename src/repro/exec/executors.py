"""Pluggable shard executors: serial, thread pool, process pool.

All three run the same shard kernels (:mod:`repro.exec.work`) over the same
plan (:mod:`repro.exec.plan`) and stream :class:`~repro.exec.base.ShardResult`
objects as shards finish, so they are interchangeable:

* :class:`SerialExecutor` — in-process, in plan order; the default.  With a
  warm engine passed in (the session path) it is bit-identical to the
  pre-executor code.
* :class:`ThreadExecutor` — a thread pool sharing the in-process model, one
  warm engine per worker thread (the engine's LRU is not thread-safe, and
  per-thread engines also avoid lock contention on the hot path).
* :class:`ProcessExecutor` — a process pool whose initializer receives the
  persisted model JSON and the parent's compiled-engine metadata, rebuilds
  one warm engine per worker, and validates the rebuild.  Live engines are
  never pickled.

Because multi-missing shards carry deterministic per-shard seeds and
single-missing shards are RNG-free, all executors produce bit-identical
results for any worker count.

Failure is a first-class state here, not an abort: every executor runs each
shard under the context's :class:`~repro.exec.base.RetryPolicy` (exponential
jitterless backoff, recorded as :class:`~repro.exec.base.ShardFailure` rows),
and the process executor additionally survives *infrastructure* failure —
a crashed worker breaks the pool, the pool is rebuilt, and only the shards
that were in flight are requeued.  A shard past its deadline is treated as a
hung worker: the pool is killed and the shard requeued.  When the pool keeps
dying, ``failure_policy`` decides: ``"strict"`` raises
:class:`~repro.exec.base.WorkerPoolError` with the partial report attached,
``"degrade"`` falls back process→thread→serial and keeps deriving — the
deterministic seeds make the degraded result bit-identical.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from concurrent.futures.thread import BrokenThreadPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Mapping, TYPE_CHECKING

from ..core.engine import BatchInferenceEngine
from .base import (
    DEFAULT_FAILURE_POLICY,
    DEFAULT_WORKERS,
    RetryPolicy,
    Shard,
    ShardExecutionError,
    ShardFailure,
    ShardPlan,
    ShardResult,
    WorkerPoolError,
    validate_workers,
)
from .faults import FaultPlan, ShardFault, bind_faults
from .work import (
    ShardKnobs,
    _process_run_shard,
    _process_worker_init,
    run_shard,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.mrsl import MRSLModel

__all__ = [
    "ExecContext",
    "Executor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
]


@dataclass
class ExecContext:
    """Everything an executor needs beyond the plan itself.

    ``batch_engine`` is the caller's warm engine (the session path); serial
    execution reuses it so its CPD cache keeps carrying over.  ``model_doc``
    and ``compiled_metadata`` are built lazily by :class:`ProcessExecutor`
    unless the caller supplies them.

    The failure knobs ride here too: ``retry`` and ``failure_policy`` come
    from the config, ``faults`` is an optional injected
    :class:`~repro.exec.faults.FaultPlan`, and the ``failures`` /
    ``degradations`` / ``pool_restarts`` accumulators are filled by the
    executors as the run unfolds — the collector copies them into the
    :class:`~repro.exec.base.ExecReport` (even when the run ends in an
    exception).
    """

    model: "MRSLModel"
    knobs: ShardKnobs
    batch_engine: BatchInferenceEngine | None = None
    model_doc: Mapping[str, Any] | None = None
    compiled_metadata: Mapping[str, Any] | None = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    failure_policy: str = DEFAULT_FAILURE_POLICY
    faults: FaultPlan | None = None
    failures: list[ShardFailure] = field(default_factory=list)
    degradations: list[str] = field(default_factory=list)
    pool_restarts: int = 0

    def warm_engine(self) -> BatchInferenceEngine | None:
        """The in-process engine for serial execution (built on first use)."""
        if self.batch_engine is None and self.knobs.engine == "compiled":
            self.batch_engine = BatchInferenceEngine(
                self.model, self.knobs.v_choice, self.knobs.v_scheme
            )
        return self.batch_engine

    def record_failure(self, failure: ShardFailure) -> None:
        self.failures.append(failure)


def _retrying(
    shard: Shard,
    context: ExecContext,
    faults: Mapping[tuple[str, int], ShardFault],
    invoke: Callable[[Shard, ShardFault | None], ShardResult],
) -> ShardResult:
    """Run one shard attempt loop in-process (serial and thread workers).

    Every attempt re-runs the same content-keyed seed through the same
    kernel, so a retried shard is bit-identical to a first-try shard.
    Failed attempts are recorded; an exhausted budget raises
    :class:`~repro.exec.base.ShardExecutionError`.
    """
    retry = context.retry
    attempt = 0
    while True:
        attempt += 1
        fault = faults.get((shard.key, attempt))
        start = time.perf_counter()
        try:
            result = invoke(shard, fault)
        except Exception as exc:
            exhausted = attempt >= retry.max_attempts
            backoff = 0.0 if exhausted else retry.backoff(attempt)
            failure = ShardFailure(
                key=shard.key,
                kind=shard.kind,
                attempt=attempt,
                error=f"{type(exc).__name__}: {exc}",
                elapsed=time.perf_counter() - start,
                backoff=backoff,
                fatal=exhausted,
            )
            context.record_failure(failure)
            if exhausted:
                raise ShardExecutionError(
                    f"shard {shard.key} failed after {attempt} attempts: "
                    f"{failure.error}",
                    failure=failure,
                ) from exc
            time.sleep(backoff)
        else:
            if attempt > 1:
                result = replace(result, attempts=attempt)
            return result


class Executor:
    """Common interface: stream shard results for a plan."""

    name = "abstract"

    def __init__(self, workers: int = DEFAULT_WORKERS):
        self.workers = validate_workers(workers)

    def run(
        self, plan: ShardPlan, context: ExecContext
    ) -> Iterator[ShardResult]:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


def _remaining_plan(plan: ShardPlan, shards: "list[Shard]") -> ShardPlan:
    """A sub-plan over ``shards``, keeping the original base seed."""
    return ShardPlan(
        shards=tuple(shards),
        num_tuples=sum(len(s) for s in shards),
        base_seed=plan.base_seed,
    )


class SerialExecutor(Executor):
    """Run shards one after another in the calling process (the default)."""

    name = "serial"

    def run(
        self, plan: ShardPlan, context: ExecContext
    ) -> Iterator[ShardResult]:
        engine = context.warm_engine()
        faults = bind_faults(context.faults, plan)
        deadline = context.retry.deadline
        for shard in plan.shards:
            yield _retrying(
                shard,
                context,
                faults,
                lambda s, f: run_shard(
                    s,
                    context.model,
                    context.knobs,
                    batch_engine=engine,
                    fault=f,
                    deadline=deadline,
                ),
            )


class ThreadExecutor(Executor):
    """Run shards on a thread pool sharing the in-process model.

    Useful when the per-shard work releases the GIL (NumPy combines) or the
    caller wants streaming overlap without process startup cost.  Each
    worker thread keeps its own warm engine: the LRU cache is not
    thread-safe, and sharing one would serialize the hot path anyway.

    Retries run inside the worker task (each failed attempt backs off and
    re-runs on the same thread).  A broken thread pool — rare, but e.g. a
    failed thread start under resource exhaustion — degrades to serial
    execution of the not-yet-streamed shards when the policy allows.
    """

    name = "thread"

    def run(
        self, plan: ShardPlan, context: ExecContext
    ) -> Iterator[ShardResult]:
        if not plan.shards:
            return
        local = threading.local()
        model, knobs = context.model, context.knobs
        faults = bind_faults(context.faults, plan)
        deadline = context.retry.deadline

        def invoke(shard: Shard, fault: ShardFault | None) -> ShardResult:
            engine = getattr(local, "engine", None)
            if engine is None and knobs.engine == "compiled":
                engine = BatchInferenceEngine(
                    model, knobs.v_choice, knobs.v_scheme
                )
                local.engine = engine
            return run_shard(
                shard,
                model,
                knobs,
                batch_engine=engine,
                worker=threading.current_thread().name,
                fault=fault,
                deadline=deadline,
            )

        def task(shard: Shard) -> ShardResult:
            return _retrying(shard, context, faults, invoke)

        done: set[str] = set()
        try:
            with ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-exec"
            ) as pool:
                for result in _stream(
                    pool.submit(task, s) for s in plan.shards
                ):
                    done.add(result.key)
                    yield result
        except BrokenThreadPool as exc:
            if context.failure_policy != "degrade":
                raise WorkerPoolError(
                    f"thread pool broke with {len(done)} of "
                    f"{len(plan.shards)} shards streamed: {exc}"
                ) from exc
            context.degradations.append("thread->serial")
            remaining = [s for s in plan.shards if s.key not in done]
            yield from SerialExecutor(1).run(
                _remaining_plan(plan, remaining), context
            )


class _PoolDied(Exception):
    """Internal: the process pool broke or a shard blew its deadline.

    ``reason`` labels the failure; ``culprits`` names the shard keys the
    failure is attributed to (the hung shard for a deadline, every
    in-flight shard for a crash — which worker died is unknowable).
    """

    def __init__(self, reason: str, culprits: "list[str]"):
        super().__init__(reason)
        self.reason = reason
        self.culprits = culprits


class ProcessExecutor(Executor):
    """Run shards on a process pool rebuilt from the persisted model JSON.

    The pool initializer ships :func:`~repro.core.persistence.model_to_dict`
    output (plus the parent's compiled-engine metadata for validation) to
    every worker, which rebuilds one warm
    :class:`~repro.core.engine.BatchInferenceEngine` for its lifetime —
    live engines and their caches are never pickled.

    Fault domains: at most ``workers`` shards are in flight at a time, each
    stamped with its submission time.  A broken pool
    (:class:`~concurrent.futures.process.BrokenProcessPool` — a worker was
    killed, hard-exited, or died in its initializer) or a shard exceeding
    the retry deadline kills and rebuilds the pool, requeueing only the
    in-flight shards; completed results are never recomputed.  Each requeue
    consumes one attempt from the shard's retry budget.  After
    ``max_pool_deaths`` rebuilds the run degrades to the thread executor
    (``failure_policy="degrade"``) or raises
    :class:`~repro.exec.base.WorkerPoolError` (``"strict"``).
    """

    name = "process"

    #: validate workers' rebuilt compiled structures against the parent's
    verify_rebuild = True

    #: pool rebuilds tolerated before degrading (or raising)
    max_pool_deaths = 2

    #: seconds between deadline scans when no future completes
    poll_interval = 0.25

    def run(
        self, plan: ShardPlan, context: ExecContext
    ) -> Iterator[ShardResult]:
        if not plan.shards:
            return
        from ..core.persistence import compiled_metadata, model_to_dict

        model_doc = context.model_doc
        if model_doc is None:
            model_doc = model_to_dict(context.model)
        metadata = context.compiled_metadata
        if metadata is None and self.verify_rebuild:
            warm = context.batch_engine
            metadata = compiled_metadata(
                context.model, None if warm is None else warm.compiled
            )
        # Fork keeps worker startup cheap on POSIX, but forking a
        # multithreaded parent (e.g. a derive request inside the threaded
        # HTTP server) can inherit locks held by threads that do not exist
        # in the child; prefer forkserver/spawn there.  The initializer
        # rebuilds from JSON either way, so behavior is identical.
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods and threading.active_count() == 1:
            method = "fork"
        elif "forkserver" in methods:
            method = "forkserver"
        else:
            method = "spawn"
        mp_context = multiprocessing.get_context(method)

        faults = bind_faults(context.faults, plan)
        retry = context.retry
        queue: "deque[Shard]" = deque(plan.shards)
        attempts: dict[str, int] = {s.key: 0 for s in plan.shards}
        pool_deaths = 0

        while queue:
            pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=mp_context,
                initializer=_process_worker_init,
                initargs=(model_doc, context.knobs, metadata),
            )
            inflight: "dict[Future, tuple[Shard, float]]" = {}
            try:
                yield from self._drain(
                    pool, queue, inflight, attempts, faults, context
                )
                return
            except _PoolDied as died:
                pool_deaths += 1
                context.pool_restarts += 1
                self._kill_pool(pool)
                # Requeue the in-flight shards — completed work stands.
                # The failure is charged to the culprits' retry budgets;
                # innocent bystanders get their attempt back.
                culprits = set(died.culprits)
                for shard, started in inflight.values():
                    if shard.key in culprits:
                        exhausted = attempts[shard.key] >= retry.max_attempts
                        failure = ShardFailure(
                            key=shard.key,
                            kind=shard.kind,
                            attempt=attempts[shard.key],
                            error=died.reason,
                            elapsed=time.monotonic() - started,
                            backoff=0.0 if exhausted else retry.backoff(
                                attempts[shard.key]
                            ),
                            fatal=exhausted and context.failure_policy != "degrade",
                        )
                        context.record_failure(failure)
                        if exhausted and context.failure_policy != "degrade":
                            raise ShardExecutionError(
                                f"shard {shard.key} failed after "
                                f"{attempts[shard.key]} attempts: {died.reason}",
                                failure=failure,
                            ) from died
                    else:
                        attempts[shard.key] -= 1
                    queue.append(shard)
                if pool_deaths > self.max_pool_deaths:
                    if context.failure_policy != "degrade":
                        raise WorkerPoolError(
                            f"process pool died {pool_deaths} times "
                            f"({died.reason}); {len(queue)} shards unfinished"
                        ) from died
                    context.degradations.append("process->thread")
                    yield from ThreadExecutor(self.workers).run(
                        _remaining_plan(plan, list(queue)), context
                    )
                    return
            finally:
                pool.shutdown(wait=False, cancel_futures=True)

    def _drain(
        self,
        pool: ProcessPoolExecutor,
        queue: "deque[Shard]",
        inflight: "dict[Future, tuple[Shard, float]]",
        attempts: dict[str, int],
        faults: Mapping[tuple[str, int], ShardFault],
        context: ExecContext,
    ) -> Iterator[ShardResult]:
        """Pump shards through one pool until it is empty — or dies.

        Submission is windowed to ``workers`` so a submitted future is
        (to a close approximation) a *running* future, which is what makes
        the per-shard deadline meaningful.  Raises :class:`_PoolDied` on a
        broken pool or an overdue shard; the in-flight map is left intact
        for the caller's requeue logic.
        """
        retry = context.retry
        while queue or inflight:
            while queue and len(inflight) < self.workers:
                shard = queue.popleft()
                attempts[shard.key] += 1
                fault = faults.get((shard.key, attempts[shard.key]))
                try:
                    future = pool.submit(
                        _process_run_shard, shard, fault, retry.deadline
                    )
                except BrokenProcessPool as exc:
                    queue.appendleft(shard)
                    attempts[shard.key] -= 1
                    raise _PoolDied(
                        f"worker pool broke: {exc}",
                        [s.key for s, _ in inflight.values()],
                    ) from exc
                inflight[future] = (shard, time.monotonic())
            timeout = self._wait_timeout(inflight, retry.deadline)
            done, _ = wait(
                set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
            )
            if not done:
                overdue = self._overdue(inflight, retry.deadline)
                if overdue:
                    raise _PoolDied(
                        f"shard deadline ({retry.deadline:.3f}s) exceeded",
                        overdue,
                    )
                continue
            for future in done:
                shard, started = inflight.pop(future)
                try:
                    result = future.result()
                except BrokenProcessPool as exc:
                    # The whole pool is gone; every in-flight shard (this
                    # one included) is a suspect.
                    inflight[future] = (shard, started)
                    raise _PoolDied(
                        f"worker crashed: {exc}",
                        [s.key for s, _ in inflight.values()],
                    ) from exc
                except Exception as exc:
                    # In-band failure shipped back from the worker: charge
                    # the retry budget, back off, requeue.
                    exhausted = attempts[shard.key] >= retry.max_attempts
                    backoff = (
                        0.0 if exhausted else retry.backoff(attempts[shard.key])
                    )
                    failure = ShardFailure(
                        key=shard.key,
                        kind=shard.kind,
                        attempt=attempts[shard.key],
                        error=f"{type(exc).__name__}: {exc}",
                        elapsed=time.monotonic() - started,
                        backoff=backoff,
                        fatal=exhausted,
                    )
                    context.record_failure(failure)
                    if exhausted:
                        raise ShardExecutionError(
                            f"shard {shard.key} failed after "
                            f"{attempts[shard.key]} attempts: {failure.error}",
                            failure=failure,
                        ) from exc
                    time.sleep(backoff)
                    queue.append(shard)
                else:
                    if attempts[shard.key] > 1:
                        result = replace(result, attempts=attempts[shard.key])
                    yield result

    def _wait_timeout(
        self,
        inflight: "dict[Future, tuple[Shard, float]]",
        deadline: float | None,
    ) -> float | None:
        """How long to block in ``wait``: forever without a deadline,
        otherwise until the earliest in-flight shard would be overdue."""
        if deadline is None or not inflight:
            return None
        now = time.monotonic()
        soonest = min(
            deadline - (now - started) for _, started in inflight.values()
        )
        return max(min(soonest, self.poll_interval), 0.01)

    @staticmethod
    def _overdue(
        inflight: "dict[Future, tuple[Shard, float]]",
        deadline: float | None,
    ) -> "list[str]":
        if deadline is None:
            return []
        now = time.monotonic()
        return [
            shard.key
            for shard, started in inflight.values()
            if now - started >= deadline
        ]

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor) -> None:
        """Terminate a pool's workers without waiting on hung ones."""
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # already dead / reaped
                pass
        pool.shutdown(wait=False, cancel_futures=True)


def _stream(futures) -> Iterator[ShardResult]:
    """Yield results as they complete; cancel the rest on first failure."""
    pending = set(futures)
    try:
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                yield future.result()
    finally:
        for future in pending:
            future.cancel()


#: executor name -> class, the registry behind every ``executor=`` knob.
EXECUTOR_CLASSES = {
    SerialExecutor.name: SerialExecutor,
    ThreadExecutor.name: ThreadExecutor,
    ProcessExecutor.name: ProcessExecutor,
}


def get_executor(
    executor: "Executor | str", workers: int = DEFAULT_WORKERS
) -> Executor:
    """Resolve an executor instance from a name (or pass one through)."""
    if isinstance(executor, Executor):
        return executor
    cls = EXECUTOR_CLASSES.get(executor)
    if cls is None:
        raise ValueError(
            f"executor must be one of {tuple(EXECUTOR_CLASSES)}, "
            f"got {executor!r}"
        )
    return cls(workers)
