"""Deterministic fault injection for the derivation runtime.

A :class:`FaultPlan` is a serializable description of *exactly* which shard
attempt should misbehave — "the worker crashes on shard #3, attempt 1",
"shard #5 hangs for twice the deadline" — so the fault-tolerance machinery
(per-shard retries, pool rebuilds, graceful degradation, durable resume)
can be tested deterministically instead of hopefully.  Three fault kinds:

* ``"error"`` — the shard attempt raises :class:`FaultInjected`; the retry
  loop records the failure and re-runs the shard.
* ``"crash"`` — in a process-pool worker the worker process hard-exits
  (``os._exit``), breaking the pool; in serial/thread execution — where a
  hard exit would take the caller down with it — the fault downgrades to an
  ``"error"``.
* ``"hang"`` — the shard attempt sleeps ``delay`` seconds (default twice
  the retry deadline) before proceeding; the process executor's deadline
  scan detects the overdue shard, kills the pool, and requeues it.

Shards are selected by plan position (``index``) or content ``key``, and
faults fire on one specific ``attempt`` — so the retried attempt runs
clean and, because shard seeds are content-keyed, produces a result
bit-identical to a fault-free run.

Injection routes: pass a plan to the runtime entry points
(``execute_derivation(..., faults=...)``), put one on a config object
(``config.fault_plan``), or set the ``REPRO_FAULT_PLAN`` environment
variable to the JSON form (or ``@/path/to/plan.json``) — the env route is
how the CLI and a served process are chaos-tested from the outside.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .base import ShardPlan

__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultInjected",
    "ShardFault",
    "FaultPlan",
    "bind_faults",
    "resolve_fault_plan",
    "apply_fault",
]

#: Recognized fault kinds.
FAULT_KINDS = ("error", "crash", "hang")

#: Environment variable carrying a JSON fault plan (or ``@path`` to one).
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"


class FaultInjected(RuntimeError):
    """The failure an ``"error"`` (or in-process ``"crash"``) fault raises."""


@dataclass(frozen=True)
class ShardFault:
    """One injected fault: which shard, which attempt, what goes wrong.

    ``index`` selects a shard by its position in the plan's shard tuple;
    ``key`` selects by content key (exact match) and wins over ``index``.
    ``attempt`` is 1-based: a fault on attempt 1 fires on the first try
    and leaves every retry clean.  ``delay`` is the hang duration in
    seconds (``"hang"`` only; defaults to twice the retry deadline, or
    1 second when no deadline is set).
    """

    kind: str
    index: int | None = None
    key: str | None = None
    attempt: int = 1
    delay: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"fault kind must be one of {FAULT_KINDS}, got {self.kind!r}"
            )
        if self.index is None and self.key is None:
            raise ValueError("fault needs an 'index' or a 'key' selector")
        if self.attempt < 1:
            raise ValueError(f"attempt is 1-based, got {self.attempt}")

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {"kind": self.kind, "attempt": self.attempt}
        if self.index is not None:
            doc["index"] = self.index
        if self.key is not None:
            doc["key"] = self.key
        if self.delay is not None:
            doc["delay"] = self.delay
        return doc

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ShardFault":
        return cls(
            kind=data["kind"],
            index=data.get("index"),
            key=data.get("key"),
            attempt=int(data.get("attempt", 1)),
            delay=data.get("delay"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A serializable set of :class:`ShardFault` injections."""

    faults: tuple[ShardFault, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.faults)

    def to_dict(self) -> dict[str, Any]:
        return {"faults": [f.to_dict() for f in self.faults]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        return cls(
            faults=tuple(
                ShardFault.from_dict(f) for f in data.get("faults", ())
            )
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def coerce(cls, value: "FaultPlan | Mapping[str, Any] | Sequence | None") -> "FaultPlan | None":
        """Accept a plan, its dict form, or a bare fault list."""
        if value is None or isinstance(value, FaultPlan):
            return value
        if isinstance(value, Mapping):
            return cls.from_dict(value)
        return cls(faults=tuple(
            f if isinstance(f, ShardFault) else ShardFault.from_dict(f)
            for f in value
        ))

    @classmethod
    def from_env(cls, environ: Mapping[str, str] | None = None) -> "FaultPlan | None":
        """The plan named by ``REPRO_FAULT_PLAN``, or None when unset.

        The variable holds either the JSON form directly or ``@path`` to a
        file containing it.
        """
        raw = (environ if environ is not None else os.environ).get(
            FAULT_PLAN_ENV, ""
        ).strip()
        if not raw:
            return None
        if raw.startswith("@"):
            with open(raw[1:], "r", encoding="utf-8") as fh:
                raw = fh.read()
        return cls.from_json(raw)


def resolve_fault_plan(
    faults: "FaultPlan | Mapping[str, Any] | None", config: Any
) -> "FaultPlan | None":
    """The fault plan a runtime call should honor.

    Resolution order: the explicit ``faults`` argument, then a
    ``fault_plan`` attribute on the config object, then the environment.
    """
    plan = FaultPlan.coerce(faults)
    if plan is not None:
        return plan
    plan = FaultPlan.coerce(getattr(config, "fault_plan", None))
    if plan is not None:
        return plan
    return FaultPlan.from_env()


def bind_faults(
    plan: "FaultPlan | None", shard_plan: "ShardPlan"
) -> dict[tuple[str, int], ShardFault]:
    """Resolve a fault plan against a shard plan: (shard key, attempt) map.

    Index selectors are resolved by plan position; out-of-range indices are
    ignored (the fault simply never fires — a plan written for a bigger
    workload stays harmless on a smaller one).
    """
    if not plan:
        return {}
    bound: dict[tuple[str, int], ShardFault] = {}
    for fault in plan.faults:
        key = fault.key
        if (
            key is None
            and fault.index is not None
            and 0 <= fault.index < len(shard_plan.shards)
        ):
            key = shard_plan.shards[fault.index].key
        if key is not None:
            bound[(key, fault.attempt)] = fault
    return bound


def apply_fault(
    fault: ShardFault | None,
    deadline: float | None = None,
    allow_crash: bool = False,
) -> None:
    """Fire an injected fault inside a shard attempt (no-op when None).

    ``allow_crash`` is True only inside process-pool workers, where a hard
    exit breaks the pool without taking the caller down; elsewhere a crash
    downgrades to the injected error.
    """
    if fault is None:
        return
    if fault.kind == "hang":
        delay = fault.delay
        if delay is None:
            delay = 2.0 * deadline if deadline else 1.0
        time.sleep(delay)
        return
    if fault.kind == "crash" and allow_crash:
        os._exit(3)
    raise FaultInjected(
        f"injected {fault.kind} (attempt {fault.attempt})"
    )
