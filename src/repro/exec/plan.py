"""The shard planner: partition a derivation workload into independent units.

Two partitioning rules, one per inference regime:

* **Single-missing tuples** (Algorithm 2) are grouped by ``(head attribute,
  evidence signature)`` — the same key the compiled engine memoizes CPDs
  under — so every group in a shard is answered by one matrix combine and
  the per-worker LRU stays hot.  Groups are packed into a bounded number of
  shards (greedy largest-first) sized to the worker count; packing cannot
  affect results because this path is deterministic and RNG-free.

* **Multi-missing tuples** (Algorithm 3) are partitioned into connected
  components of the subsumption graph.  Components are exactly the units
  within which the tuple-DAG optimization shares Gibbs samples, so cutting
  along component boundaries loses no sharing.  Each component becomes one
  shard with an RNG seed derived from the base seed and a stable content
  key, which makes results identical for any executor and worker count.

  When the vectorized Gibbs kernel serves the workload (``multi_batch``),
  components become pure grouping hints re-batched to ``multi_batch``
  distinct tuples per shard: small components pack together (the ensemble
  kernel's throughput grows with batch size) and oversized ones split
  (the kernel shares nothing across tuples, and an unsplit giant
  component would serialize on one worker).  Re-batching is greedy in
  deterministic component order and never depends on the worker count, so
  per-shard seeds — hence results — remain identical for every executor
  and worker count.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..core.compiled import CompiledModel
from ..relational.tuples import MISSING_CODE, RelTuple
from .base import DEFAULT_WORKERS, Shard, ShardPlan, validate_workers

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.mrsl import MRSLModel

__all__ = [
    "MULTI_TUPLES_PER_SHARD",
    "multi_shard_layout",
    "plan_shards",
    "resolve_base_seed",
    "shard_seed",
]

#: Target single shards per worker; >1 smooths load imbalance between
#: unevenly sized signature groups without shrinking groups themselves.
SINGLE_SHARDS_PER_WORKER = 2

#: Distinct tuples per multi shard when the vectorized Gibbs kernel runs
#: the workload (the ``multi_batch`` the runtime passes).  Larger batches
#: amortize the per-(sweep, attribute) kernel overhead over more chains;
#: deliberately *not* worker-dependent so per-shard seeds never change
#: with the executor or pool size.
MULTI_TUPLES_PER_SHARD = 128


def resolve_base_seed(
    rng: np.random.Generator | int | None, seed: int | None
) -> int:
    """The one integer every per-shard seed derives from.

    Explicit ``rng`` wins over the config ``seed``; a live generator
    contributes a single draw (so reproducibility with a seeded generator is
    preserved while the plan itself stays worker-count independent); with
    neither, fresh entropy keeps the historical "unseeded run" behavior.
    """
    if isinstance(rng, np.random.Generator):
        return int(rng.integers(0, 2**63))
    if rng is not None:
        return int(rng)
    if seed is not None:
        return int(seed)
    return int(np.random.SeedSequence().entropy % (2**63))


def shard_seed(base_seed: int, key: str) -> int:
    """Deterministic per-shard seed: hash of the base seed and shard key.

    ``sha256`` rather than Python's builtin ``hash`` so the value is stable
    across interpreter runs, processes, and platforms.
    """
    digest = hashlib.sha256(f"{base_seed}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _content_key(tuples: Iterable[RelTuple]) -> str:
    """A stable key for a set of tuples, independent of iteration order."""
    h = hashlib.sha256()
    for codes in sorted(t.codes.tobytes() for t in tuples):
        h.update(codes)
    return h.hexdigest()[:16]


def _single_groups(
    entries: Sequence[tuple[int, RelTuple]], compiled: CompiledModel
) -> list[tuple[tuple[int, bytes], list[tuple[int, RelTuple]]]]:
    """Group single-missing entries by (attribute, evidence signature)."""
    groups: dict[tuple[int, bytes], list[tuple[int, RelTuple]]] = {}
    for idx, t in entries:
        attr = t.missing_positions[0]
        key = (attr, compiled[attr].signature(t.codes))
        groups.setdefault(key, []).append((idx, t))
    return sorted(groups.items(), key=lambda item: item[0])


def _pack_single_shards(
    groups: list[tuple[tuple[int, bytes], list[tuple[int, RelTuple]]]],
    workers: int,
) -> list[Shard]:
    """Pack signature groups into at most ``workers * factor`` shards.

    Greedy largest-group-first into the least-loaded bin; ties break on bin
    index, so the packing is deterministic for a given workload.
    """
    if not groups:
        return []
    num_bins = min(len(groups), workers * SINGLE_SHARDS_PER_WORKER)
    bins: list[list[tuple[int, RelTuple]]] = [[] for _ in range(num_bins)]
    bin_groups = [0] * num_bins
    order = sorted(
        range(len(groups)), key=lambda i: (-len(groups[i][1]), groups[i][0])
    )
    for gi in order:
        target = min(range(num_bins), key=lambda b: (len(bins[b]), b))
        bins[target].extend(groups[gi][1])
        bin_groups[target] += 1
    shards = []
    for b, entries in enumerate(bins):
        if not entries:
            continue
        entries.sort(key=lambda e: e[0])  # workload order within the shard
        indices = tuple(idx for idx, _ in entries)
        tuples = tuple(t for _, t in entries)
        shards.append(
            Shard(
                key=f"single:{b:03d}:{_content_key(tuples)}",
                kind="single",
                indices=indices,
                tuples=tuples,
                groups=bin_groups[b],
            )
        )
    return shards


#: Row-block size for the pairwise subsumption test; bounds the temporary
#: ``(block, n, width)`` comparison at a few MB for realistic workloads.
_SUBSUME_BLOCK = 256


def _components(
    entries: Sequence[tuple[int, RelTuple]],
) -> list[list[tuple[int, RelTuple]]]:
    """Connected components of the subsumption graph over distinct tuples.

    Duplicated tuples join their first occurrence's component.  Still
    quadratic in the number of *distinct* multi-missing tuples, but the
    pairwise test (Def. 2.4: every known value of ``a`` appears in ``b``,
    and ``a`` knows strictly less) runs as blocked NumPy comparisons over
    the stacked code matrix instead of Python-level ``proper_subsumes``
    calls — planning a thousands-of-tuples workload costs milliseconds,
    not seconds.
    """
    distinct: dict[RelTuple, int] = {}
    members: list[list[tuple[int, RelTuple]]] = []
    for idx, t in entries:
        node = distinct.get(t)
        if node is None:
            distinct[t] = len(members)
            members.append([(idx, t)])
        else:
            members[node].append((idx, t))
    tuples = list(distinct)
    n = len(tuples)
    parent = list(range(n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    if n > 1:
        codes = np.stack([t.codes for t in tuples])
        known = codes != MISSING_CODE
        num_missing = (~known).sum(axis=1)
        for start in range(0, n, _SUBSUME_BLOCK):
            stop = min(start + _SUBSUME_BLOCK, n)
            # agree[x, j]: every known value of tuple start+x appears in j.
            agree = (
                (codes[start:stop, None, :] == codes[None, :, :])
                | ~known[start:stop, None, :]
            ).all(axis=2)
            proper = agree & (
                num_missing[start:stop, None] > num_missing[None, :]
            )
            for x, j in np.argwhere(proper):
                ri, rj = find(start + int(x)), find(int(j))
                if ri != rj:
                    parent[max(ri, rj)] = min(ri, rj)
    by_root: dict[int, list[tuple[int, RelTuple]]] = {}
    for i in range(n):
        by_root.setdefault(find(i), []).extend(members[i])
    return [sorted(c, key=lambda e: e[0]) for _, c in sorted(by_root.items())]


def _batch_components(
    components: list[list[tuple[int, RelTuple]]],
    multi_batch: int | None,
) -> list[list[tuple[int, RelTuple]]]:
    """Re-batch components into ≤ ``multi_batch`` distinct tuples apiece.

    ``None`` (the scalar kernel) keeps the one-component-per-shard layout
    the tuple-DAG's sample sharing requires.  For the vectorized kernel
    components carry no sharing, so they are pure grouping hints: small
    ones pack together (bigger ensembles amortize the per-sweep kernel
    cost), and one larger than the target is *split* into consecutive
    chunks — an unsplit giant component would serialize a whole shard's
    worth of work on one worker.  Batching follows the deterministic
    component order and depends only on the workload and ``multi_batch`` —
    never on the worker count — so shard content keys, and therefore
    per-shard seeds, are stable across executors and pool sizes.
    """
    if multi_batch is None:
        return components
    if multi_batch < 1:
        raise ValueError("multi_batch must be positive (or None)")
    batches: list[list[tuple[int, RelTuple]]] = []
    current: list[tuple[int, RelTuple]] = []
    distinct = 0
    for component in components:
        # Duplicate entries of one tuple always travel together (they
        # share one block), so chunk by distinct tuple, not by entry.
        by_tuple: dict[RelTuple, list[tuple[int, RelTuple]]] = {}
        for entry in sorted(component, key=lambda e: e[0]):
            by_tuple.setdefault(entry[1], []).append(entry)
        for entries in by_tuple.values():
            if distinct == multi_batch:
                batches.append(current)
                current = []
                distinct = 0
            current.extend(entries)
            distinct += 1
    if current:
        batches.append(current)
    return [sorted(batch, key=lambda e: e[0]) for batch in batches]


def multi_shard_layout(
    entries: Sequence[tuple[int, RelTuple]],
    multi_batch: int | None = None,
) -> list[tuple[str, list[tuple[int, RelTuple]]]]:
    """The deterministic multi-missing shard layout: ``(key, entries)`` pairs.

    This is the single source of truth for how multi-missing workloads map
    to shard content keys; :func:`plan_shards` builds its multi shards from
    it, and the delta planner replays it over a *previous* derivation's
    workload to recover the shard keys whose blocks can be carried over.
    ``entries`` are ``(workload_index, tuple)`` pairs; only their relative
    order matters, so any consistent indexing recovers identical keys.
    """
    layout = []
    for batch in _batch_components(_components(entries), multi_batch):
        distinct = {t for _, t in batch}
        layout.append((f"multi:{_content_key(distinct)}", batch))
    return layout


def plan_shards(
    tuples: "Sequence[RelTuple]",
    model: "MRSLModel",
    workers: int = DEFAULT_WORKERS,
    seed: int | None = None,
    rng: np.random.Generator | int | None = None,
    compiled: CompiledModel | None = None,
    multi_batch: int | None = None,
) -> ShardPlan:
    """Partition ``tuples`` (mixed single- and multi-missing) into shards.

    The returned plan is deterministic given the workload, the model,
    ``workers``, and ``multi_batch``; its multi shards additionally never
    depend on ``workers`` at all.  ``multi_batch`` packs subsumption
    components into batches of up to that many distinct tuples for the
    vectorized Gibbs kernel (``None`` — the scalar kernel — keeps one
    component per shard).  The base seed is resolved (see
    :func:`resolve_base_seed`) only when the workload actually contains
    multi-missing tuples, so RNG-free workloads never consume entropy or
    disturb a caller's generator.
    """
    workers = validate_workers(workers)
    single: list[tuple[int, RelTuple]] = []
    multi: list[tuple[int, RelTuple]] = []
    for idx, t in enumerate(tuples):
        if t.is_complete:
            raise ValueError("complete tuples do not belong in the workload")
        (single if t.num_missing == 1 else multi).append((idx, t))

    shards: list[Shard] = []
    if single:
        if compiled is None:
            compiled = CompiledModel(model)
        shards.extend(
            _pack_single_shards(_single_groups(single, compiled), workers)
        )

    base_seed: int | None = None
    if multi:
        base_seed = resolve_base_seed(rng, seed)
        for key, component in multi_shard_layout(multi, multi_batch):
            shards.append(
                Shard(
                    key=key,
                    kind="multi",
                    indices=tuple(idx for idx, _ in component),
                    tuples=tuple(t for _, t in component),
                    seed=shard_seed(base_seed, key),
                    groups=len({t for _, t in component}),
                )
            )
    return ShardPlan(
        shards=tuple(shards), num_tuples=len(tuples), base_seed=base_seed
    )
