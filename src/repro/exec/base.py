"""Shared vocabulary of the execution subsystem: shards, plans, results.

The derivation step is embarrassingly parallel — each incomplete tuple's
block depends only on the learned model and the tuple itself (plus, for
multi-missing tuples, the other tuples in its subsumption component, which
share Gibbs samples).  The planner (:mod:`repro.exec.plan`) partitions a
workload into :class:`Shard` units along exactly those dependency lines;
executors (:mod:`repro.exec.executors`) run shards serially, on threads, or
on worker processes; the collector (:mod:`repro.exec.runtime`) streams
:class:`ShardResult` objects back as shards finish.

This module holds only the data types and name validation so that
:mod:`repro.api.config` can import it without pulling in the derive
pipeline (which itself imports the config module).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.tuple_dag import SamplingStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..probdb.blocks import TupleBlock
    from ..relational.tuples import RelTuple

__all__ = [
    "EXECUTORS",
    "DEFAULT_EXECUTOR",
    "DEFAULT_WORKERS",
    "FAILURE_POLICIES",
    "DEFAULT_FAILURE_POLICY",
    "validate_executor",
    "validate_workers",
    "validate_failure_policy",
    "DerivationCancelled",
    "ShardExecutionError",
    "WorkerPoolError",
    "RetryPolicy",
    "Shard",
    "ShardPlan",
    "ShardResult",
    "ShardFailure",
    "ShardTiming",
    "ExecReport",
]

#: Recognized executor names.
EXECUTORS = ("serial", "thread", "process")

#: The executor used when callers do not choose one.
DEFAULT_EXECUTOR = "serial"

#: The worker count used when callers do not choose one.
DEFAULT_WORKERS = 1

#: Recognized failure policies: ``"strict"`` raises on unrecoverable
#: infrastructure failure (with the partial report attached), ``"degrade"``
#: falls back process->thread->serial and keeps going.
FAILURE_POLICIES = ("strict", "degrade")

#: The failure policy used when callers do not choose one.
DEFAULT_FAILURE_POLICY = "strict"


def validate_executor(executor: str) -> str:
    """Normalize and validate an executor name."""
    if executor not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    return executor


def validate_workers(workers: int) -> int:
    """Validate a worker count."""
    workers = int(workers)
    if workers < 1:
        raise ValueError(f"workers must be positive, got {workers}")
    return workers


def validate_failure_policy(policy: str) -> str:
    """Normalize and validate a failure policy name."""
    if policy not in FAILURE_POLICIES:
        raise ValueError(
            f"failure_policy must be one of {FAILURE_POLICIES}, "
            f"got {policy!r}"
        )
    return policy


class DerivationCancelled(RuntimeError):
    """A derivation stopped cooperatively at a shard boundary.

    Raised by the collector when its ``should_stop`` hook fires between
    shards.  ``report`` carries the partial :class:`ExecReport` — the shards
    that did complete, with their timings — so callers (the job manager, a
    progress bar) can show how far the run got.  No partially-assembled
    database ever escapes: the exception propagates before block assembly.
    """

    def __init__(self, message: str, report: "ExecReport | None" = None):
        super().__init__(message)
        self.report = report


class ShardExecutionError(RuntimeError):
    """A shard kept failing after its retry budget was spent.

    ``failure`` is the :class:`ShardFailure` row of the final attempt;
    ``report`` is attached by the collector before the exception escapes,
    so callers see every shard that *did* complete (and every recorded
    failure) alongside the one that did not.
    """

    def __init__(
        self,
        message: str,
        failure: "ShardFailure | None" = None,
        report: "ExecReport | None" = None,
    ):
        super().__init__(message)
        self.failure = failure
        self.report = report


class WorkerPoolError(RuntimeError):
    """A worker pool died too many times and the policy forbids fallback.

    Raised under ``failure_policy="strict"`` when the process pool keeps
    breaking (or a thread pool breaks); ``report`` is attached by the
    collector exactly as for :class:`ShardExecutionError`.
    """

    def __init__(self, message: str, report: "ExecReport | None" = None):
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class RetryPolicy:
    """Per-shard retry budget with a jitterless deterministic backoff.

    ``retries`` is the number of *re*-tries after the first attempt (so a
    shard runs at most ``retries + 1`` times).  The backoff before retry
    attempt ``n`` is ``min(backoff_cap, backoff_base * 2**(n-1))`` seconds
    — exponential, no jitter, so two runs of the same failing workload wait
    exactly the same schedule.  ``deadline`` bounds one attempt's wall
    clock; it is *enforced* only by the process executor (which can kill a
    hung worker and requeue) — serial and thread attempts cannot be
    interrupted, so for them it is diagnostic only.

    Retried shards are bit-identical to first-try shards: every attempt
    re-runs the same content-keyed seed through the same kernel.
    """

    retries: int = 1
    deadline: float | None = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(
                f"deadline must be positive or None, got {self.deadline}"
            )

    def backoff(self, attempt: int) -> float:
        """Seconds to wait before the retry that follows ``attempt``."""
        return min(self.backoff_cap, self.backoff_base * 2 ** (attempt - 1))

    @property
    def max_attempts(self) -> int:
        return self.retries + 1

    @classmethod
    def from_config(cls, cfg: object) -> "RetryPolicy":
        """Extract the retry knobs from any DeriveConfig-shaped object."""
        return cls(
            retries=getattr(cfg, "shard_retries", 1),
            deadline=getattr(cfg, "shard_deadline", None),
        )


@dataclass(frozen=True)
class Shard:
    """One independent unit of derivation work.

    ``indices`` are positions in the planned workload (the tuple list handed
    to the planner); ``tuples[i]`` is the tuple at workload position
    ``indices[i]``, so results can be re-assembled in input order no matter
    when shards finish.  ``kind`` is ``"single"`` (Algorithm 2, RNG-free,
    grouped by evidence signature) or ``"multi"`` (Algorithm 3 Gibbs over one
    subsumption component, seeded by ``seed``).
    """

    key: str
    kind: str  # "single" | "multi"
    indices: tuple[int, ...]
    tuples: "tuple[RelTuple, ...]"
    #: deterministic per-shard RNG seed (multi shards only)
    seed: int | None = None
    #: distinct evidence-signature groups (single) / distinct tuples (multi)
    groups: int = 1

    def __len__(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class ShardPlan:
    """The planner's output: a deterministic partition of a workload.

    Multi shards (one per subsumption component, with a seed derived from
    the base seed and the component's content key) never depend on the
    worker count, which is what makes derivation results identical for any
    executor and any number of workers.  Single shards are RNG-free, so
    their packing *may* track the worker count without affecting results.
    """

    shards: tuple[Shard, ...]
    num_tuples: int
    #: the resolved seed multi-shard seeds derive from (None if no multis)
    base_seed: int | None = None
    #: shards a delta plan served from a previous derivation (skipped work)
    carried_over: int = 0
    #: tuples covered by those carried shards
    carried_tuples: int = 0

    @property
    def single_shards(self) -> tuple[Shard, ...]:
        return tuple(s for s in self.shards if s.kind == "single")

    @property
    def multi_shards(self) -> tuple[Shard, ...]:
        return tuple(s for s in self.shards if s.kind == "multi")

    def __len__(self) -> int:
        return len(self.shards)


@dataclass(frozen=True)
class ShardResult:
    """One completed shard: blocks aligned with the shard's indices."""

    key: str
    kind: str
    indices: tuple[int, ...]
    blocks: "tuple[TupleBlock, ...]"
    #: Gibbs cost counters (multi shards; None for single shards)
    stats: SamplingStats | None = None
    #: wall-clock seconds spent computing this shard (final attempt only)
    elapsed: float = 0.0
    #: label of the worker that ran the shard (thread name / process pid)
    worker: str = "main"
    #: how many attempts this shard took (1 = succeeded first try)
    attempts: int = 1

    def __len__(self) -> int:
        return len(self.indices)

    def summary_dict(self) -> dict:
        """Timing/placement summary for wire payloads (blocks excluded)."""
        return {
            "key": self.key,
            "kind": self.kind,
            "tuples": len(self),
            "elapsed": self.elapsed,
            "worker": self.worker,
            "attempts": self.attempts,
        }


@dataclass(frozen=True)
class ShardFailure:
    """One failed shard attempt, as recorded in the :class:`ExecReport`.

    Ioannidis & Simitsis's "talk back" in miniature: which shard failed, on
    which attempt, what the error was, how long the attempt ran, and how
    long the runtime backed off before retrying (0.0 when the budget was
    spent and no retry followed).  ``fatal`` marks the attempt that
    exhausted the retry budget.
    """

    key: str
    kind: str
    attempt: int
    error: str
    elapsed: float
    backoff: float = 0.0
    fatal: bool = False

    def to_dict(self) -> dict:
        """Plain JSON-able mapping (the wire form of failure rows)."""
        return {
            "key": self.key,
            "kind": self.kind,
            "attempt": self.attempt,
            "error": self.error,
            "elapsed": self.elapsed,
            "backoff": self.backoff,
            "fatal": self.fatal,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ShardFailure":
        return cls(**data)


@dataclass(frozen=True)
class ShardTiming:
    """Per-shard diagnostics row kept by the collector."""

    key: str
    kind: str
    tuples: int
    groups: int
    elapsed: float
    worker: str
    #: True when the delta path reused this shard's blocks instead of
    #: executing it (elapsed is 0.0 and worker is "carry")
    carried: bool = False
    #: attempts the shard took (1 = first try; carried shards report 1)
    attempts: int = 1

    def to_dict(self) -> dict:
        """Plain JSON-able mapping (the wire form of job shard events)."""
        return {
            "key": self.key,
            "kind": self.kind,
            "tuples": self.tuples,
            "groups": self.groups,
            "elapsed": self.elapsed,
            "worker": self.worker,
            "carried": self.carried,
            "attempts": self.attempts,
        }


@dataclass
class ExecReport:
    """Collector diagnostics for one derivation run."""

    executor: str
    workers: int
    num_shards: int = 0
    num_tuples: int = 0
    elapsed: float = 0.0
    timings: list[ShardTiming] = field(default_factory=list)
    #: shards served verbatim from a previous derivation (delta mode);
    #: ``num_shards`` counts only the shards actually executed
    carried_over: int = 0
    #: tuples covered by the carried shards
    carried_tuples: int = 0
    #: every failed attempt observed during the run (retried or fatal)
    failures: list[ShardFailure] = field(default_factory=list)
    #: executor downgrades that occurred (e.g. ``"process->thread"``)
    degraded: list[str] = field(default_factory=list)
    #: how many times a dead worker pool was rebuilt mid-run
    pool_restarts: int = 0

    def add(self, result: ShardResult, groups: int) -> None:
        self.timings.append(
            ShardTiming(
                key=result.key,
                kind=result.kind,
                tuples=len(result),
                groups=groups,
                elapsed=result.elapsed,
                worker=result.worker,
                attempts=result.attempts,
            )
        )

    def add_carried(self, key: str, kind: str, tuples: int, groups: int) -> None:
        """Record a shard the delta path skipped (blocks reused verbatim)."""
        self.timings.append(
            ShardTiming(
                key=key,
                kind=kind,
                tuples=tuples,
                groups=groups,
                elapsed=0.0,
                worker="carry",
                carried=True,
            )
        )
        self.carried_over += 1
        self.carried_tuples += tuples

    def slowest(self, k: int = 5) -> list[ShardTiming]:
        """The ``k`` slowest shards, slowest first (for progress reporting)."""
        return sorted(self.timings, key=lambda t: -t.elapsed)[:k]

    def to_dict(self) -> dict:
        """Plain JSON-able mapping (the wire form of job progress reports)."""
        return {
            "executor": self.executor,
            "workers": self.workers,
            "num_shards": self.num_shards,
            "num_tuples": self.num_tuples,
            "elapsed": self.elapsed,
            "carried_over": self.carried_over,
            "carried_tuples": self.carried_tuples,
            "timings": [t.to_dict() for t in self.timings],
            "failures": [f.to_dict() for f in self.failures],
            "degraded": list(self.degraded),
            "pool_restarts": self.pool_restarts,
        }

    def summary(self) -> str:
        busy = sum(t.elapsed for t in self.timings)
        carried = (
            f", {self.carried_over} shards ({self.carried_tuples} tuples) carried over"
            if self.carried_over
            else ""
        )
        faults = (
            f", {len(self.failures)} failed attempts" if self.failures else ""
        )
        degraded = (
            f", degraded {' then '.join(self.degraded)}" if self.degraded else ""
        )
        restarts = (
            f", {self.pool_restarts} pool restarts" if self.pool_restarts else ""
        )
        return (
            f"{self.num_shards} shards over {self.num_tuples} tuples via "
            f"{self.executor}(workers={self.workers}): "
            f"{self.elapsed:.3f}s wall, {busy:.3f}s shard time"
            f"{carried}{faults}{restarts}{degraded}"
        )

    def __repr__(self) -> str:
        return f"ExecReport({self.summary()})"
