"""Async job runtime for long-running derivations.

``repro.jobs`` turns a blocking derivation into an observable, cancellable
background job:

* :class:`~repro.jobs.progress.ProgressTracker` consumes the derivation
  runtime's plan/shard hooks and produces
  :class:`~repro.jobs.progress.ProgressSnapshot` readings — shards planned
  / running / done, tuples completed, elapsed, throughput, ETA.
* :class:`~repro.jobs.manager.JobManager` runs submitted work on background
  worker threads, assigns job ids, records per-shard events, and supports
  cooperative cancellation checked at shard boundaries.

The service layer (:mod:`repro.api.service`) exposes the manager as
``POST /v1/derive?mode=async`` plus the ``/v1/jobs/...`` endpoints;
``Session.derive(progress=...)`` and ``repro derive --progress`` consume
the same tracker in-process.  See ``docs/jobs.md``.
"""

from .manager import JOB_STATES, Job, JobManager, UnknownJobError
from .progress import ProgressSnapshot, ProgressTracker
from .store import JobRecord, JobStore

__all__ = [
    "JOB_STATES",
    "Job",
    "JobManager",
    "UnknownJobError",
    "ProgressSnapshot",
    "ProgressTracker",
    "JobRecord",
    "JobStore",
]
