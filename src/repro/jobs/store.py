"""Durable job journal: SQLite-backed state for restartable servers.

A :class:`JobStore` makes ``repro serve --state-dir DIR`` survive its own
death.  Every async job is journaled as it runs:

* the **jobs** table records the submission (endpoint + request payload),
  every state transition, the plan's base seed, and the terminal
  error/result metadata;
* the **shards** table records each completed shard's blocks (pickled), so
  an interrupted derivation's finished work is never lost.

On restart, :meth:`load_resumable` returns the jobs that were ``queued`` or
``running`` when the process died; the service re-plans each one and hands
the journaled shards to the delta runtime as a
:class:`~repro.probdb.invalidate.CarryStore` — completed shards are carried
verbatim, only unfinished shards execute, and the journaled base seed pins
the plan so the resumed result is bit-identical to an uninterrupted run.

Writes happen on the job worker thread while reads come from HTTP handler
threads, so the store serializes all access behind one lock and one
connection (WAL mode keeps that cheap).  Journaling is best-effort by
contract: callers wrap writes so a full disk degrades durability, never a
running derivation.
"""

from __future__ import annotations

import json
import pickle
import sqlite3
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..probdb.blocks import TupleBlock
    from ..probdb.invalidate import CarryStore

__all__ = ["JobStore", "JobRecord"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    id         TEXT PRIMARY KEY,
    label      TEXT NOT NULL,
    state      TEXT NOT NULL,
    created_at REAL NOT NULL,
    updated_at REAL NOT NULL,
    endpoint   TEXT NOT NULL,
    request    TEXT NOT NULL,
    base_seed  INTEGER,
    error      TEXT,
    result     TEXT
);
CREATE TABLE IF NOT EXISTS shards (
    job_id  TEXT NOT NULL,
    key     TEXT NOT NULL,
    kind    TEXT NOT NULL,
    payload BLOB NOT NULL,
    PRIMARY KEY (job_id, key)
);
"""


class JobRecord:
    """One journaled job row, as plain attributes."""

    __slots__ = (
        "id", "label", "state", "created_at", "updated_at",
        "endpoint", "request", "base_seed", "error", "result",
    )

    def __init__(self, row: sqlite3.Row):
        self.id = row["id"]
        self.label = row["label"]
        self.state = row["state"]
        self.created_at = row["created_at"]
        self.updated_at = row["updated_at"]
        self.endpoint = row["endpoint"]
        self.request = json.loads(row["request"])
        self.base_seed = row["base_seed"]
        self.error = row["error"]
        self.result = None if row["result"] is None else json.loads(row["result"])

    def __repr__(self) -> str:
        return f"JobRecord({self.id!r}, state={self.state!r})"


class JobStore:
    """SQLite journal of jobs and their completed shards.

    One connection, one lock: SQLite serializes writers anyway, and the
    write rate (one row per shard) is far below what WAL sustains.
    """

    def __init__(self, state_dir: "Path | str"):
        self.state_dir = Path(state_dir)
        self.state_dir.mkdir(parents=True, exist_ok=True)
        self.path = self.state_dir / "jobs.sqlite3"
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
            self._conn.commit()

    # -- writes (worker thread) ---------------------------------------------

    def create_job(
        self,
        job_id: str,
        label: str,
        endpoint: str,
        request: dict[str, Any],
    ) -> None:
        """Journal a fresh submission (state ``queued``)."""
        now = time.time()
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO jobs "
                "(id, label, state, created_at, updated_at, endpoint, request)"
                " VALUES (?, ?, 'queued', ?, ?, ?, ?)",
                (job_id, label, now, now, endpoint, json.dumps(request)),
            )
            self._conn.commit()

    def set_state(
        self,
        job_id: str,
        state: str,
        error: str | None = None,
        result: dict[str, Any] | None = None,
    ) -> None:
        """Record a state transition (and terminal error/result metadata)."""
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET state = ?, updated_at = ?, error = ?, "
                "result = ? WHERE id = ?",
                (
                    state,
                    time.time(),
                    error,
                    None if result is None else json.dumps(result),
                    job_id,
                ),
            )
            self._conn.commit()

    def record_plan(self, job_id: str, base_seed: int | None) -> None:
        """Pin the plan's base seed — the key to bit-identical resume."""
        with self._lock:
            self._conn.execute(
                "UPDATE jobs SET base_seed = ?, updated_at = ? WHERE id = ?",
                (base_seed, time.time(), job_id),
            )
            self._conn.commit()

    def record_shard(
        self,
        job_id: str,
        key: str,
        kind: str,
        blocks: "Sequence[TupleBlock]",
    ) -> None:
        """Journal one completed shard's blocks (idempotent per key)."""
        payload = pickle.dumps(list(blocks), protocol=pickle.HIGHEST_PROTOCOL)
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO shards (job_id, key, kind, payload) "
                "VALUES (?, ?, ?, ?)",
                (job_id, key, kind, payload),
            )
            self._conn.commit()

    def clear_shards(self, job_id: str) -> None:
        """Drop a job's journaled shards (after a successful finish)."""
        with self._lock:
            self._conn.execute("DELETE FROM shards WHERE job_id = ?", (job_id,))
            self._conn.commit()

    # -- reads (boot / handler threads) --------------------------------------

    def get(self, job_id: str) -> JobRecord | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE id = ?", (job_id,)
            ).fetchone()
        return None if row is None else JobRecord(row)

    def load_jobs(self) -> list[JobRecord]:
        """Every journaled job, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs ORDER BY created_at"
            ).fetchall()
        return [JobRecord(r) for r in rows]

    def load_resumable(self) -> list[JobRecord]:
        """Jobs interrupted mid-flight: ``queued`` or ``running`` at death."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE state IN ('queued', 'running') "
                "ORDER BY created_at"
            ).fetchall()
        return [JobRecord(r) for r in rows]

    def load_shards(
        self, job_id: str
    ) -> "list[tuple[str, str, list[TupleBlock]]]":
        """The journaled ``(key, kind, blocks)`` rows of one job."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT key, kind, payload FROM shards WHERE job_id = ?",
                (job_id,),
            ).fetchall()
        return [
            (row["key"], row["kind"], pickle.loads(row["payload"]))
            for row in rows
        ]

    def load_carry(self, job_id: str) -> "CarryStore | None":
        """A :class:`~repro.probdb.invalidate.CarryStore` of the journaled
        shards, or None when nothing completed before the interruption."""
        from ..probdb.invalidate import CarryStore

        record = self.get(job_id)
        shards = self.load_shards(job_id)
        base_seed = None if record is None else record.base_seed
        if not shards and base_seed is None:
            return None
        # No completed shards but a journaled seed still pins the plan:
        # an empty carry re-derives everything under the original seed.
        return CarryStore.from_shards(shards, base_seed)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __repr__(self) -> str:
        return f"JobStore({str(self.path)!r})"
