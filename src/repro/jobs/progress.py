"""Shard-aware progress tracking for long-running derivations.

A :class:`ProgressTracker` plugs straight into the derivation runtime's
hooks — :meth:`ProgressTracker.on_plan` sees the
:class:`~repro.exec.base.ShardPlan` before execution, and
:meth:`ProgressTracker.on_shard` every completed
:class:`~repro.exec.base.ShardResult` — and turns the stream into
:class:`ProgressSnapshot` objects: shards planned / running / done, tuples
completed, elapsed wall-clock, throughput, and an ETA extrapolated from the
per-shard timings observed so far.

The tracker is thread-safe (hooks fire on executor collector threads, and
snapshots are read by HTTP handler threads) and transport-agnostic: the job
manager, ``Session.derive(progress=...)``, and the CLI progress bar all
consume the same snapshots.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..exec.base import ShardPlan, ShardResult

__all__ = ["ProgressSnapshot", "ProgressTracker"]


@dataclass(frozen=True)
class ProgressSnapshot:
    """One immutable reading of a derivation's progress.

    ``shards_running`` is an upper-bound estimate — completed work is exact
    (shards stream back only when finished), but the runtime does not report
    shard starts, so "running" is capped by the executor's worker count.
    ``eta_seconds`` is ``None`` until at least one shard has finished.
    """

    planned: bool = False
    shards_total: int = 0
    shards_done: int = 0
    shards_running: int = 0
    tuples_total: int = 0
    tuples_done: int = 0
    elapsed: float = 0.0
    #: completed tuples per second of wall-clock (0.0 before the first shard)
    tuples_per_second: float = 0.0
    eta_seconds: float | None = None
    #: shards a delta derivation served from the previous run (skipped work);
    #: totals above count only shards that actually execute
    carried_over: int = 0
    #: tuples covered by the carried shards
    carried_tuples: int = 0

    @property
    def shards_pending(self) -> int:
        return max(0, self.shards_total - self.shards_done - self.shards_running)

    @property
    def fraction_done(self) -> float:
        """Completed fraction in [0, 1], by tuples (1.0 for empty workloads)."""
        if self.tuples_total <= 0:
            return 1.0 if self.planned else 0.0
        return self.tuples_done / self.tuples_total

    @property
    def finished(self) -> bool:
        return self.planned and self.shards_done >= self.shards_total

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-able mapping (the wire form of job progress)."""
        return {
            "planned": self.planned,
            "shards_total": self.shards_total,
            "shards_done": self.shards_done,
            "shards_running": self.shards_running,
            "shards_pending": self.shards_pending,
            "tuples_total": self.tuples_total,
            "tuples_done": self.tuples_done,
            "fraction_done": self.fraction_done,
            "elapsed": self.elapsed,
            "tuples_per_second": self.tuples_per_second,
            "eta_seconds": self.eta_seconds,
            "carried_over": self.carried_over,
            "carried_tuples": self.carried_tuples,
        }

    def describe(self) -> str:
        """One-line human rendering (the CLI progress bar's text)."""
        if not self.planned:
            return "planning shards..."
        eta = "" if self.eta_seconds is None else f", eta {self.eta_seconds:.1f}s"
        carried = (
            f", {self.carried_over} shards carried" if self.carried_over else ""
        )
        return (
            f"{self.shards_done}/{self.shards_total} shards, "
            f"{self.tuples_done}/{self.tuples_total} tuples, "
            f"{self.elapsed:.1f}s elapsed{eta}{carried}"
        )


class ProgressTracker:
    """Accumulates plan + shard-result events into progress snapshots.

    ``on_event`` (when given) is called with ``("plan", snapshot, plan)``
    once and ``("shard", snapshot, result)`` per completed shard, after the
    tracker's own state has been updated — the fan-out point for job event
    streams, durable journals, and progress bars.  The tracker never raises
    through its hooks' caller, so a broken observer cannot corrupt a
    derivation.
    """

    def __init__(
        self,
        workers: int = 1,
        on_event: Callable[..., None] | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ):
        self._lock = threading.Lock()
        self._clock = clock
        self._workers = max(1, int(workers))
        self._on_event = on_event
        self._planned = False
        self._started_at: float | None = None
        self._shards_total = 0
        self._shards_done = 0
        self._tuples_total = 0
        self._tuples_done = 0
        #: summed (tuples, shard seconds) of completed shards, the ETA evidence
        self._tuples_timed = 0
        self._busy_seconds = 0.0
        self._carried_over = 0
        self._carried_tuples = 0

    # -- runtime hooks -----------------------------------------------------

    def on_plan(self, plan: "ShardPlan") -> None:
        """Record the plan: totals become known, the clock (re)starts.

        Also zeroes the completion accumulators, so one tracker can be
        reused across consecutive derivations.  Delta plans carry counts of
        shards served from the previous run; totals here cover only the
        shards that will actually execute.
        """
        with self._lock:
            self._planned = True
            self._started_at = self._clock()
            self._shards_total = len(plan)
            self._tuples_total = plan.num_tuples
            self._shards_done = 0
            self._tuples_done = 0
            self._tuples_timed = 0
            self._busy_seconds = 0.0
            self._carried_over = getattr(plan, "carried_over", 0)
            self._carried_tuples = getattr(plan, "carried_tuples", 0)
        self._emit("plan", plan)

    def on_shard(self, result: "ShardResult") -> None:
        """Record one completed shard."""
        with self._lock:
            self._shards_done += 1
            self._tuples_done += len(result)
            self._tuples_timed += len(result)
            self._busy_seconds += result.elapsed
        self._emit("shard", result)

    # -- observer contract ---------------------------------------------------
    # ``on_event`` is called as ``(kind, snapshot, source)`` where ``source``
    # is the ShardPlan for "plan" events and the ShardResult for "shard"
    # events — observers that only need the snapshot take ``*rest``.

    # -- readings ----------------------------------------------------------

    def snapshot(self) -> ProgressSnapshot:
        """The current progress reading (thread-safe, lock-free to hold)."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> ProgressSnapshot:
        elapsed = (
            0.0 if self._started_at is None else self._clock() - self._started_at
        )
        remaining_shards = self._shards_total - self._shards_done
        running = min(self._workers, remaining_shards)
        rate = self._tuples_done / elapsed if elapsed > 0 else 0.0
        eta = None
        if remaining_shards == 0 and self._planned:
            eta = 0.0
        elif self._shards_done:
            # Extrapolate from observed per-tuple shard cost, spread over
            # the workers that will serve the remaining shards.
            per_tuple = self._busy_seconds / max(1, self._tuples_timed)
            remaining_tuples = self._tuples_total - self._tuples_done
            eta = per_tuple * remaining_tuples / self._workers
        return ProgressSnapshot(
            planned=self._planned,
            shards_total=self._shards_total,
            shards_done=self._shards_done,
            shards_running=running,
            tuples_total=self._tuples_total,
            tuples_done=self._tuples_done,
            elapsed=elapsed,
            tuples_per_second=rate,
            eta_seconds=eta,
            carried_over=self._carried_over,
            carried_tuples=self._carried_tuples,
        )

    def _emit(self, kind: str, source: Any = None) -> None:
        if self._on_event is None:
            return
        snap = self.snapshot()
        try:
            self._on_event(kind, snap, source)
        except Exception:  # a broken observer must not kill the derivation
            pass

    def __repr__(self) -> str:
        return f"ProgressTracker({self.snapshot().describe()})"
