"""Background jobs for long-running derivations: submit, observe, cancel.

The HTTP service must not block a connection for the lifetime of a large
derivation.  :class:`JobManager` runs submitted work on background worker
threads (one by default, so async derivations against a shared
:class:`~repro.api.session.Session` serialize instead of racing its warm
engines), assigns every submission a job id, and tracks its lifecycle::

    queued ──▶ running ──▶ done
       │          ├──────▶ failed
       └──────────┴──────▶ cancelled

Each :class:`Job` owns a :class:`~repro.jobs.progress.ProgressTracker`
(plugged into the derivation runtime's plan/shard hooks by the work
callable), an append-only event log (one event per completed shard plus a
terminal event — the payload of the service's chunked ``/events`` stream),
and a cooperative cancellation flag.  Cancellation is *cooperative*: the
flag is polled by the runtime collector at shard boundaries, the derivation
raises :class:`~repro.exec.base.DerivationCancelled`, and the job lands in
``cancelled`` with its partial progress preserved — a cancelled job never
produces a result, partial or otherwise.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import uuid
from typing import TYPE_CHECKING, Any, Callable, Iterator

from ..exec.base import DerivationCancelled
from .progress import ProgressTracker

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .store import JobStore

__all__ = ["JOB_STATES", "Job", "JobManager", "UnknownJobError"]

#: Every state a job can report; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job cannot leave.
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})


class UnknownJobError(LookupError):
    """No job with the requested id (the service's 404)."""


class Job:
    """One submitted derivation: state, progress, events, result.

    Instances are created by :meth:`JobManager.submit`; all public
    accessors are thread-safe (the worker thread mutates, HTTP handler
    threads read).
    """

    def __init__(
        self,
        job_id: str,
        label: str,
        workers: int = 1,
        store: "JobStore | None" = None,
    ):
        self.id = job_id
        self.label = label
        self.created_at = time.time()
        #: durable journal (when the manager has one); all journal writes
        #: are best-effort — durability degrades, derivations never die
        self.store = store
        self.tracker = ProgressTracker(
            workers=workers, on_event=self._tracker_event
        )
        self._cond = threading.Condition()
        self._state = "queued"
        self._cancel = threading.Event()
        self._events: list[dict[str, Any]] = []
        self._result: Any = None
        self._error: str | None = None
        #: tracker snapshot frozen at the terminal transition
        self._final_progress: dict[str, Any] | None = None
        #: partial ExecReport.to_dict() of a cancelled derivation
        self.exec_report: dict[str, Any] | None = None

    # -- state -------------------------------------------------------------

    @property
    def state(self) -> str:
        with self._cond:
            return self._state

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    @property
    def error(self) -> str | None:
        with self._cond:
            return self._error

    def should_stop(self) -> bool:
        """The cooperative-cancellation hook handed to the runtime."""
        return self._cancel.is_set()

    def cancel(self) -> bool:
        """Request cancellation; returns False if already finished.

        A queued job is cancelled before it ever starts; a running one
        stops at the next shard boundary.
        """
        with self._cond:
            if self._state in TERMINAL_STATES:
                return False
        self._cancel.set()
        return True

    def result(self) -> Any:
        """The work's return value; raises unless the job is ``done``."""
        with self._cond:
            if self._state != "done":
                raise RuntimeError(
                    f"job {self.id} has no result (state: {self._state})"
                )
            return self._result

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state."""
        with self._cond:
            return self._cond.wait_for(
                lambda: self._state in TERMINAL_STATES, timeout=timeout
            )

    def status_dict(self) -> dict[str, Any]:
        """The JSON status payload (``GET /v1/jobs/{id}``).

        A finished job reports the progress snapshot frozen at its terminal
        transition, so ``elapsed`` stops ticking once the job is over.
        """
        with self._cond:
            state, error, events = self._state, self._error, len(self._events)
            progress = self._final_progress
        if progress is None:
            progress = self.tracker.snapshot().to_dict()
        status = {
            "job_id": self.id,
            "label": self.label,
            "state": state,
            "created_at": self.created_at,
            "cancel_requested": self.cancel_requested,
            "result_ready": state == "done",
            "error": error,
            "events": events,
            "progress": progress,
        }
        if self.exec_report is not None:
            status["exec_report"] = self.exec_report
        return status

    # -- events ------------------------------------------------------------

    def events(self, after: int = 0) -> list[dict[str, Any]]:
        """Events with ``seq > after`` recorded so far (non-blocking).

        Events are appended with contiguous ``seq`` values starting at 1,
        so ``seq > after`` is exactly the slice from index ``after`` on.
        """
        with self._cond:
            return list(self._events[max(0, after):])

    def iter_events(
        self,
        after: int = 0,
        timeout: float | None = None,
        heartbeat: float | None = None,
    ) -> Iterator[dict[str, Any]]:
        """Yield events as they land, ending after the terminal event.

        ``timeout`` bounds each wait for the *next* event; on expiry the
        iterator stops (the service uses this to bound a streaming
        response's lifetime).  ``heartbeat`` (seconds) yields a synthetic
        ``{"event": "heartbeat"}`` payload whenever the stream has been
        idle that long — keepalive for proxies and clients watching a slow
        shard.  Heartbeats are never appended to the event log and carry
        the last *delivered* ``seq``, so they cannot perturb real event
        sequence numbers; the per-event ``timeout`` clock still governs
        stream lifetime independently.
        """
        seq = max(0, after)
        waited = 0.0
        idle = 0.0
        while True:
            slice_ = timeout
            if heartbeat is not None:
                remaining_beat = heartbeat - idle
                slice_ = (
                    remaining_beat
                    if timeout is None
                    else min(timeout - waited, remaining_beat)
                )
                slice_ = max(slice_, 0.0)
            began = time.monotonic()
            with self._cond:
                ok = self._cond.wait_for(
                    lambda: len(self._events) > seq
                    or self._state in TERMINAL_STATES,
                    timeout=slice_,
                )
                fresh = list(self._events[seq:]) if ok else []
                terminal = ok and self._state in TERMINAL_STATES
            elapsed = time.monotonic() - began
            if not ok:
                waited += elapsed
                idle += elapsed
                if timeout is not None and waited >= timeout:
                    return
                if heartbeat is not None and idle >= heartbeat:
                    idle = 0.0
                    yield {"event": "heartbeat", "job_id": self.id, "seq": seq}
                continue
            waited = 0.0
            idle = 0.0
            for event in fresh:
                seq = event["seq"]
                yield event
            if terminal and (not fresh or fresh[-1]["event"] in TERMINAL_STATES):
                return

    def _tracker_event(self, kind: str, snapshot, source=None) -> None:
        payload: dict[str, Any] = {
            "event": kind,
            "job_id": self.id,
            "progress": snapshot.to_dict(),
        }
        if kind == "shard" and source is not None:
            payload["shard"] = source.summary_dict()
        self._journal(kind, source)
        self._append(payload)

    def _journal(self, kind: str, source) -> None:
        """Mirror plan/shard events into the durable store (best-effort)."""
        if self.store is None or source is None:
            return
        try:
            if kind == "plan":
                self.store.record_plan(
                    self.id, getattr(source, "base_seed", None)
                )
            elif kind == "shard":
                self.store.record_shard(
                    self.id, source.key, source.kind, source.blocks
                )
        except Exception:  # a full disk must not kill the derivation
            pass

    def _append(self, payload: dict[str, Any]) -> None:
        with self._cond:
            self._append_locked(payload)

    def _append_locked(self, payload: dict[str, Any]) -> None:
        payload["seq"] = len(self._events) + 1
        self._events.append(payload)
        self._cond.notify_all()

    # -- worker-side transitions -------------------------------------------

    def _begin(self) -> None:
        with self._cond:
            self._state = "running"
            self._cond.notify_all()
        self._journal_state("running")

    def _finish(
        self, state: str, result: Any = None, error: str | None = None
    ) -> None:
        assert state in TERMINAL_STATES, state
        progress = self.tracker.snapshot().to_dict()
        with self._cond:
            self._state = state
            self._result = result
            self._error = error
            self._final_progress = progress
            # State flip and terminal event land atomically, so an event
            # stream can never see a finished job without its final event.
            self._append_locked(
                {
                    "event": state,
                    "job_id": self.id,
                    "error": error,
                    "progress": progress,
                }
            )
        self._journal_state(state, error=error)

    def _journal_state(self, state: str, error: str | None = None) -> None:
        if self.store is None:
            return
        try:
            self.store.set_state(self.id, state, error=error)
            if state == "done":
                # Finished work will never be resumed; drop its shards.
                self.store.clear_shards(self.id)
        except Exception:  # journal loss degrades durability, nothing else
            pass

    def __repr__(self) -> str:
        return f"Job({self.id!r}, state={self.state!r})"


class JobManager:
    """Run submitted work on background workers, one job at a time each.

    ``max_finished`` bounds how many *terminal* jobs (and their results /
    event logs) the registry retains; the oldest finished jobs are evicted
    on submission and their ids become unknown (404 from the service).
    Queued and running jobs are never evicted.
    """

    def __init__(
        self,
        workers: int = 1,
        prefix: str = "job",
        max_finished: int = 64,
        store: "JobStore | None" = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_finished < 1:
            raise ValueError(f"max_finished must be positive, got {max_finished}")
        self._prefix = prefix
        self.store = store
        self._worker_count = workers
        self._max_finished = max_finished
        self._jobs: dict[str, Job] = {}
        self._queue: (
            "queue.SimpleQueue[tuple[Job, Callable[[Job], Any]] | None]"
        ) = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._counter = itertools.count(1)
        self._threads: list[threading.Thread] = []
        self._closed = False

    # -- submission --------------------------------------------------------

    def submit(
        self,
        work: Callable[[Job], Any],
        label: str = "derive",
        workers: int = 1,
        endpoint: str | None = None,
        request: dict[str, Any] | None = None,
        job_id: str | None = None,
    ) -> Job:
        """Queue ``work`` (called with its :class:`Job`) on a worker thread.

        ``workers`` is the *derivation's* executor pool size, used only to
        size the progress tracker's running-shards estimate.  When the
        manager has a durable store and the caller supplies ``endpoint`` +
        ``request`` (the JSON submission), the job is journaled so a killed
        server can resume it on restart.  ``job_id`` re-adopts a journaled
        id during that resume instead of minting a fresh one.
        """
        resumed = job_id is not None
        if job_id is None:
            job_id = (
                f"{self._prefix}-{next(self._counter)}-{uuid.uuid4().hex[:8]}"
            )
        journal = self.store is not None and (resumed or request is not None)
        job = Job(
            job_id,
            label=label,
            workers=workers,
            store=self.store if journal else None,
        )
        with self._lock:
            if self._closed:
                raise RuntimeError("JobManager is closed")
            self._jobs[job_id] = job
            self._evict_finished()
            self._ensure_workers()
        if journal:
            try:
                if resumed:
                    self.store.set_state(job_id, "queued")
                else:
                    self.store.create_job(
                        job_id, label, endpoint or label, request or {}
                    )
            except Exception:  # durability is best-effort
                pass
        self._queue.put((job, work))
        return job

    def _evict_finished(self) -> None:
        """Drop the oldest terminal jobs beyond the retention bound."""
        finished = [j for j in self._jobs.values() if j.finished]
        for stale in finished[: max(0, len(finished) - self._max_finished)]:
            del self._jobs[stale.id]

    def _ensure_workers(self) -> None:
        while len(self._threads) < self._worker_count:
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"repro-jobs-{len(self._threads)}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def _worker_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            job, work = item
            try:
                self._run_job(job, work)
            except Exception as exc:  # noqa: BLE001 - keep the worker alive
                # _run_job isolates failures *inside* the work callable; an
                # exception here means the job machinery itself broke (a
                # journal write, a state transition).  Mark the job failed
                # if it still can be, and keep serving the queue — a wedged
                # FIFO would silently strand every later submission.
                try:
                    if not job.finished:
                        job._finish(
                            "failed",
                            error=f"job runner error: "
                            f"{type(exc).__name__}: {exc}",
                        )
                except Exception:
                    pass

    def _run_job(self, job: Job, work: Callable[[Job], Any]) -> None:
        """Run one job through its lifecycle, isolating work failures."""
        if job.cancel_requested:
            job._finish("cancelled", error="cancelled before start")
            return
        job._begin()
        try:
            result = work(job)
        except DerivationCancelled as exc:
            # Preserve the partial per-shard report: what did complete,
            # with timings, before the boundary check stopped the run.
            if exc.report is not None:
                job.exec_report = exc.report.to_dict()
            job._finish("cancelled", error=str(exc))
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            report = getattr(exc, "report", None)
            if report is not None and hasattr(report, "to_dict"):
                # Executor failures (shard exhaustion, pool death) attach
                # their partial ExecReport; surface it like cancellation.
                job.exec_report = report.to_dict()
            job._finish("failed", error=f"{type(exc).__name__}: {exc}")
        else:
            job._finish("done", result=result)

    # -- lookup ------------------------------------------------------------

    @property
    def jobs(self) -> tuple[str, ...]:
        """Known job ids, oldest first."""
        with self._lock:
            return tuple(self._jobs)

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"no job {job_id!r}")
        return job

    def cancel(self, job_id: str) -> Job:
        """Request cancellation of a job by id (idempotent)."""
        job = self.get(job_id)
        job.cancel()
        return job

    # -- shutdown ----------------------------------------------------------

    def close(self, wait: bool = True, timeout: float = 10.0) -> None:
        """Stop accepting work and (optionally) join the worker threads."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._threads)
        for _ in threads:
            self._queue.put(None)
        if wait:
            for thread in threads:
                thread.join(timeout=timeout)

    def __repr__(self) -> str:
        return f"JobManager({len(self.jobs)} jobs, workers={self._worker_count})"
