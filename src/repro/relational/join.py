"""Primary-/foreign-key joins across incomplete relations.

Section I-B: "If the database contains multiple incomplete relations, we may
apply our techniques separately to each one.  In addition, we may exploit
correlations that hold across relations, by computing a primary-foreign key
join when appropriate."  This module provides that join: it combines two
relations on a key attribute into a single wide relation that the MRSL
learner can mine cross-relation correlations from.

Join semantics with missing values: a row whose foreign-key value is missing
cannot be matched and yields a result row whose right-hand attributes are
all missing (left outer join); joining on a missing primary key is rejected
because keys identify entities.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from .relation import Relation
from .schema import Attribute, Schema, SchemaError
from .tuples import MISSING_CODE

__all__ = ["pk_fk_join"]


def pk_fk_join(
    left: Relation,
    right: Relation,
    foreign_key: str,
    primary_key: str,
    drop_key: bool = False,
    prefix: str = "",
) -> Relation:
    """Left-outer join ``left.foreign_key = right.primary_key``.

    Parameters
    ----------
    left:
        The referencing relation; its rows drive the output (one output row
        per left row).
    right:
        The referenced relation.  ``primary_key`` must identify each row
        uniquely and must have no missing values.
    foreign_key, primary_key:
        Join attribute names.  Their domains must agree on the joined
        values (a foreign-key value outside the primary-key domain simply
        finds no partner, as with a dangling reference).
    drop_key:
        When true, the right relation's key column is omitted from the
        result (it duplicates the foreign key).
    prefix:
        Optional prefix applied to right-hand attribute names to avoid
        collisions (e.g. ``"dept_"``).

    Returns a relation over ``left.schema + right non-key attributes``.
    Unmatched or missing foreign keys produce missing right-hand values, so
    the MRSL learner treats them exactly like any other incompleteness.
    """
    fk_pos = left.schema.index(foreign_key)
    pk_pos = right.schema.index(primary_key)
    pk_attr = right.schema[pk_pos]

    right_codes = right.codes
    if (right_codes[:, pk_pos] == MISSING_CODE).any():
        raise SchemaError(
            f"primary key {primary_key!r} has missing values; keys must be complete"
        )
    seen = set()
    for code in right_codes[:, pk_pos]:
        if int(code) in seen:
            raise SchemaError(
                f"primary key {primary_key!r} is not unique "
                f"(value {pk_attr.value(int(code))!r} repeats)"
            )
        seen.add(int(code))

    # Map a left fk code to the matching right row index via values: the two
    # key attributes may order their domains differently.
    fk_attr = left.schema[fk_pos]
    value_to_row: dict[Hashable, int] = {}
    for row_idx, code in enumerate(right_codes[:, pk_pos]):
        value_to_row[pk_attr.value(int(code))] = row_idx

    right_keep = [
        i for i in range(len(right.schema)) if not (drop_key and i == pk_pos)
    ]
    out_attrs = list(left.schema.attributes)
    names_in_use = set(left.schema.names)
    for i in right_keep:
        attr = right.schema[i]
        name = prefix + attr.name
        if name in names_in_use:
            raise SchemaError(
                f"attribute name collision on {name!r}; pass a prefix"
            )
        names_in_use.add(name)
        out_attrs.append(Attribute(name, attr.domain))
    out_schema = Schema(out_attrs)

    left_codes = left.codes
    n = left_codes.shape[0]
    out = np.full((n, len(out_schema)), MISSING_CODE, dtype=np.int32)
    out[:, : left_codes.shape[1]] = left_codes
    for row in range(n):
        fk_code = int(left_codes[row, fk_pos])
        if fk_code == MISSING_CODE:
            continue
        partner = value_to_row.get(fk_attr.value(fk_code))
        if partner is None:
            continue  # dangling reference: right side stays missing
        for out_col, right_col in enumerate(right_keep):
            out[row, left_codes.shape[1] + out_col] = right_codes[
                partner, right_col
            ]
    return Relation.from_codes(out_schema, out)
