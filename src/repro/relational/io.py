"""CSV import/export for relations.

Missing values are serialized as ``"?"`` exactly as in the paper's Figure 1.
Schemas can be supplied explicitly or inferred from the file (every distinct
non-missing string in a column becomes a domain value, sorted for
determinism).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from .relation import Relation
from .schema import Attribute, Schema, SchemaError
from .tuples import MISSING, RelTuple

__all__ = ["read_csv", "write_csv", "infer_schema"]


def infer_schema(path: str | Path, delimiter: str = ",") -> Schema:
    """Infer a schema from a headed CSV file.

    Each column becomes a discrete attribute whose domain is the sorted set
    of distinct non-``"?"`` strings appearing in that column.
    """
    path = Path(path)
    with path.open(newline="") as f:
        reader = csv.reader(f, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path} is empty; cannot infer a schema") from None
        domains: list[set[str]] = [set() for _ in header]
        for row in reader:
            if len(row) != len(header):
                raise SchemaError(
                    f"{path}: row {reader.line_num} has {len(row)} fields, "
                    f"expected {len(header)}"
                )
            for col, value in enumerate(row):
                if value != MISSING:
                    domains[col].add(value)
    attributes = []
    for name, dom in zip(header, domains):
        if not dom:
            raise SchemaError(
                f"column {name!r} has no known values; cannot infer its domain"
            )
        attributes.append(Attribute(name, sorted(dom)))
    return Schema(attributes)


def read_csv(
    path: str | Path, schema: Schema | None = None, delimiter: str = ","
) -> Relation:
    """Read a headed CSV file into a :class:`Relation`.

    If ``schema`` is omitted it is inferred first (two passes over the file).
    The header must list exactly the schema's attribute names, in order.
    """
    path = Path(path)
    if schema is None:
        schema = infer_schema(path, delimiter=delimiter)
    with path.open(newline="") as f:
        reader = csv.reader(f, delimiter=delimiter)
        header = tuple(next(reader))
        if header != schema.names:
            raise SchemaError(
                f"{path}: header {header} does not match schema {schema.names}"
            )
        rows = [RelTuple.from_values(schema, row) for row in reader]
    return Relation(schema, rows)


def write_csv(relation: Relation, path: str | Path, delimiter: str = ",") -> None:
    """Write a relation to a headed CSV file, missing values as ``"?"``."""
    path = Path(path)
    with path.open("w", newline="") as f:
        writer = csv.writer(f, delimiter=delimiter)
        writer.writerow(relation.schema.names)
        for t in relation:
            writer.writerow(t.values())


def write_rows(
    schema: Schema, rows: Iterable[RelTuple], path: str | Path, delimiter: str = ","
) -> None:
    """Write an iterable of tuples without materializing a relation."""
    path = Path(path)
    with path.open("w", newline="") as f:
        writer = csv.writer(f, delimiter=delimiter)
        writer.writerow(schema.names)
        for t in rows:
            writer.writerow(t.values())
