"""Complete and incomplete tuples, matching and subsumption (Defs 2.1-2.4).

A tuple is an assignment of domain values to attributes of a schema.  An
*incomplete* tuple assigns values to a proper subset of the attributes; the
missing positions carry the sentinel :data:`MISSING` (rendered ``"?"`` as in
the paper).  A *complete* tuple (a "point") assigns a value to every
attribute.

Internally a tuple is a vector of integer codes with :data:`MISSING_CODE` in
the missing positions, which makes matching and support counting vectorizable
with numpy.
"""

from __future__ import annotations

from typing import Hashable, Iterator, Mapping, Sequence

import numpy as np

from .schema import Schema, SchemaError

__all__ = [
    "MISSING",
    "MISSING_CODE",
    "RelTuple",
    "make_tuple",
    "subsumes",
    "proper_subsumes",
]

#: User-facing sentinel for a missing attribute value, as in the paper.
MISSING = "?"

#: Internal integer code for a missing value.
MISSING_CODE = -1


class RelTuple:
    """A (possibly incomplete) tuple over a schema.

    Instances are immutable and hashable; equality is structural on
    ``(schema, codes)``.  The *complete portion* of a tuple is the set of
    positions holding real values (Def. 2.1).
    """

    __slots__ = ("schema", "codes", "_hash")

    def __init__(self, schema: Schema, codes: Sequence[int]):
        arr = np.asarray(codes, dtype=np.int32)
        if arr.ndim != 1 or arr.shape[0] != len(schema):
            raise SchemaError(
                f"tuple has {arr.shape} codes for a schema of {len(schema)} attributes"
            )
        for i, code in enumerate(arr):
            if code != MISSING_CODE and not 0 <= code < schema[i].cardinality:
                raise SchemaError(
                    f"code {int(code)} out of range for attribute {schema[i].name!r}"
                )
        arr.setflags(write=False)
        self.schema = schema
        self.codes = arr
        self._hash = hash((schema, arr.tobytes()))

    def __reduce__(self):
        # Rebuild through __init__ rather than restoring slots: the cached
        # ``_hash`` is salted per process (PYTHONHASHSEED), so a pickled
        # hash from another interpreter would break dict/set lookups —
        # e.g. blocks journaled by a killed server, or results shipped
        # back from spawned worker processes.
        return (self.__class__, (self.schema, self.codes))

    # -- construction -----------------------------------------------------

    @classmethod
    def from_values(
        cls, schema: Schema, values: Mapping[str, Hashable] | Sequence[Hashable]
    ) -> "RelTuple":
        """Build a tuple from a name->value mapping or a positional sequence.

        Values equal to :data:`MISSING` (or omitted from a mapping) are
        treated as missing.
        """
        codes = np.full(len(schema), MISSING_CODE, dtype=np.int32)
        if isinstance(values, Mapping):
            items = values.items()
            for name, value in items:
                if value == MISSING:
                    continue
                pos = schema.index(name)
                codes[pos] = schema[pos].code(value)
        else:
            seq = list(values)
            if len(seq) != len(schema):
                raise SchemaError(
                    f"expected {len(schema)} values, got {len(seq)}"
                )
            for pos, value in enumerate(seq):
                if value == MISSING:
                    continue
                codes[pos] = schema[pos].code(value)
        return cls(schema, codes)

    # -- basic properties --------------------------------------------------

    @property
    def is_complete(self) -> bool:
        """True if this tuple is a point (Def. 2.2)."""
        return bool((self.codes != MISSING_CODE).all())

    @property
    def complete_positions(self) -> tuple[int, ...]:
        """Positions of attributes with known values (the complete portion)."""
        return tuple(int(i) for i in np.flatnonzero(self.codes != MISSING_CODE))

    @property
    def missing_positions(self) -> tuple[int, ...]:
        """Positions of attributes whose value is missing."""
        return tuple(int(i) for i in np.flatnonzero(self.codes == MISSING_CODE))

    @property
    def num_missing(self) -> int:
        return int((self.codes == MISSING_CODE).sum())

    def value(self, name: str) -> Hashable:
        """Return the value of attribute ``name`` (or :data:`MISSING`)."""
        pos = self.schema.index(name)
        code = int(self.codes[pos])
        if code == MISSING_CODE:
            return MISSING
        return self.schema[pos].value(code)

    def values(self) -> tuple[Hashable, ...]:
        """Positional values, with :data:`MISSING` in missing slots."""
        return tuple(
            MISSING if code == MISSING_CODE else self.schema[pos].value(int(code))
            for pos, code in enumerate(self.codes)
        )

    def as_dict(self, include_missing: bool = False) -> dict[str, Hashable]:
        """Return ``{name: value}`` for the complete portion.

        With ``include_missing=True``, missing attributes map to ``"?"``.
        """
        out: dict[str, Hashable] = {}
        for pos, code in enumerate(self.codes):
            if code == MISSING_CODE:
                if include_missing:
                    out[self.schema[pos].name] = MISSING
            else:
                out[self.schema[pos].name] = self.schema[pos].value(int(code))
        return out

    # -- matching and subsumption ------------------------------------------

    def matches_point(self, point_codes: np.ndarray) -> bool:
        """True if the complete point ``point_codes`` matches this tuple.

        Per Def. 2.3, a point matches an incomplete tuple when they agree on
        the tuple's complete portion.
        """
        known = self.codes != MISSING_CODE
        return bool((point_codes[known] == self.codes[known]).all())

    def match_mask(self, points: np.ndarray) -> np.ndarray:
        """Boolean mask of rows in the ``(n, k)`` code matrix matching this tuple."""
        known = np.flatnonzero(self.codes != MISSING_CODE)
        if known.size == 0:
            return np.ones(points.shape[0], dtype=bool)
        return (points[:, known] == self.codes[known]).all(axis=1)

    def complete_with(self, assignment: Mapping[str, Hashable]) -> "RelTuple":
        """Return a copy with some missing attributes filled in."""
        codes = self.codes.copy()
        for name, value in assignment.items():
            pos = self.schema.index(name)
            if codes[pos] != MISSING_CODE:
                raise SchemaError(
                    f"attribute {name!r} already has a value in this tuple"
                )
            codes[pos] = self.schema[pos].code(value)
        return RelTuple(self.schema, codes)

    def restrict(self, positions: Sequence[int]) -> "RelTuple":
        """Return a tuple keeping only ``positions``; all others become missing."""
        codes = np.full(len(self.schema), MISSING_CODE, dtype=np.int32)
        for pos in positions:
            codes[pos] = self.codes[pos]
        return RelTuple(self.schema, codes)

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelTuple):
            return NotImplemented
        return self.schema == other.schema and bool(
            (self.codes == other.codes).all()
        )

    def __hash__(self) -> int:
        return self._hash

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.values())

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{attr.name}={val}" for attr, val in zip(self.schema, self.values())
        )
        return f"<{parts}>"


def make_tuple(
    schema: Schema, values: Mapping[str, Hashable] | Sequence[Hashable]
) -> RelTuple:
    """Convenience alias for :meth:`RelTuple.from_values`."""
    return RelTuple.from_values(schema, values)


def subsumes(t1: RelTuple, t2: RelTuple) -> bool:
    """True if ``t1`` subsumes ``t2`` or they are equal on known positions.

    Non-strict variant of Def. 2.4: every value assignment made by ``t1`` is
    also made by ``t2``.
    """
    if t1.schema != t2.schema:
        return False
    known = t1.codes != MISSING_CODE
    return bool((t2.codes[known] == t1.codes[known]).all())


def proper_subsumes(t1: RelTuple, t2: RelTuple) -> bool:
    """True if ``t1`` subsumes ``t2`` per Def. 2.4 (``t2 < t1``).

    The complete portion of ``t1`` must be a *proper* subset of the complete
    portion of ``t2``, with agreeing values.
    """
    if not subsumes(t1, t2):
        return False
    return t1.num_missing > t2.num_missing
