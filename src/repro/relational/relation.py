"""The Relation: a bag of complete and incomplete tuples over one schema.

Section II views the input relation ``R`` as two disjoint subsets: the
complete part ``Rc`` (the *points*) and the incomplete part ``Ri``.  This
module provides that split, plus vectorized support counting (Def. 2.3) on
the complete part, which is the primitive both Apriori mining and meta-rule
estimation are built on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .schema import Schema, SchemaError
from .tuples import MISSING, MISSING_CODE, RelTuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .updates import CellConflict, ChangeSet

__all__ = ["Relation", "ApplyOutcome", "LogEntry"]


@dataclass(frozen=True)
class ApplyOutcome:
    """What :meth:`Relation.apply_changeset` did, for invalidation and audit.

    Row indices refer to the relation *before* the ChangeSet was applied,
    except ``inserted_at`` which indexes the post-apply relation.  The
    ``*_before``/``*_after`` tuples carry the touched row contents so
    downstream caches can evict by tuple identity without re-diffing.
    """

    updated: tuple[int, ...]
    retracted: tuple[int, ...]
    inserted_at: tuple[int, ...]
    updated_before: tuple[RelTuple, ...]
    updated_after: tuple[RelTuple, ...]
    retracted_tuples: tuple[RelTuple, ...]
    inserted_tuples: tuple[RelTuple, ...]
    conflicts: tuple["CellConflict", ...]

    @property
    def num_touched(self) -> int:
        """Distinct pre-existing rows modified or removed, plus inserts."""
        return len(self.updated) + len(self.retracted) + len(self.inserted_tuples)

    @property
    def ties(self) -> tuple["CellConflict", ...]:
        """Conflicts trust could not separate (reported, never dropped)."""
        return tuple(c for c in self.conflicts if c.tie)

    def touched_tuples(self) -> tuple[RelTuple, ...]:
        """Old contents of every updated or retracted row (for cache eviction)."""
        return self.updated_before + self.retracted_tuples

    def to_dict(self) -> dict:
        return {
            "updated": list(self.updated),
            "retracted": list(self.retracted),
            "inserted_at": list(self.inserted_at),
            "conflicts": [c.to_dict() for c in self.conflicts],
            "ties": len(self.ties),
        }


@dataclass(frozen=True)
class LogEntry:
    """One append-only update-log record: the ChangeSet and its outcome."""

    changeset: "ChangeSet"
    outcome: ApplyOutcome


class Relation:
    """A relation over a :class:`~repro.relational.schema.Schema`.

    Tuples are stored as an ``(n, k)`` int32 code matrix with
    :data:`~repro.relational.tuples.MISSING_CODE` marking missing values.
    """

    def __init__(self, schema: Schema, tuples: Iterable[RelTuple] = ()):
        self.schema = schema
        rows = []
        for t in tuples:
            if t.schema != schema:
                raise SchemaError("tuple schema does not match relation schema")
            rows.append(t.codes)
        if rows:
            self._codes = np.vstack(rows).astype(np.int32)
        else:
            self._codes = np.empty((0, len(schema)), dtype=np.int32)
        self._update_log: list[LogEntry] = []

    # -- construction -------------------------------------------------------

    @classmethod
    def from_codes(cls, schema: Schema, codes: np.ndarray) -> "Relation":
        """Wrap an existing ``(n, k)`` integer code matrix (copied).

        Codes must be :data:`~repro.relational.tuples.MISSING_CODE` or lie
        within each attribute's cardinality.
        """
        arr = np.asarray(codes, dtype=np.int32)
        if arr.ndim != 2 or arr.shape[1] != len(schema):
            raise SchemaError(
                f"code matrix of shape {arr.shape} does not fit a "
                f"{len(schema)}-attribute schema"
            )
        for col, attr in enumerate(schema):
            column = arr[:, col]
            bad = (column != MISSING_CODE) & (
                (column < 0) | (column >= attr.cardinality)
            )
            if bad.any():
                raise SchemaError(
                    f"column {attr.name!r} holds code "
                    f"{int(column[bad][0])}, outside [0, {attr.cardinality})"
                )
        rel = cls(schema)
        rel._codes = arr.copy()
        return rel

    @classmethod
    def from_rows(
        cls,
        schema: Schema,
        rows: Iterable[Mapping[str, Hashable] | Sequence[Hashable]],
    ) -> "Relation":
        """Build a relation from dict-like or positional value rows."""
        return cls(schema, (RelTuple.from_values(schema, row) for row in rows))

    # -- basic accessors ------------------------------------------------------

    @property
    def codes(self) -> np.ndarray:
        """The raw ``(n, k)`` code matrix (read-only view)."""
        view = self._codes.view()
        view.setflags(write=False)
        return view

    def __len__(self) -> int:
        return self._codes.shape[0]

    def __iter__(self) -> Iterator[RelTuple]:
        for row in self._codes:
            yield RelTuple(self.schema, row)

    def __getitem__(self, index: int) -> RelTuple:
        return RelTuple(self.schema, self._codes[index])

    def append(self, t: RelTuple) -> None:
        """Append one tuple."""
        if t.schema != self.schema:
            raise SchemaError("tuple schema does not match relation schema")
        self._codes = np.vstack([self._codes, t.codes[None, :]])

    def extend(self, tuples: Iterable[RelTuple]) -> None:
        """Append many tuples."""
        rows = []
        for t in tuples:
            if t.schema != self.schema:
                raise SchemaError("tuple schema does not match relation schema")
            rows.append(t.codes)
        if rows:
            self._codes = np.vstack([self._codes, np.vstack(rows)])

    # -- updates (ChangeSet application) -------------------------------------

    @property
    def update_log(self) -> tuple[LogEntry, ...]:
        """Append-only history of every ChangeSet applied to this relation."""
        return tuple(self._update_log)

    def copy(self) -> "Relation":
        """An independent copy sharing nothing mutable (log included)."""
        rel = Relation.from_codes(self.schema, self._codes)
        rel._update_log = list(self._update_log)
        return rel

    def apply_changeset(
        self, changeset: "ChangeSet", trust: Sequence[str] = ()
    ) -> ApplyOutcome:
        """Apply a :class:`~repro.relational.updates.ChangeSet` in place.

        Conflicting writes to the same cell are resolved by the ``trust``
        ordering (earlier source ids are trusted more); unresolvable ties are
        applied first-writer-wins and *reported* in the returned outcome.
        Application order is updates, then retractions, then insertions; all
        op indices address rows of this relation before the call.  The
        ChangeSet and its outcome are appended to :attr:`update_log`.
        """
        from .updates import ChangeSet

        if not isinstance(changeset, ChangeSet):
            changeset = ChangeSet.from_dict(changeset)
        changeset.validate_against(len(self), len(self.schema))
        assignments, retracted, conflicts = changeset.resolve(trust)

        codes = self._codes.copy()
        updated_idx: list[int] = []
        updated_before: list[RelTuple] = []
        updated_after: list[RelTuple] = []
        for index in sorted(assignments):
            # Copy row codes: RelTuple wraps the array it is given, and the
            # in-place writes below must not retroactively mutate `before`.
            before = RelTuple(self.schema, codes[index].copy())
            for attr, value in assignments[index].items():
                pos = self.schema.index(attr)
                if value == MISSING:
                    codes[index, pos] = MISSING_CODE
                else:
                    codes[index, pos] = self.schema[pos].code(value)
            after = RelTuple(self.schema, codes[index].copy())
            if after != before:
                updated_idx.append(index)
                updated_before.append(before)
                updated_after.append(after)

        retracted_idx = sorted(retracted)
        retracted_tuples = tuple(
            RelTuple(self.schema, codes[i].copy()) for i in retracted_idx
        )
        keep = np.ones(codes.shape[0], dtype=bool)
        keep[retracted_idx] = False
        codes = codes[keep]

        inserted_tuples = tuple(
            RelTuple.from_values(self.schema, op.row)
            for op in changeset.by_kind("insert")
        )
        inserted_at = tuple(
            range(codes.shape[0], codes.shape[0] + len(inserted_tuples))
        )
        if inserted_tuples:
            codes = np.vstack([codes, np.vstack([t.codes for t in inserted_tuples])])

        self._codes = codes.astype(np.int32)
        outcome = ApplyOutcome(
            updated=tuple(updated_idx),
            retracted=tuple(retracted_idx),
            inserted_at=inserted_at,
            updated_before=tuple(updated_before),
            updated_after=tuple(updated_after),
            retracted_tuples=retracted_tuples,
            inserted_tuples=inserted_tuples,
            conflicts=conflicts,
        )
        self._update_log.append(LogEntry(changeset=changeset, outcome=outcome))
        return outcome

    # -- complete / incomplete split (Section II) ----------------------------

    def complete_mask(self) -> np.ndarray:
        """Boolean mask of rows that are points (no missing values)."""
        return (self._codes != MISSING_CODE).all(axis=1)

    def complete_part(self) -> "Relation":
        """``Rc``: the sub-relation of complete tuples."""
        return Relation.from_codes(self.schema, self._codes[self.complete_mask()])

    def incomplete_part(self) -> "Relation":
        """``Ri``: the sub-relation of incomplete tuples."""
        return Relation.from_codes(self.schema, self._codes[~self.complete_mask()])

    @property
    def num_complete(self) -> int:
        return int(self.complete_mask().sum())

    @property
    def num_incomplete(self) -> int:
        return len(self) - self.num_complete

    # -- support (Def. 2.3) ----------------------------------------------------

    def count_matches(self, t: RelTuple) -> int:
        """Number of points in this relation that match ``t``.

        Incomplete rows in the relation never match (only points support a
        tuple per Def. 2.3); call on :meth:`complete_part` output, or rely on
        the internal complete-row mask applied here.
        """
        mask = self.complete_mask() & t.match_mask(self._codes)
        return int(mask.sum())

    def support(self, t: RelTuple) -> float:
        """Fraction of points in the relation matching ``t`` (Def. 2.3)."""
        n = self.num_complete
        if n == 0:
            return 0.0
        return self.count_matches(t) / n

    # -- relational operators ------------------------------------------------------

    def select(self, predicate) -> "Relation":
        """Rows satisfying ``predicate`` (a ``RelTuple -> bool`` callable)."""
        keep = [i for i, t in enumerate(self) if predicate(t)]
        return Relation.from_codes(self.schema, self._codes[keep])

    def project(self, names: Sequence[str]) -> "Relation":
        """Projection (bag semantics) onto the named attributes."""
        positions = [self.schema.index(name) for name in names]
        sub_schema = Schema(self.schema[p] for p in positions)
        return Relation.from_codes(sub_schema, self._codes[:, positions])

    def distinct(self) -> "Relation":
        """Duplicate elimination (set semantics), preserving first-seen order."""
        seen = set()
        keep = []
        for i, row in enumerate(self._codes):
            key = row.tobytes()
            if key not in seen:
                seen.add(key)
                keep.append(i)
        return Relation.from_codes(self.schema, self._codes[keep])

    # -- misc -------------------------------------------------------------------

    def split(self, fraction: float, rng: np.random.Generator) -> tuple["Relation", "Relation"]:
        """Random row split: returns ``(first, second)`` with ``first`` holding
        a ``fraction`` share of the rows.

        Used by the experimental framework for the 90/10 train/test split.
        """
        if not 0.0 < fraction < 1.0:
            raise ValueError("fraction must be strictly between 0 and 1")
        n = len(self)
        perm = rng.permutation(n)
        cut = int(round(n * fraction))
        first = Relation.from_codes(self.schema, self._codes[perm[:cut]])
        second = Relation.from_codes(self.schema, self._codes[perm[cut:]])
        return first, second

    def __repr__(self) -> str:
        return (
            f"Relation({len(self)} tuples: {self.num_complete} complete, "
            f"{self.num_incomplete} incomplete, schema={self.schema.names})"
        )
