"""Discretization of continuous attributes into sub-range buckets.

Section II limits the model to discrete finite-valued attributes and proposes
"to break up the domains of continuous attributes into sub-ranges, treating
each sub-range as a discrete value".  This module implements that
preprocessing step with equal-width and equal-frequency (quantile) binning.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .schema import Attribute

__all__ = ["Bucketing", "equal_width_buckets", "equal_frequency_buckets"]


class Bucketing:
    """A mapping from a continuous domain to labelled sub-range buckets.

    The bucket with index ``i`` covers ``[edges[i], edges[i+1])``; the last
    bucket is closed on the right.  Labels are human-readable range strings
    and double as the discrete attribute's domain values.
    """

    def __init__(self, name: str, edges: Sequence[float]):
        edges_arr = np.asarray(edges, dtype=float)
        if edges_arr.ndim != 1 or edges_arr.size < 2:
            raise ValueError("need at least two bucket edges")
        if not (np.diff(edges_arr) > 0).all():
            raise ValueError("bucket edges must be strictly increasing")
        self.name = name
        self.edges = edges_arr
        self.labels = tuple(
            f"[{edges_arr[i]:g},{edges_arr[i + 1]:g})"
            for i in range(edges_arr.size - 1)
        )

    @property
    def num_buckets(self) -> int:
        return len(self.labels)

    def bucket_index(self, value: float) -> int:
        """Return the bucket index covering ``value``.

        Values outside the edge range are clamped into the first/last bucket,
        which matches how the paper treats out-of-range observations (every
        observation must map to some discrete value).
        """
        idx = int(np.searchsorted(self.edges, value, side="right") - 1)
        return min(max(idx, 0), self.num_buckets - 1)

    def discretize(self, value: float) -> str:
        """Return the label of the bucket covering ``value``."""
        return self.labels[self.bucket_index(value)]

    def discretize_many(self, values: Sequence[float]) -> list[str]:
        """Vectorized :meth:`discretize` over a sequence of values."""
        arr = np.asarray(values, dtype=float)
        idx = np.searchsorted(self.edges, arr, side="right") - 1
        idx = np.clip(idx, 0, self.num_buckets - 1)
        return [self.labels[i] for i in idx]

    def to_attribute(self) -> Attribute:
        """Build the discrete :class:`Attribute` induced by this bucketing."""
        return Attribute(self.name, self.labels)


def equal_width_buckets(
    name: str, values: Sequence[float], num_buckets: int
) -> Bucketing:
    """Bucket ``values`` into ``num_buckets`` equal-width sub-ranges."""
    if num_buckets < 1:
        raise ValueError("num_buckets must be positive")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bucket an empty value sequence")
    lo, hi = float(arr.min()), float(arr.max())
    if lo == hi:
        hi = lo + 1.0
    return Bucketing(name, np.linspace(lo, hi, num_buckets + 1))


def equal_frequency_buckets(
    name: str, values: Sequence[float], num_buckets: int
) -> Bucketing:
    """Bucket ``values`` into sub-ranges with (nearly) equal populations."""
    if num_buckets < 1:
        raise ValueError("num_buckets must be positive")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bucket an empty value sequence")
    quantiles = np.linspace(0.0, 1.0, num_buckets + 1)
    edges = np.quantile(arr, quantiles)
    edges = np.unique(edges)
    if edges.size < 2:
        edges = np.array([edges[0], edges[0] + 1.0])
    return Bucketing(name, edges)
