"""Relation schemas over discrete, finite-valued attributes.

The paper (Section II, "Database") assumes a single relation whose attributes
are discrete and finite-valued; continuous attributes are bucketed into
sub-ranges first (see :mod:`repro.relational.bucketing`).  A
:class:`Schema` is an ordered collection of :class:`Attribute` objects and is
shared by every tuple, relation, meta-rule and sampler in the library.

Values are arbitrary hashable Python objects (strings, ints, ...).  For speed,
all internal algorithms work on small integer *codes*; the schema owns the
value <-> code mapping for each attribute.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Sequence

__all__ = ["Attribute", "Schema", "SchemaError"]


class SchemaError(ValueError):
    """Raised for malformed schemas or values outside an attribute domain."""


class Attribute:
    """A named attribute with a finite, ordered domain of discrete values.

    Parameters
    ----------
    name:
        Attribute name, unique within a schema.
    domain:
        Ordered collection of distinct values.  Order is preserved and defines
        the integer code of each value (``domain[i]`` has code ``i``).
    """

    __slots__ = ("name", "domain", "_codes")

    def __init__(self, name: str, domain: Sequence[Hashable]):
        if not name:
            raise SchemaError("attribute name must be non-empty")
        values = tuple(domain)
        if not values:
            raise SchemaError(f"attribute {name!r} has an empty domain")
        codes = {value: code for code, value in enumerate(values)}
        if len(codes) != len(values):
            raise SchemaError(f"attribute {name!r} has duplicate domain values")
        self.name = name
        self.domain = values
        self._codes = codes

    @property
    def cardinality(self) -> int:
        """Number of values in the domain."""
        return len(self.domain)

    def code(self, value: Hashable) -> int:
        """Return the integer code of ``value``.

        Raises :class:`SchemaError` if the value is not in the domain.
        """
        try:
            return self._codes[value]
        except KeyError:
            raise SchemaError(
                f"value {value!r} is not in the domain of attribute {self.name!r}"
            ) from None

    def value(self, code: int) -> Hashable:
        """Return the domain value with integer code ``code``."""
        try:
            return self.domain[code]
        except IndexError:
            raise SchemaError(
                f"code {code} is out of range for attribute {self.name!r} "
                f"(cardinality {self.cardinality})"
            ) from None

    def __contains__(self, value: Hashable) -> bool:
        return value in self._codes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Attribute):
            return NotImplemented
        return self.name == other.name and self.domain == other.domain

    def __hash__(self) -> int:
        return hash((self.name, self.domain))

    def __repr__(self) -> str:
        return f"Attribute({self.name!r}, card={self.cardinality})"


class Schema:
    """An ordered, immutable collection of attributes.

    Supports lookup by name or position and exposes the cross-domain size
    used throughout the paper's evaluation ("dom. size" in Table I).
    """

    __slots__ = ("attributes", "_by_name")

    def __init__(self, attributes: Iterable[Attribute]):
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError("schema must contain at least one attribute")
        by_name = {attr.name: i for i, attr in enumerate(attrs)}
        if len(by_name) != len(attrs):
            raise SchemaError("schema has duplicate attribute names")
        self.attributes = attrs
        self._by_name = by_name

    @classmethod
    def from_domains(cls, domains: Mapping[str, Sequence[Hashable]]) -> "Schema":
        """Build a schema from a ``{name: domain}`` mapping (insertion order)."""
        return cls(Attribute(name, domain) for name, domain in domains.items())

    def __len__(self) -> int:
        return len(self.attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self.attributes)

    def __getitem__(self, key: int | str) -> Attribute:
        if isinstance(key, str):
            return self.attributes[self.index(key)]
        return self.attributes[key]

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def index(self, name: str) -> int:
        """Return the position of the attribute called ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no attribute named {name!r} in schema") from None

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(attr.name for attr in self.attributes)

    @property
    def cardinalities(self) -> tuple[int, ...]:
        return tuple(attr.cardinality for attr in self.attributes)

    def domain_size(self) -> int:
        """Size of the Cartesian product of all attribute domains.

        This is the "dom. size" column of Table I: the decisive scale
        parameter for multi-attribute inference.
        """
        size = 1
        for attr in self.attributes:
            size *= attr.cardinality
        return size

    def average_cardinality(self) -> float:
        """Mean attribute cardinality ("avg card" in Table I)."""
        return sum(self.cardinalities) / len(self.attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.attributes == other.attributes

    def __hash__(self) -> int:
        return hash(self.attributes)

    def __repr__(self) -> str:
        names = ", ".join(self.names)
        return f"Schema([{names}])"
