"""Relational substrate: schemas, tuples, relations, I/O and bucketing.

This package implements Section II's data model: a single relation over
discrete finite-valued attributes, split into a complete part ``Rc`` (points)
and an incomplete part ``Ri`` whose missing values are to be inferred.
"""

from .bucketing import Bucketing, equal_frequency_buckets, equal_width_buckets
from .io import infer_schema, read_csv, write_csv
from .join import pk_fk_join
from .relation import ApplyOutcome, LogEntry, Relation
from .schema import Attribute, Schema, SchemaError
from .tuples import MISSING, MISSING_CODE, RelTuple, make_tuple, proper_subsumes, subsumes
from .updates import (
    DEFAULT_SOURCE,
    CellConflict,
    ChangeSet,
    UpdateOp,
    insert,
    rank_source,
    retract,
    update,
)

__all__ = [
    "Attribute",
    "Schema",
    "SchemaError",
    "MISSING",
    "MISSING_CODE",
    "RelTuple",
    "make_tuple",
    "subsumes",
    "proper_subsumes",
    "Relation",
    "ApplyOutcome",
    "LogEntry",
    "ChangeSet",
    "UpdateOp",
    "CellConflict",
    "DEFAULT_SOURCE",
    "insert",
    "update",
    "retract",
    "rank_source",
    "read_csv",
    "write_csv",
    "infer_schema",
    "Bucketing",
    "equal_width_buckets",
    "equal_frequency_buckets",
    "pk_fk_join",
]
