"""Serializable change sets over relations, with trust-based conflict resolution.

The update model follows Youtopia-style cooperative update exchange: several
*sources* (peers, sensors, curators) emit evidence about the same base table
as a stream of operations, and the system must decide which evidence to
believe when two sources disagree about the same cell.  Disagreements are
resolved with Gatterbauer & Suciu-style *trust mappings*: an ordered list of
source ids where earlier sources are trusted more; sources absent from the
list rank below every listed source and are mutually tied.

A :class:`ChangeSet` is an ordered bag of :class:`UpdateOp` values:

* ``insert`` — append a new row (positional values, ``"?"`` allowed);
* ``update`` — assign values to cells of an existing row (``"?"`` unsets a
  cell, making the tuple incomplete there);
* ``retract`` — remove an existing row.

All row indices in one ChangeSet address the relation *before* the ChangeSet
is applied.  Application order is: cell updates (after conflict resolution),
then retractions, then insertions — so an ``update`` and a ``retract`` of
the same row form a row-level conflict, likewise resolved by trust.

Everything round-trips through plain JSON via ``to_dict``/``from_dict``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator, Mapping, Sequence

from .schema import SchemaError
from .tuples import MISSING

__all__ = [
    "OP_KINDS",
    "DEFAULT_SOURCE",
    "UpdateOp",
    "ChangeSet",
    "CellConflict",
    "insert",
    "update",
    "retract",
    "rank_source",
]

#: Recognised operation kinds, in application order.
OP_KINDS = ("insert", "update", "retract")

#: Source id attached to operations that do not declare one.
DEFAULT_SOURCE = "anonymous"


def rank_source(source: str, trust: Sequence[str]) -> int:
    """Rank of ``source`` under a trust ordering; lower is more trusted.

    Listed sources rank by position; unlisted sources share the rank one
    past the end of the list (least trusted, mutually tied).
    """
    try:
        return list(trust).index(source)
    except ValueError:
        return len(trust)


@dataclass(frozen=True)
class UpdateOp:
    """One base-table operation, tagged with the source that emitted it.

    Exactly one shape per kind:

    * ``insert`` — ``row`` holds positional values (length = schema arity);
    * ``update`` — ``index`` addresses a pre-apply row, ``cells`` maps
      attribute names to new values (``"?"`` clears the cell);
    * ``retract`` — ``index`` addresses the pre-apply row to drop.
    """

    kind: str
    source: str = DEFAULT_SOURCE
    row: tuple[Hashable, ...] | None = None
    index: int | None = None
    cells: tuple[tuple[str, Hashable], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {self.kind!r}; expected one of {OP_KINDS}")
        if not isinstance(self.source, str) or not self.source:
            raise ValueError("op source must be a non-empty string")
        if self.kind == "insert":
            if self.row is None:
                raise ValueError("insert op requires a row of values")
            object.__setattr__(self, "row", tuple(self.row))
        else:
            if self.index is None or int(self.index) < 0:
                raise ValueError(f"{self.kind} op requires a non-negative row index")
            object.__setattr__(self, "index", int(self.index))
        if self.kind == "update":
            cells = self.cells
            if isinstance(cells, Mapping):
                cells = tuple(cells.items())
            else:
                cells = tuple((str(k), v) for k, v in cells)
            if not cells:
                raise ValueError("update op requires at least one cell assignment")
            object.__setattr__(self, "cells", cells)
        elif self.cells:
            raise ValueError(f"{self.kind} op does not take cell assignments")

    @property
    def cell_map(self) -> dict[str, Hashable]:
        """The ``update`` cell assignments as a dict."""
        return dict(self.cells)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"op": self.kind, "source": self.source}
        if self.kind == "insert":
            out["row"] = list(self.row or ())
        else:
            out["index"] = self.index
        if self.kind == "update":
            out["set"] = {name: value for name, value in self.cells}
        return out

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "UpdateOp":
        kind = payload.get("op") or payload.get("kind")
        if kind is None:
            raise ValueError("op payload missing 'op' field")
        return cls(
            kind=str(kind),
            source=str(payload.get("source", DEFAULT_SOURCE)),
            row=tuple(payload["row"]) if "row" in payload else None,
            index=payload.get("index"),
            cells=tuple(dict(payload.get("set", payload.get("cells", {}))).items()),
        )


def insert(row: Sequence[Hashable], source: str = DEFAULT_SOURCE) -> UpdateOp:
    """Convenience constructor for an insert op."""
    return UpdateOp(kind="insert", source=source, row=tuple(row))


def update(
    index: int,
    cells: Mapping[str, Hashable],
    source: str = DEFAULT_SOURCE,
) -> UpdateOp:
    """Convenience constructor for a cell-update op."""
    return UpdateOp(kind="update", source=source, index=index, cells=tuple(cells.items()))


def retract(index: int, source: str = DEFAULT_SOURCE) -> UpdateOp:
    """Convenience constructor for a retract op."""
    return UpdateOp(kind="retract", source=source, index=index)


@dataclass(frozen=True)
class CellConflict:
    """Two or more sources disagreeing about the same cell (or row).

    ``attr`` is ``None`` for row-level conflicts (update vs. retract of the
    same row).  ``claims`` lists each source's claimed value in op order —
    a retract claims the sentinel ``"<retract>"``.  ``winner`` is the source
    whose claim was applied; ``tie`` is True when trust could not separate
    the top-ranked claimants (the first claimant in op order wins, but the
    tie is reported rather than silently dropped).
    """

    index: int
    attr: str | None
    claims: tuple[tuple[str, Hashable], ...]
    winner: str
    value: Hashable
    tie: bool

    def to_dict(self) -> dict[str, Any]:
        return {
            "index": self.index,
            "attr": self.attr,
            "claims": [[source, value] for source, value in self.claims],
            "winner": self.winner,
            "value": self.value,
            "tie": self.tie,
        }


#: Claim value used for retractions in row-level conflicts.
RETRACT_CLAIM = "<retract>"


class ChangeSet:
    """An ordered, serializable batch of base-table operations."""

    __slots__ = ("ops",)

    def __init__(self, ops: Iterable[UpdateOp] = ()):
        self.ops: tuple[UpdateOp, ...] = tuple(ops)
        for op in self.ops:
            if not isinstance(op, UpdateOp):
                raise TypeError(f"ChangeSet entries must be UpdateOp, got {type(op).__name__}")

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self) -> Iterator[UpdateOp]:
        return iter(self.ops)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChangeSet):
            return NotImplemented
        return self.ops == other.ops

    def __repr__(self) -> str:
        kinds = {k: sum(1 for op in self.ops if op.kind == k) for k in OP_KINDS}
        parts = ", ".join(f"{n} {k}" for k, n in kinds.items() if n)
        return f"ChangeSet({parts or 'empty'})"

    @property
    def sources(self) -> tuple[str, ...]:
        """Distinct source ids, in first-appearance order."""
        seen: dict[str, None] = {}
        for op in self.ops:
            seen.setdefault(op.source, None)
        return tuple(seen)

    def by_kind(self, kind: str) -> tuple[UpdateOp, ...]:
        if kind not in OP_KINDS:
            raise ValueError(f"unknown op kind {kind!r}")
        return tuple(op for op in self.ops if op.kind == kind)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {"ops": [op.to_dict() for op in self.ops]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChangeSet":
        ops = payload.get("ops")
        if ops is None:
            raise ValueError("ChangeSet payload missing 'ops' list")
        return cls(UpdateOp.from_dict(op) for op in ops)

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ChangeSet":
        return cls.from_dict(json.loads(text))

    # -- conflict resolution ------------------------------------------------

    def resolve(
        self, trust: Sequence[str] = ()
    ) -> tuple[dict[int, dict[str, Hashable]], set[int], tuple[CellConflict, ...]]:
        """Resolve this ChangeSet's updates/retracts under a trust ordering.

        Returns ``(assignments, retracted, conflicts)``:

        * ``assignments`` — per pre-apply row index, the winning
          ``{attr: value}`` cell writes;
        * ``retracted`` — row indices whose retraction won;
        * ``conflicts`` — every cell or row contested by more than one
          distinct claim, with the winner and whether trust tied.

        Resolution is per cell: the most trusted source wins; among claims
        of equal trust the earliest op in ChangeSet order wins and the tie
        is reported.  Sources agreeing on the same value do not conflict.
        A retract competes with every update claim on its row.
        """
        # Gather claims: (index, attr) -> [(source, value)] in op order.
        cell_claims: dict[tuple[int, str], list[tuple[str, Hashable]]] = {}
        retract_claims: dict[int, list[str]] = {}
        for op in self.ops:
            if op.kind == "update":
                assert op.index is not None
                for attr, value in op.cells:
                    cell_claims.setdefault((int(op.index), attr), []).append(
                        (op.source, value)
                    )
            elif op.kind == "retract":
                assert op.index is not None
                retract_claims.setdefault(int(op.index), []).append(op.source)

        conflicts: list[CellConflict] = []
        assignments: dict[int, dict[str, Hashable]] = {}
        retracted: set[int] = set()

        def _pick(
            claims: Sequence[tuple[str, Hashable]]
        ) -> tuple[str, Hashable, bool, bool]:
            """Return (winner_source, value, contested, tie)."""
            distinct_values = {v for _, v in claims}
            best = min(range(len(claims)), key=lambda i: rank_source(claims[i][0], trust))
            best_rank = rank_source(claims[best][0], trust)
            top = [c for c in claims if rank_source(c[0], trust) == best_rank]
            tie = len({v for _, v in top}) > 1
            return claims[best][0], claims[best][1], len(distinct_values) > 1, tie

        # Row-level: retract vs. update on the same row.
        for index, sources in retract_claims.items():
            row_updates = [
                (src, f"{attr}={value}")
                for (idx, attr), claims in cell_claims.items()
                if idx == index
                for src, value in claims
            ]
            claims = [(src, RETRACT_CLAIM) for src in sources] + row_updates
            winner, value, contested, tie = _pick(claims)
            retract_wins = value == RETRACT_CLAIM and winner in sources
            if contested:
                conflicts.append(
                    CellConflict(
                        index=index,
                        attr=None,
                        claims=tuple(claims),
                        winner=winner,
                        value=value,
                        tie=tie,
                    )
                )
            if retract_wins or not row_updates:
                retracted.add(index)

        # Cell-level resolution for rows that survive.
        for (index, attr), claims in cell_claims.items():
            if index in retracted:
                continue
            winner, value, contested, tie = _pick(claims)
            if contested:
                conflicts.append(
                    CellConflict(
                        index=index,
                        attr=attr,
                        claims=tuple(claims),
                        winner=winner,
                        value=value,
                        tie=tie,
                    )
                )
            assignments.setdefault(index, {})[attr] = value

        return assignments, retracted, tuple(conflicts)

    def validate_against(self, num_rows: int, arity: int) -> None:
        """Check indices and insert arities against a relation's shape."""
        for op in self.ops:
            if op.kind == "insert":
                assert op.row is not None
                if len(op.row) != arity:
                    raise SchemaError(
                        f"insert row has {len(op.row)} values for a "
                        f"{arity}-attribute schema"
                    )
            else:
                assert op.index is not None
                if op.index >= num_rows:
                    raise IndexError(
                        f"{op.kind} op addresses row {op.index} of a "
                        f"{num_rows}-row relation"
                    )
