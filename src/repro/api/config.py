"""Typed pipeline configuration: one source of truth for every knob.

Before this module existed, each entry point (the derive pipeline, the lazy
deriver, the query engine, the CLI) declared its own defaults for the same
nine knobs, and they drifted — the CLI's ``--burn-in`` defaulted to 200
while the library defaulted to 100.  :class:`DeriveConfig` now owns the
defaults; every consumer reads them from here, and the frozen dataclass
round-trips through plain JSON so a configuration can arrive over a wire,
live in a file, or be logged next to the results it produced.

Legacy keyword arguments keep working everywhere via :func:`resolve_config`:
entry points accept both a ``config`` object and the historical kwargs, with
explicit kwargs overriding config fields.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, fields
from typing import Any, Mapping

from ..core.engine import DEFAULT_ENGINE, validate_engine
from ..core.inference import VoterChoice, VotingScheme
from ..core.itemsets import DEFAULT_MAX_ITEMSETS
from ..core.tuple_dag import STRATEGIES
from ..exec.base import (
    DEFAULT_EXECUTOR,
    DEFAULT_FAILURE_POLICY,
    DEFAULT_WORKERS,
    validate_executor,
    validate_failure_policy,
    validate_workers,
)

__all__ = ["DeriveConfig", "resolve_config"]


@dataclass(frozen=True)
class DeriveConfig:
    """Every knob of the derive pipeline, validated and JSON-serializable.

    Fields map one-to-one onto the paper's parameters: ``support_threshold``
    and ``max_itemsets`` drive Algorithm 1 mining, ``v_choice``/``v_scheme``
    configure Algorithm 2 voting, ``num_samples``/``burn_in``/``strategy``
    set the Algorithm 3 Gibbs workload, ``seed`` fixes the samplers, and
    ``engine`` picks the compiled or naive inference path.  ``executor``
    and ``workers`` select the derivation runtime (:mod:`repro.exec`):
    serial, thread-pool, or process-pool shard execution — results are
    bit-identical across all of them for any worker count.

    ``gibbs_vectorized`` (default on) serves multi-missing shards with the
    vectorized lock-step ensemble kernel
    (:class:`~repro.core.gibbs.GibbsEnsemble`); turning it off restores
    the scalar tuple-DAG sampler as a correctness oracle (same admissible
    posterior, different — equally valid — seeded sample sets).
    ``gibbs_chains`` runs that many independent chains per multi-missing
    tuple in the ensemble and pools their draws into the same
    ``num_samples`` budget — more starting points, better mixing, at
    effectively the same wall-clock.

    ``trust`` and ``update_policy`` govern base-table updates
    (``Session.apply_updates`` / ``repro update``): ``trust`` is the
    ordered source-priority list resolving conflicting ChangeSet writes to
    the same cell (earlier ids are trusted more, unlisted sources rank
    last), and ``update_policy`` picks incremental re-derivation
    (``"delta"``, the default — untouched blocks carry over verbatim) or a
    from-scratch re-derive (``"full"``).

    The fault-tolerance knobs: each shard gets ``shard_retries`` retries
    with deterministic exponential backoff, ``shard_deadline`` (seconds,
    None = unlimited) bounds one shard attempt before it is treated as
    hung, and ``failure_policy`` decides what an unrecoverable executor
    failure does — ``"strict"`` (default) raises with the partial report
    attached, ``"degrade"`` falls back process→thread→serial and keeps
    deriving.  Retried and degraded runs stay bit-identical to clean runs
    because shard seeds are content-keyed.
    """

    support_threshold: float = 0.01
    max_itemsets: int = DEFAULT_MAX_ITEMSETS
    v_choice: str = VoterChoice.BEST.value
    v_scheme: str = VotingScheme.AVERAGED.value
    num_samples: int = 2000
    burn_in: int = 100
    strategy: str = "tuple_dag"
    seed: int | None = None
    engine: str = DEFAULT_ENGINE
    executor: str = DEFAULT_EXECUTOR
    workers: int = DEFAULT_WORKERS
    gibbs_chains: int = 1
    gibbs_vectorized: bool = True
    trust: tuple[str, ...] = ()
    update_policy: str = "delta"
    failure_policy: str = DEFAULT_FAILURE_POLICY
    shard_retries: int = 1
    shard_deadline: float | None = None

    def __post_init__(self) -> None:
        set_ = object.__setattr__  # frozen dataclass: normalize in place
        set_(self, "support_threshold", float(self.support_threshold))
        set_(self, "max_itemsets", int(self.max_itemsets))
        set_(self, "v_choice", VoterChoice(self.v_choice).value)
        set_(self, "v_scheme", VotingScheme(self.v_scheme).value)
        set_(self, "num_samples", int(self.num_samples))
        set_(self, "burn_in", int(self.burn_in))
        set_(self, "engine", validate_engine(self.engine))
        set_(self, "executor", validate_executor(self.executor))
        set_(self, "workers", validate_workers(self.workers))
        set_(self, "gibbs_chains", int(self.gibbs_chains))
        if not isinstance(self.gibbs_vectorized, bool):
            # bool("off") is True — reject string spellings outright
            # rather than silently running the wrong kernel.
            raise ValueError(
                f"gibbs_vectorized must be a boolean, "
                f"got {self.gibbs_vectorized!r}"
            )
        if self.seed is not None:
            set_(self, "seed", int(self.seed))
        if not 0.0 <= self.support_threshold <= 1.0:
            raise ValueError(
                f"support_threshold must lie in [0, 1], "
                f"got {self.support_threshold!r}"
            )
        if self.max_itemsets < 1:
            raise ValueError("max_itemsets must be positive")
        if self.num_samples < 1:
            raise ValueError("num_samples must be positive")
        if self.burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        if self.gibbs_chains < 1:
            raise ValueError("gibbs_chains must be positive")
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got {self.strategy!r}"
            )
        if isinstance(self.trust, str):
            raise ValueError(
                "trust must be a sequence of source ids, not a bare string"
            )
        set_(self, "trust", tuple(str(s) for s in self.trust))
        if self.update_policy not in ("delta", "full"):
            raise ValueError(
                f"update_policy must be 'delta' or 'full', "
                f"got {self.update_policy!r}"
            )
        set_(self, "failure_policy", validate_failure_policy(self.failure_policy))
        set_(self, "shard_retries", int(self.shard_retries))
        if self.shard_retries < 0:
            raise ValueError("shard_retries must be non-negative")
        if self.shard_deadline is not None:
            set_(self, "shard_deadline", float(self.shard_deadline))
            if self.shard_deadline <= 0:
                raise ValueError(
                    "shard_deadline must be positive (or None for unlimited)"
                )

    @property
    def parallelism(self) -> int:
        """Worker count the executor will actually run (serial is always 1).

        ``workers`` is legal alongside ``executor="serial"`` but ignored by
        the serial executor; progress estimates (running shards, ETA) must
        size themselves from this, not from raw ``workers``.
        """
        return 1 if self.executor == "serial" else self.workers

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-able mapping; inverse of :meth:`from_dict`."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DeriveConfig":
        """Rebuild a config from :meth:`to_dict` output (or any subset)."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown config keys {sorted(unknown)}; "
                f"valid keys are {sorted(known)}"
            )
        return cls(**dict(data))

    def replacing(self, **changes: Any) -> "DeriveConfig":
        """A copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)


_FIELD_NAMES = frozenset(f.name for f in fields(DeriveConfig))


def resolve_config(
    config: "DeriveConfig | Mapping[str, Any] | None" = None,
    **overrides: Any,
) -> DeriveConfig:
    """Merge a config (object, dict, or None) with legacy keyword overrides.

    ``None``-valued overrides mean "not given" and are ignored, which is what
    lets every entry point keep its historical keyword signature while
    sourcing defaults from :class:`DeriveConfig`.
    """
    if config is None:
        cfg = DeriveConfig()
    elif isinstance(config, DeriveConfig):
        cfg = config
    elif isinstance(config, Mapping):
        cfg = DeriveConfig.from_dict(config)
    else:
        raise TypeError(
            f"config must be a DeriveConfig, mapping, or None, "
            f"got {type(config).__name__}"
        )
    changes = {k: v for k, v in overrides.items() if v is not None}
    bad = set(changes) - _FIELD_NAMES
    if bad:
        raise TypeError(f"unknown config overrides {sorted(bad)}")
    return cfg.replacing(**changes) if changes else cfg
