"""The unified public API surface: typed configs, sessions, queries, service.

This package is the learn-once / serve-many front door to the pipeline:

* :mod:`.config`  — :class:`DeriveConfig`, the single source of truth for
  every pipeline knob, JSON round-trippable;
* :mod:`.query`   — the serializable predicate/query AST (:class:`Q`,
  :class:`SelectionQuery`, :class:`SelfJoinQuery`) that compiles to the
  lineage :class:`~repro.probdb.engine.QueryEngine`;
* :mod:`.session` — the :class:`Session` facade: named model registry, one
  warm batch-inference engine per model, derive/infer/query entry points;
* :mod:`.service` — typed request/response dataclasses plus
  :class:`InferenceService`, the JSON dispatch layer;
* :mod:`.http`    — a stdlib HTTP front-end (``repro serve``).

Submodules other than :mod:`.config` are loaded lazily (PEP 562):
``repro.core.derive`` imports :mod:`.config` while ``repro.core`` is still
initializing, and an eager import of :mod:`.session` here would close that
cycle against a partially-initialized module.
"""

from importlib import import_module

from .config import DeriveConfig, resolve_config

#: name -> defining submodule, resolved on first attribute access.
_LAZY = {
    "Q": ".query",
    "Predicate": ".query",
    "Cmp": ".query",
    "In": ".query",
    "And": ".query",
    "Or": ".query",
    "Not": ".query",
    "QuerySpec": ".query",
    "SelectionQuery": ".query",
    "SelfJoinQuery": ".query",
    "predicate_from_dict": ".query",
    "query_from_dict": ".query",
    "Session": ".session",
    "SessionError": ".session",
    "DEFAULT_NAME": ".session",
    "InferenceService": ".service",
    "ServiceError": ".service",
    "LearnRequest": ".service",
    "LearnResponse": ".service",
    "DeriveRequest": ".service",
    "DeriveResponse": ".service",
    "AsyncDeriveResponse": ".service",
    "QueryRequest": ".service",
    "QueryResponse": ".service",
    "InferRequest": ".service",
    "InferResponse": ".service",
    "make_server": ".http",
    "serve": ".http",
}

__all__ = ["DeriveConfig", "resolve_config", *_LAZY]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module, __name__), name)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY))
