"""The :class:`Session` facade: learn an MRSL once, serve it many times.

A session holds one :class:`~repro.api.config.DeriveConfig`, a registry of
named MRSL models (each with a warm, CPD-cache-carrying
:class:`~repro.core.engine.BatchInferenceEngine`), and a registry of named
derived databases.  The three serving entry points are:

* :meth:`Session.derive`      — relation in, probabilistic database out,
  reusing the registered model and warm engine instead of re-learning;
* :meth:`Session.infer_batch` — Algorithm 2 distributions for a batch of
  single-missing tuples straight from the warm engine;
* :meth:`Session.query`       — evaluate a lambda-free, serializable query
  spec (or a plain dict of one) against a derived database.

Models persist through :mod:`repro.core.persistence`
(:meth:`Session.save_model` / :meth:`Session.load_model`), so the off-line
learning step and the on-line serving step can live in different processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

import numpy as np

from ..core.derive import DeriveResult, derive_probabilistic_database
from ..core.engine import BatchInferenceEngine
from ..core.learning import learn_mrsl
from ..core.mrsl import MRSLModel
from ..core.persistence import load_model as _load_model
from ..core.persistence import save_model as _save_model
from ..jobs.progress import ProgressSnapshot, ProgressTracker
from ..probdb.database import ProbabilisticDatabase
from ..probdb.distribution import Distribution
from ..probdb.engine import QueryEngine, ResultTuple
from ..relational.relation import ApplyOutcome, Relation
from ..relational.tuples import RelTuple
from ..relational.updates import ChangeSet
from .config import DeriveConfig, resolve_config
from .query import Predicate, QuerySpec, SelectionQuery, query_from_dict

__all__ = ["DEFAULT_NAME", "Session", "SessionError", "UpdateResult"]

#: Registry key used when the caller does not name a model or database.
DEFAULT_NAME = "default"


class SessionError(LookupError):
    """An unknown model or database name was referenced."""


@dataclass
class UpdateResult:
    """What one :meth:`Session.apply_updates` call did.

    ``outcome`` is the relational-level application record (rows touched,
    conflicts, ties); ``result`` is the re-derived database now registered
    under ``name``; ``policy`` says whether the delta or the full path
    served it.
    """

    name: str
    policy: str
    outcome: ApplyOutcome
    result: DeriveResult

    @property
    def conflicts(self):
        return self.outcome.conflicts

    @property
    def carried_over(self) -> int:
        report = self.result.exec_report
        return 0 if report is None else report.carried_over


class Session:
    """Learn-once / serve-many facade over the derivation pipeline."""

    def __init__(
        self, config: DeriveConfig | Mapping[str, Any] | None = None
    ):
        self.config = resolve_config(config)
        self._models: dict[str, MRSLModel] = {}
        self._engines: dict[str, BatchInferenceEngine] = {}
        self._results: dict[str, DeriveResult] = {}
        self._relations: dict[str, Relation] = {}

    def _per_call_config(
        self, config: DeriveConfig | Mapping[str, Any] | None
    ) -> DeriveConfig:
        """Resolve a per-call override against the *session's* config.

        A mapping is a partial override: unspecified knobs keep their
        session values, not the global defaults.
        """
        if config is None:
            return self.config
        if isinstance(config, DeriveConfig):
            return config
        return resolve_config(self.config, **dict(config))

    def effective_config(
        self,
        config: DeriveConfig | Mapping[str, Any] | None = None,
        executor: str | None = None,
        workers: int | None = None,
        gibbs_chains: int | None = None,
        gibbs_vectorized: bool | None = None,
    ) -> DeriveConfig:
        """The config a derive call with these arguments actually runs under.

        Resolution order: explicit keyword overrides (``executor``,
        ``workers``, ``gibbs_chains``, ``gibbs_vectorized``) beat
        ``config`` entries, which beat the session's config.
        :meth:`derive` uses this internally; the service layer uses it to
        size progress estimates with the same worker count the derivation
        will use.
        """
        cfg = self._per_call_config(config)
        overrides = {
            k: v
            for k, v in (
                ("executor", executor),
                ("workers", workers),
                ("gibbs_chains", gibbs_chains),
                ("gibbs_vectorized", gibbs_vectorized),
            )
            if v is not None
        }
        if overrides:
            cfg = resolve_config(cfg, **overrides)
        return cfg

    # -- model registry ----------------------------------------------------

    @property
    def models(self) -> tuple[str, ...]:
        """Registered model names, sorted."""
        return tuple(sorted(self._models))

    @property
    def databases(self) -> tuple[str, ...]:
        """Derived database names, sorted."""
        return tuple(sorted(self._results))

    def register_model(self, name: str, model: MRSLModel) -> MRSLModel:
        """Register (or replace) a model; its warm engine rebuilds lazily."""
        self._models[name] = model
        self._engines.pop(name, None)
        return model

    def model(self, name: str = DEFAULT_NAME) -> MRSLModel:
        try:
            return self._models[name]
        except KeyError:
            raise SessionError(
                f"no model {name!r}; registered: {list(self.models)}"
            ) from None

    def learn(
        self,
        relation: Relation,
        model: str = DEFAULT_NAME,
        config: DeriveConfig | Mapping[str, Any] | None = None,
    ) -> MRSLModel:
        """Run Algorithm 1 on ``relation`` and register the result."""
        cfg = self._per_call_config(config)
        result = learn_mrsl(
            relation,
            support_threshold=cfg.support_threshold,
            max_itemsets=cfg.max_itemsets,
        )
        return self.register_model(model, result.model)

    def save_model(self, path: str | Path, model: str = DEFAULT_NAME) -> None:
        """Persist a registered model as JSON (``core.persistence``)."""
        _save_model(self.model(model), path)

    def load_model(
        self, path: str | Path, model: str = DEFAULT_NAME
    ) -> MRSLModel:
        """Load a persisted model and register it under ``model``."""
        return self.register_model(model, _load_model(path))

    def engine(self, model: str = DEFAULT_NAME) -> BatchInferenceEngine:
        """The warm batch-inference engine for a registered model.

        Built on first use and kept for the session's lifetime, so its
        compiled structures and CPD cache are shared by every derive and
        infer call that touches the model.
        """
        engine = self._engines.get(model)
        if engine is None:
            engine = BatchInferenceEngine(
                self.model(model), self.config.v_choice, self.config.v_scheme
            )
            self._engines[model] = engine
        return engine

    # -- serving entry points ----------------------------------------------

    def derive(
        self,
        relation: Relation,
        name: str = DEFAULT_NAME,
        model: str | None = None,
        config: DeriveConfig | Mapping[str, Any] | None = None,
        rng: np.random.Generator | int | None = None,
        executor: str | None = None,
        workers: int | None = None,
        gibbs_chains: int | None = None,
        gibbs_vectorized: bool | None = None,
        progress: (
            ProgressTracker | Callable[[ProgressSnapshot], None] | None
        ) = None,
        cancel: Callable[[], bool] | None = None,
        resume_carry: "Any | None" = None,
    ) -> DeriveResult:
        """Derive ``relation``'s probabilistic database and register it.

        Uses the registered model named ``model`` (default: ``name``),
        learning and registering it from ``relation`` first if absent — so
        the first call learns and every later call only infers.  The result
        is registered as database ``name`` for :meth:`query`.

        ``executor`` / ``workers`` override the config's shard runtime for
        this call (e.g. ``executor="process", workers=4`` to fan the
        derivation out across worker processes); results are bit-identical
        whichever runtime serves them.  ``gibbs_chains`` /
        ``gibbs_vectorized`` override the multi-missing kernel the same
        way: the vectorized ensemble (default) or the scalar tuple-DAG
        oracle, and how many pooled chains each tuple runs.

        ``progress`` observes the derivation as it runs: pass a
        :class:`~repro.jobs.progress.ProgressTracker` to drive yourself, or
        a plain callable to receive a
        :class:`~repro.jobs.progress.ProgressSnapshot` after planning and
        after every completed shard.  ``cancel`` is polled at shard
        boundaries; returning true raises
        :class:`~repro.exec.base.DerivationCancelled` and the session
        registers nothing — a cancelled derive never leaves a partial
        database behind.

        ``resume_carry`` threads a journal-rebuilt
        :class:`~repro.probdb.invalidate.CarryStore` into the derivation
        (the durable-job resume path): completed shards of an interrupted
        run are served verbatim, only the rest execute.
        """
        cfg = self.effective_config(
            config,
            executor=executor,
            workers=workers,
            gibbs_chains=gibbs_chains,
            gibbs_vectorized=gibbs_vectorized,
        )
        tracker = self._as_tracker(progress, cfg.parallelism)
        model_name = name if model is None else model
        if model_name not in self._models:
            self.learn(relation, model=model_name, config=cfg)
        result = derive_probabilistic_database(
            relation,
            config=cfg,
            rng=rng,
            model=self._models[model_name],
            batch_engine=self.engine(model_name),
            on_plan=None if tracker is None else tracker.on_plan,
            on_shard=None if tracker is None else tracker.on_shard,
            should_stop=cancel,
            resume_carry=resume_carry,
        )
        self._results[name] = result
        # Keep a private copy of the base table: apply_updates mutates it
        # under ChangeSets without aliasing the caller's relation.
        self._relations[name] = relation.copy()
        return result

    def relation(self, name: str = DEFAULT_NAME) -> Relation:
        """The session's copy of a derived database's base table."""
        try:
            return self._relations[name]
        except KeyError:
            raise SessionError(
                f"no base relation for {name!r}; "
                f"derived: {list(self.databases)}"
            ) from None

    def apply_updates(
        self,
        changeset: ChangeSet | Mapping[str, Any],
        name: str = DEFAULT_NAME,
        config: DeriveConfig | Mapping[str, Any] | None = None,
        executor: str | None = None,
        workers: int | None = None,
        progress: (
            ProgressTracker | Callable[[ProgressSnapshot], None] | None
        ) = None,
        cancel: Callable[[], bool] | None = None,
    ) -> UpdateResult:
        """Apply a ChangeSet to database ``name``'s base table and re-derive.

        The session's stored base relation takes the ChangeSet (conflicting
        writes resolved by ``config.trust``, ties applied first-writer-wins
        and reported in the result), then the registered database re-derives
        under ``config.update_policy``: ``"delta"`` carries every block whose
        lineage the update did not touch over verbatim and executes only
        dirty shards, ``"full"`` re-derives everything.  Both reuse the
        model and the previous run's base seed, so they produce the same
        database.  The update commits — relation, update log, and derived
        result together — only after the re-derive completes; a cancelled
        update leaves the session exactly as it was.
        """
        cfg = self.effective_config(config, executor=executor, workers=workers)
        previous = self.result(name)
        tracker = self._as_tracker(progress, cfg.parallelism)
        working = self.relation(name).copy()
        outcome = working.apply_changeset(changeset, trust=cfg.trust)
        # Reuse the warm engine of whichever registered model served this
        # database (the derive may have used a model name != database name).
        model_name = next(
            (k for k, m in self._models.items() if m is previous.model), None
        )
        result = derive_probabilistic_database(
            working,
            config=cfg,
            model=previous.model,
            batch_engine=None if model_name is None else self.engine(model_name),
            previous=previous,
            on_plan=None if tracker is None else tracker.on_plan,
            on_shard=None if tracker is None else tracker.on_shard,
            should_stop=cancel,
        )
        self._results[name] = result
        self._relations[name] = working
        return UpdateResult(
            name=name,
            policy=cfg.update_policy,
            outcome=outcome,
            result=result,
        )

    @staticmethod
    def _as_tracker(
        progress: (
            ProgressTracker | Callable[[ProgressSnapshot], None] | None
        ),
        workers: int,
    ) -> ProgressTracker | None:
        """Normalize a ``progress=`` argument into a tracker (or None)."""
        if progress is None or isinstance(progress, ProgressTracker):
            return progress
        if not callable(progress):
            raise TypeError(
                "progress must be a ProgressTracker or a callable taking a "
                f"ProgressSnapshot, got {type(progress).__name__}"
            )
        callback = progress
        return ProgressTracker(
            workers=workers,
            on_event=lambda kind, snapshot, *rest: callback(snapshot),
        )

    def infer_batch(
        self,
        tuples: Iterable[RelTuple],
        model: str = DEFAULT_NAME,
    ) -> list[Distribution]:
        """Algorithm 2 distributions for single-missing tuples, batched."""
        return self.engine(model).infer_batch(list(tuples))

    # -- derived databases and queries -------------------------------------

    def result(self, name: str = DEFAULT_NAME) -> DeriveResult:
        try:
            return self._results[name]
        except KeyError:
            raise SessionError(
                f"no derived database {name!r}; "
                f"derived: {list(self.databases)}"
            ) from None

    def database(self, name: str = DEFAULT_NAME) -> ProbabilisticDatabase:
        return self.result(name).database

    def query_engine(self, name: str = DEFAULT_NAME) -> QueryEngine:
        """A lineage query engine over a derived database."""
        return QueryEngine(self.database(name))

    def query(
        self,
        spec: QuerySpec | Predicate | Mapping[str, Any],
        database: str = DEFAULT_NAME,
    ) -> list[ResultTuple]:
        """Evaluate a query spec (or its JSON dict, or a bare predicate).

        A bare :class:`~repro.api.query.Predicate` is treated as a
        selection over all attributes.
        """
        if isinstance(spec, Mapping):
            spec = query_from_dict(spec)
        elif isinstance(spec, Predicate):
            spec = SelectionQuery(where=spec)
        elif not isinstance(spec, QuerySpec):
            raise TypeError(
                f"spec must be a QuerySpec, Predicate, or mapping, "
                f"got {type(spec).__name__}"
            )
        return spec.run(self.query_engine(database))

    def __repr__(self) -> str:
        return (
            f"Session({len(self._models)} models, "
            f"{len(self._results)} databases, config={self.config})"
        )
