"""A stdlib HTTP front-end for :class:`~repro.api.service.InferenceService`.

No third-party web framework: ``http.server.ThreadingHTTPServer`` carries
the JSON wire format of :mod:`repro.api.service` for batch traffic, plus
the async job surface of :mod:`repro.jobs` for long-running derivations.

Routes::

    GET  /v1/health                 liveness + registered models/databases
    POST /v1/learn                  LearnRequest   -> LearnResponse
    POST /v1/derive                 DeriveRequest  -> DeriveResponse
    POST /v1/derive?mode=async      DeriveRequest  -> {"job_id", "state"}
    POST /v1/update                 UpdateRequest  -> UpdateResponse
    POST /v1/update?mode=async      UpdateRequest  -> {"job_id", "state"}
    POST /v1/infer                  InferRequest   -> InferResponse
    POST /v1/query                  QueryRequest   -> QueryResponse
    GET  /v1/jobs/{id}              job status + shard-aware progress
    GET  /v1/jobs/{id}/result       the finished job's DeriveResponse
    POST /v1/jobs/{id}/cancel       cooperative cancellation
    GET  /v1/jobs/{id}/events       chunked ndjson shard-completion stream
                                    (?after=N resumes, ?timeout=S bounds it,
                                    ?heartbeat=S sets the keepalive cadence —
                                    0 disables; default 15s idle)

Errors come back as ``{"error": {"status": ..., "message": ...}}`` with the
matching HTTP status — including malformed request bodies (bad JSON,
non-UTF-8 bytes, an unparsable Content-Length), which are structured 400s,
never tracebacks.  Start a server with ``repro serve`` on the CLI, or
programmatically::

    server = make_server(InferenceService(session), port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
"""

from __future__ import annotations

import json
import math
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterable
from urllib.parse import parse_qs, urlsplit

from .service import InferenceService, ServiceError

__all__ = ["API_PREFIX", "make_server", "serve"]

API_PREFIX = "/v1/"

#: Upper bound on how long an idle ``/events`` stream waits for news.
DEFAULT_EVENTS_TIMEOUT = 300.0

#: Default idle interval between ``/events`` keepalive heartbeats.
DEFAULT_EVENTS_HEARTBEAT = 15.0


class _ServiceHandler(BaseHTTPRequestHandler):
    """Maps HTTP verbs onto ``InferenceService.handle_json`` + job routes."""

    #: bound by :func:`make_server` on the per-server subclass
    service: InferenceService
    quiet: bool = True
    server_version = "repro-serve/1.1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:
        if not self.quiet:
            super().log_message(format, *args)

    # -- request plumbing ----------------------------------------------------

    def _route(self) -> tuple[list[str], dict[str, str]]:
        """Path segments under the API prefix plus single-valued query args."""
        parts = urlsplit(self.path)
        path = parts.path.rstrip("/")
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        prefix = API_PREFIX.rstrip("/") + "/"
        if not path.startswith(prefix):
            return [], query
        return [seg for seg in path[len(prefix):].split("/") if seg], query

    def _drain_body(self) -> bytes:
        """Read (and thereby drain) the request body off the socket.

        Draining must happen before *any* response on a keep-alive
        connection — unread body bytes would be parsed as the start of the
        client's next request.
        """
        encoding = (self.headers.get("Transfer-Encoding") or "").lower()
        if "chunked" in encoding:
            # No Content-Length to drain by; refuse and drop the
            # connection rather than desync on the unread chunks.
            self.close_connection = True
            raise ServiceError(
                "chunked request bodies are not supported; "
                "send a Content-Length",
                status=411,
            )
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            # Cannot know how much to drain; the connection is unusable
            # past this request, so close it after responding.
            self.close_connection = True
            raise ServiceError("Content-Length header is not an integer") from None
        return self.rfile.read(length) if length > 0 else b"{}"

    @staticmethod
    def _parse_json(raw: bytes) -> Any:
        """Parse a drained body; every malformation is a structured 400."""
        try:
            text = raw.decode("utf-8") or "{}"
        except UnicodeDecodeError as exc:
            raise ServiceError(
                f"request body is not valid UTF-8: {exc}"
            ) from exc
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServiceError(
                f"request body is not valid JSON: {exc}"
            ) from exc

    def _respond(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _respond_stream(self, events: Iterable[dict]) -> None:
        """Chunked ndjson: one JSON event per line, as each shard lands."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()
        try:
            for event in events:
                data = (json.dumps(event) + "\n").encode("utf-8")
                self.wfile.write(f"{len(data):X}\r\n".encode("ascii"))
                self.wfile.write(data + b"\r\n")
                self.wfile.flush()
        except Exception:
            # The status line is gone; a second response head would corrupt
            # the stream.  Abort the connection so the client sees a
            # truncated chunked body, not a fake clean end.
            self.close_connection = True
            return
        self.wfile.write(b"0\r\n\r\n")

    def _not_found(self, hint: str) -> None:
        self._respond(404, ServiceError(hint, 404).to_dict())

    # -- verbs ---------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        segments, query = self._route()
        try:
            if segments == ["health"]:
                self._respond(200, self.service.handle_json("health", {}))
            elif len(segments) == 2 and segments[0] == "jobs":
                self._respond(200, self.service.job_status(segments[1]))
            elif len(segments) == 3 and segments[0] == "jobs":
                job_id, tail = segments[1], segments[2]
                if tail == "result":
                    self._respond(200, self.service.job_result(job_id))
                elif tail == "events":
                    try:
                        after = int(query.get("after", 0))
                        timeout = float(
                            query.get("timeout", DEFAULT_EVENTS_TIMEOUT)
                        )
                        heartbeat = float(
                            query.get("heartbeat", DEFAULT_EVENTS_HEARTBEAT)
                        )
                    except ValueError:
                        raise ServiceError(
                            "'after' must be an integer, 'timeout' and "
                            "'heartbeat' numbers"
                        ) from None
                    if math.isnan(timeout) or math.isnan(heartbeat):
                        raise ServiceError(
                            "'timeout' and 'heartbeat' must be numbers"
                        )
                    # The documented ceiling is a real bound: an idle
                    # stream never pins a handler thread longer than this.
                    timeout = min(max(0.0, timeout), DEFAULT_EVENTS_TIMEOUT)
                    # heartbeat=0 disables keepalives; a positive value is
                    # clamped to at least 1s so a client cannot busy-spin a
                    # handler thread.
                    hb = None if heartbeat <= 0 else max(1.0, heartbeat)
                    events = self.service.job_events(
                        job_id, after=after, timeout=timeout, heartbeat=hb
                    )
                    self._respond_stream(events)
                else:
                    self._not_found(
                        f"unknown job endpoint {tail!r}; "
                        "try /result, /events, or POST /cancel"
                    )
            else:
                self._not_found(
                    "not found; try GET /v1/health or GET /v1/jobs/{id}"
                )
        except ServiceError as exc:
            self._respond(exc.status, exc.to_dict())
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass
        except Exception as exc:  # don't let one request kill the server
            error = ServiceError(f"internal error: {exc}", status=500)
            self._respond(error.status, error.to_dict())

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        segments, query = self._route()
        try:
            raw = self._drain_body()  # always, before any response
            if not segments:
                raise ServiceError(
                    f"not found; endpoints live under {API_PREFIX}", 404
                )
            if segments[0] == "jobs":
                if len(segments) == 3 and segments[2] == "cancel":
                    self._parse_json(raw)  # validate any body
                    self._respond(200, self.service.job_cancel(segments[1]))
                    return
                raise ServiceError(
                    "unknown job action; try POST /v1/jobs/{id}/cancel", 404
                )
            if len(segments) != 1:
                raise ServiceError(
                    f"not found; endpoints live under {API_PREFIX}", 404
                )
            endpoint = segments[0]
            mode = query.get("mode")
            if endpoint in ("derive", "update") and mode is not None:
                if mode != "async":
                    raise ServiceError(
                        f"unknown mode {mode!r}; the only mode is 'async'"
                    )
                endpoint = f"{endpoint}_async"
            payload = self._parse_json(raw)
            self._respond(200, self.service.handle_json(endpoint, payload))
        except ServiceError as exc:
            self._respond(exc.status, exc.to_dict())
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass
        except Exception as exc:  # don't let one request kill the server
            error = ServiceError(f"internal error: {exc}", status=500)
            self._respond(error.status, error.to_dict())


def make_server(
    service: InferenceService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Build (but do not start) a threaded HTTP server for ``service``.

    ``port=0`` picks a free port — read it back from
    ``server.server_address[1]``.
    """
    handler = type(
        "BoundServiceHandler",
        (_ServiceHandler,),
        {"service": service, "quiet": quiet},
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    service: InferenceService,
    host: str = "127.0.0.1",
    port: int = 8642,
    quiet: bool = False,
) -> None:
    """Serve forever (until KeyboardInterrupt); the ``repro serve`` loop."""
    server = make_server(service, host=host, port=port, quiet=quiet)
    actual_port = server.server_address[1]
    print(
        f"repro serve: listening on http://{host}:{actual_port}{API_PREFIX} "
        f"(models: {list(service.session.models) or '-'}, "
        f"databases: {list(service.session.databases) or '-'})",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.jobs.close(wait=False)
