"""A stdlib HTTP front-end for :class:`~repro.api.service.InferenceService`.

No third-party web framework: ``http.server.ThreadingHTTPServer`` carries
the JSON wire format of :mod:`repro.api.service` for batch traffic.

Routes::

    GET  /v1/health           liveness + registered models/databases
    POST /v1/learn            LearnRequest   -> LearnResponse
    POST /v1/derive           DeriveRequest  -> DeriveResponse
    POST /v1/infer            InferRequest   -> InferResponse
    POST /v1/query            QueryRequest   -> QueryResponse

Errors come back as ``{"error": {"status": ..., "message": ...}}`` with the
matching HTTP status.  Start a server with ``repro serve`` on the CLI, or
programmatically::

    server = make_server(InferenceService(session), port=0)
    threading.Thread(target=server.serve_forever, daemon=True).start()
"""

from __future__ import annotations

import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .service import InferenceService, ServiceError

__all__ = ["API_PREFIX", "make_server", "serve"]

API_PREFIX = "/v1/"


class _ServiceHandler(BaseHTTPRequestHandler):
    """Maps HTTP verbs onto ``InferenceService.handle_json``."""

    #: bound by :func:`make_server` on the per-server subclass
    service: InferenceService
    quiet: bool = True
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args) -> None:
        if not self.quiet:
            super().log_message(format, *args)

    def _endpoint(self) -> str | None:
        path = self.path.split("?", 1)[0].rstrip("/")
        if path.startswith(API_PREFIX.rstrip("/") + "/"):
            return path[len(API_PREFIX):]
        return None

    def _respond(self, status: int, body: dict) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        if self._endpoint() == "health":
            self._respond(200, self.service.handle_json("health", {}))
        else:
            self._respond(
                404, ServiceError("not found; try GET /v1/health", 404).to_dict()
            )

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        endpoint = self._endpoint()
        if endpoint is None:
            self._respond(
                404,
                ServiceError(
                    f"not found; endpoints live under {API_PREFIX}", 404
                ).to_dict(),
            )
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            payload = json.loads(raw.decode("utf-8") or "{}")
            body = self.service.handle_json(endpoint, payload)
            self._respond(200, body)
        except ServiceError as exc:
            self._respond(exc.status, exc.to_dict())
        except json.JSONDecodeError as exc:
            error = ServiceError(f"request body is not valid JSON: {exc}")
            self._respond(error.status, error.to_dict())
        except Exception as exc:  # don't let one request kill the server
            error = ServiceError(f"internal error: {exc}", status=500)
            self._respond(error.status, error.to_dict())


def make_server(
    service: InferenceService,
    host: str = "127.0.0.1",
    port: int = 0,
    quiet: bool = True,
) -> ThreadingHTTPServer:
    """Build (but do not start) a threaded HTTP server for ``service``.

    ``port=0`` picks a free port — read it back from
    ``server.server_address[1]``.
    """
    handler = type(
        "BoundServiceHandler",
        (_ServiceHandler,),
        {"service": service, "quiet": quiet},
    )
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    service: InferenceService,
    host: str = "127.0.0.1",
    port: int = 8642,
    quiet: bool = False,
) -> None:
    """Serve forever (until KeyboardInterrupt); the ``repro serve`` loop."""
    server = make_server(service, host=host, port=port, quiet=quiet)
    actual_port = server.server_address[1]
    print(
        f"repro serve: listening on http://{host}:{actual_port}{API_PREFIX} "
        f"(models: {list(service.session.models) or '-'}, "
        f"databases: {list(service.session.databases) or '-'})",
        file=sys.stderr,
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
