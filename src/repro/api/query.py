"""Serializable predicate and query ASTs that compile to the lineage engine.

:class:`~repro.probdb.engine.QueryEngine` takes Python lambdas, which cannot
cross a process boundary.  This module provides a small, closed algebra of
predicate nodes (comparisons, membership, boolean connectives) and query
specs (selection, self-join) that round-trip through plain JSON and compile
to exactly the callables the engine already consumes — so a query expressed
as JSON evaluates bit-identically to its hand-written lambda equivalent.

Build predicates with the :class:`Q` helpers::

    spec = SelectionQuery(
        where=Q.and_(Q.eq("income", "high"), Q.ne("age", "20")),
        project=("age",),
    )
    payload = spec.to_dict()              # plain JSON
    spec2 = query_from_dict(payload)      # spec2 == spec
    results = spec2.run(engine)           # list[ResultTuple]

Compiled predicates call ``row.value(name)``, which both
:class:`~repro.probdb.engine.ProbRow` and
:class:`~repro.relational.tuples.RelTuple` implement, so the same AST also
drives extensional helpers like ``expected_count``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable, Mapping, Sequence

from ..probdb.engine import ProbRow, QueryEngine, ResultTuple

__all__ = [
    "Q",
    "Predicate",
    "Cmp",
    "In",
    "And",
    "Or",
    "Not",
    "QuerySpec",
    "SelectionQuery",
    "SelfJoinQuery",
    "predicate_from_dict",
    "query_from_dict",
]

RowPredicate = Callable[[ProbRow], bool]

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

#: Symbolic spellings accepted anywhere an op name is expected.
_OP_ALIASES = {
    "==": "eq",
    "=": "eq",
    "!=": "ne",
    "<>": "ne",
    "<": "lt",
    "<=": "le",
    ">": "gt",
    ">=": "ge",
}


def _canonical_op(op: str) -> str:
    op = _OP_ALIASES.get(op, op)
    if op not in _COMPARATORS:
        raise ValueError(
            f"unknown comparison operator {op!r}; "
            f"valid: {sorted(_COMPARATORS)} and {sorted(_OP_ALIASES)}"
        )
    return op


class Predicate:
    """Base class of serializable row predicates."""

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError

    def compile(self) -> RowPredicate:
        """A plain callable equivalent to this node (for ``QueryEngine``)."""
        raise NotImplementedError

    def __call__(self, row) -> bool:
        return self.compile()(row)


@dataclass(frozen=True)
class Cmp(Predicate):
    """``row.value(attr) <op> value`` for a fixed comparison operator."""

    attr: str
    op: str
    value: Hashable

    def __post_init__(self) -> None:
        object.__setattr__(self, "op", _canonical_op(self.op))

    def to_dict(self) -> dict[str, Any]:
        return {"op": self.op, "attr": self.attr, "value": self.value}

    def compile(self) -> RowPredicate:
        fn, attr, value = _COMPARATORS[self.op], self.attr, self.value
        return lambda row: fn(row.value(attr), value)


@dataclass(frozen=True)
class In(Predicate):
    """``row.value(attr)`` is one of ``values``."""

    attr: str
    values: tuple[Hashable, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))

    def to_dict(self) -> dict[str, Any]:
        return {"op": "in", "attr": self.attr, "values": list(self.values)}

    def compile(self) -> RowPredicate:
        attr, allowed = self.attr, frozenset(self.values)
        return lambda row: row.value(attr) in allowed


@dataclass(frozen=True)
class And(Predicate):
    """Conjunction of child predicates (true when childless)."""

    children: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))

    def to_dict(self) -> dict[str, Any]:
        return {"op": "and", "args": [c.to_dict() for c in self.children]}

    def compile(self) -> RowPredicate:
        preds = [c.compile() for c in self.children]
        return lambda row: all(p(row) for p in preds)


@dataclass(frozen=True)
class Or(Predicate):
    """Disjunction of child predicates (false when childless)."""

    children: tuple[Predicate, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "children", tuple(self.children))

    def to_dict(self) -> dict[str, Any]:
        return {"op": "or", "args": [c.to_dict() for c in self.children]}

    def compile(self) -> RowPredicate:
        preds = [c.compile() for c in self.children]
        return lambda row: any(p(row) for p in preds)


@dataclass(frozen=True)
class Not(Predicate):
    """Negation of one child predicate."""

    child: Predicate

    def to_dict(self) -> dict[str, Any]:
        return {"op": "not", "arg": self.child.to_dict()}

    def compile(self) -> RowPredicate:
        pred = self.child.compile()
        return lambda row: not pred(row)


class Q:
    """Builder namespace: ``Q.eq("age", "30")``, ``Q.and_(p, q)``, ..."""

    @staticmethod
    def cmp(attr: str, op: str, value: Hashable) -> Cmp:
        return Cmp(attr, op, value)

    @staticmethod
    def eq(attr: str, value: Hashable) -> Cmp:
        return Cmp(attr, "eq", value)

    @staticmethod
    def ne(attr: str, value: Hashable) -> Cmp:
        return Cmp(attr, "ne", value)

    @staticmethod
    def lt(attr: str, value: Hashable) -> Cmp:
        return Cmp(attr, "lt", value)

    @staticmethod
    def le(attr: str, value: Hashable) -> Cmp:
        return Cmp(attr, "le", value)

    @staticmethod
    def gt(attr: str, value: Hashable) -> Cmp:
        return Cmp(attr, "gt", value)

    @staticmethod
    def ge(attr: str, value: Hashable) -> Cmp:
        return Cmp(attr, "ge", value)

    @staticmethod
    def in_(attr: str, values: Iterable[Hashable]) -> In:
        return In(attr, tuple(values))

    @staticmethod
    def and_(*predicates: Predicate) -> And:
        return And(tuple(predicates))

    @staticmethod
    def or_(*predicates: Predicate) -> Or:
        return Or(tuple(predicates))

    @staticmethod
    def not_(predicate: Predicate) -> Not:
        return Not(predicate)


def predicate_from_dict(data: Mapping[str, Any]) -> Predicate:
    """Rebuild a predicate node from its ``to_dict`` form."""
    try:
        op = data["op"]
    except KeyError:
        raise ValueError(f"predicate dict needs an 'op' key: {data!r}") from None
    if op == "and":
        return And(tuple(predicate_from_dict(d) for d in data["args"]))
    if op == "or":
        return Or(tuple(predicate_from_dict(d) for d in data["args"]))
    if op == "not":
        return Not(predicate_from_dict(data["arg"]))
    if op == "in":
        return In(data["attr"], tuple(data["values"]))
    return Cmp(data["attr"], op, data["value"])


def _optional_names(names: Sequence[str] | None) -> tuple[str, ...] | None:
    return None if names is None else tuple(names)


class QuerySpec:
    """Base class of serializable query plans."""

    def to_dict(self) -> dict[str, Any]:
        raise NotImplementedError

    def run(self, engine: QueryEngine) -> list[ResultTuple]:
        """Evaluate against a :class:`QueryEngine`."""
        raise NotImplementedError


@dataclass(frozen=True)
class SelectionQuery(QuerySpec):
    """``SELECT [DISTINCT project] FROM R WHERE where`` as data."""

    where: Predicate | None = None
    project: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "project", _optional_names(self.project))

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "selection",
            "where": None if self.where is None else self.where.to_dict(),
            "project": None if self.project is None else list(self.project),
        }

    def run(self, engine: QueryEngine) -> list[ResultTuple]:
        pred = (lambda row: True) if self.where is None else self.where.compile()
        return engine.selection_query(pred, project_to=self.project)


@dataclass(frozen=True)
class SelfJoinQuery(QuerySpec):
    """Join the database with itself — the canonical unsafe query, as data.

    ``on`` pairs un-prefixed attribute names; ``where`` and ``project`` see
    the prefixed names (``l_age``, ``r_age``, ...), exactly as the engine's
    ``self_join_query`` convention.
    """

    on: tuple[tuple[str, str], ...]
    where: Predicate | None = None
    project: tuple[str, ...] | None = None
    left_prefix: str = "l_"
    right_prefix: str = "r_"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "on", tuple((str(a), str(b)) for a, b in self.on)
        )
        object.__setattr__(self, "project", _optional_names(self.project))

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "self_join",
            "on": [list(pair) for pair in self.on],
            "where": None if self.where is None else self.where.to_dict(),
            "project": None if self.project is None else list(self.project),
            "left_prefix": self.left_prefix,
            "right_prefix": self.right_prefix,
        }

    def run(self, engine: QueryEngine) -> list[ResultTuple]:
        return engine.self_join_query(
            on=self.on,
            predicate=None if self.where is None else self.where.compile(),
            project_to=self.project,
            left_prefix=self.left_prefix,
            right_prefix=self.right_prefix,
        )


def query_from_dict(data: Mapping[str, Any]) -> QuerySpec:
    """Rebuild a query spec from its ``to_dict`` form."""
    kind = data.get("type")
    where = data.get("where")
    parsed_where = None if where is None else predicate_from_dict(where)
    project = data.get("project")
    if kind == "selection":
        return SelectionQuery(where=parsed_where, project=project)
    if kind == "self_join":
        return SelfJoinQuery(
            on=tuple(tuple(pair) for pair in data["on"]),
            where=parsed_where,
            project=project,
            left_prefix=data.get("left_prefix", "l_"),
            right_prefix=data.get("right_prefix", "r_"),
        )
    raise ValueError(
        f"unknown query type {kind!r}; valid: 'selection', 'self_join'"
    )
