"""Typed request/response service layer: the JSON wire format.

:class:`InferenceService` wraps one :class:`~repro.api.session.Session` and
exposes five endpoints — ``learn``, ``derive``, ``update``, ``infer``,
``query`` — each with a frozen request/response dataclass pair that
round-trips through plain JSON.  :meth:`InferenceService.handle_json` is the transport-agnostic
dispatch used by the stdlib HTTP front-end (:mod:`repro.api.http`) and by
tests that drive the wire format in-process.

Wire conventions: relations travel as ``schema`` (an ordered mapping of
attribute name to domain list) plus ``rows`` (lists of values with ``"?"``
marking missing, exactly as the CSV format); queries travel as the
serializable AST of :mod:`repro.api.query`; configs as
:meth:`~repro.api.config.DeriveConfig.to_dict` mappings.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Mapping, Sequence

from ..jobs import Job, JobManager, UnknownJobError
from ..jobs.progress import ProgressSnapshot
from ..relational.relation import Relation
from ..relational.schema import Attribute, Schema
from ..relational.tuples import RelTuple
from ..relational.updates import ChangeSet
from .query import query_from_dict
from .session import DEFAULT_NAME, Session, SessionError

__all__ = [
    "ServiceError",
    "LearnRequest",
    "LearnResponse",
    "DeriveRequest",
    "DeriveResponse",
    "AsyncDeriveResponse",
    "InferRequest",
    "InferResponse",
    "QueryRequest",
    "QueryResponse",
    "UpdateRequest",
    "UpdateResponse",
    "InferenceService",
]


class ServiceError(Exception):
    """A request-level failure with an HTTP-style status code."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.message = message
        self.status = status

    def to_dict(self) -> dict[str, Any]:
        return {"error": {"status": self.status, "message": self.message}}


def _require(payload: Mapping[str, Any], key: str) -> Any:
    try:
        return payload[key]
    except KeyError:
        raise ServiceError(f"request is missing required field {key!r}") from None


def _optional_bool(payload: Mapping[str, Any], key: str) -> bool | None:
    """A strictly-boolean optional field: JSON true/false or absent.

    ``bool("off")`` is ``True``, so coercing strings would silently run
    the wrong kernel; reject anything that is not a real boolean.
    """
    value = payload.get(key)
    if value is None or isinstance(value, bool):
        return value
    raise ServiceError(f"{key!r} must be a JSON boolean, got {value!r}")


def _rows(value: Any) -> tuple[tuple[Any, ...], ...]:
    return tuple(tuple(row) for row in value)


def _schema_dict(schema: Schema) -> dict[str, list[Any]]:
    return {attr.name: list(attr.domain) for attr in schema}


def _schema_from_mapping(mapping: Mapping[str, Sequence[Any]]) -> Schema:
    return Schema(Attribute(name, domain) for name, domain in mapping.items())


# -- learn ----------------------------------------------------------------


@dataclass(frozen=True)
class LearnRequest:
    """Learn an MRSL model from complete rows and register it by name."""

    schema: Mapping[str, Sequence[Any]]
    rows: tuple[tuple[Any, ...], ...]
    model: str = DEFAULT_NAME
    config: Mapping[str, Any] | None = None

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LearnRequest":
        return cls(
            schema=dict(_require(payload, "schema")),
            rows=_rows(_require(payload, "rows")),
            model=payload.get("model", DEFAULT_NAME),
            config=payload.get("config"),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": {k: list(v) for k, v in self.schema.items()},
            "rows": [list(r) for r in self.rows],
            "model": self.model,
            "config": None if self.config is None else dict(self.config),
        }


@dataclass(frozen=True)
class LearnResponse:
    model: str
    attributes: tuple[str, ...]
    meta_rules: int

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LearnResponse":
        return cls(
            model=_require(payload, "model"),
            attributes=tuple(_require(payload, "attributes")),
            meta_rules=int(_require(payload, "meta_rules")),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "model": self.model,
            "attributes": list(self.attributes),
            "meta_rules": self.meta_rules,
        }


# -- derive ---------------------------------------------------------------


@dataclass(frozen=True)
class DeriveRequest:
    """Derive a probabilistic database from incomplete rows.

    ``schema`` may be omitted when ``model`` names an already-registered
    model (the rows are then read under the model's schema).
    ``include_blocks`` controls whether the response carries the full
    per-block completion lists or only the counts.  ``executor`` and
    ``workers`` select the shard runtime for this request (shorthand for
    the same keys inside ``config``; the explicit fields win) — results
    are bit-identical whichever runtime serves them.  ``gibbs_chains``
    and ``gibbs_vectorized`` select the multi-missing Gibbs kernel the
    same way: the vectorized lock-step ensemble (default) or the scalar
    tuple-DAG oracle, and how many pooled chains each tuple runs.
    """

    rows: tuple[tuple[Any, ...], ...]
    schema: Mapping[str, Sequence[Any]] | None = None
    model: str | None = None
    name: str = DEFAULT_NAME
    config: Mapping[str, Any] | None = None
    include_blocks: bool = True
    executor: str | None = None
    workers: int | None = None
    gibbs_chains: int | None = None
    gibbs_vectorized: bool | None = None

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DeriveRequest":
        schema = payload.get("schema")
        return cls(
            rows=_rows(_require(payload, "rows")),
            schema=None if schema is None else dict(schema),
            model=payload.get("model"),
            name=payload.get("name", DEFAULT_NAME),
            config=payload.get("config"),
            include_blocks=bool(payload.get("include_blocks", True)),
            executor=payload.get("executor"),
            workers=(
                None if payload.get("workers") is None
                else int(payload["workers"])
            ),
            gibbs_chains=(
                None if payload.get("gibbs_chains") is None
                else int(payload["gibbs_chains"])
            ),
            gibbs_vectorized=_optional_bool(payload, "gibbs_vectorized"),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "rows": [list(r) for r in self.rows],
            "schema": (
                None
                if self.schema is None
                else {k: list(v) for k, v in self.schema.items()}
            ),
            "model": self.model,
            "name": self.name,
            "config": None if self.config is None else dict(self.config),
            "include_blocks": self.include_blocks,
            "executor": self.executor,
            "workers": self.workers,
            "gibbs_chains": self.gibbs_chains,
            "gibbs_vectorized": self.gibbs_vectorized,
        }


@dataclass(frozen=True)
class DeriveResponse:
    """Counts plus (optionally) the derived blocks in Fig. 1 call-out form."""

    name: str
    model: str
    num_certain: int
    num_blocks: int
    blocks: tuple[dict[str, Any], ...] = ()

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DeriveResponse":
        return cls(
            name=_require(payload, "name"),
            model=_require(payload, "model"),
            num_certain=int(_require(payload, "num_certain")),
            num_blocks=int(_require(payload, "num_blocks")),
            blocks=tuple(payload.get("blocks", ())),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "model": self.model,
            "num_certain": self.num_certain,
            "num_blocks": self.num_blocks,
            "blocks": list(self.blocks),
        }


@dataclass(frozen=True)
class AsyncDeriveResponse:
    """Acknowledgement of an async derive: poll ``/v1/jobs/{job_id}``."""

    job_id: str
    state: str

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AsyncDeriveResponse":
        return cls(
            job_id=_require(payload, "job_id"),
            state=_require(payload, "state"),
        )

    def to_dict(self) -> dict[str, Any]:
        return {"job_id": self.job_id, "state": self.state}


# -- update ---------------------------------------------------------------


@dataclass(frozen=True)
class UpdateRequest:
    """Apply a ChangeSet to a derived database's base table and re-derive.

    ``changes`` is the ChangeSet wire form (``{"ops": [...]}``; see
    ``docs/updates.md``).  ``config`` partially overrides the session
    config for this call — notably ``trust`` (source priority order for
    conflicting writes) and ``update_policy`` (``"delta"`` re-derives only
    dirty shards, ``"full"`` everything).  ``include_blocks`` defaults to
    False: update responses report counts and carried-over statistics, the
    blocks are queryable in place.
    """

    changes: Mapping[str, Any]
    name: str = DEFAULT_NAME
    config: Mapping[str, Any] | None = None
    include_blocks: bool = False
    executor: str | None = None
    workers: int | None = None

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "UpdateRequest":
        return cls(
            changes=dict(_require(payload, "changes")),
            name=payload.get("name", DEFAULT_NAME),
            config=payload.get("config"),
            include_blocks=bool(payload.get("include_blocks", False)),
            executor=payload.get("executor"),
            workers=(
                None if payload.get("workers") is None
                else int(payload["workers"])
            ),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "changes": dict(self.changes),
            "name": self.name,
            "config": None if self.config is None else dict(self.config),
            "include_blocks": self.include_blocks,
            "executor": self.executor,
            "workers": self.workers,
        }


@dataclass(frozen=True)
class UpdateResponse:
    """What the update applied, resolved, and re-derived.

    ``applied`` summarizes the relational outcome (rows updated / retracted
    / inserted and the conflict list with trust winners and ties);
    ``carried_over``/``carried_tuples`` count the shards the delta path
    served from the previous derivation, ``executed_shards`` the shards
    that actually ran.
    """

    name: str
    policy: str
    num_certain: int
    num_blocks: int
    applied: Mapping[str, Any]
    carried_over: int = 0
    carried_tuples: int = 0
    executed_shards: int = 0
    blocks: tuple[dict[str, Any], ...] = ()

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "UpdateResponse":
        return cls(
            name=_require(payload, "name"),
            policy=_require(payload, "policy"),
            num_certain=int(_require(payload, "num_certain")),
            num_blocks=int(_require(payload, "num_blocks")),
            applied=dict(_require(payload, "applied")),
            carried_over=int(payload.get("carried_over", 0)),
            carried_tuples=int(payload.get("carried_tuples", 0)),
            executed_shards=int(payload.get("executed_shards", 0)),
            blocks=tuple(payload.get("blocks", ())),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "policy": self.policy,
            "num_certain": self.num_certain,
            "num_blocks": self.num_blocks,
            "applied": dict(self.applied),
            "carried_over": self.carried_over,
            "carried_tuples": self.carried_tuples,
            "executed_shards": self.executed_shards,
            "blocks": list(self.blocks),
        }


# -- infer ----------------------------------------------------------------


@dataclass(frozen=True)
class InferRequest:
    """Algorithm 2 CPDs for single-missing rows under a registered model."""

    rows: tuple[tuple[Any, ...], ...]
    model: str = DEFAULT_NAME

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "InferRequest":
        return cls(
            rows=_rows(_require(payload, "rows")),
            model=payload.get("model", DEFAULT_NAME),
        )

    def to_dict(self) -> dict[str, Any]:
        return {"rows": [list(r) for r in self.rows], "model": self.model}


@dataclass(frozen=True)
class InferResponse:
    """One CPD per request row: attribute name, outcomes, probabilities."""

    cpds: tuple[dict[str, Any], ...]

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "InferResponse":
        return cls(cpds=tuple(_require(payload, "cpds")))

    def to_dict(self) -> dict[str, Any]:
        return {"cpds": list(self.cpds)}


# -- query ----------------------------------------------------------------


@dataclass(frozen=True)
class QueryRequest:
    """Evaluate a serialized query spec against a derived database."""

    query: Mapping[str, Any]
    database: str = DEFAULT_NAME

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryRequest":
        return cls(
            query=dict(_require(payload, "query")),
            database=payload.get("database", DEFAULT_NAME),
        )

    def to_dict(self) -> dict[str, Any]:
        return {"query": dict(self.query), "database": self.database}


@dataclass(frozen=True)
class QueryResponse:
    """Result tuples with exact probabilities, sorted descending."""

    attributes: tuple[str, ...] = ()
    results: tuple[dict[str, Any], ...] = ()

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "QueryResponse":
        return cls(
            attributes=tuple(payload.get("attributes", ())),
            results=tuple(_require(payload, "results")),
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "attributes": list(self.attributes),
            "results": list(self.results),
        }


# -- the service ----------------------------------------------------------


class InferenceService:
    """JSON-facing dispatch over one :class:`Session`.

    ``jobs`` is the async runtime behind ``derive_async`` and the
    ``job_*`` endpoints.  The default manager runs one background worker,
    so async derivations queue FIFO; a service-level lock additionally
    serializes every endpoint that touches the session's warm engines or
    model registry — ``derive`` (async or blocking, on any thread),
    ``infer``, and ``learn`` — because the engines' LRU caches are not
    thread-safe.  ``query`` and the job endpoints read immutable state and
    stay lock-free.
    """

    def __init__(
        self, session: Session | None = None, jobs: JobManager | None = None
    ):
        self.session = session if session is not None else Session()
        self.jobs = jobs if jobs is not None else JobManager(prefix="derive")
        self._session_lock = threading.Lock()

    # -- typed endpoints ---------------------------------------------------

    def learn(self, request: LearnRequest) -> LearnResponse:
        schema = _schema_from_mapping(request.schema)
        relation = Relation.from_rows(schema, request.rows)
        with self._session_lock:
            model = self.session.learn(
                relation, model=request.model, config=request.config
            )
        return LearnResponse(
            model=request.model,
            attributes=tuple(attr.name for attr in model.schema),
            meta_rules=model.size(),
        )

    def _derive_schema(self, request: DeriveRequest) -> tuple[str, Schema]:
        """Resolve the model name and schema a derive request runs under."""
        model_name = request.model if request.model is not None else request.name
        if request.schema is not None:
            schema = _schema_from_mapping(request.schema)
        elif model_name in self.session.models:
            schema = self.session.model(model_name).schema
        else:
            raise ServiceError(
                "derive request needs a 'schema' unless 'model' names a "
                "registered model"
            )
        return model_name, schema

    def derive(
        self,
        request: DeriveRequest,
        progress: Callable[[ProgressSnapshot], None] | Any = None,
        cancel: Callable[[], bool] | None = None,
        resume_carry: Any = None,
    ) -> DeriveResponse:
        model_name, schema = self._derive_schema(request)
        relation = Relation.from_rows(schema, request.rows)
        with self._session_lock:
            result = self.session.derive(
                relation,
                name=request.name,
                model=model_name,
                config=request.config,
                executor=request.executor,
                workers=request.workers,
                gibbs_chains=request.gibbs_chains,
                gibbs_vectorized=request.gibbs_vectorized,
                progress=progress,
                cancel=cancel,
                resume_carry=resume_carry,
            )
        db = result.database
        blocks: tuple[dict[str, Any], ...] = ()
        if request.include_blocks:
            blocks = tuple(
                {
                    "id": i,
                    "base": list(block.base.values()),
                    "completions": [
                        {"values": list(completed.values()), "prob": float(p)}
                        for completed, p in block.completions()
                    ],
                }
                for i, block in enumerate(db.blocks)
            )
        return DeriveResponse(
            name=request.name,
            model=model_name,
            num_certain=len(db.certain),
            num_blocks=len(db.blocks),
            blocks=blocks,
        )

    def update(
        self,
        request: UpdateRequest,
        progress: Callable[[ProgressSnapshot], None] | Any = None,
        cancel: Callable[[], bool] | None = None,
    ) -> UpdateResponse:
        """``POST /v1/update``: apply a ChangeSet and re-derive in place."""
        try:
            changeset = ChangeSet.from_dict(request.changes)
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"bad ChangeSet: {exc}") from exc
        with self._session_lock:
            update = self.session.apply_updates(
                changeset,
                name=request.name,
                config=request.config,
                executor=request.executor,
                workers=request.workers,
                progress=progress,
                cancel=cancel,
            )
        db = update.result.database
        report = update.result.exec_report
        blocks: tuple[dict[str, Any], ...] = ()
        if request.include_blocks:
            blocks = tuple(
                {
                    "id": i,
                    "base": list(block.base.values()),
                    "completions": [
                        {"values": list(completed.values()), "prob": float(p)}
                        for completed, p in block.completions()
                    ],
                }
                for i, block in enumerate(db.blocks)
            )
        return UpdateResponse(
            name=update.name,
            policy=update.policy,
            num_certain=len(db.certain),
            num_blocks=len(db.blocks),
            applied=update.outcome.to_dict(),
            carried_over=0 if report is None else report.carried_over,
            carried_tuples=0 if report is None else report.carried_tuples,
            executed_shards=0 if report is None else report.num_shards,
            blocks=blocks,
        )

    # -- async jobs --------------------------------------------------------

    def update_async(self, request: UpdateRequest) -> AsyncDeriveResponse:
        """Submit an update as a background job; returns immediately.

        Like ``derive_async``, bad requests fail fast: an unknown database
        name or a malformed ChangeSet is a synchronous 4xx, never a failed
        job.  The job result is the blocking endpoint's
        :class:`UpdateResponse` payload; progress, ETA, and cancellation
        work through the standard ``/v1/jobs`` endpoints.
        """
        if request.name not in self.session.databases:
            raise ServiceError(
                f"no derived database {request.name!r}; "
                f"derived: {list(self.session.databases)}",
                status=404,
            )
        try:
            ChangeSet.from_dict(request.changes)
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"bad ChangeSet: {exc}") from exc
        workers = self.session.effective_config(
            request.config, executor=request.executor, workers=request.workers
        ).parallelism

        def work(job: Job) -> dict[str, Any]:
            return self.update(
                request, progress=job.tracker, cancel=job.should_stop
            ).to_dict()

        # Updates are journaled for visibility but are not resumable: an
        # interrupted update's ChangeSet may be half-applied to the session
        # state that died with the process; resume_jobs marks them failed.
        job = self.jobs.submit(
            work,
            label="update",
            workers=workers,
            endpoint="update",
            request=request.to_dict(),
        )
        return AsyncDeriveResponse(job_id=job.id, state=job.state)

    def derive_async(
        self,
        request: DeriveRequest,
        job_id: str | None = None,
        resume_carry: Any = None,
    ) -> AsyncDeriveResponse:
        """Submit a derive as a background job; returns immediately.

        Obviously-bad requests (no schema and no registered model) fail
        fast with a 400 instead of a failed job.  The job's eventual result
        is the exact :class:`DeriveResponse` payload the blocking endpoint
        would have produced for the same request — bit-identical when the
        config pins a seed.

        When the job manager has a durable store, the submission is
        journaled (request payload + every completed shard), so a killed
        server resumes it on restart.  ``job_id``/``resume_carry`` are the
        resume path itself (:meth:`resume_jobs`): re-adopt the journaled id
        and serve already-completed shards from the journal.
        """
        self._derive_schema(request)  # fail fast before queueing
        # Size the progress tracker with the same parallelism the
        # derivation will resolve to (explicit field > config > session;
        # serial always runs 1 regardless of `workers`).
        workers = self.session.effective_config(
            request.config, executor=request.executor, workers=request.workers
        ).parallelism

        def work(job: Job) -> dict[str, Any]:
            return self.derive(
                request,
                progress=job.tracker,
                cancel=job.should_stop,
                resume_carry=resume_carry,
            ).to_dict()

        job = self.jobs.submit(
            work,
            label="derive",
            workers=workers,
            endpoint="derive",
            request=request.to_dict(),
            job_id=job_id,
        )
        return AsyncDeriveResponse(job_id=job.id, state=job.state)

    def resume_jobs(self) -> list[str]:
        """Resume journaled jobs interrupted by a server death.

        For every job the durable store reports as ``queued`` or
        ``running``: derives are resubmitted under their original id with a
        :class:`~repro.probdb.invalidate.CarryStore` of their journaled
        shards — completed shards carry over verbatim, the journaled base
        seed pins the plan, and the resumed result is bit-identical to an
        uninterrupted run.  Updates are not resumable (their session state
        died with the process) and are marked failed.  Returns the resumed
        job ids.  No-op without a durable store.
        """
        store = self.jobs.store
        if store is None:
            return []
        resumed: list[str] = []
        for record in store.load_resumable():
            if record.endpoint != "derive":
                store.set_state(
                    record.id,
                    "failed",
                    error="interrupted by server restart; "
                    f"{record.endpoint!r} jobs are not resumable",
                )
                continue
            try:
                request = DeriveRequest.from_dict(record.request)
                carry = store.load_carry(record.id)
                self.derive_async(request, job_id=record.id, resume_carry=carry)
            except Exception as exc:  # noqa: BLE001 - one bad job, not all
                store.set_state(
                    record.id,
                    "failed",
                    error=f"resume failed: {type(exc).__name__}: {exc}",
                )
                continue
            resumed.append(record.id)
        return resumed

    def _job(self, job_id: str) -> Job:
        try:
            return self.jobs.get(job_id)
        except UnknownJobError as exc:
            raise ServiceError(str(exc), status=404) from exc

    def job_status(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/{id}``: lifecycle state plus shard-aware progress."""
        return self._job(job_id).status_dict()

    def job_result(self, job_id: str) -> dict[str, Any]:
        """``GET /v1/jobs/{id}/result``: the finished job's DeriveResponse.

        409 while the job is queued/running or after cancellation (a
        cancelled job never has a result, partial or otherwise); 500 when
        the job failed.
        """
        job = self._job(job_id)
        state = job.state
        if state == "done":
            return job.result()
        if state == "failed":
            raise ServiceError(
                f"job {job_id} failed: {job.error}", status=500
            )
        raise ServiceError(
            f"job {job_id} has no result (state: {state!r})", status=409
        )

    def job_cancel(self, job_id: str) -> dict[str, Any]:
        """``POST /v1/jobs/{id}/cancel``: request cooperative cancellation."""
        job = self._job(job_id)
        accepted = job.cancel()
        return {
            "job_id": job.id,
            "state": job.state,
            "cancel_requested": job.cancel_requested,
            "accepted": accepted,
        }

    def job_events(
        self,
        job_id: str,
        after: int = 0,
        timeout: float | None = None,
        heartbeat: float | None = None,
    ) -> Iterator[dict[str, Any]]:
        """``GET /v1/jobs/{id}/events``: blocking shard-completion stream.

        Yields every recorded event with ``seq > after`` and then new ones
        as they land, ending after the terminal event (or when ``timeout``
        expires with no news).  ``heartbeat`` interleaves synthetic
        keepalive events whenever the stream idles that long; heartbeats
        carry the last delivered ``seq`` and never consume sequence
        numbers.
        """
        return self._job(job_id).iter_events(
            after=after, timeout=timeout, heartbeat=heartbeat
        )

    def infer(self, request: InferRequest) -> InferResponse:
        schema = self.session.model(request.model).schema
        tuples = [RelTuple.from_values(schema, row) for row in request.rows]
        with self._session_lock:
            dists = self.session.infer_batch(tuples, model=request.model)
        cpds = tuple(
            {
                "attribute": schema[t.missing_positions[0]].name,
                "outcomes": list(dist.outcomes),
                "probs": [float(p) for p in dist.probs],
            }
            for t, dist in zip(tuples, dists)
        )
        return InferResponse(cpds=cpds)

    def query(self, request: QueryRequest) -> QueryResponse:
        spec = query_from_dict(request.query)
        results = self.session.query(spec, database=request.database)
        attributes = results[0].attributes if results else ()
        return QueryResponse(
            attributes=tuple(attributes),
            results=tuple(
                {"values": list(t.values), "probability": float(t.probability)}
                for t in results
            ),
        )

    def health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "models": list(self.session.models),
            "databases": list(self.session.databases),
            "jobs": list(self.jobs.jobs),
            "config": self.session.config.to_dict(),
        }

    # -- JSON dispatch -----------------------------------------------------

    #: endpoint name -> (request parser, handler attribute)
    ENDPOINTS = {
        "learn": (LearnRequest, "learn"),
        "derive": (DeriveRequest, "derive"),
        "derive_async": (DeriveRequest, "derive_async"),
        "update": (UpdateRequest, "update"),
        "update_async": (UpdateRequest, "update_async"),
        "infer": (InferRequest, "infer"),
        "query": (QueryRequest, "query"),
    }

    def handle_json(
        self, endpoint: str, payload: Mapping[str, Any]
    ) -> dict[str, Any]:
        """Dispatch one JSON request; raises :class:`ServiceError` on failure."""
        if endpoint == "health":
            return self.health()
        entry = self.ENDPOINTS.get(endpoint)
        if entry is None:
            raise ServiceError(
                f"unknown endpoint {endpoint!r}; "
                f"valid: {sorted(self.ENDPOINTS)} and 'health'",
                status=404,
            )
        request_cls, handler_name = entry
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        try:
            request = request_cls.from_dict(payload)
            response = getattr(self, handler_name)(request)
        except ServiceError:
            raise
        except SessionError as exc:
            raise ServiceError(str(exc), status=404) from exc
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"bad request: {exc}") from exc
        return response.to_dict()
