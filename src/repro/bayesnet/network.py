"""Bayesian networks: DAG structure plus conditional probability tables.

The experimental framework of Section VI-A generates data from Bayesian
networks of known topology, which also supply the ground-truth posteriors
that inferred distributions are scored against.  Variables are discrete;
CPTs are stored with parent axes first and the child axis last.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

import numpy as np

from ..relational.schema import Attribute, Schema
from .factor import Factor

__all__ = ["Variable", "BayesianNetwork", "network_depth"]


class Variable:
    """One node: a name, a cardinality, parent names and a CPT.

    ``cpt`` has shape ``(card(parent_1), ..., card(parent_m), card(self))``
    and each slice over the last axis sums to 1.
    """

    __slots__ = ("name", "cardinality", "parents", "cpt")

    def __init__(
        self,
        name: str,
        cardinality: int,
        parents: Sequence[str],
        cpt: np.ndarray,
    ):
        if cardinality < 2:
            raise ValueError(f"variable {name!r} needs cardinality >= 2")
        parents = tuple(parents)
        cpt = np.asarray(cpt, dtype=np.float64)
        if cpt.shape[-1] != cardinality:
            raise ValueError(
                f"CPT child axis of {name!r} has size {cpt.shape[-1]}, "
                f"expected {cardinality}"
            )
        if cpt.ndim != len(parents) + 1:
            raise ValueError(
                f"CPT of {name!r} has {cpt.ndim} axes for {len(parents)} parents"
            )
        if (cpt < 0).any():
            raise ValueError(f"CPT of {name!r} has negative entries")
        sums = cpt.sum(axis=-1)
        if not np.allclose(sums, 1.0, atol=1e-9):
            raise ValueError(f"CPT rows of {name!r} do not sum to 1")
        self.name = name
        self.cardinality = cardinality
        self.parents = parents
        self.cpt = cpt

    def to_factor(self) -> Factor:
        """The CPT as a factor ``phi(parents..., self)``."""
        return Factor(self.parents + (self.name,), self.cpt)

    def __repr__(self) -> str:
        return (
            f"Variable({self.name!r}, card={self.cardinality}, "
            f"parents={list(self.parents)})"
        )


class BayesianNetwork:
    """A directed acyclic model over discrete variables."""

    def __init__(self, variables: Sequence[Variable]):
        self.variables = tuple(variables)
        self._by_name = {v.name: v for v in self.variables}
        if len(self._by_name) != len(self.variables):
            raise ValueError("duplicate variable names")
        for v in self.variables:
            for p in v.parents:
                if p not in self._by_name:
                    raise ValueError(
                        f"variable {v.name!r} has unknown parent {p!r}"
                    )
                expected = self._by_name[p].cardinality
                axis = v.parents.index(p)
                if v.cpt.shape[axis] != expected:
                    raise ValueError(
                        f"CPT of {v.name!r}: parent {p!r} axis has size "
                        f"{v.cpt.shape[axis]}, expected {expected}"
                    )
        self.order = self._topological_order()

    # -- structure -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.variables)

    def __iter__(self) -> Iterator[Variable]:
        return iter(self.variables)

    def __getitem__(self, name: str) -> Variable:
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(v.name for v in self.variables)

    def edges(self) -> list[tuple[str, str]]:
        """All (parent, child) edges."""
        return [(p, v.name) for v in self.variables for p in v.parents]

    def children(self, name: str) -> list[str]:
        return [v.name for v in self.variables if name in v.parents]

    def _topological_order(self) -> tuple[str, ...]:
        """Kahn's algorithm; raises on cycles."""
        indegree = {v.name: len(v.parents) for v in self.variables}
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: list[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for child in self.children(name):
                indegree[child] -= 1
                if indegree[child] == 0:
                    ready.append(child)
        if len(order) != len(self.variables):
            raise ValueError("network graph contains a cycle")
        return tuple(order)

    def depth(self) -> int:
        """Longest directed path, counted in *nodes* (0 if there are no edges).

        Table I reports 0 for fully independent networks and ``n`` for a
        chain of ``n`` nodes, i.e. the node count of the longest path, with
        the edge-free case pinned to 0.
        """
        return network_depth(self.edges(), self.names)

    # -- conversion ------------------------------------------------------------------

    def to_schema(self) -> Schema:
        """Schema with one attribute per variable.

        Domain values are the strings ``"v0" .. "v{k-1}"`` so relations built
        from network samples are self-describing; code ``i`` always maps to
        value ``"v{i}"``.
        """
        return Schema(
            Attribute(v.name, tuple(f"v{i}" for i in range(v.cardinality)))
            for v in self.variables
        )

    def joint_factor(self) -> Factor:
        """The full joint distribution as one factor (small networks only)."""
        result: Factor | None = None
        for v in self.variables:
            f = v.to_factor()
            result = f if result is None else result.multiply(f)
        assert result is not None
        return result.normalized()

    def __repr__(self) -> str:
        return (
            f"BayesianNetwork({len(self)} variables, "
            f"{len(self.edges())} edges, depth={self.depth()})"
        )


def network_depth(
    edges: Sequence[tuple[str, str]], names: Sequence[str]
) -> int:
    """Longest directed path in nodes; 0 for an edge-free graph.

    Helper shared with the topology catalog so specs can be checked against
    Table I without instantiating CPTs.
    """
    if not edges:
        return 0
    parents: Mapping[str, list[str]] = {n: [] for n in names}
    for parent, child in edges:
        parents[child].append(parent)

    longest: dict[str, int] = {}

    def chain_length(node: str) -> int:
        if node not in longest:
            preds = parents[node]
            longest[node] = 1 + (max(chain_length(p) for p in preds) if preds else 0)
        return longest[node]

    return max(chain_length(n) for n in names)
