"""Exact posterior inference by variable elimination.

The accuracy experiments (Section VI-A, "Measuring Accuracy") compare the
distributions predicted by MRSL "to the corresponding true probability
distributions of the Bayesian network that generated the dataset".  The true
distribution of the missing attributes given the observed ones is the
posterior ``P(missing | observed)``; we compute it exactly with variable
elimination over CPT factors.
"""

from __future__ import annotations

from itertools import product
from typing import Mapping, Sequence

from ..probdb.distribution import Distribution
from .factor import Factor
from .network import BayesianNetwork

__all__ = ["posterior", "joint_posterior", "marginal"]


def _eliminate(
    network: BayesianNetwork,
    query: Sequence[str],
    evidence: Mapping[str, int],
) -> Factor:
    """Return the unnormalized factor over ``query`` given ``evidence``."""
    query_set = set(query)
    overlap = query_set & set(evidence)
    if overlap:
        raise ValueError(f"variables {sorted(overlap)} are both query and evidence")
    factors = [v.to_factor().reduce(evidence) for v in network.variables]
    factors = [f for f in factors if f.variables]
    # Eliminate hidden variables in a min-degree-ish order: fewest-appearance
    # first keeps intermediate tables small for the network sizes we use.
    hidden = [
        name
        for name in network.names
        if name not in query_set and name not in evidence
    ]
    hidden.sort(key=lambda name: sum(1 for f in factors if name in f.variables))
    for name in hidden:
        involved = [f for f in factors if name in f.variables]
        if not involved:
            continue
        prod = involved[0]
        for f in involved[1:]:
            prod = prod.multiply(f)
        summed = prod.marginalize(name)
        factors = [f for f in factors if name not in f.variables]
        if summed.variables:
            factors.append(summed)
        else:
            # A scalar: fold into an arbitrary remaining factor lazily by
            # keeping it; it only scales the final normalization.
            factors.append(summed)
    result: Factor | None = None
    for f in factors:
        result = f if result is None else result.multiply(f)
    if result is None:
        raise ValueError("no factors remain; empty query over empty network")
    return result


def joint_posterior(
    network: BayesianNetwork,
    query: Sequence[str],
    evidence: Mapping[str, int],
) -> Distribution:
    """Exact ``P(query | evidence)`` as a joint distribution.

    Outcomes are tuples of value *codes* ordered by
    ``itertools.product(range(card_1), ..., range(card_q))`` following the
    order of ``query``.  Evidence maps variable names to value codes.
    """
    query = tuple(query)
    if not query:
        raise ValueError("query must name at least one variable")
    factor = _eliminate(network, query, evidence)
    factor = factor.marginalize_all_but(query).transpose(query).normalized()
    cards = [network[q].cardinality for q in query]
    outcomes = [combo for combo in product(*(range(c) for c in cards))]
    probs = factor.table.reshape(-1)
    return Distribution(outcomes, probs)


def posterior(
    network: BayesianNetwork,
    query: str,
    evidence: Mapping[str, int],
) -> Distribution:
    """Exact single-variable posterior ``P(query | evidence)``.

    Outcomes are the value codes ``0 .. card-1`` of ``query``.
    """
    joint = joint_posterior(network, (query,), evidence)
    outcomes = [combo[0] for combo in joint.outcomes]
    return Distribution(outcomes, joint.probs)


def marginal(network: BayesianNetwork, query: str) -> Distribution:
    """Exact prior marginal ``P(query)``."""
    return posterior(network, query, {})
