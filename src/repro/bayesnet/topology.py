"""Network topology builders: edge lists for the families used in Table I.

A *topology* here is just ``(names, cardinalities, edges)``; CPTs are filled
in later by :mod:`repro.bayesnet.generator`.  The families match Fig. 7 of
the paper:

* ``independent`` — no edges (depth 0; BN4).
* ``line`` — a directed chain (BN13-BN16; depth = number of nodes).
* ``crown`` — two layers, each child has two adjacent roots as parents
  (BN8, BN9, BN17, BN18; depth 2).
* ``layered`` — nodes split across ``depth`` layers, each node drawing
  parents from the previous layer (BN19, BN20 and the irregular networks).
* ``tree`` — a rooted out-tree.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "Topology",
    "independent_topology",
    "line_topology",
    "crown_topology",
    "layered_topology",
    "tree_topology",
    "random_dag_topology",
]


class Topology:
    """An unparameterized network structure."""

    __slots__ = ("names", "cardinalities", "edges")

    def __init__(
        self,
        names: Sequence[str],
        cardinalities: Sequence[int],
        edges: Sequence[tuple[str, str]],
    ):
        names = tuple(names)
        cardinalities = tuple(int(c) for c in cardinalities)
        if len(names) != len(cardinalities):
            raise ValueError("names and cardinalities must have equal length")
        known = set(names)
        for parent, child in edges:
            if parent not in known or child not in known:
                raise ValueError(f"edge ({parent}, {child}) references unknown node")
        self.names = names
        self.cardinalities = cardinalities
        self.edges = tuple(edges)

    def parents_of(self, name: str) -> tuple[str, ...]:
        return tuple(p for p, c in self.edges if c == name)

    def domain_size(self) -> int:
        size = 1
        for c in self.cardinalities:
            size *= c
        return size

    def average_cardinality(self) -> float:
        return sum(self.cardinalities) / len(self.cardinalities)

    def depth(self) -> int:
        from .network import network_depth

        return network_depth(self.edges, self.names)

    def __repr__(self) -> str:
        return (
            f"Topology({len(self.names)} nodes, {len(self.edges)} edges, "
            f"depth={self.depth()})"
        )


def _names(n: int) -> tuple[str, ...]:
    return tuple(f"x{i}" for i in range(n))


def independent_topology(cardinalities: Sequence[int]) -> Topology:
    """All attributes independent: no edges, depth 0 (BN4)."""
    names = _names(len(cardinalities))
    return Topology(names, cardinalities, ())


def line_topology(cardinalities: Sequence[int]) -> Topology:
    """A directed chain ``x0 -> x1 -> ... -> x{n-1}`` (BN13-BN16)."""
    names = _names(len(cardinalities))
    edges = [(names[i], names[i + 1]) for i in range(len(names) - 1)]
    return Topology(names, cardinalities, edges)


def crown_topology(cardinalities: Sequence[int]) -> Topology:
    """A two-layer crown (BN8, BN9, BN17, BN18).

    The first ``ceil(n/2)`` nodes are roots; each of the remaining nodes has
    two adjacent roots as parents (wrapping around), producing the
    interleaved "crown" of Fig. 7 with node-depth 2.
    """
    n = len(cardinalities)
    if n < 3:
        raise ValueError("a crown needs at least 3 nodes")
    names = _names(n)
    num_roots = (n + 1) // 2
    roots = names[:num_roots]
    edges: list[tuple[str, str]] = []
    for j, child in enumerate(names[num_roots:]):
        left = roots[j % num_roots]
        right = roots[(j + 1) % num_roots]
        edges.append((left, child))
        if right != left:
            edges.append((right, child))
    return Topology(names, cardinalities, edges)


def layered_topology(
    cardinalities: Sequence[int],
    depth: int,
    max_parents: int = 2,
    seed: int = 0,
) -> Topology:
    """Split ``n`` nodes into ``depth`` layers; parents come from the layer above.

    Every non-top-layer node receives at least one parent from the directly
    preceding layer, so the node-depth equals ``depth`` exactly.  Structure is
    deterministic for a given ``seed``.
    """
    n = len(cardinalities)
    if not 1 <= depth <= n:
        raise ValueError("depth must be between 1 and the node count")
    names = _names(n)
    rng = np.random.default_rng(seed)
    base, extra = divmod(n, depth)
    layers: list[list[str]] = []
    start = 0
    for layer_idx in range(depth):
        size = base + (1 if layer_idx < extra else 0)
        layers.append(list(names[start : start + size]))
        start += size
    edges: list[tuple[str, str]] = []
    for prev, layer in zip(layers, layers[1:]):
        for child in layer:
            k = min(max_parents, len(prev))
            num_parents = 1 if k == 1 else int(rng.integers(1, k + 1))
            chosen = rng.choice(len(prev), size=num_parents, replace=False)
            for idx in sorted(int(i) for i in chosen):
                edges.append((prev[idx], child))
    return Topology(names, cardinalities, edges)


def tree_topology(cardinalities: Sequence[int], branching: int = 2) -> Topology:
    """A rooted out-tree with fan-out ``branching``."""
    n = len(cardinalities)
    names = _names(n)
    edges = []
    for i in range(1, n):
        parent = names[(i - 1) // branching]
        edges.append((parent, names[i]))
    return Topology(names, cardinalities, edges)


def random_dag_topology(
    cardinalities: Sequence[int], edge_prob: float = 0.3, seed: int = 0
) -> Topology:
    """A random DAG: each pair ``(i, j)`` with ``i < j`` is an edge w.p. ``edge_prob``."""
    if not 0.0 <= edge_prob <= 1.0:
        raise ValueError("edge_prob must be within [0, 1]")
    n = len(cardinalities)
    names = _names(n)
    rng = np.random.default_rng(seed)
    edges = [
        (names[i], names[j])
        for i in range(n)
        for j in range(i + 1, n)
        if rng.random() < edge_prob
    ]
    return Topology(names, cardinalities, edges)
