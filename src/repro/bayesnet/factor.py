"""Discrete factors: the workhorse of exact Bayesian-network inference.

A factor is a non-negative table over a tuple of named discrete variables.
Products, marginalization and evidence reduction are implemented with numpy
broadcasting.  Used by :mod:`repro.bayesnet.elimination` to compute the true
posterior distributions that the experimental framework scores against.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["Factor"]


class Factor:
    """A table ``phi(v1, .., vk)`` over named discrete variables.

    ``variables`` orders the axes of ``table``; ``table.shape[i]`` is the
    cardinality of ``variables[i]``.
    """

    __slots__ = ("variables", "table")

    def __init__(self, variables: Sequence[str], table: np.ndarray):
        variables = tuple(variables)
        table = np.asarray(table, dtype=np.float64)
        if table.ndim != len(variables):
            raise ValueError(
                f"table has {table.ndim} axes for {len(variables)} variables"
            )
        if len(set(variables)) != len(variables):
            raise ValueError("duplicate variable names in factor")
        if (table < 0).any():
            raise ValueError("factor tables must be non-negative")
        self.variables = variables
        self.table = table

    def cardinality(self, variable: str) -> int:
        """Cardinality of ``variable`` in this factor."""
        return self.table.shape[self.variables.index(variable)]

    # -- operations --------------------------------------------------------------

    def multiply(self, other: "Factor") -> "Factor":
        """Pointwise product over the union of variable scopes."""
        union = list(self.variables)
        for v in other.variables:
            if v not in union:
                union.append(v)
        a = _expand(self, union)
        b = _expand(other, union)
        return Factor(union, a * b)

    def marginalize(self, variable: str) -> "Factor":
        """Sum out ``variable``."""
        if variable not in self.variables:
            raise ValueError(f"variable {variable!r} not in factor scope")
        axis = self.variables.index(variable)
        remaining = tuple(v for v in self.variables if v != variable)
        return Factor(remaining, self.table.sum(axis=axis))

    def marginalize_all_but(self, keep: Iterable[str]) -> "Factor":
        """Sum out every variable not in ``keep``."""
        keep = set(keep)
        out = self
        for v in self.variables:
            if v not in keep:
                out = out.marginalize(v)
        return out

    def reduce(self, evidence: Mapping[str, int]) -> "Factor":
        """Fix some variables to observed value codes, dropping their axes."""
        out_vars = []
        indexer: list[object] = []
        for v in self.variables:
            if v in evidence:
                indexer.append(int(evidence[v]))
            else:
                indexer.append(slice(None))
                out_vars.append(v)
        return Factor(out_vars, self.table[tuple(indexer)])

    def normalized(self) -> "Factor":
        """Scale the table so it sums to 1."""
        total = self.table.sum()
        if total <= 0:
            raise ValueError("cannot normalize a zero factor")
        return Factor(self.variables, self.table / total)

    def transpose(self, order: Sequence[str]) -> "Factor":
        """Reorder the variable axes."""
        order = tuple(order)
        if set(order) != set(self.variables):
            raise ValueError("transpose order must be a permutation of the scope")
        axes = [self.variables.index(v) for v in order]
        return Factor(order, self.table.transpose(axes))

    def __repr__(self) -> str:
        return f"Factor({self.variables}, shape={self.table.shape})"


def _expand(factor: Factor, union: Sequence[str]) -> np.ndarray:
    """Broadcast ``factor.table`` to axes ordered by ``union``."""
    # Move existing axes into union order, then insert singleton axes.
    present = [v for v in union if v in factor.variables]
    ordered = factor.transpose(present) if present else factor
    table = ordered.table
    shape = []
    src_axis = 0
    for v in union:
        if v in factor.variables:
            shape.append(table.shape[src_axis])
            src_axis += 1
        else:
            shape.append(1)
    return table.reshape(shape)
