"""The BN Instance Generator of Section VI-A.

Given a topology (structure only), instantiate network parameters "by
randomly populating conditional probability distributions over each variable
given its parents".  Each CPT row is drawn from a symmetric Dirichlet; a
concentration below 1 yields the skewed rows needed for the paper's
top-1-accuracy levels to be attainable, while higher concentrations produce
near-uniform, hard-to-predict rows (useful for stress tests).
"""

from __future__ import annotations

import numpy as np

from .network import BayesianNetwork, Variable
from .topology import Topology

__all__ = ["generate_instance", "DEFAULT_CONCENTRATION"]

#: Default Dirichlet concentration for random CPT rows.  0.5 gives
#: moderately skewed conditionals, matching the accuracy regime reported in
#: the paper's Table II (top-1 well above the random-guess floor).
DEFAULT_CONCENTRATION = 0.5


def generate_instance(
    topology: Topology,
    rng: np.random.Generator,
    concentration: float = DEFAULT_CONCENTRATION,
) -> BayesianNetwork:
    """Instantiate random CPTs for ``topology``.

    Every row (one conditional distribution per parent configuration) is an
    independent ``Dirichlet(concentration, ..., concentration)`` draw.
    """
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    card = dict(zip(topology.names, topology.cardinalities))
    variables = []
    for name in topology.names:
        parents = topology.parents_of(name)
        parent_shape = tuple(card[p] for p in parents)
        k = card[name]
        num_rows = int(np.prod(parent_shape)) if parent_shape else 1
        rows = rng.dirichlet(np.full(k, concentration), size=num_rows)
        cpt = rows.reshape(parent_shape + (k,))
        variables.append(Variable(name, k, parents, cpt))
    return BayesianNetwork(variables)
