"""The 20 benchmark networks of Table I.

Table I publishes four structural properties per network: number of
attributes, average cardinality, domain size (Cartesian product of domains),
and depth.  The exact DAGs and cardinality vectors are not published, so we
reconstruct them:

* domain size and depth are matched **exactly**;
* cardinality vectors are chosen to factor the published domain size while
  keeping the average as close as possible to the published value (BN1, BN2
  and BN7 admit no exact integer factorization at the published average; the
  closest achievable is noted in the spec);
* families follow Fig. 7 — BN8/BN9/BN17/BN18 (and BN10-BN12) are
  crown-shaped, BN13-BN16 are line-shaped, BN4 is fully independent, the
  rest are layered DAGs with the published depth.

Depth is counted in nodes on the longest directed path, with 0 for edge-free
graphs; this is the only convention consistent with every Table I row (see
DESIGN.md Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .generator import DEFAULT_CONCENTRATION, generate_instance
from .network import BayesianNetwork
from .topology import (
    Topology,
    crown_topology,
    independent_topology,
    layered_topology,
    line_topology,
)

__all__ = ["NetworkSpec", "CATALOG", "get_spec", "make_network", "table1_rows"]


@dataclass(frozen=True)
class NetworkSpec:
    """One Table I row plus our concrete reconstruction."""

    name: str
    family: str  # crown | line | layered | independent
    cardinalities: tuple[int, ...]
    #: published Table I values
    published_num_attrs: int
    published_avg_card: float
    published_domain_size: int
    published_depth: int
    #: depth parameter for the layered family (ignored otherwise)
    layer_depth: int = 0

    def topology(self) -> Topology:
        """Build the structural topology for this spec."""
        if self.family == "crown":
            return crown_topology(self.cardinalities)
        if self.family == "line":
            return line_topology(self.cardinalities)
        if self.family == "independent":
            return independent_topology(self.cardinalities)
        if self.family == "layered":
            # Seed the layered wiring by network name so each spec has a
            # fixed, reproducible structure.
            seed = sum(ord(c) for c in self.name)
            return layered_topology(
                self.cardinalities, depth=self.layer_depth, seed=seed
            )
        raise ValueError(f"unknown family {self.family!r}")


def _spec(
    name: str,
    family: str,
    cards: tuple[int, ...],
    avg_card: float,
    depth: int,
    layer_depth: int = 0,
) -> NetworkSpec:
    size = 1
    for c in cards:
        size *= c
    return NetworkSpec(
        name=name,
        family=family,
        cardinalities=cards,
        published_num_attrs=len(cards),
        published_avg_card=avg_card,
        published_domain_size=size,
        published_depth=depth,
        layer_depth=layer_depth,
    )


#: The reconstructed Table I catalog, keyed by network name.
CATALOG: dict[str, NetworkSpec] = {
    spec.name: spec
    for spec in [
        # name      family        cards                      avg   depth  layers
        _spec("BN1", "crown", (3, 4, 5, 5), 4.0, 2),
        _spec("BN2", "layered", (2, 4, 5, 5, 7), 4.4, 3, layer_depth=3),
        _spec("BN3", "layered", (3, 4, 4, 5, 10), 5.2, 3, layer_depth=3),
        _spec("BN4", "independent", (3, 4, 4, 5, 10), 5.2, 0),
        _spec("BN5", "crown", (3, 4, 4, 5, 10), 5.2, 2),
        _spec("BN6", "layered", (2,) * 10, 2.0, 4, layer_depth=4),
        _spec("BN7", "layered", (4, 4, 4, 4, 3, 3, 3, 3, 5, 5), 4.0, 4, layer_depth=4),
        _spec("BN8", "crown", (2,) * 4, 2.0, 2),
        _spec("BN9", "crown", (2,) * 6, 2.0, 2),
        _spec("BN10", "crown", (4,) * 6, 4.0, 2),
        _spec("BN11", "crown", (6,) * 6, 6.0, 2),
        _spec("BN12", "crown", (8,) * 6, 8.0, 2),
        _spec("BN13", "line", (2,) * 6, 2.0, 6),
        _spec("BN14", "line", (4,) * 6, 4.0, 6),
        _spec("BN15", "line", (6,) * 6, 6.0, 6),
        _spec("BN16", "line", (8,) * 6, 8.0, 6),
        _spec("BN17", "crown", (2,) * 8, 2.0, 2),
        _spec("BN18", "crown", (2,) * 10, 2.0, 2),
        _spec("BN19", "layered", (2,) * 10, 2.0, 3, layer_depth=3),
        _spec("BN20", "layered", (2,) * 10, 2.0, 5, layer_depth=5),
    ]
}

#: Published Table I rows (num attrs, avg card, domain size, depth) for
#: cross-checking; BN1/BN2/BN7 averages are the published (rounded) figures.
PUBLISHED_TABLE1: dict[str, tuple[int, float, int, int]] = {
    "BN1": (4, 4.0, 300, 2),
    "BN2": (5, 4.4, 1400, 3),
    "BN3": (5, 5.2, 2400, 3),
    "BN4": (5, 5.2, 2400, 0),
    "BN5": (5, 5.2, 2400, 2),
    "BN6": (10, 2.0, 1024, 4),
    "BN7": (10, 4.0, 518400, 4),
    "BN8": (4, 2.0, 16, 2),
    "BN9": (6, 2.0, 64, 2),
    "BN10": (6, 4.0, 4096, 2),
    "BN11": (6, 6.0, 46656, 2),
    "BN12": (6, 8.0, 262144, 2),
    "BN13": (6, 2.0, 64, 6),
    "BN14": (6, 4.0, 4096, 6),
    "BN15": (6, 6.0, 46656, 6),
    "BN16": (6, 8.0, 262144, 6),
    "BN17": (8, 2.0, 256, 2),
    "BN18": (10, 2.0, 1024, 2),
    "BN19": (10, 2.0, 1024, 3),
    "BN20": (10, 2.0, 1024, 5),
}


def get_spec(name: str) -> NetworkSpec:
    """Look up a catalog spec by name (``"BN1"`` .. ``"BN20"``)."""
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; catalog holds {sorted(CATALOG)}"
        ) from None


def make_network(
    name: str,
    rng: np.random.Generator | int | None = None,
    concentration: float = DEFAULT_CONCENTRATION,
) -> BayesianNetwork:
    """Instantiate a random parameterization of a catalog network."""
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    spec = get_spec(name)
    return generate_instance(spec.topology(), rng, concentration=concentration)


def table1_rows() -> list[tuple[str, int, float, int, int]]:
    """Reproduce Table I from the reconstructed catalog.

    Returns ``(name, num_attrs, avg_card, domain_size, depth)`` per network,
    computed from the actual topologies (not the published constants).
    """
    rows = []
    for name in sorted(CATALOG, key=lambda n: int(n[2:])):
        topo = CATALOG[name].topology()
        rows.append(
            (
                name,
                len(topo.names),
                round(topo.average_cardinality(), 1),
                topo.domain_size(),
                topo.depth(),
            )
        )
    return rows
