"""Bayesian-network substrate for the experimental framework.

Provides the data-generating models of Section VI: DAG structures with
random CPTs (the BN Instance Generator), forward sampling (the BN Sampler),
exact posterior computation (ground truth for accuracy scoring), and the
reconstructed 20-network catalog of Table I.
"""

from .catalog import CATALOG, NetworkSpec, get_spec, make_network, table1_rows
from .elimination import joint_posterior, marginal, posterior
from .factor import Factor
from .generator import DEFAULT_CONCENTRATION, generate_instance
from .network import BayesianNetwork, Variable, network_depth
from .sampler import forward_sample_codes, forward_sample_relation
from .topology import (
    Topology,
    crown_topology,
    independent_topology,
    layered_topology,
    line_topology,
    random_dag_topology,
    tree_topology,
)

__all__ = [
    "Factor",
    "Variable",
    "BayesianNetwork",
    "network_depth",
    "Topology",
    "independent_topology",
    "line_topology",
    "crown_topology",
    "layered_topology",
    "tree_topology",
    "random_dag_topology",
    "generate_instance",
    "DEFAULT_CONCENTRATION",
    "forward_sample_codes",
    "forward_sample_relation",
    "posterior",
    "joint_posterior",
    "marginal",
    "NetworkSpec",
    "CATALOG",
    "get_spec",
    "make_network",
    "table1_rows",
]
