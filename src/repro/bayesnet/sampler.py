"""Forward sampling from a Bayesian network (Koller & Friedman Sec. 12.1).

The BN Sampler of the experimental framework: visit variables in topological
order, sampling each from its CPT row selected by the already-sampled parent
values.  Output is either a raw code matrix or a complete
:class:`~repro.relational.relation.Relation` over the network's induced
schema.
"""

from __future__ import annotations

import numpy as np

from ..relational.relation import Relation
from .network import BayesianNetwork

__all__ = ["forward_sample_codes", "forward_sample_relation"]


def forward_sample_codes(
    network: BayesianNetwork, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``n`` complete samples; returns an ``(n, k)`` int32 code matrix.

    Column order follows ``network.names`` (i.e. the declaration order, which
    also matches the induced schema), not the topological order used
    internally.
    """
    if n < 0:
        raise ValueError("sample count must be non-negative")
    names = network.names
    col = {name: i for i, name in enumerate(names)}
    out = np.empty((n, len(names)), dtype=np.int32)
    for name in network.order:
        v = network[name]
        if not v.parents:
            # Root: one shared row, vectorized draw.
            probs = v.cpt
            out[:, col[name]] = rng.choice(v.cardinality, size=n, p=probs)
            continue
        parent_cols = [col[p] for p in v.parents]
        parent_codes = out[:, parent_cols]
        # Group rows by parent configuration so each distinct CPT row is
        # sampled once, vectorized.
        flat = np.ravel_multi_index(
            parent_codes.T, tuple(network[p].cardinality for p in v.parents)
        )
        cpt_rows = v.cpt.reshape(-1, v.cardinality)
        for row_idx in np.unique(flat):
            mask = flat == row_idx
            out[mask, col[name]] = rng.choice(
                v.cardinality, size=int(mask.sum()), p=cpt_rows[row_idx]
            )
    return out


def forward_sample_relation(
    network: BayesianNetwork, n: int, rng: np.random.Generator
) -> Relation:
    """Draw ``n`` samples as a complete relation over the induced schema."""
    codes = forward_sample_codes(network, n, rng)
    return Relation.from_codes(network.to_schema(), codes)
