"""An intensional select-project-join engine over derived databases.

The paper's Section VIII poses query processing over the derived
probabilistic databases as the next problem; this engine answers SPJ queries
*exactly* by tracking lineage (:mod:`repro.probdb.lineage`) through the
operators and computing each result tuple's probability by Shannon
expansion at the end.  Correct on the cases that break extensional
evaluation — self-joins, repeated use of one block, projections that merge
rows from correlated completions.

Operators work over streams of :class:`ProbRow` — value tuples over a named
attribute list plus an event.  The entry point is :class:`QueryEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Sequence

from .database import ProbabilisticDatabase
from .lineage import (
    FALSE,
    TRUE,
    BlockChoice,
    Event,
    conjunction,
    disjunction,
    event_probability,
)

__all__ = ["ProbRow", "ResultTuple", "QueryEngine"]


@dataclass(frozen=True)
class ProbRow:
    """One intermediate row: named values plus the event it depends on."""

    attributes: tuple[str, ...]
    values: tuple[Hashable, ...]
    event: Event

    def value(self, name: str) -> Hashable:
        try:
            return self.values[self.attributes.index(name)]
        except ValueError:
            raise KeyError(f"no attribute {name!r} in row") from None

    def as_dict(self) -> dict[str, Hashable]:
        return dict(zip(self.attributes, self.values))


@dataclass(frozen=True)
class ResultTuple:
    """One final result: values, exact probability, and its lineage."""

    attributes: tuple[str, ...]
    values: tuple[Hashable, ...]
    probability: float
    event: Event

    def as_dict(self) -> dict[str, Hashable]:
        return dict(zip(self.attributes, self.values))


class QueryEngine:
    """Exact SPJ evaluation over one probabilistic database.

    The engine exposes composable operators returning ``list[ProbRow]`` and
    a final :meth:`evaluate` that deduplicates rows and prices their events.

    Example::

        engine = QueryEngine(db)
        rows = engine.scan()
        rows = engine.select(rows, lambda r: r.value("nw") == "500K")
        result = engine.evaluate(engine.project(rows, ["age"]))
    """

    def __init__(self, db: ProbabilisticDatabase):
        self.db = db
        #: the DeriveResult when built via :meth:`from_relation`, else None
        self.derive_result = None

    @classmethod
    def from_relation(
        cls, relation, engine: str | None = None, config=None, **derive_kwargs
    ) -> "QueryEngine":
        """Derive ``relation``'s probabilistic database and wrap it.

        ``engine`` selects the inference engine used for the derivation
        (the pipeline default — the compiled batch engine — when omitted,
        ``"naive"`` for the scalar oracle); ``config`` may carry a full
        :class:`~repro.api.config.DeriveConfig`; remaining keyword
        arguments are forwarded to
        :func:`~repro.core.derive.derive_probabilistic_database`.  The
        derivation diagnostics stay available as ``engine.derive_result``.
        """
        # Imported here: repro.core depends on this package.
        from ..core.derive import derive_probabilistic_database

        if engine is not None:
            derive_kwargs["engine"] = engine
        result = derive_probabilistic_database(
            relation, config=config, **derive_kwargs
        )
        out = cls(result.database)
        out.derive_result = result
        return out

    # -- leaf operator ------------------------------------------------------------

    def scan(self, prefix: str = "") -> list[ProbRow]:
        """All tuples of the database as rows with their lineage.

        Certain tuples carry the TRUE event; each completion of block ``i``
        carries the atom ``BlockChoice(i, outcome)``.  ``prefix`` renames
        attributes (needed to join the database with itself).
        """
        names = tuple(prefix + n for n in self.db.schema.names)
        rows = [
            ProbRow(names, t.values(), TRUE) for t in self.db.certain
        ]
        for i, block in enumerate(self.db.blocks):
            for (completed, _), outcome in zip(
                block.completions(), block.distribution.outcomes
            ):
                rows.append(
                    ProbRow(names, completed.values(), BlockChoice(i, outcome))
                )
        return rows

    # -- composable operators ---------------------------------------------------------

    @staticmethod
    def select(
        rows: Sequence[ProbRow], predicate: Callable[[ProbRow], bool]
    ) -> list[ProbRow]:
        """Keep rows satisfying ``predicate`` (lineage unchanged)."""
        return [r for r in rows if predicate(r)]

    @staticmethod
    def project(rows: Sequence[ProbRow], names: Sequence[str]) -> list[ProbRow]:
        """Project onto ``names`` with duplicate *merging*.

        Rows collapsing to the same projected values are merged and their
        events disjoined — the step extensional engines get wrong when the
        merged rows are correlated.
        """
        names = tuple(names)
        merged: dict[tuple[Hashable, ...], list[Event]] = {}
        for r in rows:
            key = tuple(r.value(n) for n in names)
            merged.setdefault(key, []).append(r.event)
        return [
            ProbRow(names, key, disjunction(events))
            for key, events in merged.items()
        ]

    @staticmethod
    def join(
        left: Sequence[ProbRow],
        right: Sequence[ProbRow],
        on: Sequence[tuple[str, str]],
    ) -> list[ProbRow]:
        """Equi-join: ``on`` pairs ``(left_attr, right_attr)``.

        Events are conjoined; contradictory block choices (a block forced
        into two different outcomes, as in a self-join across completions)
        fold to FALSE and are dropped.
        """
        if not on:
            raise ValueError("join requires at least one attribute pair")
        index: dict[tuple[Hashable, ...], list[ProbRow]] = {}
        for r in right:
            key = tuple(r.value(rn) for _, rn in on)
            index.setdefault(key, []).append(r)
        out = []
        for lt in left:
            key = tuple(lt.value(ln) for ln, _ in on)
            for r in index.get(key, ()):  # hash join
                event = conjunction([lt.event, r.event])
                if event is not FALSE:
                    out.append(
                        ProbRow(
                            lt.attributes + r.attributes,
                            lt.values + r.values,
                            event,
                        )
                    )
        return out

    # -- finalization -----------------------------------------------------------------

    def evaluate(
        self, rows: Sequence[ProbRow], dedup: bool = True
    ) -> list[ResultTuple]:
        """Price every row's event; optionally merge duplicate value rows.

        Results are sorted by probability, descending; zero-probability
        rows are dropped.
        """
        if dedup and rows:
            rows = self.project(rows, rows[0].attributes)
        out = []
        for r in rows:
            p = event_probability(r.event, self.db)
            if p > 0.0:
                out.append(ResultTuple(r.attributes, r.values, p, r.event))
        out.sort(key=lambda t: t.probability, reverse=True)
        return out

    # -- convenience one-liners ----------------------------------------------------------

    def selection_query(
        self,
        predicate: Callable[[ProbRow], bool],
        project_to: Sequence[str] | None = None,
    ) -> list[ResultTuple]:
        """``SELECT [DISTINCT cols] FROM R WHERE predicate`` in one call."""
        rows = self.select(self.scan(), predicate)
        if project_to is not None:
            rows = self.project(rows, project_to)
        return self.evaluate(rows)

    def self_join_query(
        self,
        on: Sequence[tuple[str, str]],
        predicate: Callable[[ProbRow], bool] | None = None,
        project_to: Sequence[str] | None = None,
        left_prefix: str = "l_",
        right_prefix: str = "r_",
    ) -> list[ResultTuple]:
        """Join the database with itself — the canonical unsafe query."""
        left = self.scan(prefix=left_prefix)
        right = self.scan(prefix=right_prefix)
        on = [(left_prefix + a, right_prefix + b) for a, b in on]
        rows = self.join(left, right, on)
        if predicate is not None:
            rows = self.select(rows, predicate)
        if project_to is not None:
            rows = self.project(rows, project_to)
        return self.evaluate(rows)
