"""Probabilistic-database substrate: the disjoint-independent model.

The paper's output is a disjoint-independent probabilistic database: each
incomplete tuple becomes a block of mutually exclusive completions with
probabilities summing to 1, blocks independent of one another.  This package
provides distributions, blocks, the database object with possible-world
semantics, and extensional query evaluation.
"""

from .analysis import attribute_distribution, rank_blocks_by_entropy, top_k_worlds
from .blocks import TupleBlock
from .engine import ProbRow, QueryEngine, ResultTuple
from .lineage import (
    FALSE,
    TRUE,
    BlockChoice,
    Event,
    conjunction,
    disjunction,
    estimate_event_probability,
    event_probability,
    negation,
)
from .database import PossibleWorld, ProbabilisticDatabase
from .distribution import DEFAULT_SMOOTHING_FLOOR, Distribution, mixture
from .invalidate import CarryStore, DeltaSplit
from .query import (
    block_selection_probability,
    count_distribution,
    expected_count,
    possible_worlds_expected_count,
    selection_probabilities,
)

__all__ = [
    "Distribution",
    "mixture",
    "DEFAULT_SMOOTHING_FLOOR",
    "TupleBlock",
    "ProbabilisticDatabase",
    "PossibleWorld",
    "CarryStore",
    "DeltaSplit",
    "block_selection_probability",
    "selection_probabilities",
    "expected_count",
    "count_distribution",
    "possible_worlds_expected_count",
    "attribute_distribution",
    "rank_blocks_by_entropy",
    "top_k_worlds",
    "Event",
    "TRUE",
    "FALSE",
    "BlockChoice",
    "conjunction",
    "disjunction",
    "negation",
    "event_probability",
    "estimate_event_probability",
    "ProbRow",
    "ResultTuple",
    "QueryEngine",
]
