"""Analysis utilities over derived probabilistic databases.

Tools a downstream consumer of the derived model actually reaches for:
per-attribute value distributions aggregated across blocks (probabilistic
projection), uncertainty ranking for cleaning triage, and most-probable
top-k worlds.
"""

from __future__ import annotations

import heapq
from typing import Hashable

from ..relational.tuples import MISSING_CODE
from .database import PossibleWorld, ProbabilisticDatabase
from .distribution import Distribution

__all__ = [
    "attribute_distribution",
    "rank_blocks_by_entropy",
    "top_k_worlds",
]


def attribute_distribution(
    db: ProbabilisticDatabase, attribute: str
) -> Distribution:
    """Expected value histogram of ``attribute`` across the whole database.

    The probabilistic projection: each certain tuple contributes weight 1 to
    its value; each block contributes its marginal.  The result is the
    expected relative frequency of each value over possible worlds.
    """
    attr = db.schema[attribute]
    pos = db.schema.index(attribute)
    totals: dict[Hashable, float] = {v: 0.0 for v in attr.domain}
    for t in db.certain:
        totals[attr.value(int(t.codes[pos]))] += 1.0
    for block in db.blocks:
        base_code = int(block.base.codes[pos])
        if base_code != MISSING_CODE:
            totals[attr.value(base_code)] += 1.0
            continue
        marginal = block.marginal(attribute)
        for value, p in marginal:
            totals[value] += float(p)
    return Distribution.from_counts(totals, outcomes=attr.domain)


def rank_blocks_by_entropy(
    db: ProbabilisticDatabase, descending: bool = True
) -> list[tuple[float, int]]:
    """Blocks ordered by distribution entropy: ``(entropy, block_index)``.

    High-entropy blocks are the most uncertain predictions — the natural
    triage order for manual data cleaning (check the tuples the model is
    least sure about first).
    """
    ranked = [
        (block.distribution.entropy(), i) for i, block in enumerate(db.blocks)
    ]
    ranked.sort(key=lambda pair: pair[0], reverse=descending)
    return ranked


def top_k_worlds(db: ProbabilisticDatabase, k: int) -> list[PossibleWorld]:
    """The ``k`` most probable possible worlds, most probable first.

    Uses a best-first frontier over per-block outcome rankings, so the cost
    is ``O(k log k x blocks)`` instead of enumerating all worlds.
    """
    if k < 1:
        raise ValueError("k must be positive")
    if not db.blocks:
        world = next(iter(db.possible_worlds()))
        return [world]

    # Per block: completions sorted by probability, descending.
    ranked_blocks = []
    for block in db.blocks:
        completions = sorted(
            block.completions(), key=lambda pair: pair[1], reverse=True
        )
        ranked_blocks.append(completions)

    def world_for(indices: tuple[int, ...]) -> PossibleWorld:
        tuples = list(db.certain)
        prob = 1.0
        for block_idx, choice in enumerate(indices):
            completed, p = ranked_blocks[block_idx][choice]
            tuples.append(completed)
            prob *= p
        return PossibleWorld(tuples, prob)

    def prob_of(indices: tuple[int, ...]) -> float:
        prob = 1.0
        for block_idx, choice in enumerate(indices):
            prob *= ranked_blocks[block_idx][choice][1]
        return prob

    start = (0,) * len(db.blocks)
    heap = [(-prob_of(start), start)]
    seen = {start}
    out: list[PossibleWorld] = []
    while heap and len(out) < k:
        neg_prob, indices = heapq.heappop(heap)
        out.append(world_for(indices))
        for block_idx in range(len(indices)):
            if indices[block_idx] + 1 < len(ranked_blocks[block_idx]):
                nxt = (
                    indices[:block_idx]
                    + (indices[block_idx] + 1,)
                    + indices[block_idx + 1 :]
                )
                if nxt not in seen:
                    seen.add(nxt)
                    heapq.heappush(heap, (-prob_of(nxt), nxt))
    return out
