"""Query answering over disjoint-independent probabilistic databases.

Implements the standard extensional evaluation for the disjoint-independent
model [8]: block independence lets selection probabilities be computed per
block and combined by product/expectation, without enumerating worlds.  An
exact possible-worlds evaluator is provided for validation on small inputs.
"""

from __future__ import annotations

from typing import Callable, Hashable

from ..relational.tuples import RelTuple
from .database import ProbabilisticDatabase
from .distribution import Distribution

__all__ = [
    "Predicate",
    "block_selection_probability",
    "selection_probabilities",
    "expected_count",
    "count_distribution",
    "possible_worlds_expected_count",
]

#: A selection predicate over complete tuples.
Predicate = Callable[[RelTuple], bool]


def block_selection_probability(
    db: ProbabilisticDatabase, block_index: int, predicate: Predicate
) -> float:
    """P(the completion of block ``block_index`` satisfies ``predicate``).

    Within a block, completions are mutually exclusive, so the probability is
    the sum over satisfying completions.
    """
    block = db.blocks[block_index]
    return sum(p for completed, p in block.completions() if predicate(completed))


def selection_probabilities(
    db: ProbabilisticDatabase, predicate: Predicate
) -> tuple[list[bool], list[float]]:
    """Evaluate a selection over the whole database.

    Returns ``(certain_hits, block_probs)``: a boolean per certain tuple, and
    the per-block satisfaction probability.
    """
    certain_hits = [predicate(t) for t in db.certain]
    block_probs = [
        block_selection_probability(db, i, predicate) for i in range(len(db.blocks))
    ]
    return certain_hits, block_probs


def expected_count(db: ProbabilisticDatabase, predicate: Predicate) -> float:
    """Expected number of tuples satisfying ``predicate``.

    By linearity of expectation this is exact regardless of block count.
    """
    certain_hits, block_probs = selection_probabilities(db, predicate)
    return float(sum(certain_hits)) + float(sum(block_probs))


def count_distribution(
    db: ProbabilisticDatabase, predicate: Predicate
) -> Distribution:
    """Exact distribution of the satisfying-tuple count.

    Uses the Poisson-binomial dynamic program over block probabilities —
    possible because blocks are independent — so this stays polynomial in the
    number of blocks.
    """
    certain_hits, block_probs = selection_probabilities(db, predicate)
    base = sum(certain_hits)
    # dp[k] = P(k of the blocks processed so far satisfy the predicate)
    dp = [1.0]
    for p in block_probs:
        nxt = [0.0] * (len(dp) + 1)
        for k, mass in enumerate(dp):
            nxt[k] += mass * (1.0 - p)
            nxt[k + 1] += mass * p
        dp = nxt
    outcomes: list[Hashable] = [base + k for k in range(len(dp))]
    return Distribution(outcomes, dp)


def possible_worlds_expected_count(
    db: ProbabilisticDatabase, predicate: Predicate, max_worlds: int = 100_000
) -> float:
    """Reference implementation of :func:`expected_count` by enumeration.

    Exponential in the number of blocks; used in tests to validate the
    extensional evaluators.
    """
    total = 0.0
    for world in db.possible_worlds(max_worlds=max_worlds):
        hits = sum(1 for t in world if predicate(t))
        total += world.probability * hits
    return total
