"""Discrete probability distributions over finite outcome sets.

The paper's output objects — per-tuple distributions ``Δt`` and per-meta-rule
CPD estimates ``Δ(m)`` — are finite discrete distributions.  This module
provides the shared representation plus the two accuracy measures of
Section VI-A: Kullback-Leibler divergence and top-1 agreement.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["Distribution", "DEFAULT_SMOOTHING_FLOOR"]

#: The smoothing floor of Section III: every outcome is assigned a probability
#: of at least 1e-5 so Gibbs sampling transitions are strictly positive.
DEFAULT_SMOOTHING_FLOOR = 1e-5


class Distribution:
    """An immutable probability distribution over an ordered outcome set.

    Outcomes are arbitrary hashable objects (attribute values, tuples of
    values, ...).  Probabilities are stored as a float64 vector and always
    sum to 1 after construction.
    """

    __slots__ = ("outcomes", "probs", "_index")

    def __init__(self, outcomes: Sequence[Hashable], probs: Sequence[float]):
        outs = tuple(outcomes)
        arr = np.asarray(probs, dtype=np.float64)
        if arr.ndim != 1 or arr.shape[0] != len(outs):
            raise ValueError(
                f"{len(outs)} outcomes but probability vector of shape {arr.shape}"
            )
        if not outs:
            raise ValueError("distribution needs at least one outcome")
        index = {o: i for i, o in enumerate(outs)}
        if len(index) != len(outs):
            raise ValueError("duplicate outcomes in distribution")
        if (arr < 0).any():
            raise ValueError("negative probability")
        total = float(arr.sum())
        if total <= 0:
            raise ValueError("probabilities sum to zero")
        arr = arr / total
        arr.setflags(write=False)
        self.outcomes = outs
        self.probs = arr
        self._index = index

    # -- constructors ---------------------------------------------------------

    @classmethod
    def uniform(cls, outcomes: Sequence[Hashable]) -> "Distribution":
        """The uniform distribution over ``outcomes``."""
        n = len(tuple(outcomes))
        return cls(outcomes, np.full(n, 1.0 / n))

    @classmethod
    def from_counts(
        cls, counts: Mapping[Hashable, float], outcomes: Sequence[Hashable] | None = None
    ) -> "Distribution":
        """Normalize a ``{outcome: count}`` mapping into a distribution.

        ``outcomes`` fixes the outcome order (and zero-fills absences);
        otherwise insertion order of ``counts`` is used.
        """
        if outcomes is None:
            outcomes = tuple(counts.keys())
        probs = [float(counts.get(o, 0.0)) for o in outcomes]
        return cls(outcomes, probs)

    @classmethod
    def point_mass(cls, outcomes: Sequence[Hashable], winner: Hashable) -> "Distribution":
        """All mass on ``winner`` (used in tests and degenerate CPDs)."""
        probs = [1.0 if o == winner else 0.0 for o in outcomes]
        return cls(outcomes, probs)

    # -- accessors -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self) -> Iterator[tuple[Hashable, float]]:
        return iter(zip(self.outcomes, self.probs))

    def __getitem__(self, outcome: Hashable) -> float:
        """Probability of ``outcome`` (0.0 if absent from the outcome set)."""
        i = self._index.get(outcome)
        if i is None:
            return 0.0
        return float(self.probs[i])

    def __contains__(self, outcome: Hashable) -> bool:
        return outcome in self._index

    def top1(self) -> Hashable:
        """The most probable outcome (ties broken by outcome order)."""
        return self.outcomes[int(np.argmax(self.probs))]

    def entropy(self) -> float:
        """Shannon entropy in nats."""
        p = self.probs[self.probs > 0]
        return float(-(p * np.log(p)).sum())

    # -- transforms ---------------------------------------------------------------

    def smoothed(self, floor: float = DEFAULT_SMOOTHING_FLOOR) -> "Distribution":
        """Return a strictly positive copy.

        Implements the Section III smoothing: every outcome gets probability
        at least ``floor``, and the distribution is renormalized.  Required so
        all Gibbs transition kernels are positive.
        """
        probs = np.maximum(self.probs, floor)
        return Distribution(self.outcomes, probs)

    def reordered(self, outcomes: Sequence[Hashable]) -> "Distribution":
        """Return this distribution expressed over a given outcome order.

        Outcomes absent from ``self`` get probability 0 (the result is then
        renormalized, so the caller usually smooths afterwards).
        """
        probs = [self[o] for o in outcomes]
        return Distribution(outcomes, probs)

    # -- accuracy measures (Section VI-A) -----------------------------------------

    def kl_divergence(self, other: "Distribution") -> float:
        """``KL(self || other)`` in nats.

        Outcomes are matched by value, so the two distributions may list them
        in different orders; ``other`` must be positive wherever ``self`` is.
        """
        total = 0.0
        for outcome, p in zip(self.outcomes, self.probs):
            if p <= 0.0:
                continue
            q = other[outcome]
            if q <= 0.0:
                return float("inf")
            total += float(p) * float(np.log(p / q))
        # Clamp tiny negative rounding residue.
        return max(total, 0.0)

    def total_variation(self, other: "Distribution") -> float:
        """Total-variation distance, over the union of outcome sets."""
        outcomes = set(self.outcomes) | set(other.outcomes)
        return 0.5 * sum(abs(self[o] - other[o]) for o in outcomes)

    def same_top1(self, other: "Distribution") -> bool:
        """True when both distributions agree on the most probable outcome."""
        return self.top1() == other.top1()

    # -- sampling ----------------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> Hashable:
        """Draw one outcome."""
        i = int(rng.choice(len(self.outcomes), p=self.probs))
        return self.outcomes[i]

    def sample_many(self, n: int, rng: np.random.Generator) -> list[Hashable]:
        """Draw ``n`` outcomes with replacement."""
        idx = rng.choice(len(self.outcomes), size=n, p=self.probs)
        return [self.outcomes[int(i)] for i in idx]

    # -- dunder ---------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Distribution):
            return NotImplemented
        return self.outcomes == other.outcomes and np.allclose(
            self.probs, other.probs
        )

    def __hash__(self) -> int:
        return hash((self.outcomes, self.probs.tobytes()))

    def __repr__(self) -> str:
        body = ", ".join(f"{o}: {p:.4f}" for o, p in self)
        return f"Distribution({body})"


def mixture(
    components: Iterable[Distribution], weights: Sequence[float] | None = None
) -> Distribution:
    """Weighted mixture of distributions over the union of their outcomes.

    This is the voting combiner of Algorithm 2: ``averaged`` voting is the
    unweighted mixture, ``weighted`` voting passes meta-rule supports as
    weights.
    """
    comps = list(components)
    if not comps:
        raise ValueError("mixture of zero components")
    if weights is None:
        w = np.ones(len(comps))
    else:
        w = np.asarray(list(weights), dtype=np.float64)
        if w.shape[0] != len(comps):
            raise ValueError("weights length does not match component count")
        if (w < 0).any() or w.sum() <= 0:
            raise ValueError("weights must be non-negative with positive sum")
    w = w / w.sum()
    outcomes: list[Hashable] = []
    seen = set()
    for comp in comps:
        for o in comp.outcomes:
            if o not in seen:
                seen.add(o)
                outcomes.append(o)
    probs = np.zeros(len(outcomes))
    for weight, comp in zip(w, comps):
        for i, o in enumerate(outcomes):
            probs[i] += weight * comp[o]
    return Distribution(outcomes, probs)
