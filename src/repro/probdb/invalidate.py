"""Lineage-driven invalidation: which blocks survive a base-table update.

A derived block's lineage is fully determined by *content*: a single-missing
block depends only on its base tuple (the compiled inference path is
deterministic and RNG-free), and a multi-missing block depends on the distinct
tuple set of its Gibbs shard — the shard's content key seeds its RNG, so two
shards with the same key and base seed produce bit-identical blocks.

That makes invalidation a pure set computation, no diffing of ChangeSets
required: rebuild the previous derivation's content→block maps (the
:class:`CarryStore`), lay out the *new* workload exactly as a from-scratch
plan would, and every new shard whose key is found in the store carries its
blocks over verbatim.  Everything else is dirty and gets re-derived with the
seed a from-scratch run would have used — so an incremental derivation is
bit-identical to a full derivation of the updated table under the same base
seed, for every executor.

Granularity follows the planner: a cell update to a single-missing tuple
dirties exactly that tuple; an update to a multi-missing tuple dirties the
batched shard holding its subsumption component.  Inserting or retracting
multi-missing tuples can shift the greedy batch packing and cascade
re-keying to later batches — correct, but worth knowing when sizing
ChangeSets (see ``docs/updates.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from ..relational.tuples import RelTuple
from .blocks import TupleBlock

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .database import ProbabilisticDatabase

__all__ = ["CarryStore", "DeltaSplit"]


@dataclass(frozen=True)
class DeltaSplit:
    """A new workload split into carried blocks and dirty work.

    ``carried`` maps workload indices to reusable blocks.  ``dirty_single``
    entries re-enter the single-shard packer; each ``dirty_multi`` item is a
    ready-made shard ``(content key, entries)`` from the new layout whose
    key missed the store.  ``carried_single``/``carried_multi`` mirror the
    carried side so the runtime can account skipped shards honestly.
    """

    carried: dict[int, TupleBlock]
    dirty_single: list[tuple[int, RelTuple]]
    dirty_multi: list[tuple[str, list[tuple[int, RelTuple]]]]
    carried_single: list[tuple[int, RelTuple]]
    carried_multi: list[tuple[str, list[tuple[int, RelTuple]]]]

    @property
    def num_carried_tuples(self) -> int:
        return len(self.carried)

    @property
    def num_dirty_tuples(self) -> int:
        return len(self.dirty_single) + sum(
            len(entries) for _, entries in self.dirty_multi
        )


class CarryStore:
    """Content-keyed blocks from a previous derivation, ready for reuse.

    ``singles`` maps each single-missing base tuple to its block;
    ``multi`` maps each previous multi shard's content key to that shard's
    own ``{base tuple: block}`` map.  ``base_seed`` is the seed the previous
    derivation's multi shards were derived under — the delta runtime pins
    new shards to the same seed so the combined result equals a from-scratch
    run.  ``None`` when the previous run had no multi-missing work.
    """

    __slots__ = ("singles", "multi", "base_seed")

    def __init__(
        self,
        singles: dict[RelTuple, TupleBlock],
        multi: dict[str, dict[RelTuple, TupleBlock]],
        base_seed: int | None,
    ):
        self.singles = singles
        self.multi = multi
        self.base_seed = base_seed

    @classmethod
    def from_database(
        cls,
        database: "ProbabilisticDatabase",
        base_seed: int | None,
        multi_batch: int | None = None,
    ) -> "CarryStore":
        """Rebuild the store from a derived database.

        The previous multi workload is recovered from the database's blocks
        (derivation emits blocks in workload order, so the multi bases appear
        in their original relative order) and replayed through the planner's
        :func:`~repro.exec.plan.multi_shard_layout` with the same
        ``multi_batch`` to recover the shard content keys.
        """
        from ..exec.plan import multi_shard_layout

        singles: dict[RelTuple, TupleBlock] = {}
        multi_blocks: list[TupleBlock] = []
        for block in database.blocks:
            if block.base.num_missing == 1:
                singles.setdefault(block.base, block)
            else:
                multi_blocks.append(block)
        multi: dict[str, dict[RelTuple, TupleBlock]] = {}
        if multi_blocks:
            entries = [(i, b.base) for i, b in enumerate(multi_blocks)]
            for key, batch in multi_shard_layout(entries, multi_batch):
                multi[key] = {multi_blocks[i].base: multi_blocks[i] for i, _ in batch}
        return cls(singles=singles, multi=multi, base_seed=base_seed)

    @classmethod
    def from_shards(
        cls,
        records: "Sequence[tuple[str, str, Sequence[TupleBlock]]]",
        base_seed: int | None,
    ) -> "CarryStore":
        """Rebuild the store from journaled shard results.

        ``records`` are ``(key, kind, blocks)`` rows as a durable job store
        journals them — the completed shards of an interrupted run.  Single
        shards contribute per-base blocks (packing is irrelevant: singles
        are content-addressed by base tuple); multi shards keep their
        content key, which a resumed plan of the same workload reproduces.
        ``base_seed`` must be the interrupted run's journaled base seed so
        the still-dirty multi shards re-derive under the same seed.
        """
        singles: dict[RelTuple, TupleBlock] = {}
        multi: dict[str, dict[RelTuple, TupleBlock]] = {}
        for key, kind, blocks in records:
            if kind == "single":
                for block in blocks:
                    singles.setdefault(block.base, block)
            else:
                multi[key] = {block.base: block for block in blocks}
        return cls(singles=singles, multi=multi, base_seed=base_seed)

    def split(
        self,
        tuples: Sequence[RelTuple],
        multi_batch: int | None = None,
    ) -> DeltaSplit:
        """Split the new workload into carried blocks and dirty shards.

        ``tuples`` is the full new workload in canonical order (singles then
        multis, each in relation order — exactly what a from-scratch derive
        would plan).  The new multi layout is computed here so dirty multi
        shards keep the keys — hence the seeds — a from-scratch plan would
        assign them.
        """
        from ..exec.plan import multi_shard_layout

        single: list[tuple[int, RelTuple]] = []
        multi: list[tuple[int, RelTuple]] = []
        for idx, t in enumerate(tuples):
            if t.is_complete:
                raise ValueError("complete tuples do not belong in the workload")
            (single if t.num_missing == 1 else multi).append((idx, t))

        carried: dict[int, TupleBlock] = {}
        dirty_single: list[tuple[int, RelTuple]] = []
        carried_single: list[tuple[int, RelTuple]] = []
        for idx, t in single:
            block = self.singles.get(t)
            if block is None:
                dirty_single.append((idx, t))
            else:
                # Re-root the block on this workload entry; duplicates of one
                # content share the distribution, as in a from-scratch run.
                carried[idx] = TupleBlock(t, block.distribution)
                carried_single.append((idx, t))

        dirty_multi: list[tuple[str, list[tuple[int, RelTuple]]]] = []
        carried_multi: list[tuple[str, list[tuple[int, RelTuple]]]] = []
        for key, batch in multi_shard_layout(multi, multi_batch):
            blocks = self.multi.get(key)
            if blocks is None:
                dirty_multi.append((key, batch))
            else:
                for idx, t in batch:
                    carried[idx] = TupleBlock(t, blocks[t].distribution)
                carried_multi.append((key, batch))

        return DeltaSplit(
            carried=carried,
            dirty_single=dirty_single,
            dirty_multi=dirty_multi,
            carried_single=carried_single,
            carried_multi=carried_multi,
        )
