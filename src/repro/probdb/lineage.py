"""Event expressions (lineage) over disjoint-independent databases.

The extensional evaluators in :mod:`repro.probdb.query` are correct only for
safe plans; general select-project-join queries — self-joins in particular —
need *intensional* evaluation: track, per result tuple, the boolean event
over block choices under which the tuple appears, then compute that event's
probability exactly.

Atoms are block choices ``(block_index, outcome)``.  Within one block,
outcomes are mutually exclusive and exhaustive; across blocks, choices are
independent.  Exact probability is computed by Shannon expansion over the
blocks an event mentions — exponential only in the (typically tiny) number
of blocks in one tuple's lineage, never in the database size.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

import numpy as np

from .database import ProbabilisticDatabase

__all__ = [
    "Event",
    "TRUE",
    "FALSE",
    "BlockChoice",
    "conjunction",
    "disjunction",
    "negation",
    "event_probability",
    "estimate_event_probability",
]


class Event:
    """Base class for boolean events over block choices."""

    def blocks(self) -> frozenset[int]:
        """Indices of every block this event mentions."""
        raise NotImplementedError

    def evaluate(self, assignment: Mapping[int, Hashable]) -> bool:
        """Truth value under a full assignment ``block_index -> outcome``."""
        raise NotImplementedError

    # Convenience combinators.
    def __and__(self, other: "Event") -> "Event":
        return conjunction([self, other])

    def __or__(self, other: "Event") -> "Event":
        return disjunction([self, other])

    def __invert__(self) -> "Event":
        return negation(self)


class _Constant(Event):
    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value

    def blocks(self) -> frozenset[int]:
        return frozenset()

    def evaluate(self, assignment: Mapping[int, Hashable]) -> bool:
        return self.value

    def __repr__(self) -> str:
        return "TRUE" if self.value else "FALSE"


#: The certain event (lineage of certain tuples).
TRUE = _Constant(True)
#: The impossible event.
FALSE = _Constant(False)


class BlockChoice(Event):
    """Atom: block ``block_index`` resolves to ``outcome``."""

    __slots__ = ("block_index", "outcome")

    def __init__(self, block_index: int, outcome: Hashable):
        self.block_index = block_index
        self.outcome = outcome

    def blocks(self) -> frozenset[int]:
        return frozenset((self.block_index,))

    def evaluate(self, assignment: Mapping[int, Hashable]) -> bool:
        return assignment[self.block_index] == self.outcome

    def __repr__(self) -> str:
        return f"b{self.block_index}={self.outcome!r}"


class _And(Event):
    __slots__ = ("children",)

    def __init__(self, children: tuple[Event, ...]):
        self.children = children

    def blocks(self) -> frozenset[int]:
        return frozenset().union(*(c.blocks() for c in self.children))

    def evaluate(self, assignment: Mapping[int, Hashable]) -> bool:
        return all(c.evaluate(assignment) for c in self.children)

    def __repr__(self) -> str:
        return "(" + " ^ ".join(map(repr, self.children)) + ")"


class _Or(Event):
    __slots__ = ("children",)

    def __init__(self, children: tuple[Event, ...]):
        self.children = children

    def blocks(self) -> frozenset[int]:
        return frozenset().union(*(c.blocks() for c in self.children))

    def evaluate(self, assignment: Mapping[int, Hashable]) -> bool:
        return any(c.evaluate(assignment) for c in self.children)

    def __repr__(self) -> str:
        return "(" + " v ".join(map(repr, self.children)) + ")"


class _Not(Event):
    __slots__ = ("child",)

    def __init__(self, child: Event):
        self.child = child

    def blocks(self) -> frozenset[int]:
        return self.child.blocks()

    def evaluate(self, assignment: Mapping[int, Hashable]) -> bool:
        return not self.child.evaluate(assignment)

    def __repr__(self) -> str:
        return f"!{self.child!r}"


def conjunction(events: Iterable[Event]) -> Event:
    """And, with constant folding."""
    flat: list[Event] = []
    for e in events:
        if e is FALSE:
            return FALSE
        if e is TRUE:
            continue
        if isinstance(e, _And):
            flat.extend(e.children)
        else:
            flat.append(e)
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    # Contradictory atoms on the same block => FALSE.
    chosen: dict[int, Hashable] = {}
    for e in flat:
        if isinstance(e, BlockChoice):
            prev = chosen.get(e.block_index)
            if prev is not None and prev != e.outcome:
                return FALSE
            chosen[e.block_index] = e.outcome
    return _And(tuple(flat))


def disjunction(events: Iterable[Event]) -> Event:
    """Or, with constant folding."""
    flat: list[Event] = []
    for e in events:
        if e is TRUE:
            return TRUE
        if e is FALSE:
            continue
        if isinstance(e, _Or):
            flat.extend(e.children)
        else:
            flat.append(e)
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return _Or(tuple(flat))


def negation(event: Event) -> Event:
    """Not, with constant folding."""
    if event is TRUE:
        return FALSE
    if event is FALSE:
        return TRUE
    if isinstance(event, _Not):
        return event.child
    return _Not(event)


#: Shannon expansion beyond this many mentioned blocks is refused (use the
#: Monte-Carlo estimator instead); 2^20 assignments is already generous.
MAX_EXACT_BLOCKS = 20


def _atom_probability(db: ProbabilisticDatabase, atom: BlockChoice) -> float:
    return float(db.blocks[atom.block_index].distribution[atom.outcome])


def _try_closed_form(event: Event, db: ProbabilisticDatabase) -> float | None:
    """Closed forms for the common shapes, avoiding Shannon expansion.

    * an atom: its block-outcome probability;
    * a conjunction of atoms: independent across blocks, contradictions
      within a block are already folded to FALSE by :func:`conjunction`;
    * a disjunction of atoms: within a block outcomes are mutually
      exclusive (probabilities add), across blocks independent
      (``1 - prod(1 - p_b)``).

    These cover scans, selections and single-relation projections exactly —
    only join lineages (and/or mixtures) fall through to expansion.
    """
    if isinstance(event, BlockChoice):
        return _atom_probability(db, event)
    if isinstance(event, _And) and all(
        isinstance(c, BlockChoice) for c in event.children
    ):
        per_block: dict[int, set] = {}
        for atom in event.children:
            per_block.setdefault(atom.block_index, set()).add(atom.outcome)
        prob = 1.0
        for block_idx, outcomes in per_block.items():
            if len(outcomes) > 1:
                return 0.0  # contradictory (defensive; conjunction folds this)
            prob *= float(db.blocks[block_idx].distribution[next(iter(outcomes))])
        return prob
    if isinstance(event, _Or) and all(
        isinstance(c, BlockChoice) for c in event.children
    ):
        per_block: dict[int, set] = {}
        for atom in event.children:
            per_block.setdefault(atom.block_index, set()).add(atom.outcome)
        none = 1.0
        for block_idx, outcomes in per_block.items():
            dist = db.blocks[block_idx].distribution
            covered = sum(float(dist[o]) for o in outcomes)
            none *= max(1.0 - covered, 0.0)
        return 1.0 - none
    return None


def event_probability(
    event: Event, db: ProbabilisticDatabase, max_blocks: int = MAX_EXACT_BLOCKS
) -> float:
    """Exact probability of ``event`` under the database's block semantics.

    Closed forms handle atom conjunctions/disjunctions directly (any number
    of blocks); everything else uses Shannon expansion — enumerate joint
    outcomes of the mentioned blocks only (independent across blocks,
    mutually exclusive within), summing the probability of assignments that
    satisfy the event.
    """
    closed = _try_closed_form(event, db)
    if closed is not None:
        return min(closed, 1.0)
    mentioned = sorted(event.blocks())
    if len(mentioned) > max_blocks:
        raise ValueError(
            f"event mentions {len(mentioned)} blocks; exact expansion capped "
            f"at {max_blocks} — use estimate_event_probability"
        )
    if not mentioned:
        return 1.0 if event.evaluate({}) else 0.0

    total = 0.0
    assignment: dict[int, Hashable] = {}

    def recurse(i: int, prob: float) -> None:
        nonlocal total
        if prob == 0.0:
            return
        if i == len(mentioned):
            if event.evaluate(assignment):
                total += prob
            return
        block_idx = mentioned[i]
        dist = db.blocks[block_idx].distribution
        for outcome, p in dist:
            assignment[block_idx] = outcome
            recurse(i + 1, prob * float(p))
        del assignment[block_idx]

    recurse(0, 1.0)
    return min(total, 1.0)


def estimate_event_probability(
    event: Event,
    db: ProbabilisticDatabase,
    num_samples: int,
    rng: np.random.Generator,
) -> float:
    """Monte-Carlo estimate for events whose lineage spans many blocks."""
    if num_samples < 1:
        raise ValueError("num_samples must be positive")
    mentioned = sorted(event.blocks())
    hits = 0
    for _ in range(num_samples):
        assignment = {
            i: db.blocks[i].distribution.sample(rng) for i in mentioned
        }
        if event.evaluate(assignment):
            hits += 1
    return hits / num_samples
