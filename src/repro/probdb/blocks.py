"""Tuple blocks: the ``Δt`` objects of the disjoint-independent model.

Each incomplete tuple ``t`` gives rise to a block of mutually exclusive
complete versions of ``t``, one per combination of values of its missing
attributes, annotated with probabilities summing to 1 (paper Fig. 1, tuple
``t12``).
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Iterator, Sequence

from ..relational.schema import SchemaError
from ..relational.tuples import RelTuple
from .distribution import Distribution

__all__ = ["TupleBlock"]


class TupleBlock:
    """A probability distribution over the completions of one incomplete tuple.

    Outcomes of the wrapped :class:`Distribution` are tuples of values, one
    per missing attribute of ``base`` in positional order.
    """

    __slots__ = ("base", "distribution")

    def __init__(self, base: RelTuple, distribution: Distribution):
        if base.is_complete:
            raise SchemaError("a tuple block requires an incomplete base tuple")
        expected = _full_outcome_space(base)
        got = set(distribution.outcomes)
        if got - expected:
            raise SchemaError(
                "distribution outcomes include value combinations outside the "
                "missing attributes' domains"
            )
        self.base = base
        self.distribution = distribution

    @classmethod
    def certain(cls, base: RelTuple, completion: Sequence[Hashable]) -> "TupleBlock":
        """A degenerate block with all mass on one completion."""
        outcomes = sorted(_full_outcome_space(base))
        return cls(base, Distribution.point_mass(outcomes, tuple(completion)))

    @property
    def missing_names(self) -> tuple[str, ...]:
        """Names of the attributes this block's outcomes assign."""
        schema = self.base.schema
        return tuple(schema[p].name for p in self.base.missing_positions)

    def completions(self) -> Iterator[tuple[RelTuple, float]]:
        """Yield ``(complete_tuple, probability)`` pairs, one per outcome.

        This materializes the rows of the probabilistic relation, as in the
        ``t12.1 .. t12.4`` call-out of Fig. 1.
        """
        names = self.missing_names
        for outcome, prob in self.distribution:
            assignment = dict(zip(names, outcome))
            yield self.base.complete_with(assignment), float(prob)

    def most_probable_completion(self) -> RelTuple:
        """The single most likely complete version of the base tuple."""
        outcome = self.distribution.top1()
        return self.base.complete_with(dict(zip(self.missing_names, outcome)))

    def top_k(self, k: int) -> list[tuple[RelTuple, float]]:
        """The ``k`` most probable completions, most probable first."""
        if k < 1:
            raise ValueError("k must be positive")
        ranked = sorted(self.completions(), key=lambda pair: pair[1], reverse=True)
        return ranked[:k]

    def marginal(self, attribute: str) -> Distribution:
        """Marginal distribution of one missing attribute within this block."""
        names = self.missing_names
        if attribute not in names:
            raise SchemaError(
                f"attribute {attribute!r} is not missing in the base tuple"
            )
        pos = names.index(attribute)
        totals: dict[Hashable, float] = {}
        for outcome, prob in self.distribution:
            value = outcome[pos]
            totals[value] = totals.get(value, 0.0) + float(prob)
        domain = self.base.schema[attribute].domain
        ordered = [v for v in domain if v in totals]
        return Distribution(ordered, [totals[v] for v in ordered])

    def __len__(self) -> int:
        return len(self.distribution)

    def __repr__(self) -> str:
        return (
            f"TupleBlock(base={self.base!r}, "
            f"{len(self.distribution)} completions)"
        )


def _full_outcome_space(base: RelTuple) -> set[tuple[Hashable, ...]]:
    """All value combinations for the missing attributes of ``base``."""
    schema = base.schema
    domains = [schema[p].domain for p in base.missing_positions]
    return set(product(*domains))
