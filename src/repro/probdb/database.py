"""Disjoint-independent probabilistic databases (Section I-A, [8]).

A probabilistic database here is a set of certain (complete) tuples plus a
set of independent *blocks*; each block is a probability distribution over
mutually exclusive complete versions of one incomplete tuple.  A possible
world picks one completion from every block independently; its probability is
the product of the chosen completions' probabilities.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Iterator, Sequence

import numpy as np

from ..relational.relation import Relation
from ..relational.schema import Schema, SchemaError
from ..relational.tuples import RelTuple
from .blocks import TupleBlock

__all__ = ["PossibleWorld", "ProbabilisticDatabase"]


class PossibleWorld:
    """One fully determined instance drawn from a probabilistic database."""

    __slots__ = ("tuples", "probability")

    def __init__(self, tuples: Sequence[RelTuple], probability: float):
        self.tuples = tuple(tuples)
        self.probability = float(probability)

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[RelTuple]:
        return iter(self.tuples)

    def __repr__(self) -> str:
        return f"PossibleWorld({len(self.tuples)} tuples, p={self.probability:.6g})"


class ProbabilisticDatabase:
    """The output object of the paper: certain tuples + independent blocks."""

    def __init__(
        self,
        schema: Schema,
        certain: Iterable[RelTuple] = (),
        blocks: Iterable[TupleBlock] = (),
    ):
        self.schema = schema
        self.certain = tuple(certain)
        self.blocks = tuple(blocks)
        for t in self.certain:
            if t.schema != schema:
                raise SchemaError("certain tuple schema mismatch")
            if not t.is_complete:
                raise SchemaError("certain tuples must be complete")
        for b in self.blocks:
            if b.base.schema != schema:
                raise SchemaError("block schema mismatch")

    # -- possible-world semantics ------------------------------------------------

    def num_possible_worlds(self) -> int:
        """Number of possible worlds (product of block sizes)."""
        n = 1
        for block in self.blocks:
            n *= len(block)
        return n

    def possible_worlds(self, max_worlds: int = 1_000_000) -> Iterator[PossibleWorld]:
        """Enumerate every possible world with its probability.

        Intended for small databases; raises if the world count exceeds
        ``max_worlds`` to avoid accidental blow-ups.
        """
        if self.num_possible_worlds() > max_worlds:
            raise ValueError(
                f"{self.num_possible_worlds()} possible worlds exceed the "
                f"max_worlds={max_worlds} cap; use sample_world instead"
            )
        choices = [list(block.completions()) for block in self.blocks]
        for combo in product(*choices):
            prob = 1.0
            tuples = list(self.certain)
            for completed, p in combo:
                prob *= p
                tuples.append(completed)
            yield PossibleWorld(tuples, prob)

    def sample_world(self, rng: np.random.Generator) -> PossibleWorld:
        """Draw one possible world by sampling each block independently."""
        tuples = list(self.certain)
        prob = 1.0
        for block in self.blocks:
            outcome = block.distribution.sample(rng)
            prob *= block.distribution[outcome]
            assignment = dict(zip(block.missing_names, outcome))
            tuples.append(block.base.complete_with(assignment))
        return PossibleWorld(tuples, prob)

    # -- derived certain views ---------------------------------------------------

    def most_probable_world(self) -> PossibleWorld:
        """The world picking every block's most probable completion."""
        tuples = list(self.certain)
        prob = 1.0
        for block in self.blocks:
            top = block.distribution.top1()
            prob *= block.distribution[top]
            tuples.append(block.most_probable_completion())
        return PossibleWorld(tuples, prob)

    def to_relation(self) -> Relation:
        """Flatten to a certain relation using most-probable completions."""
        return Relation(self.schema, self.most_probable_world().tuples)

    # -- statistics ----------------------------------------------------------------

    def total_tuples(self) -> int:
        """Number of logical rows (certain + one per block)."""
        return len(self.certain) + len(self.blocks)

    def __repr__(self) -> str:
        return (
            f"ProbabilisticDatabase({len(self.certain)} certain tuples, "
            f"{len(self.blocks)} blocks, "
            f"{self.num_possible_worlds()} possible worlds)"
        )
