"""Synthetic stand-ins for the real-world datasets of the paper's future work.

Section VIII plans evaluation "on real-world datasets"; none ship with the
paper, and this environment is offline, so this package provides
deterministic generators of realistic categorical data with *known* ground
truth (see DESIGN.md "Substitutions"):

* :func:`load_census` — census-microdata-style profiles whose dependency
  structure (age -> education -> income -> wealth, sector -> income) is an
  explicit Bayesian network, so exact posteriors are available for scoring;
* :func:`load_cars` — a UCI-car-evaluation-style rule-based dataset where an
  acceptability class is a deterministic function of the features plus
  label noise, exercising the near-functional-dependency regime.
"""

from .cars import CARS_SCHEMA, cars_class, load_cars
from .census import census_network, load_census

__all__ = [
    "census_network",
    "load_census",
    "load_cars",
    "cars_class",
    "CARS_SCHEMA",
]
