"""A census-microdata-style generator with a known dependency structure.

Attributes and domains mimic public census microdata (bucketed per Section
II); the generating distribution is an explicit hand-parameterized Bayesian
network, so experiments on this data can score inferred distributions
against exact posteriors — the property real census extracts lack.

Structure::

    age ----> education ----> income ----> wealth
      \\________________________^
    sector ____________________/

Parameters are fixed (not random) so the dataset is stable across runs and
its shape is human-plausible: older and better-educated people skew to
higher incomes, income dominates wealth, sector shifts income.
"""

from __future__ import annotations

import numpy as np

from ..bayesnet.network import BayesianNetwork, Variable
from ..bayesnet.sampler import forward_sample_codes
from ..relational.relation import Relation
from ..relational.schema import Attribute, Schema

__all__ = ["census_network", "census_schema", "load_census"]

AGES = ("18-25", "26-40", "41-60", "61+")
EDUCATIONS = ("HS", "BS", "MS+")
SECTORS = ("service", "tech", "public")
INCOMES = ("low", "mid", "high")
WEALTH = ("low", "mid", "high")


def census_schema() -> Schema:
    """The value-level schema of the census dataset."""
    return Schema(
        [
            Attribute("age", AGES),
            Attribute("education", EDUCATIONS),
            Attribute("sector", SECTORS),
            Attribute("income", INCOMES),
            Attribute("wealth", WEALTH),
        ]
    )


def census_network() -> BayesianNetwork:
    """The fixed generating network (variables named as in the schema)."""
    age = Variable("age", 4, (), np.array([0.18, 0.32, 0.32, 0.18]))
    education = Variable(
        "education",
        3,
        ("age",),
        np.array(
            [
                [0.55, 0.38, 0.07],   # 18-25
                [0.35, 0.45, 0.20],   # 26-40
                [0.45, 0.38, 0.17],   # 41-60
                [0.60, 0.30, 0.10],   # 61+
            ]
        ),
    )
    sector = Variable("sector", 3, (), np.array([0.45, 0.25, 0.30]))
    # income | age, education, sector — built from monotone score rows.
    income_rows = np.empty((4, 3, 3, 3))
    age_boost = [0.0, 0.5, 0.7, 0.3]
    edu_boost = [0.0, 0.5, 1.0]
    sector_boost = [0.0, 0.6, 0.2]
    for a in range(4):
        for e in range(3):
            for s in range(3):
                score = age_boost[a] + edu_boost[e] + sector_boost[s]
                high = 0.08 + 0.28 * score
                low = max(0.62 - 0.25 * score, 0.05)
                mid = 1.0 - high - low
                income_rows[a, e, s] = (low, mid, high)
    income = Variable("income", 3, ("age", "education", "sector"), income_rows)
    wealth = Variable(
        "wealth",
        3,
        ("income", "age"),
        np.array(
            [
                # income=low: wealth mostly low, rising a bit with age
                [[0.80, 0.15, 0.05], [0.70, 0.22, 0.08],
                 [0.60, 0.28, 0.12], [0.55, 0.30, 0.15]],
                # income=mid
                [[0.45, 0.40, 0.15], [0.35, 0.45, 0.20],
                 [0.28, 0.47, 0.25], [0.25, 0.45, 0.30]],
                # income=high
                [[0.20, 0.40, 0.40], [0.12, 0.38, 0.50],
                 [0.08, 0.32, 0.60], [0.06, 0.29, 0.65]],
            ]
        ),  # shape (3 income, 4 age, 3 wealth)
    )
    return BayesianNetwork([age, education, sector, income, wealth])


def load_census(
    n: int, rng: np.random.Generator | int | None = None
) -> tuple[Relation, BayesianNetwork]:
    """Sample ``n`` complete census rows; returns ``(relation, network)``.

    The relation uses the human-readable schema values; the returned network
    provides exact ground-truth posteriors for accuracy experiments
    (variable names match attribute names, codes match value positions).
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    net = census_network()
    codes = forward_sample_codes(net, n, rng)
    return Relation.from_codes(census_schema(), codes), net
