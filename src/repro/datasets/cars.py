"""A UCI-car-evaluation-style rule-based dataset.

Six categorical features determine an acceptability class through a
deterministic scoring rule, with optional label noise.  Unlike the
BN-generated datasets, the class is a *near-functional dependency* of the
features — the regime where association-rule ensembles shine and where
conditional-functional-dependency work (Section VII) operates.

Ground truth for class prediction is the rule itself, exposed as
:func:`cars_class`.
"""

from __future__ import annotations

import numpy as np

from ..relational.relation import Relation
from ..relational.schema import Attribute, Schema

__all__ = ["CARS_SCHEMA", "cars_class", "load_cars"]

BUYING = ("low", "med", "high", "vhigh")
MAINT = ("low", "med", "high", "vhigh")
DOORS = ("2", "3", "4plus")
PERSONS = ("2", "4", "more")
SAFETY = ("low", "med", "high")
CLASSES = ("unacc", "acc", "good")

CARS_SCHEMA = Schema(
    [
        Attribute("buying", BUYING),
        Attribute("maint", MAINT),
        Attribute("doors", DOORS),
        Attribute("persons", PERSONS),
        Attribute("safety", SAFETY),
        Attribute("class", CLASSES),
    ]
)


def cars_class(
    buying: str, maint: str, doors: str, persons: str, safety: str
) -> str:
    """The deterministic acceptability rule.

    Mirrors the flavor of the UCI concept: low safety or 2-person capacity
    is unacceptable; otherwise cost (buying + maint) against capacity and
    safety decides between acceptable and good.
    """
    if safety == "low" or persons == "2":
        return "unacc"
    cost = BUYING.index(buying) + MAINT.index(maint)  # 0 (cheap) .. 6
    bonus = (SAFETY.index(safety) - 1) + (PERSONS.index(persons) - 1)
    bonus += 1 if doors == "4plus" else 0
    if cost >= 5:
        return "unacc"
    if cost <= 1 and bonus >= 2:
        return "good"
    return "acc"


def load_cars(
    n: int,
    rng: np.random.Generator | int | None = None,
    label_noise: float = 0.05,
) -> Relation:
    """Sample ``n`` cars with uniform features and rule-derived classes.

    ``label_noise`` is the probability that a row's class is replaced by a
    uniformly random class — the "noisy experimental results" setting of
    the paper's introduction.
    """
    if not 0.0 <= label_noise < 1.0:
        raise ValueError("label_noise must be in [0, 1)")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    schema = CARS_SCHEMA
    cards = schema.cardinalities
    codes = np.empty((n, len(schema)), dtype=np.int32)
    for col in range(5):
        codes[:, col] = rng.integers(cards[col], size=n)
    for row in range(n):
        label = cars_class(
            BUYING[codes[row, 0]],
            MAINT[codes[row, 1]],
            DOORS[codes[row, 2]],
            PERSONS[codes[row, 3]],
            SAFETY[codes[row, 4]],
        )
        codes[row, 5] = CLASSES.index(label)
    noisy = rng.random(n) < label_noise
    codes[noisy, 5] = rng.integers(len(CLASSES), size=int(noisy.sum()))
    return Relation.from_codes(schema, codes)
