"""Algorithm 1: learning the MRSL model from the complete data.

``learn_mrsl`` mirrors the paper's pseudocode line by line:

1. ``ComputeFreqItemsets(theta, maxItemsets)`` — Apriori mining;
2. per attribute: ``ComputeAssocRules`` -> ``ComputeMetaRules`` ->
   ``ComputeSubsumption`` (the semi-lattice is implied by the body index);
3. collect the per-attribute semi-lattices into the MRSL model.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..probdb.distribution import DEFAULT_SMOOTHING_FLOOR
from ..relational.relation import Relation
from .itemsets import DEFAULT_MAX_ITEMSETS, FrequentItemsets, mine_frequent_itemsets
from .metarule import build_meta_rules
from .mrsl import MRSL, MRSLModel
from .rules import compute_association_rules

__all__ = ["LearnResult", "learn_mrsl"]


@dataclass
class LearnResult:
    """Output of Algorithm 1 plus mining diagnostics."""

    model: MRSLModel
    itemsets: FrequentItemsets

    @property
    def model_size(self) -> int:
        """Total meta-rule count (the y-axis of Fig. 4(c))."""
        return self.model.size()


def learn_mrsl(
    relation: Relation,
    support_threshold: float,
    max_itemsets: int = DEFAULT_MAX_ITEMSETS,
    smoothing_floor: float = DEFAULT_SMOOTHING_FLOOR,
    use_incomplete_evidence: bool = False,
) -> LearnResult:
    """Learn the MRSL model from the complete part of ``relation``.

    By default incomplete tuples in the input are ignored (Section III
    learns from ``Rc``).  ``use_incomplete_evidence=True`` enables the
    extension the paper notes: "the complete portion of incomplete tuples in
    Ri may also be used to discover association rules" — useful when the
    complete part is small relative to the incomplete part.

    Parameters
    ----------
    relation:
        Input relation.
    support_threshold:
        Apriori support threshold ``theta``.
    max_itemsets:
        Per-round frequent-itemset cap (paper default 1000).
    smoothing_floor:
        Minimum per-value probability in meta-rule CPDs (paper: 1e-5).
    use_incomplete_evidence:
        Mine over all tuples' known values, not just complete points.
    """
    if use_incomplete_evidence:
        itemsets = mine_frequent_itemsets(
            relation,
            threshold=support_threshold,
            max_itemsets=max_itemsets,
            use_incomplete=True,
        )
    else:
        itemsets = mine_frequent_itemsets(
            relation.complete_part(),
            threshold=support_threshold,
            max_itemsets=max_itemsets,
        )
    schema = relation.schema
    lattices = []
    for attr, attribute in enumerate(schema):
        rules = compute_association_rules(itemsets, attr)
        meta_rules = build_meta_rules(
            rules, attr, attribute.cardinality, floor=smoothing_floor
        )
        lattices.append(MRSL(attr, meta_rules))
    return LearnResult(model=MRSLModel(schema, lattices), itemsets=itemsets)
