"""Algorithm 2: single-attribute inference by ensemble voting.

Given an incomplete tuple missing exactly one attribute ``a`` and the
semi-lattice ``MRSL_a``, collect the matching meta-rules (the *voters*),
optionally restrict to the most specific ones, and combine their CPDs by
plain or support-weighted averaging.

The four method combinations — ``all``/``best`` x ``averaged``/``weighted``
— are exactly the ones compared in Table II and Figs 5-6.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

import numpy as np

from ..probdb.distribution import DEFAULT_SMOOTHING_FLOOR, Distribution
from ..relational.tuples import MISSING_CODE, RelTuple
from .metarule import MetaRule
from .mrsl import MRSL, MRSLModel

__all__ = [
    "VoterChoice",
    "VotingScheme",
    "select_voters",
    "VoteExplanation",
    "explain_single",
    "infer_single_codes",
    "infer_single",
    "infer_all_single_missing",
]


class VoterChoice(str, Enum):
    """``vChoice``: which matching meta-rules vote.

    ``ALL`` and ``BEST`` are the paper's two mechanisms; ``ROOT`` is an
    extension (Section IV notes "other voter selection mechanisms ...
    exist"): it votes with the top-level ``P(a)`` alone, i.e. the naive
    marginal baseline — useful as an ablation floor.
    """

    ALL = "all"
    BEST = "best"
    ROOT = "root"


class VotingScheme(str, Enum):
    """``vScheme``: how the votes are combined.

    ``AVERAGED`` and ``WEIGHTED`` are the paper's two schemes; ``LOG_POOL``
    is an extension: the logarithmic opinion pool (normalized geometric
    mean), which rewards consensus and punishes any voter's near-zero.
    """

    AVERAGED = "averaged"
    WEIGHTED = "weighted"
    LOG_POOL = "log_pool"


def select_voters(
    lattice: MRSL, t: RelTuple, v_choice: "VoterChoice"
) -> list[MetaRule]:
    """``GetMatchingMetaRules``: the voter set for one tuple."""
    if v_choice is VoterChoice.BEST:
        return lattice.best_matching(t)
    if v_choice is VoterChoice.ROOT:
        root = lattice.root
        return [root] if root is not None else []
    return lattice.matching(t)


def _combine_stack(
    stack: np.ndarray, weights: np.ndarray | None, scheme: VotingScheme
) -> np.ndarray:
    """Combine a non-empty ``(n, card)`` CPD stack under the chosen scheme.

    The single source of the voting arithmetic: both the naive path
    (:func:`_combine`) and the compiled engine
    (:meth:`~repro.core.compiled.CompiledMRSL.combine_rows`) call this, so
    their results agree bit for bit by construction.  ``weights`` is only
    read for ``WEIGHTED``.
    """
    if scheme is VotingScheme.WEIGHTED:
        if weights.sum() <= 0:
            weights = np.ones(stack.shape[0])
        weights = weights / weights.sum()
        return weights @ stack
    if scheme is VotingScheme.LOG_POOL:
        # Clamp to the smoothing floor: a voter with an exact-zero entry
        # (point-mass CPDs, hand-built meta-rules) would otherwise produce
        # -inf and a NaN after normalization, crashing downstream sampling.
        pooled = np.exp(
            np.log(np.maximum(stack, DEFAULT_SMOOTHING_FLOOR)).mean(axis=0)
        )
        return pooled / pooled.sum()
    return stack.mean(axis=0)


def _combine(
    voters: Sequence[MetaRule], cardinality: int, scheme: VotingScheme
) -> np.ndarray:
    """Combine voter CPDs position by position under the chosen scheme."""
    if not voters:
        # No applicable meta-rule (possible when even single values fail the
        # support threshold): fall back to the uninformative uniform CPD.
        return np.full(cardinality, 1.0 / cardinality)
    stack = np.vstack([m.probs for m in voters])
    weights = (
        np.array([m.weight for m in voters], dtype=np.float64)
        if scheme is VotingScheme.WEIGHTED
        else None
    )
    return _combine_stack(stack, weights, scheme)


def infer_single_codes(
    t: RelTuple,
    lattice: MRSL,
    v_choice: VoterChoice | str = VoterChoice.BEST,
    v_scheme: VotingScheme | str = VotingScheme.AVERAGED,
) -> np.ndarray:
    """Algorithm 2 returning the CPD as a probability vector over value codes.

    ``t`` must be missing the lattice's head attribute; other attributes may
    be known or missing (during Gibbs cycling the other missing attributes
    carry the current chain state, so in practice all are known).
    """
    v_choice = VoterChoice(v_choice)
    v_scheme = VotingScheme(v_scheme)
    head = lattice.head_attribute
    if t.codes[head] != MISSING_CODE:
        raise ValueError(
            f"tuple already assigns attribute {t.schema[head].name!r}"
        )
    voters = select_voters(lattice, t, v_choice)
    return _combine(voters, t.schema[head].cardinality, v_scheme)


def infer_single(
    t: RelTuple,
    lattice: MRSL,
    v_choice: VoterChoice | str = VoterChoice.BEST,
    v_scheme: VotingScheme | str = VotingScheme.AVERAGED,
) -> Distribution:
    """Algorithm 2 returning a value-level :class:`Distribution`."""
    probs = infer_single_codes(t, lattice, v_choice, v_scheme)
    domain = t.schema[lattice.head_attribute].domain
    return Distribution(domain, probs)


def infer_all_single_missing(
    tuples: Sequence[RelTuple],
    model: MRSLModel,
    v_choice: VoterChoice | str = VoterChoice.BEST,
    v_scheme: VotingScheme | str = VotingScheme.AVERAGED,
    engine: str = "compiled",
) -> list[Distribution]:
    """Batch single-attribute inference, one CPD per tuple.

    Every tuple must be missing exactly one attribute; this is the workload
    shape of the Fig. 9 timing experiment.  The default delegates to the
    compiled batch engine (:mod:`repro.core.engine`), which groups the batch
    by evidence signature; ``engine="naive"`` keeps the scalar reference
    loop.
    """
    # Imported here: engine.py builds on this module.
    from .engine import BatchInferenceEngine, validate_engine

    if validate_engine(engine) == "compiled":
        return BatchInferenceEngine(model, v_choice, v_scheme).infer_batch(
            tuples
        )
    out = []
    for t in tuples:
        missing = t.missing_positions
        if len(missing) != 1:
            raise ValueError(
                f"expected exactly one missing attribute, tuple has {len(missing)}"
            )
        out.append(infer_single(t, model[missing[0]], v_choice, v_scheme))
    return out


class VoteExplanation:
    """Why Algorithm 2 produced a CPD: the voters and their contributions.

    Ensemble predictions are auditable: every meta-rule that voted is listed
    with its body (rendered as in Fig. 2), its support weight, its CPD, and
    the normalized weight it received under the chosen scheme.
    """

    __slots__ = ("tuple", "v_choice", "v_scheme", "voters", "vote_weights", "cpd")

    def __init__(self, t, v_choice, v_scheme, voters, vote_weights, cpd):
        self.tuple = t
        self.v_choice = v_choice
        self.v_scheme = v_scheme
        self.voters = voters
        self.vote_weights = vote_weights
        self.cpd = cpd

    def describe(self) -> str:
        """Human-readable audit trail."""
        schema = self.tuple.schema
        lines = [
            f"inference for {self.tuple!r}",
            f"vChoice={self.v_choice.value}  vScheme={self.v_scheme.value}",
        ]
        if not self.voters:
            lines.append("no matching meta-rules: uniform fallback")
        for m, w in zip(self.voters, self.vote_weights):
            probs = ", ".join(f"{p:.3f}" for p in m.probs)
            lines.append(
                f"  vote={w:.3f}  W={m.weight:.3f}  {m.describe(schema)}"
                f"  -> [{probs}]"
            )
        result = ", ".join(f"{o}: {p:.3f}" for o, p in self.cpd)
        lines.append(f"result: {result}")
        return "\n".join(lines)


def explain_single(
    t: RelTuple,
    lattice: MRSL,
    v_choice: VoterChoice | str = VoterChoice.BEST,
    v_scheme: VotingScheme | str = VotingScheme.AVERAGED,
) -> VoteExplanation:
    """Algorithm 2 with full provenance: voters, weights, and the CPD.

    The returned CPD is identical to :func:`infer_single`'s.
    """
    v_choice = VoterChoice(v_choice)
    v_scheme = VotingScheme(v_scheme)
    head = lattice.head_attribute
    if t.codes[head] != MISSING_CODE:
        raise ValueError(
            f"tuple already assigns attribute {t.schema[head].name!r}"
        )
    voters = select_voters(lattice, t, v_choice)
    probs = _combine(voters, t.schema[head].cardinality, v_scheme)
    if not voters:
        weights: list[float] = []
    elif v_scheme is VotingScheme.WEIGHTED:
        raw = np.array([m.weight for m in voters], dtype=np.float64)
        if raw.sum() <= 0:
            raw = np.ones(len(voters))
        weights = list(raw / raw.sum())
    else:
        weights = [1.0 / len(voters)] * len(voters)
    from ..probdb.distribution import Distribution as _D

    cpd = _D(t.schema[head].domain, probs)
    return VoteExplanation(t, v_choice, v_scheme, voters, weights, cpd)
