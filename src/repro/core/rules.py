"""Association rules with single-attribute heads (Def. 2.5).

A rule is derived from a frequent itemset ``I`` by singling out one item as
the head: ``body = I \\ {(a, v)}``, ``head = (a, v)``.  Confidence is
``supp(I) / supp(body)`` — an estimate of ``P(a = v | body)``.  Per
Section III, rules are computed *irrespective of confidence*; there is no
confidence threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

from .itemsets import FrequentItemsets, Item, Itemset

__all__ = ["AssociationRule", "compute_association_rules"]


@dataclass(frozen=True)
class AssociationRule:
    """One mined rule ``body => head`` with its support statistics.

    ``support`` is the support of ``body U {head}`` (the rule's full
    itemset); ``body_support`` is the support of the body alone.
    """

    body: Itemset
    head: Item
    support: float
    body_support: float

    def __post_init__(self) -> None:
        head_attr = self.head[0]
        if any(attr == head_attr for attr, _ in self.body):
            raise ValueError("rule body assigns the head attribute")
        if self.body_support <= 0:
            raise ValueError("rule body must have positive support")
        if self.support < 0 or self.support > self.body_support + 1e-12:
            raise ValueError(
                "rule support must lie in [0, body_support] "
                f"(got {self.support} vs {self.body_support})"
            )

    @property
    def head_attribute(self) -> int:
        """Attribute position assigned by the head."""
        return self.head[0]

    @property
    def head_value(self) -> int:
        """Value code assigned by the head."""
        return self.head[1]

    @property
    def confidence(self) -> float:
        """``conf(r) = supp(body U head) / supp(body)`` (Def. 2.5)."""
        return self.support / self.body_support


def compute_association_rules(
    itemsets: FrequentItemsets, head_attribute: int
) -> list[AssociationRule]:
    """``ComputeAssocRules``: all rules with ``head_attribute`` in the head.

    Every frequent itemset containing an item on ``head_attribute`` yields
    exactly one rule (the remaining items form the body).  Apriori's downward
    closure guarantees the body is itself frequent, so its support is always
    available.
    """
    rules = []
    for itemset in itemsets:
        head = None
        body_items = []
        for item in itemset:
            if item[0] == head_attribute:
                head = item
            else:
                body_items.append(item)
        if head is None:
            continue
        body: Itemset = tuple(body_items)
        rules.append(
            AssociationRule(
                body=body,
                head=head,
                support=itemsets.support(itemset),
                body_support=itemsets.support(body),
            )
        )
    return rules
