"""The compiled batch-inference engine: Algorithm 2 over batches of tuples.

The naive path (:mod:`repro.core.inference`) re-runs voter matching for
every tuple.  In real workloads most tuples share their *evidence
signature* — the projection of their known values onto the attributes any
meta-rule actually conditions on — and therefore share their voter set and
CPD.  :class:`BatchInferenceEngine` exploits this:

1. tuples are grouped by ``(head attribute, evidence signature)``;
2. each distinct group is answered once, by a single vectorized match over
   the compiled rule matrix plus one matrix combine
   (:class:`~repro.core.compiled.CompiledMRSL`);
3. answers are memoized in a bounded LRU, so repeated batches (and the
   Gibbs hot loop) skip even the vectorized work.

Results are bit-for-bit identical to the naive path for every
``vChoice`` x ``vScheme`` combination — the naive implementation stays in
the tree as the correctness oracle (``--engine naive`` on the CLI, and the
equivalence test suite asserts agreement).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..probdb.distribution import Distribution
from ..relational.tuples import MISSING_CODE, RelTuple
from .compiled import CompiledModel, LRUCache
from .inference import VoterChoice, VotingScheme
from .mrsl import MRSLModel

__all__ = [
    "ENGINES",
    "DEFAULT_ENGINE",
    "DEFAULT_CPD_CACHE_SIZE",
    "validate_engine",
    "BatchInferenceEngine",
]

#: Recognized inference engine names.
ENGINES = ("naive", "compiled")

#: The engine used when callers do not choose one.
DEFAULT_ENGINE = "compiled"

#: Default bound on memoized CPDs.  Entries are small probability vectors,
#: so the default costs at most a few MB while covering every realistic
#: signature space; small runs behave exactly as an unbounded cache.
DEFAULT_CPD_CACHE_SIZE = 65536


def validate_engine(engine: str) -> str:
    """Normalize and validate an engine name."""
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    return engine


class BatchInferenceEngine:
    """Serves Algorithm 2 CPDs for batches of single-missing tuples.

    One engine wraps one :class:`MRSLModel`; per-attribute lattices are
    compiled lazily on first use.  The default voting configuration given at
    construction can be overridden per call.
    """

    def __init__(
        self,
        model: MRSLModel,
        v_choice: VoterChoice | str = VoterChoice.BEST,
        v_scheme: VotingScheme | str = VotingScheme.AVERAGED,
        cache_size: int | None = DEFAULT_CPD_CACHE_SIZE,
    ):
        self.model = model
        self.schema = model.schema
        self.v_choice = VoterChoice(v_choice)
        self.v_scheme = VotingScheme(v_scheme)
        self.compiled = CompiledModel(model)
        self.cache = LRUCache(cache_size)
        # Per-attribute mixed-radix multipliers for packing signature
        # columns into one int64 per row (None = space too large to pack;
        # the batch path then falls back to row-wise unique).
        self._sig_packers: dict[int, np.ndarray | None] = {}
        #: distinct (attribute, signature, config) groups actually computed
        self.groups_computed = 0
        #: tuples served across all batch calls
        self.tuples_served = 0

    # -- scalar entry points ---------------------------------------------------

    def infer_codes(
        self,
        t: RelTuple,
        attr: int | None = None,
        v_choice: VoterChoice | str | None = None,
        v_scheme: VotingScheme | str | None = None,
    ) -> np.ndarray:
        """CPD vector for one tuple's missing attribute (cached)."""
        if attr is None:
            missing = t.missing_positions
            if len(missing) != 1:
                raise ValueError(
                    f"expected exactly one missing attribute, tuple has "
                    f"{len(missing)}"
                )
            attr = missing[0]
        elif t.codes[attr] != MISSING_CODE:
            raise ValueError(
                f"tuple already assigns attribute {self.schema[attr].name!r}"
            )
        return self.conditional_probs(t.codes, attr, v_choice, v_scheme)

    def conditional_probs(
        self,
        codes: np.ndarray,
        attr: int,
        v_choice: VoterChoice | str | None = None,
        v_scheme: VotingScheme | str | None = None,
    ) -> np.ndarray:
        """CPD for ``attr`` given the other known codes (the Gibbs hot path).

        ``codes`` is a full code vector; position ``attr`` is treated as
        missing regardless of its content.
        """
        choice = self.v_choice if v_choice is None else VoterChoice(v_choice)
        scheme = self.v_scheme if v_scheme is None else VotingScheme(v_scheme)
        compiled = self.compiled[attr]
        # No masking needed: meta-rule bodies never mention their own head
        # attribute, so neither the signature nor the match reads codes[attr].
        key = (attr, choice, scheme, compiled.signature(codes))
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        probs = compiled.infer(codes, choice, scheme)
        probs.setflags(write=False)
        self.cache.put(key, probs)
        self.groups_computed += 1
        return probs

    # -- batch entry points ----------------------------------------------------

    def conditional_probs_batch(
        self,
        states: np.ndarray,
        attr: int,
        v_choice: VoterChoice | str | None = None,
        v_scheme: VotingScheme | str | None = None,
    ) -> np.ndarray:
        """CPD rows for ``attr`` across a batch of chain states.

        ``states`` is an ``(N, width)`` integer matrix of full code vectors
        (column ``attr`` is treated as missing regardless of content) — the
        shape of a vectorized Gibbs ensemble's state.  Rows are grouped by
        evidence signature with one ``np.unique`` over the signature
        columns; each distinct signature costs a single compiled match +
        combine (or an LRU hit — the cache entries are exactly the scalar
        :meth:`conditional_probs` ones, so scalar and batch callers warm
        each other).  Returns the ``(N, cardinality)`` matrix of per-row
        CPDs.
        """
        choice = self.v_choice if v_choice is None else VoterChoice(v_choice)
        scheme = self.v_scheme if v_scheme is None else VotingScheme(v_scheme)
        compiled = self.compiled[attr]
        # int32 matches RelTuple code vectors, so signature bytes are
        # interchangeable with the scalar path's cache keys.
        states = np.ascontiguousarray(states, dtype=np.int32)
        n = states.shape[0]
        if n == 0:
            return np.empty((0, compiled.cardinality), dtype=np.float64)
        sig_attrs = compiled.signature_attrs
        if sig_attrs.size == 0:
            # No meta-rule conditions on anything: one shared CPD.
            probs = self.conditional_probs(states[0], attr, choice, scheme)
            self.tuples_served += n
            return np.broadcast_to(probs, (n, probs.size))
        sigs = np.ascontiguousarray(states[:, sig_attrs])
        first, inverse, num_groups = self._group_rows(attr, sigs)
        group_cpds = np.empty((num_groups, compiled.cardinality))
        for g in range(num_groups):
            rep = first[g]
            # Inlined twin of conditional_probs' memoization: the key is
            # the same (attr, choice, scheme, signature-bytes) tuple —
            # sigs[rep] IS compiled.signature(states[rep]) — but built
            # from the already-gathered signature matrix.  Calling the
            # scalar path here would redo enum validation and the
            # signature gather per group and halve kernel throughput;
            # key compatibility is pinned by the cache-sharing test in
            # tests/test_gibbs_vectorized.py.
            key = (attr, choice, scheme, sigs[rep].tobytes())
            cached = self.cache.get(key)
            if cached is None:
                cached = compiled.infer(states[rep], choice, scheme)
                cached.setflags(write=False)
                self.cache.put(key, cached)
                self.groups_computed += 1
            group_cpds[g] = cached
        self.tuples_served += n
        return group_cpds[inverse]

    def _sig_packer(self, attr: int) -> np.ndarray | None:
        """Mixed-radix multipliers packing a signature row into one int64.

        Radix ``cardinality + 1`` per column keeps :data:`MISSING_CODE`
        (-1, shifted to 0) collision-free; ``None`` when the packed space
        overflows int64 (pathologically wide signatures).
        """
        try:
            return self._sig_packers[attr]
        except KeyError:
            pass
        radices = [
            self.schema[int(a)].cardinality + 1
            for a in self.compiled[attr].signature_attrs
        ]
        space = 1
        for r in radices:
            space *= r  # Python ints: exact, no wraparound
        mult: np.ndarray | None
        if space >= 2**63:
            mult = None  # packed codes would overflow int64 and collide
        else:
            mult = np.empty(len(radices), dtype=np.int64)
            scale = 1
            for i in range(len(radices) - 1, -1, -1):
                mult[i] = scale
                scale *= radices[i]
        self._sig_packers[attr] = mult
        return mult

    def _group_rows(
        self, attr: int, sigs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Group signature rows: (first-occurrence index per group,
        per-row group index, group count).

        The hot path packs each row into one integer and groups with a
        single stable argsort — much cheaper than a row-wise
        ``np.unique`` — falling back to the latter only when the packed
        space would overflow.
        """
        mult = self._sig_packer(attr)
        if mult is None:
            _, first, inverse = np.unique(
                sigs, axis=0, return_index=True, return_inverse=True
            )
            return first, inverse.reshape(-1), len(first)
        packed = (sigs.astype(np.int64) + 1) @ mult
        order = np.argsort(packed, kind="stable")
        sorted_packed = packed[order]
        boundary = np.empty(order.size, dtype=bool)
        boundary[0] = True
        np.not_equal(sorted_packed[1:], sorted_packed[:-1], out=boundary[1:])
        group_of_sorted = np.cumsum(boundary) - 1
        inverse = np.empty(order.size, dtype=np.intp)
        inverse[order] = group_of_sorted
        first = order[boundary]
        return first, inverse, int(first.size)

    def infer_batch_codes(
        self,
        tuples: Sequence[RelTuple],
        v_choice: VoterChoice | str | None = None,
        v_scheme: VotingScheme | str | None = None,
    ) -> list[np.ndarray]:
        """One CPD vector per tuple; every tuple missing exactly one attribute.

        Tuples are grouped on ``(attribute, evidence signature)`` and each
        group is answered by a single compiled match + combine; the LRU makes
        repeats across calls free as well.
        """
        choice = self.v_choice if v_choice is None else VoterChoice(v_choice)
        scheme = self.v_scheme if v_scheme is None else VotingScheme(v_scheme)
        out: list[np.ndarray | None] = [None] * len(tuples)
        # group key -> (attr, representative codes, positions to fill)
        groups: dict[tuple, tuple[int, np.ndarray, list[int]]] = {}
        for pos, t in enumerate(tuples):
            missing = t.missing_positions
            if len(missing) != 1:
                raise ValueError(
                    f"expected exactly one missing attribute, tuple has "
                    f"{len(missing)}"
                )
            attr = missing[0]
            compiled = self.compiled[attr]
            key = (attr, choice, scheme, compiled.signature(t.codes))
            entry = groups.get(key)
            if entry is None:
                cached = self.cache.get(key)
                if cached is not None:
                    out[pos] = cached
                    continue
                groups[key] = (attr, t.codes, [pos])
            else:
                entry[2].append(pos)
        for key, (attr, codes, positions) in groups.items():
            probs = self.compiled[attr].infer(codes, choice, scheme)
            probs.setflags(write=False)
            self.cache.put(key, probs)
            self.groups_computed += 1
            for pos in positions:
                out[pos] = probs
        self.tuples_served += len(tuples)
        return out  # type: ignore[return-value]

    def infer_batch(
        self,
        tuples: Sequence[RelTuple],
        v_choice: VoterChoice | str | None = None,
        v_scheme: VotingScheme | str | None = None,
    ) -> list[Distribution]:
        """Batch Algorithm 2 returning value-level distributions.

        Tuples sharing an evidence signature receive the *same* (immutable)
        :class:`Distribution` object, so wrapping costs one construction per
        distinct CPD rather than one per tuple.
        """
        cpds = self.infer_batch_codes(tuples, v_choice, v_scheme)
        shared: dict[tuple[int, int], Distribution] = {}
        out = []
        for t, probs in zip(tuples, cpds):
            attr = t.missing_positions[0]
            key = (attr, id(probs))
            dist = shared.get(key)
            if dist is None:
                dist = Distribution(self.schema[attr].domain, probs)
                shared[key] = dist
            out.append(dist)
        return out

    # -- diagnostics -----------------------------------------------------------

    def cache_info(self) -> dict[str, int | None]:
        """LRU counters plus group/tuple totals, for reporting."""
        info = self.cache.info()
        info["groups_computed"] = self.groups_computed
        info["tuples_served"] = self.tuples_served
        return info

    def __repr__(self) -> str:
        return (
            f"BatchInferenceEngine({self.model!r}, vChoice="
            f"{self.v_choice.value}, vScheme={self.v_scheme.value})"
        )
