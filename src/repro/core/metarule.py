"""Meta-rules: grouped association rules acting as local CPD estimates (Def. 2.6).

A meta-rule collects every association rule with a given body and head
attribute; its estimated CPD assigns each head value the corresponding
rule's confidence.  Because some value combinations fail the support
threshold, rule confidences may not sum to 1; the remaining probability mass
is spread equally over all head values, and a floor of 1e-5 keeps the CPD
strictly positive (Section III) — a requirement for Gibbs convergence.

The meta-rule's *weight* is the support of its body, shown as ``W`` above
each node in the paper's Fig. 2.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..probdb.distribution import DEFAULT_SMOOTHING_FLOOR, Distribution
from ..relational.schema import Schema
from ..relational.tuples import RelTuple
from .itemsets import Itemset
from .rules import AssociationRule

__all__ = ["MetaRule", "build_meta_rules", "smooth_cpd"]


def smooth_cpd(
    raw: np.ndarray, floor: float = DEFAULT_SMOOTHING_FLOOR
) -> np.ndarray:
    """Section III smoothing: spread the probability deficit, floor, renormalize.

    ``raw`` holds per-value confidence estimates summing to at most ~1.  Any
    missing mass (values whose itemsets were infrequent) is distributed
    equally among *all* values; every value then receives at least ``floor``
    and the vector is renormalized.
    """
    raw = np.asarray(raw, dtype=np.float64)
    if raw.ndim != 1 or raw.size == 0:
        raise ValueError("CPD estimate must be a non-empty vector")
    if (raw < 0).any():
        raise ValueError("CPD estimate has negative entries")
    total = raw.sum()
    if total > 1.0 + 1e-9:
        # Counting noise can push the sum slightly above 1; rescale.
        raw = raw / total
        total = 1.0
    deficit = max(1.0 - total, 0.0)
    probs = raw + deficit / raw.size
    probs = np.maximum(probs, floor)
    return probs / probs.sum()


class MetaRule:
    """A local CPD estimate ``P(head_attribute | body)`` with a support weight."""

    __slots__ = ("head_attribute", "body", "weight", "probs")

    def __init__(
        self,
        head_attribute: int,
        body: Itemset,
        weight: float,
        probs: np.ndarray,
    ):
        probs = np.asarray(probs, dtype=np.float64)
        if not np.isclose(probs.sum(), 1.0, atol=1e-9):
            raise ValueError("meta-rule CPD must sum to 1")
        if (probs <= 0).any():
            raise ValueError("meta-rule CPD must be strictly positive")
        if not 0.0 < weight <= 1.0 + 1e-12:
            raise ValueError("meta-rule weight must be in (0, 1]")
        if any(attr == head_attribute for attr, _ in body):
            raise ValueError("meta-rule body assigns the head attribute")
        probs.setflags(write=False)
        self.head_attribute = head_attribute
        self.body = body
        self.weight = float(weight)
        self.probs = probs

    @property
    def body_size(self) -> int:
        """Number of attribute-value assignments in the body."""
        return len(self.body)

    def matches(self, t: RelTuple) -> bool:
        """True when every body assignment agrees with ``t``'s known values.

        A meta-rule matches an incomplete tuple if the body makes the same
        attribute-value assignments as the tuple does (Section IV).
        """
        codes = t.codes
        return all(codes[attr] == value for attr, value in self.body)

    def subsumes(self, other: "MetaRule") -> bool:
        """Def. 2.7: same head, and this body properly subsumes the other's."""
        if self.head_attribute != other.head_attribute:
            return False
        if len(self.body) >= len(other.body):
            return False
        other_items = set(other.body)
        return all(item in other_items for item in self.body)

    def cpd(self, schema: Schema) -> Distribution:
        """The estimated CPD as a value-level distribution."""
        domain = schema[self.head_attribute].domain
        return Distribution(domain, self.probs)

    def describe(self, schema: Schema) -> str:
        """Human-readable ``P(head | body)`` string, as in Fig. 2."""
        head = schema[self.head_attribute].name
        if not self.body:
            return f"P({head})"
        conds = " ^ ".join(
            f"{schema[attr].name}={schema[attr].value(value)}"
            for attr, value in self.body
        )
        return f"P({head} | {conds})"

    def __repr__(self) -> str:
        return (
            f"MetaRule(head={self.head_attribute}, body={self.body}, "
            f"weight={self.weight:.4f})"
        )


def build_meta_rules(
    rules: Sequence[AssociationRule],
    head_attribute: int,
    cardinality: int,
    floor: float = DEFAULT_SMOOTHING_FLOOR,
) -> list[MetaRule]:
    """``ComputeMetaRules``: group rules by body and estimate each CPD.

    Rules sharing a body are combined into one meta-rule whose CPD entry for
    head value ``v`` is the confidence of the rule assigning ``v`` (0 for
    values with no surviving rule, before smoothing).
    """
    grouped: dict[Itemset, list[AssociationRule]] = {}
    for rule in rules:
        if rule.head_attribute != head_attribute:
            raise ValueError(
                f"rule head attribute {rule.head_attribute} does not match "
                f"{head_attribute}"
            )
        grouped.setdefault(rule.body, []).append(rule)
    meta_rules = []
    for body, members in grouped.items():
        raw = np.zeros(cardinality)
        for rule in members:
            raw[rule.head_value] = rule.confidence
        weight = members[0].body_support
        probs = smooth_cpd(raw, floor=floor)
        meta_rules.append(MetaRule(head_attribute, body, weight, probs))
    return meta_rules
