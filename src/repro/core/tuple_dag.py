"""Workload-driven sampling with the tuple DAG (Section V-B, Algorithm 3).

Incomplete tuples related by subsumption can share Gibbs samples: a sample
drawn for a more general tuple ``r`` (fewer known values) that happens to
agree with a more specific tuple ``s``'s known values is also a valid sample
for ``s``.  Algorithm 3 arranges the workload in a DAG ordered by
subsumption, samples only at the roots (round-robin), and propagates
matching samples downward when a root completes; tuples left short are
promoted to roots once all their ancestors finish.

Three strategies are provided for the Fig. 11 comparison and the
all-at-a-time ablation:

* ``tuple_dag``       — Algorithm 3 (the paper's optimization);
* ``tuple_at_a_time`` — an independent chain per tuple (the baseline);
* ``all_at_a_time``   — one unclamped chain over the full space, filtered
  per tuple (the strawman whose waste motivates Section V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..probdb.blocks import TupleBlock
from ..relational.tuples import MISSING_CODE, RelTuple, proper_subsumes
from .engine import DEFAULT_ENGINE, BatchInferenceEngine
from .gibbs import GibbsChain, GibbsSampler, samples_to_distribution
from .inference import VoterChoice, VotingScheme
from .mrsl import MRSLModel

__all__ = [
    "STRATEGIES",
    "SamplingStats",
    "TupleDAG",
    "ensemble_sampling",
    "workload_sampling",
]

#: Recognized multi-attribute workload strategies.
STRATEGIES = ("tuple_dag", "tuple_at_a_time", "all_at_a_time")


@dataclass
class SamplingStats:
    """Cost counters for one workload run (the Fig. 11 measurements)."""

    #: total Gibbs draws, burn-in included ("sample size" in Fig. 11)
    total_draws: int = 0
    #: draws spent on burn-in only
    burn_in_draws: int = 0
    #: number of tuples whose samples were (partly) inherited from a parent
    shared_tuples: int = 0
    #: per-tuple shortfall filled by promotion sampling
    promoted_tuples: int = 0


class _Node:
    """Book-keeping for one distinct workload tuple."""

    __slots__ = ("tuple", "parents", "children", "samples", "chain", "completed")

    def __init__(self, t: RelTuple):
        self.tuple = t
        self.parents: list["_Node"] = []  # tuples that subsume this one
        self.children: list["_Node"] = []  # tuples this one subsumes
        self.samples: list[tuple[int, ...]] = []
        self.chain: GibbsChain | None = None
        self.completed = False


class TupleDAG:
    """The subsumption DAG over a workload of distinct incomplete tuples."""

    def __init__(self, tuples: Sequence[RelTuple]):
        distinct: dict[RelTuple, _Node] = {}
        for t in tuples:
            if t.is_complete:
                raise ValueError("complete tuples do not belong in the workload")
            if t not in distinct:
                distinct[t] = _Node(t)
        self.nodes = list(distinct.values())
        self._by_tuple = distinct
        for a in self.nodes:
            for b in self.nodes:
                if a is not b and proper_subsumes(a.tuple, b.tuple):
                    # a subsumes b: a is more general, b inherits a's samples.
                    a.children.append(b)
                    b.parents.append(a)

    def roots(self) -> list[_Node]:
        """Tuples not subsumed by any other workload tuple."""
        return [n for n in self.nodes if not n.parents]

    def node(self, t: RelTuple) -> _Node:
        return self._by_tuple[t]

    def __len__(self) -> int:
        return len(self.nodes)


def _share_samples(parent: _Node, child: _Node, target: int) -> None:
    """``ShareSamples``: copy parent samples that match the child's knowns.

    A parent sample fixes the parent's missing attributes; combined with the
    parent's known values it is a complete point.  It matches the child when
    it agrees with every value the child knows (the child knows strictly
    more attributes).  Matching samples are re-expressed over the child's
    missing positions.
    """
    p_missing = parent.tuple.missing_positions
    c_codes = child.tuple.codes
    c_missing = child.tuple.missing_positions
    # Positions the child knows but the parent does not: the sample must
    # agree there.  (Positions known to both already agree by subsumption.)
    check = [
        (i, pos, int(c_codes[pos]))
        for i, pos in enumerate(p_missing)
        if c_codes[pos] != MISSING_CODE
    ]
    # Child-missing positions are a subset of parent-missing positions.
    take = [p_missing.index(pos) for pos in c_missing]
    for sample in parent.samples:
        if len(child.samples) >= target:
            break
        if all(sample[i] == value for i, pos, value in check):
            child.samples.append(tuple(sample[i] for i in take))


def _finalize(
    sampler: GibbsSampler, node: _Node, num_samples: int
) -> TupleBlock:
    dist = samples_to_distribution(
        sampler.schema, node.tuple, node.samples[:num_samples]
    )
    return TupleBlock(node.tuple, dist)


def _run_tuple_dag(
    sampler: GibbsSampler,
    dag: TupleDAG,
    num_samples: int,
    burn_in: int,
    stats: SamplingStats,
) -> None:
    """Algorithm 3's main loop, mutating node sample lists in place."""
    roots = list(dag.roots())
    while roots:
        next_roots: list[_Node] = []
        # Round-robin: one sample per live root per pass (GetNext).
        for node in roots:
            if node.chain is None:
                node.chain = sampler.chain(node.tuple)
                node.chain.run_burn_in(burn_in)
                stats.total_draws += burn_in
                stats.burn_in_draws += burn_in
            node.samples.append(node.chain.step())
            stats.total_draws += 1
            if len(node.samples) < num_samples:
                next_roots.append(node)
                continue
            # Finished sampling for this root: propagate to subsumees.
            node.completed = True
            for child in node.children:
                if child.completed:
                    continue
                had = len(child.samples)
                _share_samples(node, child, num_samples)
                if len(child.samples) > had:
                    stats.shared_tuples += 1
                if len(child.samples) >= num_samples:
                    child.completed = True
                elif all(p.completed for p in child.parents):
                    # Promotion: every ancestor is done but the child is
                    # short on samples; it becomes a root of its own.
                    stats.promoted_tuples += 1
                    next_roots.append(child)
        roots = next_roots


def _run_tuple_at_a_time(
    sampler: GibbsSampler,
    dag: TupleDAG,
    num_samples: int,
    burn_in: int,
    stats: SamplingStats,
) -> None:
    """Baseline: an independent clamped chain per distinct tuple."""
    for node in dag.nodes:
        chain = sampler.chain(node.tuple)
        chain.run_burn_in(burn_in)
        stats.total_draws += burn_in
        stats.burn_in_draws += burn_in
        for _ in range(num_samples):
            node.samples.append(chain.step())
            stats.total_draws += 1
        node.completed = True


def _run_all_at_a_time(
    sampler: GibbsSampler,
    dag: TupleDAG,
    num_samples: int,
    burn_in: int,
    stats: SamplingStats,
    max_draws: int,
) -> None:
    """Strawman: one chain over the fully unknown tuple ``t*``.

    Every tuple subsumes-matches against the unrestricted samples; tuples
    with low-support known portions waste most draws, which is the paper's
    argument for clamped sampling.  Bounded by ``max_draws`` to keep the
    ablation safe; tuples left short of ``num_samples`` keep whatever
    matched.
    """
    schema = sampler.schema
    star = RelTuple(schema, np.full(len(schema), MISSING_CODE, dtype=np.int32))
    chain = sampler.chain(star)
    chain.run_burn_in(burn_in)
    stats.total_draws += burn_in
    stats.burn_in_draws += burn_in
    pending = list(dag.nodes)
    while pending and stats.total_draws < max_draws:
        sample = chain.step()  # full assignment over all attributes
        stats.total_draws += 1
        still = []
        for node in pending:
            codes = node.tuple.codes
            known_ok = all(
                sample[pos] == codes[pos]
                for pos in node.tuple.complete_positions
            )
            if known_ok:
                node.samples.append(
                    tuple(sample[pos] for pos in node.tuple.missing_positions)
                )
            if len(node.samples) >= num_samples:
                node.completed = True
            else:
                still.append(node)
        pending = still


def ensemble_sampling(
    model: MRSLModel,
    tuples: Sequence[RelTuple],
    num_samples: int = 500,
    burn_in: int = 100,
    chains: int = 1,
    v_choice: VoterChoice | str = VoterChoice.BEST,
    v_scheme: VotingScheme | str = VotingScheme.AVERAGED,
    rng: np.random.Generator | int | None = None,
    batch_engine: BatchInferenceEngine | None = None,
) -> tuple[list[TupleBlock], SamplingStats]:
    """Vectorized workload estimation: every tuple's chains in lock step.

    The drop-in counterpart of :func:`workload_sampling` for the compiled
    engine: instead of walking the tuple DAG one scalar chain step at a
    time, all ``chains`` chains of every *distinct* workload tuple advance
    together in one :class:`~repro.core.gibbs.GibbsEnsemble`, so a whole
    shard costs one batched CPD evaluation and one ``rng.random`` draw per
    (sweep, attribute).  Per-tuple samples are pooled across the tuple's
    chains — more chains means more independent starting points mixed into
    the same ``num_samples`` budget.

    There is no cross-tuple sample sharing: vectorization makes drawing for
    every tuple directly cheaper than the DAG's bookkeeping, so
    ``shared_tuples`` / ``promoted_tuples`` stay zero and ``total_draws``
    counts every chain's sweeps.  Returns one block per input tuple (input
    order; duplicates share their block) plus the cost counters, exactly
    like :func:`workload_sampling`.

    ``batch_engine`` reuses a caller's warm engine (its signature-level LRU
    carries over); results are identical with or without one.
    """
    if num_samples < 1:
        raise ValueError("num_samples must be positive")
    if burn_in < 0:
        raise ValueError("burn_in must be non-negative")
    sampler = GibbsSampler(
        model,
        v_choice=v_choice,
        v_scheme=v_scheme,
        rng=rng,
        engine="compiled",
        batch_engine=batch_engine,
    )
    distinct: list[RelTuple] = []
    seen: set[RelTuple] = set()
    for t in tuples:
        if t not in seen:
            seen.add(t)
            distinct.append(t)
    ensemble = sampler.ensemble(distinct, chains=chains)
    sample_arrays = ensemble.run(num_samples, burn_in=burn_in)
    sweeps = -(-num_samples // chains)
    stats = SamplingStats(
        total_draws=(burn_in + sweeps) * chains * len(distinct),
        burn_in_draws=burn_in * chains * len(distinct),
    )
    blocks = {
        t: TupleBlock(t, samples_to_distribution(sampler.schema, t, arr))
        for t, arr in zip(distinct, sample_arrays)
    }
    return [blocks[t] for t in tuples], stats


def workload_sampling(
    model: MRSLModel,
    tuples: Sequence[RelTuple],
    num_samples: int = 500,
    burn_in: int = 100,
    strategy: str = "tuple_dag",
    v_choice: VoterChoice | str = VoterChoice.BEST,
    v_scheme: VotingScheme | str = VotingScheme.AVERAGED,
    rng: np.random.Generator | int | None = None,
    max_draws: int | None = None,
    engine: str = DEFAULT_ENGINE,
) -> tuple[list[TupleBlock], SamplingStats]:
    """Estimate ``Δt`` for a workload of multi-missing tuples.

    Returns one :class:`TupleBlock` per input tuple (input order; duplicate
    tuples share their block) plus the :class:`SamplingStats` cost counters
    that Fig. 11 plots.

    ``strategy`` selects ``tuple_dag`` (Algorithm 3), ``tuple_at_a_time``
    (independent chains) or ``all_at_a_time`` (single unclamped chain,
    bounded by ``max_draws``); ``engine`` selects how the conditional CPDs
    inside each Gibbs step are computed (compiled by default).
    """
    if num_samples < 1:
        raise ValueError("num_samples must be positive")
    if burn_in < 0:
        raise ValueError("burn_in must be non-negative")
    sampler = GibbsSampler(
        model, v_choice=v_choice, v_scheme=v_scheme, rng=rng, engine=engine
    )
    dag = TupleDAG(tuples)
    stats = SamplingStats()
    if strategy == "tuple_dag":
        _run_tuple_dag(sampler, dag, num_samples, burn_in, stats)
    elif strategy == "tuple_at_a_time":
        _run_tuple_at_a_time(sampler, dag, num_samples, burn_in, stats)
    elif strategy == "all_at_a_time":
        if max_draws is None:
            max_draws = 200 * num_samples * max(len(dag), 1)
        _run_all_at_a_time(sampler, dag, num_samples, burn_in, stats, max_draws)
    else:
        raise ValueError(f"strategy must be one of {', '.join(STRATEGIES)}")
    blocks = {}
    for node in dag.nodes:
        if not node.samples:
            raise RuntimeError(
                f"no samples accumulated for {node.tuple!r}; "
                "increase max_draws or num_samples"
            )
        blocks[node.tuple] = _finalize(sampler, node, num_samples)
    return [blocks[t] for t in tuples], stats
