"""The headline API: derive a probabilistic database from an incomplete relation.

This module ties the whole pipeline together, as in the paper's abstract:
learn the MRSL ensemble from the complete part of the data, estimate ``Δt``
for every incomplete tuple — Algorithm 2 when a single attribute is missing,
workload-driven Gibbs sampling (Algorithm 3) when several are — and assemble
the result into a disjoint-independent probabilistic database.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..probdb.blocks import TupleBlock
from ..probdb.database import ProbabilisticDatabase
from ..probdb.distribution import Distribution
from ..relational.relation import Relation
from .inference import VoterChoice, VotingScheme, infer_single
from .itemsets import DEFAULT_MAX_ITEMSETS
from .learning import LearnResult, learn_mrsl
from .mrsl import MRSLModel
from .tuple_dag import SamplingStats, workload_sampling

__all__ = ["DeriveResult", "derive_probabilistic_database"]


@dataclass
class DeriveResult:
    """A derived probabilistic database plus the model and cost diagnostics."""

    database: ProbabilisticDatabase
    model: MRSLModel
    learn_result: LearnResult
    sampling_stats: SamplingStats


def _single_missing_block(
    t, model: MRSLModel, v_choice: VoterChoice, v_scheme: VotingScheme
) -> TupleBlock:
    """Wrap an Algorithm 2 CPD as a one-attribute block."""
    attr = t.missing_positions[0]
    cpd = infer_single(t, model[attr], v_choice, v_scheme)
    # Block outcomes are 1-tuples of values, per TupleBlock's convention.
    outcomes = [(value,) for value in cpd.outcomes]
    return TupleBlock(t, Distribution(outcomes, cpd.probs))


def derive_probabilistic_database(
    relation: Relation,
    support_threshold: float = 0.01,
    max_itemsets: int = DEFAULT_MAX_ITEMSETS,
    v_choice: VoterChoice | str = VoterChoice.BEST,
    v_scheme: VotingScheme | str = VotingScheme.AVERAGED,
    num_samples: int = 2000,
    burn_in: int = 100,
    strategy: str = "tuple_dag",
    rng: np.random.Generator | int | None = None,
) -> DeriveResult:
    """Derive the disjoint-independent probabilistic model for ``relation``.

    Parameters
    ----------
    relation:
        A relation mixing complete and incomplete tuples.  The complete part
        trains the MRSL; every incomplete tuple becomes a block.
    support_threshold, max_itemsets:
        Algorithm 1 mining parameters (``theta``, ``maxItemsets``).
    v_choice, v_scheme:
        Algorithm 2 voting configuration, also used inside Gibbs steps.
    num_samples, burn_in:
        Gibbs chain lengths (``N`` and ``B`` of Algorithm 3) for tuples with
        two or more missing values.
    strategy:
        Multi-attribute workload strategy; see
        :func:`~repro.core.tuple_dag.workload_sampling`.
    rng:
        Seed or generator for the samplers (reproducibility).

    Returns a :class:`DeriveResult`; its ``database`` holds the complete
    tuples as certain rows and one block per incomplete tuple.
    """
    learn_result = learn_mrsl(
        relation, support_threshold=support_threshold, max_itemsets=max_itemsets
    )
    model = learn_result.model
    v_choice = VoterChoice(v_choice)
    v_scheme = VotingScheme(v_scheme)

    single = []
    multi = []
    for t in relation.incomplete_part():
        if t.num_missing == 1:
            single.append(t)
        else:
            multi.append(t)

    blocks: list[TupleBlock] = []
    for t in single:
        blocks.append(_single_missing_block(t, model, v_choice, v_scheme))

    stats = SamplingStats()
    if multi:
        multi_blocks, stats = workload_sampling(
            model,
            multi,
            num_samples=num_samples,
            burn_in=burn_in,
            strategy=strategy,
            v_choice=v_choice,
            v_scheme=v_scheme,
            rng=rng,
        )
        blocks.extend(multi_blocks)

    database = ProbabilisticDatabase(
        relation.schema,
        certain=list(relation.complete_part()),
        blocks=blocks,
    )
    return DeriveResult(
        database=database,
        model=model,
        learn_result=learn_result,
        sampling_stats=stats,
    )
