"""The headline API: derive a probabilistic database from an incomplete relation.

This module ties the whole pipeline together, as in the paper's abstract:
learn the MRSL ensemble from the complete part of the data, estimate ``Δt``
for every incomplete tuple — Algorithm 2 when a single attribute is missing,
workload-driven Gibbs sampling (Algorithm 3) when several are — and assemble
the result into a disjoint-independent probabilistic database.

Since the sharded runtime landed, every derivation path here runs through
:mod:`repro.exec`: the planner partitions incomplete tuples into shards
(evidence-signature groups for Algorithm 2, subsumption components for
Algorithm 3), the configured executor runs them — serially by default, on
threads or worker processes when ``config.executor``/``config.workers`` say
so — and the collector reassembles blocks in relation order.  Results are
bit-identical for every executor and worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..exec.base import ExecReport, ShardPlan, ShardResult
from ..exec.executors import Executor
from ..exec.runtime import execute_delta, execute_derivation, multi_batch_for
from ..probdb.blocks import TupleBlock
from ..probdb.database import ProbabilisticDatabase
from ..probdb.invalidate import CarryStore
from ..relational.relation import Relation
from .engine import BatchInferenceEngine
from .inference import VoterChoice, VotingScheme
from .learning import LearnResult, learn_mrsl
from .mrsl import MRSLModel
from .tuple_dag import SamplingStats

# Imported last: repro.api.config reads its defaults from core leaf modules
# (engine, itemsets, inference, tuple_dag) and repro.exec.base, all fully
# initialized by now.
from ..api.config import DeriveConfig, resolve_config

__all__ = [
    "DeriveResult",
    "derive_probabilistic_database",
    "single_missing_blocks",
]


@dataclass
class DeriveResult:
    """A derived probabilistic database plus the model and cost diagnostics.

    ``learn_result`` is ``None`` when derivation reused a pre-learned model
    (the session / learn-once path) instead of running Algorithm 1.
    ``exec_report`` carries the shard runtime's per-shard timing and
    placement diagnostics.
    """

    database: ProbabilisticDatabase
    model: MRSLModel
    learn_result: LearnResult | None
    sampling_stats: SamplingStats
    exec_report: ExecReport | None = None
    #: the base seed the run's multi shards derived from (None when the
    #: workload had no multi-missing tuples); a later delta re-derive pins
    #: its dirty shards to this seed so carried blocks stay consistent
    base_seed: int | None = None


def _check_executor_conflict(
    executor: Executor | str | None, workers: int | None
) -> None:
    """A pre-built executor instance carries its own worker count."""
    if isinstance(executor, Executor) and workers is not None:
        raise ValueError(
            "workers cannot be combined with a pre-built Executor instance "
            f"(it already runs {executor.workers} workers); pass the "
            "executor by name instead"
        )


def single_missing_blocks(
    tuples,
    model: MRSLModel,
    v_choice: VoterChoice | str | None = None,
    v_scheme: VotingScheme | str | None = None,
    engine: str | None = None,
    batch_engine: BatchInferenceEngine | None = None,
    config: DeriveConfig | None = None,
    executor: Executor | str | None = None,
    workers: int | None = None,
) -> list[TupleBlock]:
    """Blocks for a batch of single-missing tuples under the chosen engine.

    The batch is planned into evidence-signature shards and run by the
    configured executor (serial in-process by default; ``executor`` /
    ``workers`` route it to a thread or process pool).  Within each shard
    the compiled path serves each signature group with one matrix combine;
    the naive path loops tuple-at-a-time and is kept as the correctness
    oracle.  Voting and engine knobs default to ``config`` (itself
    defaulting to :class:`~repro.api.config.DeriveConfig`); explicit
    arguments win.
    """
    _check_executor_conflict(executor, workers)
    cfg = resolve_config(
        config,
        v_choice=v_choice,
        v_scheme=v_scheme,
        engine=engine,
        workers=workers,
        executor=None if isinstance(executor, Executor) else executor,
    )
    tuples = list(tuples)
    for t in tuples:
        if t.num_missing != 1:
            raise ValueError(
                f"expected exactly one missing attribute, tuple has "
                f"{t.num_missing}"
            )
    outcome = execute_derivation(
        tuples,
        model,
        cfg,
        batch_engine=batch_engine,
        executor=executor if isinstance(executor, Executor) else None,
    )
    return outcome.blocks


def derive_probabilistic_database(
    relation: Relation,
    support_threshold: float | None = None,
    max_itemsets: int | None = None,
    v_choice: VoterChoice | str | None = None,
    v_scheme: VotingScheme | str | None = None,
    num_samples: int | None = None,
    burn_in: int | None = None,
    strategy: str | None = None,
    rng: np.random.Generator | int | None = None,
    engine: str | None = None,
    config: DeriveConfig | None = None,
    model: MRSLModel | None = None,
    batch_engine: BatchInferenceEngine | None = None,
    executor: Executor | str | None = None,
    workers: int | None = None,
    gibbs_chains: int | None = None,
    gibbs_vectorized: bool | None = None,
    previous: DeriveResult | None = None,
    update_policy: str | None = None,
    on_plan: Callable[[ShardPlan], None] | None = None,
    on_shard: Callable[[ShardResult], None] | None = None,
    should_stop: Callable[[], bool] | None = None,
    resume_carry: CarryStore | None = None,
) -> DeriveResult:
    """Derive the disjoint-independent probabilistic model for ``relation``.

    Parameters
    ----------
    relation:
        A relation mixing complete and incomplete tuples.  The complete part
        trains the MRSL; every incomplete tuple becomes a block.
    support_threshold, max_itemsets:
        Algorithm 1 mining parameters (``theta``, ``maxItemsets``).
    v_choice, v_scheme:
        Algorithm 2 voting configuration, also used inside Gibbs steps.
    num_samples, burn_in:
        Gibbs chain lengths (``N`` and ``B`` of Algorithm 3) for tuples with
        two or more missing values.
    strategy:
        Multi-attribute workload strategy; see
        :func:`~repro.core.tuple_dag.workload_sampling`.
    rng:
        Seed or generator the per-shard Gibbs seeds derive from; defaults to
        ``config.seed``.
    engine:
        ``"compiled"`` (default) batches single-missing inference by
        evidence signature and serves Gibbs CPDs from the compiled rule
        matrix; ``"naive"`` keeps the scalar reference path.
    config:
        A :class:`~repro.api.config.DeriveConfig` supplying every knob not
        given explicitly (explicit keyword arguments win).
    model:
        A pre-learned MRSL model.  When given, Algorithm 1 is skipped and
        the result's ``learn_result`` is ``None`` — the learn-once /
        serve-many path used by :class:`~repro.api.session.Session`.
    batch_engine:
        A warm :class:`BatchInferenceEngine` over ``model`` to reuse across
        derivations (its CPD cache carries over on the serial path).
    executor, workers:
        Shard runtime selection (override ``config.executor`` /
        ``config.workers``): ``"serial"``, ``"thread"``, or ``"process"``,
        and the pool size.  ``executor`` also accepts a pre-built
        :class:`~repro.exec.executors.Executor` instance.  Results are
        bit-identical whichever runtime executes the shards.
    gibbs_chains, gibbs_vectorized:
        Multi-missing kernel selection (override the config fields of the
        same names): ``gibbs_vectorized`` picks the lock-step ensemble
        kernel (default) or the scalar tuple-DAG oracle, ``gibbs_chains``
        pools that many chains per tuple into the ``num_samples`` budget.
    previous, update_policy:
        Incremental re-derivation after a base-table update.  ``previous``
        is the :class:`DeriveResult` of the pre-update table; its model is
        reused (learning is skipped — updates never re-learn the MRSL) and,
        under the ``"delta"`` policy (``update_policy`` overriding
        ``config.update_policy``), blocks whose lineage the update did not
        touch are carried over verbatim while only dirty shards execute —
        pinned to the previous run's base seed, so the result is
        bit-identical to a from-scratch derive of the updated relation
        under that seed.  The ``"full"`` policy re-derives everything but
        still reuses the model and base seed, giving the same result the
        slow way.
    on_plan, on_shard, should_stop:
        Progress and cancellation hooks, forwarded to
        :func:`~repro.exec.runtime.execute_derivation`: ``on_plan`` sees the
        shard plan before execution, ``on_shard`` every completed shard, and
        ``should_stop`` is polled at shard boundaries — returning true
        raises :class:`~repro.exec.base.DerivationCancelled` and no partial
        database is built.
    resume_carry:
        A :class:`~repro.probdb.invalidate.CarryStore` rebuilt from a
        durable job journal (:meth:`~repro.jobs.store.JobStore.load_carry`):
        shards the interrupted run completed are carried verbatim, only the
        rest execute, and the journaled base seed pins the plan — the
        resumed result is bit-identical to an uninterrupted run.  Mutually
        exclusive with ``previous``.

    Returns a :class:`DeriveResult`; its ``database`` holds the complete
    tuples as certain rows and one block per incomplete tuple.
    """
    _check_executor_conflict(executor, workers)
    cfg = resolve_config(
        config,
        support_threshold=support_threshold,
        max_itemsets=max_itemsets,
        v_choice=v_choice,
        v_scheme=v_scheme,
        num_samples=num_samples,
        burn_in=burn_in,
        strategy=strategy,
        engine=engine,
        workers=workers,
        executor=None if isinstance(executor, Executor) else executor,
        gibbs_chains=gibbs_chains,
        gibbs_vectorized=gibbs_vectorized,
    )
    policy = update_policy if update_policy is not None else cfg.update_policy
    if update_policy is not None and update_policy not in ("delta", "full"):
        raise ValueError(
            f"update_policy must be 'delta' or 'full', got {update_policy!r}"
        )
    if previous is not None:
        # Updates never re-learn the MRSL: the previous model keeps serving
        # (a model change would dirty every block).  Pin the previous base
        # seed so both policies reproduce the same from-scratch result.
        if model is None:
            model = previous.model
        if rng is None and previous.base_seed is not None:
            rng = previous.base_seed
    if rng is None:
        rng = cfg.seed
    learn_result = None
    if model is None:
        learn_result = learn_mrsl(
            relation,
            support_threshold=cfg.support_threshold,
            max_itemsets=cfg.max_itemsets,
        )
        model = learn_result.model

    # Workload order: single-missing tuples first, then multi-missing, each
    # in relation order — the block order this function has always produced.
    single = []
    multi = []
    for t in relation.incomplete_part():
        if t.num_missing == 1:
            single.append(t)
        else:
            multi.append(t)

    if resume_carry is not None and previous is not None:
        raise ValueError("resume_carry cannot be combined with previous")
    carry: CarryStore | None = resume_carry
    if previous is not None and policy == "delta":
        carry = CarryStore.from_database(
            previous.database,
            previous.base_seed,
            multi_batch=multi_batch_for(cfg),
        )
    if carry is not None:
        outcome = execute_delta(
            single + multi,
            model,
            cfg,
            carry,
            rng=rng,
            batch_engine=batch_engine,
            executor=executor if isinstance(executor, Executor) else None,
            on_plan=on_plan,
            on_shard=on_shard,
            should_stop=should_stop,
        )
    else:
        outcome = execute_derivation(
            single + multi,
            model,
            cfg,
            rng=rng,
            batch_engine=batch_engine,
            executor=executor if isinstance(executor, Executor) else None,
            on_plan=on_plan,
            on_shard=on_shard,
            should_stop=should_stop,
        )

    database = ProbabilisticDatabase(
        relation.schema,
        certain=list(relation.complete_part()),
        blocks=outcome.blocks,
    )
    return DeriveResult(
        database=database,
        model=model,
        learn_result=learn_result,
        sampling_stats=outcome.stats,
        exec_report=outcome.report,
        base_seed=outcome.plan.base_seed,
    )
