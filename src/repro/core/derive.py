"""The headline API: derive a probabilistic database from an incomplete relation.

This module ties the whole pipeline together, as in the paper's abstract:
learn the MRSL ensemble from the complete part of the data, estimate ``Δt``
for every incomplete tuple — Algorithm 2 when a single attribute is missing,
workload-driven Gibbs sampling (Algorithm 3) when several are — and assemble
the result into a disjoint-independent probabilistic database.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..probdb.blocks import TupleBlock
from ..probdb.database import ProbabilisticDatabase
from ..probdb.distribution import Distribution
from ..relational.relation import Relation
from .engine import BatchInferenceEngine
from .inference import VoterChoice, VotingScheme, infer_single
from .learning import LearnResult, learn_mrsl
from .mrsl import MRSLModel
from .tuple_dag import SamplingStats, workload_sampling

# Imported last: repro.api.config reads its defaults from core leaf modules
# (engine, itemsets, inference, tuple_dag), all fully initialized by now.
from ..api.config import DeriveConfig, resolve_config

__all__ = [
    "DeriveResult",
    "derive_probabilistic_database",
    "single_missing_blocks",
]


@dataclass
class DeriveResult:
    """A derived probabilistic database plus the model and cost diagnostics.

    ``learn_result`` is ``None`` when derivation reused a pre-learned model
    (the session / learn-once path) instead of running Algorithm 1.
    """

    database: ProbabilisticDatabase
    model: MRSLModel
    learn_result: LearnResult | None
    sampling_stats: SamplingStats


def _single_missing_block(
    t, model: MRSLModel, v_choice: VoterChoice, v_scheme: VotingScheme
) -> TupleBlock:
    """Wrap an Algorithm 2 CPD as a one-attribute block (naive path)."""
    attr = t.missing_positions[0]
    cpd = infer_single(t, model[attr], v_choice, v_scheme)
    # Block outcomes are 1-tuples of values, per TupleBlock's convention.
    outcomes = [(value,) for value in cpd.outcomes]
    return TupleBlock(t, Distribution(outcomes, cpd.probs))


def single_missing_blocks(
    tuples,
    model: MRSLModel,
    v_choice: VoterChoice | str | None = None,
    v_scheme: VotingScheme | str | None = None,
    engine: str | None = None,
    batch_engine: BatchInferenceEngine | None = None,
    config: DeriveConfig | None = None,
) -> list[TupleBlock]:
    """Blocks for a batch of single-missing tuples under the chosen engine.

    The compiled path groups the whole batch by evidence signature and
    serves each group with one matrix combine; the naive path loops
    tuple-at-a-time and is kept as the correctness oracle.  Voting and
    engine knobs default to ``config`` (itself defaulting to
    :class:`~repro.api.config.DeriveConfig`); explicit arguments win.
    """
    cfg = resolve_config(
        config, v_choice=v_choice, v_scheme=v_scheme, engine=engine
    )
    tuples = list(tuples)
    v_choice = VoterChoice(cfg.v_choice)
    v_scheme = VotingScheme(cfg.v_scheme)
    if cfg.engine == "naive":
        return [
            _single_missing_block(t, model, v_choice, v_scheme) for t in tuples
        ]
    if batch_engine is None:
        batch_engine = BatchInferenceEngine(model, v_choice, v_scheme)
    cpds = batch_engine.infer_batch(tuples, v_choice, v_scheme)
    # Tuples sharing a CPD (same evidence signature) share one immutable
    # block distribution; only the per-tuple base differs.  Wrapping the
    # value-level Distribution (rather than the raw CPD vector) matters for
    # the oracle guarantee: the naive path normalizes twice — once inside
    # infer_single, once here — and bit-for-bit parity requires the same.
    shared: dict[int, Distribution] = {}
    blocks = []
    for t, cpd in zip(tuples, cpds):
        dist = shared.get(id(cpd))
        if dist is None:
            outcomes = [(value,) for value in cpd.outcomes]
            dist = Distribution(outcomes, cpd.probs)
            shared[id(cpd)] = dist
        blocks.append(TupleBlock(t, dist))
    return blocks


def derive_probabilistic_database(
    relation: Relation,
    support_threshold: float | None = None,
    max_itemsets: int | None = None,
    v_choice: VoterChoice | str | None = None,
    v_scheme: VotingScheme | str | None = None,
    num_samples: int | None = None,
    burn_in: int | None = None,
    strategy: str | None = None,
    rng: np.random.Generator | int | None = None,
    engine: str | None = None,
    config: DeriveConfig | None = None,
    model: MRSLModel | None = None,
    batch_engine: BatchInferenceEngine | None = None,
) -> DeriveResult:
    """Derive the disjoint-independent probabilistic model for ``relation``.

    Parameters
    ----------
    relation:
        A relation mixing complete and incomplete tuples.  The complete part
        trains the MRSL; every incomplete tuple becomes a block.
    support_threshold, max_itemsets:
        Algorithm 1 mining parameters (``theta``, ``maxItemsets``).
    v_choice, v_scheme:
        Algorithm 2 voting configuration, also used inside Gibbs steps.
    num_samples, burn_in:
        Gibbs chain lengths (``N`` and ``B`` of Algorithm 3) for tuples with
        two or more missing values.
    strategy:
        Multi-attribute workload strategy; see
        :func:`~repro.core.tuple_dag.workload_sampling`.
    rng:
        Seed or generator for the samplers; defaults to ``config.seed``.
    engine:
        ``"compiled"`` (default) batches single-missing inference by
        evidence signature and serves Gibbs CPDs from the compiled rule
        matrix; ``"naive"`` keeps the scalar reference path.
    config:
        A :class:`~repro.api.config.DeriveConfig` supplying every knob not
        given explicitly (explicit keyword arguments win).
    model:
        A pre-learned MRSL model.  When given, Algorithm 1 is skipped and
        the result's ``learn_result`` is ``None`` — the learn-once /
        serve-many path used by :class:`~repro.api.session.Session`.
    batch_engine:
        A warm :class:`BatchInferenceEngine` over ``model`` to reuse across
        derivations (its CPD cache carries over).

    Returns a :class:`DeriveResult`; its ``database`` holds the complete
    tuples as certain rows and one block per incomplete tuple.
    """
    cfg = resolve_config(
        config,
        support_threshold=support_threshold,
        max_itemsets=max_itemsets,
        v_choice=v_choice,
        v_scheme=v_scheme,
        num_samples=num_samples,
        burn_in=burn_in,
        strategy=strategy,
        engine=engine,
    )
    if rng is None:
        rng = cfg.seed
    learn_result = None
    if model is None:
        learn_result = learn_mrsl(
            relation,
            support_threshold=cfg.support_threshold,
            max_itemsets=cfg.max_itemsets,
        )
        model = learn_result.model
    v_choice = VoterChoice(cfg.v_choice)
    v_scheme = VotingScheme(cfg.v_scheme)

    single = []
    multi = []
    for t in relation.incomplete_part():
        if t.num_missing == 1:
            single.append(t)
        else:
            multi.append(t)

    blocks: list[TupleBlock] = single_missing_blocks(
        single,
        model,
        v_choice,
        v_scheme,
        engine=cfg.engine,
        batch_engine=batch_engine,
    )

    stats = SamplingStats()
    if multi:
        multi_blocks, stats = workload_sampling(
            model,
            multi,
            num_samples=cfg.num_samples,
            burn_in=cfg.burn_in,
            strategy=cfg.strategy,
            v_choice=v_choice,
            v_scheme=v_scheme,
            rng=rng,
            engine=cfg.engine,
        )
        blocks.extend(multi_blocks)

    database = ProbabilisticDatabase(
        relation.schema,
        certain=list(relation.complete_part()),
        blocks=blocks,
    )
    return DeriveResult(
        database=database,
        model=model,
        learn_result=learn_result,
        sampling_stats=stats,
    )
