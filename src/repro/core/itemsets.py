"""Frequent itemsets of attribute-value pairs (Section III, Apriori [1]).

An *item* is an ``(attribute_position, value_code)`` pair; an *itemset* is a
canonical (sorted, attribute-unique) tuple of items and corresponds to the
complete portion of an incomplete tuple.  Mining is bottom-up Apriori with
two termination conditions, exactly as in the paper: stop when a round finds
no frequent itemsets, or when a round finds more than ``max_itemsets`` of
them (the paper sets 1000 to control model-building time).

Support counting is vectorized over the complete relation's code matrix.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from ..relational.relation import Relation

__all__ = [
    "Item",
    "Itemset",
    "EMPTY_ITEMSET",
    "make_itemset",
    "itemset_attributes",
    "is_subset",
    "FrequentItemsets",
    "mine_frequent_itemsets",
    "DEFAULT_MAX_ITEMSETS",
]

#: One attribute-value assignment: ``(attribute_position, value_code)``.
Item = tuple[int, int]

#: Canonical itemset: items sorted by attribute position, one per attribute.
Itemset = tuple[Item, ...]

#: The empty itemset (support 1): body of every top-level meta-rule.
EMPTY_ITEMSET: Itemset = ()

#: Per-round cap on newly found frequent itemsets (Section III).
DEFAULT_MAX_ITEMSETS = 1000


def make_itemset(items: Iterable[Item]) -> Itemset:
    """Canonicalize ``items`` (sort by attribute, reject duplicates)."""
    itemset = tuple(sorted(items))
    attrs = [attr for attr, _ in itemset]
    if len(set(attrs)) != len(attrs):
        raise ValueError(f"itemset assigns an attribute twice: {itemset}")
    return itemset


def itemset_attributes(itemset: Itemset) -> tuple[int, ...]:
    """Attribute positions assigned by ``itemset``."""
    return tuple(attr for attr, _ in itemset)


def is_subset(smaller: Itemset, larger: Itemset) -> bool:
    """True when every item of ``smaller`` appears in ``larger``."""
    larger_set = set(larger)
    return all(item in larger_set for item in smaller)


class FrequentItemsets:
    """The result of mining: itemset -> support, plus round metadata."""

    def __init__(
        self,
        supports: Mapping[Itemset, float],
        num_points: int,
        threshold: float,
        truncated: bool,
    ):
        self._supports = dict(supports)
        self.num_points = num_points
        self.threshold = threshold
        #: True when a round exceeded ``max_itemsets`` and mining stopped early.
        self.truncated = truncated

    def __len__(self) -> int:
        return len(self._supports)

    def __contains__(self, itemset: Itemset) -> bool:
        return itemset in self._supports

    def __iter__(self):
        return iter(self._supports)

    def support(self, itemset: Itemset) -> float:
        """Support of ``itemset`` (0.0 when not frequent/mined)."""
        return self._supports.get(itemset, 0.0)

    def items(self):
        return self._supports.items()

    def of_size(self, k: int) -> list[Itemset]:
        """All frequent itemsets with exactly ``k`` items."""
        return [s for s in self._supports if len(s) == k]

    def max_size(self) -> int:
        """Size of the largest frequent itemset found."""
        return max((len(s) for s in self._supports), default=0)

    def __repr__(self) -> str:
        return (
            f"FrequentItemsets({len(self)} itemsets, "
            f"theta={self.threshold}, truncated={self.truncated})"
        )


def _support_counts(
    codes: np.ndarray, candidates: list[Itemset]
) -> np.ndarray:
    """Count matching rows for each candidate itemset."""
    counts = np.empty(len(candidates), dtype=np.int64)
    for i, itemset in enumerate(candidates):
        mask = np.ones(codes.shape[0], dtype=bool)
        for attr, value in itemset:
            mask &= codes[:, attr] == value
        counts[i] = int(mask.sum())
    return counts


def _join_candidates(frequent_k: list[Itemset]) -> list[Itemset]:
    """Apriori candidate generation: join itemsets sharing a (k-1)-prefix.

    Candidates assigning the same attribute twice are discarded, as are
    candidates with an infrequent k-subset (downward-closure pruning).
    """
    frequent_set = set(frequent_k)
    by_prefix: dict[Itemset, list[Item]] = {}
    for itemset in frequent_k:
        by_prefix.setdefault(itemset[:-1], []).append(itemset[-1])
    candidates = []
    for prefix, tails in by_prefix.items():
        tails.sort()
        for i in range(len(tails)):
            for j in range(i + 1, len(tails)):
                a, b = tails[i], tails[j]
                if a[0] == b[0]:
                    continue  # same attribute, two values: contradiction
                candidate = prefix + (a, b)
                # All k-subsets must be frequent.
                if all(
                    candidate[:m] + candidate[m + 1 :] in frequent_set
                    for m in range(len(candidate))
                ):
                    candidates.append(candidate)
    return candidates


def mine_frequent_itemsets(
    complete: Relation,
    threshold: float,
    max_itemsets: int = DEFAULT_MAX_ITEMSETS,
    use_incomplete: bool = False,
) -> FrequentItemsets:
    """Apriori over the complete relation ``Rc``.

    Parameters mirror Algorithm 1: ``threshold`` is the support threshold
    ``theta``; ``max_itemsets`` caps the number of frequent itemsets found in
    one round, after which mining stops (the round's own itemsets are kept).

    With ``use_incomplete=True`` the complete portions of incomplete tuples
    also contribute evidence, as Section III notes is possible "in
    practice".  Semantics are conservative: a row supports an itemset only
    if it *matches* every item (a missing value never matches), and the
    denominator is the full row count — this keeps support anti-monotone
    under itemset growth, so Apriori pruning stays sound.

    The empty itemset is always included with support 1.0 — it is the body of
    every top-level meta-rule ``P(a)``.
    """
    if not 0.0 < threshold <= 1.0:
        raise ValueError("support threshold must be in (0, 1]")
    if max_itemsets < 1:
        raise ValueError("max_itemsets must be positive")
    codes = complete.codes
    if not use_incomplete and complete.num_complete != len(complete):
        # Mining is defined over points only (Section III); slice them out.
        codes = codes[complete.complete_mask()]
    n = codes.shape[0]
    supports: dict[Itemset, float] = {EMPTY_ITEMSET: 1.0}
    if n == 0:
        return FrequentItemsets(supports, 0, threshold, truncated=False)

    # Round 1: all single attribute-value items.
    candidates: list[Itemset] = []
    schema = complete.schema
    for attr, attribute in enumerate(schema):
        for value in range(attribute.cardinality):
            candidates.append(((attr, value),))

    truncated = False
    frequent_k: list[Itemset] = []
    while candidates:
        counts = _support_counts(codes, candidates)
        min_count = threshold * n
        frequent_k = [
            itemset
            for itemset, count in zip(candidates, counts)
            if count >= min_count
        ]
        for itemset, count in zip(candidates, counts):
            if count >= min_count:
                supports[itemset] = count / n
        if not frequent_k:
            break
        if len(frequent_k) > max_itemsets:
            truncated = True
            break
        candidates = _join_candidates(sorted(frequent_k))
    return FrequentItemsets(supports, n, threshold, truncated=truncated)
