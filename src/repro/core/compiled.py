"""Compiled meta-rule semi-lattices: flat NumPy structures for batch voting.

:class:`~repro.core.mrsl.MRSL` answers Algorithm 2's matching queries by
enumerating ``combinations()`` of a tuple's known items — fine for one
tuple, wasteful for a workload that asks the same evidence signature over
and over.  This module *compiles* a semi-lattice into flat arrays so that
matching and vote combination become single vectorized operations:

* a stacked CPD matrix (one row per meta-rule) and a weight vector;
* padded body matrices, so "which meta-rules match this evidence?" is one
  ``(R, maxBody)`` comparison instead of a subset enumeration;
* per-rule ancestor index sets, so the *best* (most specific) filter is a
  set difference instead of pairwise subsumption tests;
* a body -> row index keyed by itemset for point lookups.

Rules are stored in the canonical ``(body_size, body)`` order — exactly the
order :meth:`MRSL.matching` enumerates them — so combining rows in ascending
index order reproduces the naive path's floating-point results bit for bit.
"""

from __future__ import annotations

from collections import OrderedDict
from itertools import combinations
from typing import Hashable, Iterator

import numpy as np

from ..relational.tuples import MISSING_CODE
from .inference import VoterChoice, VotingScheme, _combine_stack
from .itemsets import Itemset
from .mrsl import MRSL, MRSLModel

__all__ = ["LRUCache", "CompiledMRSL", "CompiledModel"]


class LRUCache:
    """A size-bounded least-recently-used map with hit/miss counters.

    ``maxsize=None`` disables eviction (the pre-compilation behavior of the
    Gibbs CPD cache); any positive bound evicts the least recently *read or
    written* entry once full.
    """

    __slots__ = ("maxsize", "hits", "misses", "evictions", "_data")

    def __init__(self, maxsize: int | None = None):
        if maxsize is not None and maxsize < 1:
            raise ValueError("maxsize must be positive (or None for unbounded)")
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[Hashable, object] = OrderedDict()

    def get(self, key: Hashable):
        """Return the cached value or ``None``, updating recency and counters."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if self.maxsize is not None and len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def info(self) -> dict[str, int | None]:
        """Counters in one dict, for diagnostics reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data


class CompiledMRSL:
    """One semi-lattice flattened into matching/voting-ready arrays."""

    __slots__ = (
        "head_attribute",
        "cardinality",
        "bodies",
        "cpds",
        "weights",
        "body_sizes",
        "root_index",
        "signature_attrs",
        "_body_index",
        "_body_attrs",
        "_body_vals",
        "_pad",
        "_ancestors",
    )

    def __init__(self, lattice: MRSL, cardinality: int):
        self.head_attribute = lattice.head_attribute
        self.cardinality = cardinality
        # Canonical order: by (body size, body) — the order MRSL.matching
        # enumerates matches in, so ascending row index == naive voter order.
        rules = sorted(lattice, key=lambda m: (m.body_size, m.body))
        n = len(rules)
        max_body = max((m.body_size for m in rules), default=0)

        self.bodies: tuple[Itemset, ...] = tuple(m.body for m in rules)
        self._body_index: dict[Itemset, int] = {
            body: i for i, body in enumerate(self.bodies)
        }
        if n:
            self.cpds = np.vstack([m.probs for m in rules])
        else:
            self.cpds = np.empty((0, cardinality), dtype=np.float64)
        self.weights = np.array([m.weight for m in rules], dtype=np.float64)
        self.body_sizes = np.array([m.body_size for m in rules], dtype=np.int32)
        self.root_index = self._body_index.get((), -1)

        # Padded body matrices: row i matches evidence `codes` iff
        # codes[attr] == val for every (attr, val) in body i.  Padding slots
        # point at attribute 0 but are masked out of the comparison.
        self._body_attrs = np.zeros((n, max_body), dtype=np.intp)
        self._body_vals = np.full((n, max_body), MISSING_CODE, dtype=np.int32)
        self._pad = np.ones((n, max_body), dtype=bool)
        for i, m in enumerate(rules):
            for k, (attr, val) in enumerate(m.body):
                self._body_attrs[i, k] = attr
                self._body_vals[i, k] = val
                self._pad[i, k] = False

        # Per-rule ancestors: rows whose body is a proper subset of this
        # row's body.  A match is "best" iff it is no matched rule's ancestor.
        self._ancestors: tuple[frozenset[int], ...] = tuple(
            self._ancestor_rows(m.body) for m in rules
        )

        # Attributes mentioned by any body: the evidence *signature* — two
        # code vectors agreeing on these attributes have identical voter sets.
        attrs = sorted({attr for body in self.bodies for attr, _ in body})
        self.signature_attrs = np.array(attrs, dtype=np.intp)

    def _ancestor_rows(self, body: Itemset) -> frozenset[int]:
        out = set()
        for size in range(len(body)):
            for sub in combinations(body, size):
                row = self._body_index.get(sub)
                if row is not None:
                    out.add(row)
        return frozenset(out)

    # -- collection protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.bodies)

    def row(self, body: Itemset) -> int | None:
        """The row index of the meta-rule with exactly this body, if present."""
        return self._body_index.get(body)

    # -- matching ---------------------------------------------------------------

    def signature(self, codes: np.ndarray) -> bytes:
        """Hashable evidence signature: the codes matching actually reads.

        Restricting to the body-mentioned attributes maximizes sharing —
        tuples differing only on attributes no meta-rule conditions on fall
        into the same group.
        """
        return np.ascontiguousarray(codes[self.signature_attrs]).tobytes()

    def match_rows(self, codes: np.ndarray) -> np.ndarray:
        """Ascending row indices of meta-rules whose body agrees with ``codes``.

        One vectorized comparison over all rules replaces the naive path's
        ``combinations()`` enumeration.  ``codes`` is a full code vector; the
        head position must carry :data:`MISSING_CODE`.
        """
        if not len(self.bodies):
            return np.empty(0, dtype=np.intp)
        ok = (codes[self._body_attrs] == self._body_vals) | self._pad
        return np.flatnonzero(ok.all(axis=1))

    def best_rows(self, matched: np.ndarray) -> np.ndarray:
        """Most specific subset of ``matched``: rows that subsume no other match."""
        if matched.size <= 1:
            return matched
        dominated: set[int] = set()
        for j in matched:
            dominated.update(self._ancestors[j])
        if not dominated:
            return matched
        keep = [i for i in matched if int(i) not in dominated]
        return np.asarray(keep, dtype=np.intp)

    def voter_rows(self, codes: np.ndarray, v_choice: VoterChoice) -> np.ndarray:
        """The voter set for one evidence vector, as ascending row indices."""
        if v_choice is VoterChoice.ROOT:
            if self.root_index < 0:
                return np.empty(0, dtype=np.intp)
            return np.array([self.root_index], dtype=np.intp)
        matched = self.match_rows(codes)
        if v_choice is VoterChoice.BEST:
            return self.best_rows(matched)
        return matched

    # -- voting -----------------------------------------------------------------

    def combine_rows(
        self, rows: np.ndarray, scheme: VotingScheme
    ) -> np.ndarray:
        """Combine the CPDs of ``rows`` — same arithmetic as the naive path.

        Row gathering happens in ascending index (= naive enumeration)
        order and the arithmetic is shared with the naive path
        (:func:`~repro.core.inference._combine_stack`), so results agree
        with :func:`~repro.core.inference._combine` bit for bit.
        """
        if rows.size == 0:
            return np.full(self.cardinality, 1.0 / self.cardinality)
        weights = (
            self.weights[rows] if scheme is VotingScheme.WEIGHTED else None
        )
        return _combine_stack(self.cpds[rows], weights, scheme)

    def infer(
        self,
        codes: np.ndarray,
        v_choice: VoterChoice,
        v_scheme: VotingScheme,
    ) -> np.ndarray:
        """Algorithm 2 for one evidence vector (uncached; callers memoize)."""
        return self.combine_rows(self.voter_rows(codes, v_choice), v_scheme)

    def __repr__(self) -> str:
        return (
            f"CompiledMRSL(head={self.head_attribute}, {len(self)} rules, "
            f"{self.signature_attrs.size} signature attrs)"
        )


class CompiledModel:
    """Lazy per-attribute compilation of an :class:`MRSLModel`."""

    __slots__ = ("model", "_compiled")

    def __init__(self, model: MRSLModel):
        self.model = model
        self._compiled: dict[int, CompiledMRSL] = {}

    def __getitem__(self, attr: int | str) -> CompiledMRSL:
        if isinstance(attr, str):
            attr = self.model.schema.index(attr)
        compiled = self._compiled.get(attr)
        if compiled is None:
            compiled = CompiledMRSL(
                self.model[attr], self.model.schema[attr].cardinality
            )
            self._compiled[attr] = compiled
        return compiled

    def __iter__(self) -> Iterator[CompiledMRSL]:
        for attr in range(len(self.model.schema)):
            yield self[attr]

    def __len__(self) -> int:
        return len(self.model)

    def __repr__(self) -> str:
        return (
            f"CompiledModel({len(self._compiled)}/{len(self.model)} "
            "lattices compiled)"
        )
