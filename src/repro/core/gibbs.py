"""Ordered Gibbs sampling over MRSL models (Section V-A).

When a tuple misses several attribute values, their joint distribution is
estimated by ordered Gibbs sampling [17]: start from a random assignment of
the missing attributes, then repeatedly cycle through them, resampling each
from the CPD estimated by Algorithm 2 with *all other* attributes (observed
values plus the chain's current state) given as evidence.  Observed
attributes stay clamped throughout — this is the paper's tuple-at-a-time
restriction of the sample space.

A shared CPD cache keyed by the full conditioning assignment implements the
"caching the results of partial computations for re-use" optimization of
Section I-B; it is reused across chain steps, tuples, and the tuple-DAG
workload driver.  The cache is a size-bounded LRU so long-running workloads
cannot grow it without bound; conditional CPDs are computed by the compiled
engine (:mod:`repro.core.compiled`) by default, with the naive voter
enumeration kept as the ``engine="naive"`` correctness oracle.

Two chain drivers share the sampler:

* :class:`GibbsChain` — the scalar reference path: one chain, one Python
  ``conditional_probs`` call and one ``rng.choice`` per resampled
  attribute.
* :class:`GibbsEnsemble` — the vectorized kernel: all chains of all tuples
  in a batch advance in lock step, one
  :meth:`~repro.core.engine.BatchInferenceEngine.conditional_probs_batch`
  call and one ``rng.random(N)`` inverse-CDF draw per (sweep, attribute).
  With one chain and one tuple it consumes the *same* RNG stream as the
  scalar chain and reproduces its samples exactly; larger batches draw in
  a different (equally admissible) order.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Sequence

import numpy as np

from ..probdb.blocks import TupleBlock
from ..probdb.distribution import DEFAULT_SMOOTHING_FLOOR, Distribution
from ..relational.tuples import MISSING_CODE, RelTuple
from .compiled import LRUCache
from .engine import (
    DEFAULT_CPD_CACHE_SIZE,
    DEFAULT_ENGINE,
    BatchInferenceEngine,
    validate_engine,
)
from .inference import VoterChoice, VotingScheme, _combine, select_voters
from .mrsl import MRSLModel

__all__ = [
    "GibbsChain",
    "GibbsEnsemble",
    "GibbsSampler",
    "estimate_joint",
    "samples_to_distribution",
]

#: Outcome spaces larger than this are reported over observed outcomes only
#: (no exhaustive smoothing over the full Cartesian product).
MAX_DENSE_OUTCOMES = 100_000


class GibbsSampler:
    """A reusable ordered Gibbs sampler over one MRSL model.

    One sampler instance holds the voter configuration and the conditional
    CPD cache; per-tuple chains are created by :meth:`chain`.
    """

    def __init__(
        self,
        model: MRSLModel,
        v_choice: VoterChoice | str = VoterChoice.BEST,
        v_scheme: VotingScheme | str = VotingScheme.AVERAGED,
        rng: np.random.Generator | int | None = None,
        engine: str = DEFAULT_ENGINE,
        cache_size: int | None = DEFAULT_CPD_CACHE_SIZE,
        batch_engine: BatchInferenceEngine | None = None,
    ):
        self.model = model
        self.schema = model.schema
        self.v_choice = VoterChoice(v_choice)
        self.v_scheme = VotingScheme(v_scheme)
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.rng = rng
        self.engine = validate_engine(engine)
        if batch_engine is not None:
            # A caller's warm engine (the shard runtime path): its compiled
            # structures and CPD cache carry over across samplers.  CPDs are
            # requested with this sampler's voting config explicitly, so the
            # engine's own defaults never leak in.
            if batch_engine.model is not model:
                raise ValueError(
                    "batch_engine wraps a different model than the sampler's"
                )
            if self.engine != "compiled":
                raise ValueError(
                    "a warm batch_engine requires engine='compiled'"
                )
            self._engine = batch_engine
            self._cpd_cache = batch_engine.cache
        elif self.engine == "compiled":
            self._engine = BatchInferenceEngine(
                model, self.v_choice, self.v_scheme, cache_size=cache_size
            )
            self._cpd_cache = self._engine.cache
        else:
            self._engine = None
            self._cpd_cache = LRUCache(cache_size)
        #: total single-attribute resampling steps taken
        self.steps = 0

    # -- conditional CPDs -------------------------------------------------------

    @property
    def cpd_evaluations(self) -> int:
        """Total conditional-CPD evaluations (cache misses), for diagnostics."""
        return self._cpd_cache.misses

    @property
    def cache_hits(self) -> int:
        """Conditional-CPD cache hits, for diagnostics."""
        return self._cpd_cache.hits

    def cache_info(self) -> dict[str, int | None]:
        """Hit/miss/eviction counters of the conditional-CPD cache."""
        return self._cpd_cache.info()

    def conditional_probs(self, codes: np.ndarray, attr: int) -> np.ndarray:
        """CPD vector for ``attr`` with every other attribute of ``codes`` known.

        ``codes`` is a full code vector whose position ``attr`` is ignored
        (treated as missing).  Results are memoized on the conditioning
        assignment in a bounded LRU; the compiled path keys on the evidence
        *signature*, so assignments differing only on attributes no
        meta-rule conditions on share one entry.
        """
        if self._engine is not None:
            return self._engine.conditional_probs(
                codes, attr, self.v_choice, self.v_scheme
            )
        masked = codes.copy()
        masked[attr] = MISSING_CODE
        key = (attr, masked.tobytes())
        cached = self._cpd_cache.get(key)
        if cached is not None:
            return cached
        t = RelTuple(self.schema, masked)
        voters = select_voters(self.model[attr], t, self.v_choice)
        probs = _combine(voters, self.schema[attr].cardinality, self.v_scheme)
        # Strict positivity is required for Gibbs irreducibility; meta-rule
        # CPDs are positive by construction and the uniform fallback is too,
        # so a learned model never trips this — but hand-built or mutated
        # CPDs can carry exact zeros, which would freeze the chain out of
        # states (and a zero-sum vector would crash ``rng.choice``).  Clamp
        # to the smoothing floor and renormalize when the invariant fails.
        if not (probs > 0.0).all():
            probs = np.maximum(probs, DEFAULT_SMOOTHING_FLOOR)
            probs = probs / probs.sum()
        self._cpd_cache.put(key, probs)
        return probs

    # -- chains ----------------------------------------------------------------

    def chain(self, base: RelTuple) -> "GibbsChain":
        """Create a chain clamped to ``base``'s observed values."""
        return GibbsChain(self, base)

    def ensemble(
        self, bases: Sequence[RelTuple], chains: int = 1
    ) -> "GibbsEnsemble":
        """Create a lock-step vectorized ensemble over ``bases``.

        ``chains`` independent chains per tuple advance together; requires
        the compiled engine (the naive path stays scalar by design).
        """
        return GibbsEnsemble(self, bases, chains=chains)

    # -- one-shot estimation ------------------------------------------------------

    def estimate(
        self, base: RelTuple, num_samples: int, burn_in: int
    ) -> TupleBlock:
        """Tuple-at-a-time estimation of ``Δ(base)``.

        Runs one chain: ``burn_in`` discarded sweeps, then ``num_samples``
        recorded sweeps; the empirical joint over the missing attributes is
        smoothed and wrapped in a :class:`TupleBlock`.
        """
        chain = self.chain(base)
        chain.run_burn_in(burn_in)
        samples = [chain.step() for _ in range(num_samples)]
        dist = samples_to_distribution(self.schema, base, samples)
        return TupleBlock(base, dist)


class GibbsChain:
    """One Markov chain for one incomplete tuple."""

    def __init__(self, sampler: GibbsSampler, base: RelTuple):
        if base.is_complete:
            raise ValueError("Gibbs sampling requires an incomplete tuple")
        self.sampler = sampler
        self.base = base
        self.missing = base.missing_positions
        self.state = base.codes.copy()
        schema = sampler.schema
        # "Start with a valid random assignment of attribute values."
        for attr in self.missing:
            self.state[attr] = sampler.rng.integers(schema[attr].cardinality)

    def sweep(self) -> None:
        """One ordered cycle: resample every missing attribute in turn."""
        sampler = self.sampler
        for attr in self.missing:
            probs = sampler.conditional_probs(self.state, attr)
            self.state[attr] = sampler.rng.choice(probs.size, p=probs)
            sampler.steps += 1

    def step(self) -> tuple[int, ...]:
        """One sweep, returning the missing-attribute codes as a sample."""
        self.sweep()
        return tuple(int(self.state[attr]) for attr in self.missing)

    def run_burn_in(self, burn_in: int) -> None:
        """Discard ``burn_in`` sweeps (``DoSampleDiscard`` in Algorithm 3)."""
        for _ in range(burn_in):
            self.sweep()


class GibbsEnsemble:
    """Lock-step vectorized Gibbs chains over a batch of incomplete tuples.

    The state is one ``(num_tuples * chains, width)`` integer matrix:
    ``chains`` consecutive rows per base tuple, observed values clamped.  A
    sweep cycles the (union of) missing attributes in ascending position
    order — the same per-tuple order the scalar chain uses — and resamples
    every row missing that attribute at once: one
    :meth:`~repro.core.engine.BatchInferenceEngine.conditional_probs_batch`
    call for the CPDs, one ``rng.random(N)`` draw, and one vectorized
    inverse-CDF lookup replace ``N`` ``conditional_probs`` + ``rng.choice``
    round trips.

    The inverse-CDF lookup reproduces ``Generator.choice(card, p=probs)``
    exactly (same cumulative normalization, same ``side='right'`` search),
    so a one-tuple, one-chain ensemble emits bit-identical samples to
    :class:`GibbsChain` under the same seed.  Multi-tuple or multi-chain
    ensembles interleave draws differently — different, equally admissible
    sample sets, as with the shard runtime's per-shard reseeding.
    """

    def __init__(
        self, sampler: GibbsSampler, bases: Sequence[RelTuple], chains: int = 1
    ):
        if sampler._engine is None:
            raise ValueError(
                "the vectorized ensemble requires engine='compiled'; "
                "the naive engine stays on the scalar GibbsChain path"
            )
        if chains < 1:
            raise ValueError("chains must be positive")
        bases = list(bases)
        if not bases:
            raise ValueError("need at least one tuple")
        seen: set[RelTuple] = set()
        for base in bases:
            if base.is_complete:
                raise ValueError("Gibbs sampling requires incomplete tuples")
            if base in seen:
                raise ValueError(
                    "ensemble tuples must be distinct (duplicates share "
                    "one block; dedupe before building the ensemble)"
                )
            seen.add(base)
        self.sampler = sampler
        self.bases = bases
        self.chains = chains
        schema = sampler.schema
        k = chains
        self.states = np.empty((len(bases) * k, len(schema)), dtype=np.int32)
        rows_by_attr: dict[int, list[int]] = {}
        for i, base in enumerate(bases):
            lo = i * k
            self.states[lo : lo + k] = base.codes
            for attr in base.missing_positions:
                rows_by_attr.setdefault(attr, []).extend(range(lo, lo + k))
        #: sweep order: ascending attribute position, as in the scalar chain
        self.attrs = tuple(sorted(rows_by_attr))
        self._rows = {
            attr: np.asarray(rows, dtype=np.intp)
            for attr, rows in rows_by_attr.items()
        }
        # "Start with a valid random assignment of attribute values" —
        # tuple-major, missing-position-minor, one array draw per (tuple,
        # attribute); identical to the scalar chain's stream for one tuple
        # with one chain.
        rng = sampler.rng
        for i, base in enumerate(bases):
            lo = i * k
            for attr in base.missing_positions:
                self.states[lo : lo + k, attr] = rng.integers(
                    schema[attr].cardinality, size=k
                )

    def __len__(self) -> int:
        """Total chains (rows of the state matrix)."""
        return self.states.shape[0]

    def sweep(self) -> None:
        """One ordered cycle: resample every missing attribute everywhere."""
        sampler = self.sampler
        engine = sampler._engine
        rng = sampler.rng
        states = self.states
        for attr in self.attrs:
            rows = self._rows[attr]
            probs = engine.conditional_probs_batch(
                states[rows], attr, sampler.v_choice, sampler.v_scheme
            )
            cdf = np.cumsum(probs, axis=1)
            cdf /= cdf[:, -1:]
            u = rng.random(rows.size)
            # searchsorted(cdf, u, side="right") per row — the exact
            # arithmetic of Generator.choice(n, p=probs).
            states[rows, attr] = (cdf <= u[:, None]).sum(axis=1)
            sampler.steps += rows.size

    def run(
        self, num_samples: int, burn_in: int = 0
    ) -> list[np.ndarray]:
        """Burn in, then pool ``num_samples`` samples per base tuple.

        Each of the ``ceil(num_samples / chains)`` recorded sweeps
        contributes one sample per chain; per-tuple samples are pooled
        sweep-major, chain-minor and truncated to ``num_samples``.  Returns
        one ``(num_samples, num_missing)`` code matrix per base tuple, in
        base order — ready for :func:`samples_to_distribution`.
        """
        if num_samples < 1:
            raise ValueError("num_samples must be positive")
        if burn_in < 0:
            raise ValueError("burn_in must be non-negative")
        for _ in range(burn_in):
            self.sweep()
        k = self.chains
        sweeps = -(-num_samples // k)
        trace = np.empty((sweeps,) + self.states.shape, dtype=np.int32)
        for s in range(sweeps):
            self.sweep()
            trace[s] = self.states
        out = []
        for i, base in enumerate(self.bases):
            lo = i * k
            block = trace[:, lo : lo + k][:, :, list(base.missing_positions)]
            out.append(block.reshape(sweeps * k, -1)[:num_samples])
        return out


def samples_to_distribution(
    schema,
    base: RelTuple,
    samples: "Sequence[tuple[int, ...]] | np.ndarray",
    floor: float = DEFAULT_SMOOTHING_FLOOR,
) -> Distribution:
    """Empirical joint over ``base``'s missing values from chain samples.

    ``samples`` is a sequence of per-sample code tuples (the scalar chain's
    output) or an equivalent ``(n, num_missing)`` code matrix (the
    ensemble's).  Outcomes are tuples of *values* (not codes) in
    missing-position order — the format
    :class:`~repro.probdb.blocks.TupleBlock` expects.  When the full
    outcome space is small enough the distribution covers it entirely
    (zero-count combinations get the smoothing floor), so KL against an
    exact posterior is always finite; otherwise only observed outcomes are
    reported.

    Counting is one ``np.unique`` over packed sample codes; the resulting
    distributions are bit-identical to the historical Python counting loop
    (same count/total divisions, same outcome order).
    """
    n = len(samples)
    if n == 0:
        raise ValueError("need at least one sample")
    missing = base.missing_positions
    domains = [schema[attr].domain for attr in missing]
    space = 1
    for d in domains:
        space *= len(d)
    arr = np.asarray(samples, dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != len(missing):
        raise ValueError(
            f"samples must be (n, {len(missing)}) codes over the missing "
            f"positions, got shape {arr.shape}"
        )
    if space <= MAX_DENSE_OUTCOMES:
        dims = tuple(len(d) for d in domains)
        # Pack each sample into its row-major rank — exactly the order
        # ``product`` enumerates the outcome space in.
        packed = np.ravel_multi_index(tuple(arr.T), dims)
        codes, counts = np.unique(packed, return_counts=True)
        probs = np.zeros(space)
        probs[codes] = counts / n
        outcomes: list[Hashable] = [
            tuple(d[c] for d, c in zip(domains, combo))
            for combo in product(*(range(len(d)) for d in domains))
        ]
        return Distribution(outcomes, np.maximum(probs, floor))
    # Sparse: observed outcomes only, in first-occurrence order (the order
    # the historical dict-based counting reported them in).
    rows, first, counts = np.unique(
        arr, axis=0, return_index=True, return_counts=True
    )
    order = np.argsort(first, kind="stable")
    outcomes = [
        tuple(d[int(c)] for d, c in zip(domains, rows[i])) for i in order
    ]
    return Distribution(outcomes, counts[order] / n)


def estimate_joint(
    model: MRSLModel,
    base: RelTuple,
    num_samples: int = 2000,
    burn_in: int = 100,
    v_choice: VoterChoice | str = VoterChoice.BEST,
    v_scheme: VotingScheme | str = VotingScheme.AVERAGED,
    rng: np.random.Generator | int | None = None,
    engine: str = DEFAULT_ENGINE,
) -> TupleBlock:
    """Convenience wrapper: one tuple, one chain, one block."""
    sampler = GibbsSampler(
        model, v_choice=v_choice, v_scheme=v_scheme, rng=rng, engine=engine
    )
    return sampler.estimate(base, num_samples=num_samples, burn_in=burn_in)
