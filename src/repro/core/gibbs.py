"""Ordered Gibbs sampling over MRSL models (Section V-A).

When a tuple misses several attribute values, their joint distribution is
estimated by ordered Gibbs sampling [17]: start from a random assignment of
the missing attributes, then repeatedly cycle through them, resampling each
from the CPD estimated by Algorithm 2 with *all other* attributes (observed
values plus the chain's current state) given as evidence.  Observed
attributes stay clamped throughout — this is the paper's tuple-at-a-time
restriction of the sample space.

A shared CPD cache keyed by the full conditioning assignment implements the
"caching the results of partial computations for re-use" optimization of
Section I-B; it is reused across chain steps, tuples, and the tuple-DAG
workload driver.  The cache is a size-bounded LRU so long-running workloads
cannot grow it without bound; conditional CPDs are computed by the compiled
engine (:mod:`repro.core.compiled`) by default, with the naive voter
enumeration kept as the ``engine="naive"`` correctness oracle.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable, Sequence

import numpy as np

from ..probdb.blocks import TupleBlock
from ..probdb.distribution import DEFAULT_SMOOTHING_FLOOR, Distribution
from ..relational.tuples import MISSING_CODE, RelTuple
from .compiled import LRUCache
from .engine import (
    DEFAULT_CPD_CACHE_SIZE,
    DEFAULT_ENGINE,
    BatchInferenceEngine,
    validate_engine,
)
from .inference import VoterChoice, VotingScheme, _combine, select_voters
from .mrsl import MRSLModel

__all__ = ["GibbsSampler", "estimate_joint", "samples_to_distribution"]

#: Outcome spaces larger than this are reported over observed outcomes only
#: (no exhaustive smoothing over the full Cartesian product).
MAX_DENSE_OUTCOMES = 100_000


class GibbsSampler:
    """A reusable ordered Gibbs sampler over one MRSL model.

    One sampler instance holds the voter configuration and the conditional
    CPD cache; per-tuple chains are created by :meth:`chain`.
    """

    def __init__(
        self,
        model: MRSLModel,
        v_choice: VoterChoice | str = VoterChoice.BEST,
        v_scheme: VotingScheme | str = VotingScheme.AVERAGED,
        rng: np.random.Generator | int | None = None,
        engine: str = DEFAULT_ENGINE,
        cache_size: int | None = DEFAULT_CPD_CACHE_SIZE,
    ):
        self.model = model
        self.schema = model.schema
        self.v_choice = VoterChoice(v_choice)
        self.v_scheme = VotingScheme(v_scheme)
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self.rng = rng
        self.engine = validate_engine(engine)
        if self.engine == "compiled":
            self._engine = BatchInferenceEngine(
                model, self.v_choice, self.v_scheme, cache_size=cache_size
            )
            self._cpd_cache = self._engine.cache
        else:
            self._engine = None
            self._cpd_cache = LRUCache(cache_size)
        #: total single-attribute resampling steps taken
        self.steps = 0

    # -- conditional CPDs -------------------------------------------------------

    @property
    def cpd_evaluations(self) -> int:
        """Total conditional-CPD evaluations (cache misses), for diagnostics."""
        return self._cpd_cache.misses

    @property
    def cache_hits(self) -> int:
        """Conditional-CPD cache hits, for diagnostics."""
        return self._cpd_cache.hits

    def cache_info(self) -> dict[str, int | None]:
        """Hit/miss/eviction counters of the conditional-CPD cache."""
        return self._cpd_cache.info()

    def conditional_probs(self, codes: np.ndarray, attr: int) -> np.ndarray:
        """CPD vector for ``attr`` with every other attribute of ``codes`` known.

        ``codes`` is a full code vector whose position ``attr`` is ignored
        (treated as missing).  Results are memoized on the conditioning
        assignment in a bounded LRU; the compiled path keys on the evidence
        *signature*, so assignments differing only on attributes no
        meta-rule conditions on share one entry.
        """
        if self._engine is not None:
            return self._engine.conditional_probs(codes, attr)
        masked = codes.copy()
        masked[attr] = MISSING_CODE
        key = (attr, masked.tobytes())
        cached = self._cpd_cache.get(key)
        if cached is not None:
            return cached
        t = RelTuple(self.schema, masked)
        voters = select_voters(self.model[attr], t, self.v_choice)
        probs = _combine(voters, self.schema[attr].cardinality, self.v_scheme)
        # Strict positivity is required for Gibbs irreducibility; meta-rule
        # CPDs are positive by construction but the uniform fallback is too,
        # so this is a cheap invariant check rather than a transform.
        self._cpd_cache.put(key, probs)
        return probs

    # -- chains ----------------------------------------------------------------

    def chain(self, base: RelTuple) -> "GibbsChain":
        """Create a chain clamped to ``base``'s observed values."""
        return GibbsChain(self, base)

    # -- one-shot estimation ------------------------------------------------------

    def estimate(
        self, base: RelTuple, num_samples: int, burn_in: int
    ) -> TupleBlock:
        """Tuple-at-a-time estimation of ``Δ(base)``.

        Runs one chain: ``burn_in`` discarded sweeps, then ``num_samples``
        recorded sweeps; the empirical joint over the missing attributes is
        smoothed and wrapped in a :class:`TupleBlock`.
        """
        chain = self.chain(base)
        chain.run_burn_in(burn_in)
        samples = [chain.step() for _ in range(num_samples)]
        dist = samples_to_distribution(self.schema, base, samples)
        return TupleBlock(base, dist)


class GibbsChain:
    """One Markov chain for one incomplete tuple."""

    def __init__(self, sampler: GibbsSampler, base: RelTuple):
        if base.is_complete:
            raise ValueError("Gibbs sampling requires an incomplete tuple")
        self.sampler = sampler
        self.base = base
        self.missing = base.missing_positions
        self.state = base.codes.copy()
        schema = sampler.schema
        # "Start with a valid random assignment of attribute values."
        for attr in self.missing:
            self.state[attr] = sampler.rng.integers(schema[attr].cardinality)

    def sweep(self) -> None:
        """One ordered cycle: resample every missing attribute in turn."""
        sampler = self.sampler
        for attr in self.missing:
            probs = sampler.conditional_probs(self.state, attr)
            self.state[attr] = sampler.rng.choice(probs.size, p=probs)
            sampler.steps += 1

    def step(self) -> tuple[int, ...]:
        """One sweep, returning the missing-attribute codes as a sample."""
        self.sweep()
        return tuple(int(self.state[attr]) for attr in self.missing)

    def run_burn_in(self, burn_in: int) -> None:
        """Discard ``burn_in`` sweeps (``DoSampleDiscard`` in Algorithm 3)."""
        for _ in range(burn_in):
            self.sweep()


def samples_to_distribution(
    schema,
    base: RelTuple,
    samples: Sequence[tuple[int, ...]],
    floor: float = DEFAULT_SMOOTHING_FLOOR,
) -> Distribution:
    """Empirical joint over ``base``'s missing values from chain samples.

    Outcomes are tuples of *values* (not codes) in missing-position order —
    the format :class:`~repro.probdb.blocks.TupleBlock` expects.  When the
    full outcome space is small enough the distribution covers it entirely
    (zero-count combinations get the smoothing floor), so KL against an
    exact posterior is always finite; otherwise only observed outcomes are
    reported.
    """
    if not samples:
        raise ValueError("need at least one sample")
    missing = base.missing_positions
    domains = [schema[attr].domain for attr in missing]
    space = 1
    for d in domains:
        space *= len(d)
    counts: dict[tuple[int, ...], int] = {}
    for sample in samples:
        counts[sample] = counts.get(sample, 0) + 1
    if space <= MAX_DENSE_OUTCOMES:
        outcomes: list[Hashable] = []
        probs = []
        n = len(samples)
        for combo in product(*(range(len(d)) for d in domains)):
            outcomes.append(tuple(d[c] for d, c in zip(domains, combo)))
            probs.append(counts.get(combo, 0) / n)
        return Distribution(outcomes, np.maximum(probs, floor))
    n = len(samples)
    outcomes = [
        tuple(d[c] for d, c in zip(domains, combo)) for combo in counts
    ]
    probs = [c / n for c in counts.values()]
    return Distribution(outcomes, probs)


def estimate_joint(
    model: MRSLModel,
    base: RelTuple,
    num_samples: int = 2000,
    burn_in: int = 100,
    v_choice: VoterChoice | str = VoterChoice.BEST,
    v_scheme: VotingScheme | str = VotingScheme.AVERAGED,
    rng: np.random.Generator | int | None = None,
    engine: str = DEFAULT_ENGINE,
) -> TupleBlock:
    """Convenience wrapper: one tuple, one chain, one block."""
    sampler = GibbsSampler(
        model, v_choice=v_choice, v_scheme=v_scheme, rng=rng, engine=engine
    )
    return sampler.estimate(base, num_samples=num_samples, burn_in=burn_in)
