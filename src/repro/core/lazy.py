"""Lazy, query-targeted learning and inference.

The paper's conclusion names "partial materialization of probability values,
as well as ... lazy, query-targeted learning and inference" as opened-up
possibilities.  This module implements them: a :class:`LazyDeriver` learns
the MRSL model eagerly (cheap, off-line) but derives per-tuple distributions
only when a query actually touches a tuple, memoizing each derived block.

Queries whose predicate is decided by a tuple's *known* attributes never pay
for inference at all: if every completion of the tuple agrees on the
predicate, the block is not materialized.

Materialization runs through the shard runtime (:mod:`repro.exec`):
:meth:`LazyDeriver.prefetch` drops already-cached tuples, plans the rest
into signature / subsumption-component shards, and caches blocks as each
shard's result streams back — so a prefetch can use thread or process
workers (``config.executor`` / ``config.workers``) exactly like the eager
pipeline, and partial results land in the cache even mid-run.  Multi-
missing prefetches inherit the vectorized ensemble kernel too: the shards
carry batched tuple groups whose chains advance in lock step
(``config.gibbs_vectorized`` / ``config.gibbs_chains``), so a cold
prefetch over many multi-missing tuples costs batched matrix ops rather
than per-tuple Python loops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, NamedTuple

import numpy as np

from ..api.config import DeriveConfig, resolve_config
from ..exec.plan import resolve_base_seed
from ..exec.runtime import stream_derivation
from ..probdb.blocks import TupleBlock
from ..probdb.database import ProbabilisticDatabase
from ..relational.relation import Relation
from ..relational.tuples import RelTuple
from .engine import BatchInferenceEngine
from .inference import VoterChoice, VotingScheme
from .learning import learn_mrsl

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..relational.updates import ChangeSet

__all__ = ["CacheInfo", "LazyDeriver"]


class CacheInfo(NamedTuple):
    """Lazy-cache counters, ``functools.lru_cache``-style.

    ``hits``/``misses`` count per-tuple lookups through :meth:`LazyDeriver.block`
    and :meth:`LazyDeriver.prefetch` (a prefetched tuple already cached is a
    hit; a pending one is a miss).  ``evictions`` counts blocks removed by
    targeted invalidation; ``size`` is the current number of cached blocks.
    """

    hits: int
    misses: int
    evictions: int
    size: int


class LazyDeriver:
    """Derives per-tuple distributions on demand, with memoization.

    Parameters mirror :func:`~repro.core.derive.derive_probabilistic_database`;
    the difference is *when* inference runs.
    """

    def __init__(
        self,
        relation: Relation,
        support_threshold: float | None = None,
        v_choice: VoterChoice | str | None = None,
        v_scheme: VotingScheme | str | None = None,
        num_samples: int | None = None,
        burn_in: int | None = None,
        rng: np.random.Generator | int | None = None,
        engine: str | None = None,
        max_itemsets: int | None = None,
        strategy: str | None = None,
        config: DeriveConfig | None = None,
        executor: str | None = None,
        workers: int | None = None,
        gibbs_chains: int | None = None,
        gibbs_vectorized: bool | None = None,
    ):
        cfg = resolve_config(
            config,
            support_threshold=support_threshold,
            max_itemsets=max_itemsets,
            v_choice=v_choice,
            v_scheme=v_scheme,
            num_samples=num_samples,
            burn_in=burn_in,
            strategy=strategy,
            engine=engine,
            executor=executor,
            workers=workers,
            gibbs_chains=gibbs_chains,
            gibbs_vectorized=gibbs_vectorized,
        )
        self.config = cfg
        self.relation = relation
        self.model = learn_mrsl(
            relation,
            support_threshold=cfg.support_threshold,
            max_itemsets=cfg.max_itemsets,
        ).model
        self.v_choice = VoterChoice(cfg.v_choice)
        self.v_scheme = VotingScheme(cfg.v_scheme)
        self.num_samples = cfg.num_samples
        self.burn_in = cfg.burn_in
        self.strategy = cfg.strategy
        # One base seed for the deriver's lifetime: per-shard Gibbs seeds
        # derive from it plus each shard's content key, so a tuple's block
        # does not depend on *when* (or with how many workers) it was
        # materialized — only on which tuples shared its prefetch.
        self._base_seed = resolve_base_seed(rng, cfg.seed)
        self.engine = cfg.engine
        self._batch_engine = (
            BatchInferenceEngine(self.model, self.v_choice, self.v_scheme)
            if self.engine == "compiled"
            else None
        )
        self._cache: dict[RelTuple, TupleBlock] = {}
        #: number of blocks actually derived (the partial-materialization metric)
        self.materialized = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- cache bookkeeping -----------------------------------------------------

    def cache_info(self) -> CacheInfo:
        """Current hit/miss/eviction counters and cache size."""
        return CacheInfo(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._cache),
        )

    def evict(self, tuples: Iterable[RelTuple]) -> int:
        """Drop the cached blocks of ``tuples`` (targeted invalidation).

        Returns how many entries were actually removed; absent tuples are
        ignored.  ``materialized`` keeps its historical count — it measures
        derivation work done, not cache residency.
        """
        removed = 0
        for t in tuples:
            if self._cache.pop(t, None) is not None:
                removed += 1
        self._evictions += removed
        return removed

    def apply_changeset(self, changeset: "ChangeSet", trust: tuple[str, ...] | None = None) -> int:
        """Apply a base-table ChangeSet and evict the dirty cached blocks.

        The deriver's relation is updated in place (its update log grows)
        and every cached block whose base tuple content was updated or
        retracted is evicted, so the next access re-derives against the new
        table.  The model is *not* re-learned — the lazy deriver serves the
        model it trained at construction, matching the delta-derive policy.
        Returns the number of evicted blocks.  Trust defaults to
        ``config.trust``.
        """
        outcome = self.relation.apply_changeset(
            changeset, trust=self.config.trust if trust is None else trust
        )
        return self.evict(outcome.touched_tuples())

    # -- block derivation ------------------------------------------------------

    def block(self, t: RelTuple) -> TupleBlock:
        """Derive (or fetch) the block for one incomplete tuple."""
        cached = self._cache.get(t)
        if cached is not None:
            self._hits += 1
            return cached
        self.prefetch([t])
        return self._cache[t]

    def prefetch(self, tuples: list[RelTuple]) -> None:
        """Materialize many blocks at once.

        Tuples already cached (and duplicates within the batch) are dropped
        *before* planning, so a warm prefetch costs nothing.  The rest are
        planned into shards — multi-missing tuples share Gibbs work through
        the tuple-DAG optimization within their subsumption component,
        single-missing tuples are served as signature-grouped batches by
        the compiled engine — and executed by the configured runtime,
        caching each shard's blocks as it completes.  Each requested tuple
        counts once toward :meth:`cache_info`: cached ones as hits, distinct
        pending ones as misses.
        """
        pending: list[RelTuple] = []
        seen: set[RelTuple] = set()
        for t in tuples:
            if t in self._cache:
                self._hits += 1
            elif t not in seen:
                seen.add(t)
                pending.append(t)
                self._misses += 1
        if not pending:
            return
        # Tiny batches (the tuple-at-a-time block() path) are not worth a
        # pool: run them serially in-process.  Results are bit-identical
        # either way, so this is purely a cost decision.
        executor = "serial" if len(pending) == 1 else None
        stream = stream_derivation(
            pending,
            self.model,
            self.config,
            rng=self._base_seed,
            batch_engine=self._batch_engine,
            executor=executor,
        )
        try:
            for result in stream:
                for idx, block in zip(result.indices, result.blocks):
                    t = pending[idx]
                    if t not in self._cache:
                        self._cache[t] = block
                        self.materialized += 1
        finally:
            # If the consumer abandons us mid-stream (a caching callback
            # raising, Ctrl-C), close the generator so the executors' pool
            # context managers run and worker threads/processes are reaped.
            stream.close()

    # -- query-targeted evaluation ------------------------------------------------

    def _decided_without_inference(
        self, t: RelTuple, predicate: Callable[[RelTuple], bool]
    ) -> bool | None:
        """Evaluate the predicate if all completions agree; else None.

        Cheap short-circuit: try the two "extreme" completions first and
        fall back to a scan of the completion space only when it is small.
        """
        from itertools import islice, product

        schema = t.schema
        domains = [schema[p].domain for p in t.missing_positions]
        names = [schema[p].name for p in t.missing_positions]
        space = 1
        for d in domains:
            space *= len(d)
        if space > 4096:
            return None  # too large to decide cheaply; treat as undecided
        result: bool | None = None
        for combo in product(*domains):
            value = predicate(t.complete_with(dict(zip(names, combo))))
            if result is None:
                result = value
            elif result != value:
                return None
        return result

    def expected_count(self, predicate: Callable[[RelTuple], bool]) -> float:
        """Expected number of tuples satisfying ``predicate``.

        Only tuples whose outcome genuinely depends on missing values have
        their distributions derived.
        """
        total = 0.0
        for t in self.relation.complete_part():
            total += 1.0 if predicate(t) else 0.0
        undecided = []
        for t in self.relation.incomplete_part():
            decided = self._decided_without_inference(t, predicate)
            if decided is None:
                undecided.append(t)
            elif decided:
                total += 1.0
        self.prefetch(undecided)
        for t in undecided:
            block = self.block(t)
            total += sum(
                p for completed, p in block.completions() if predicate(completed)
            )
        return total

    def materialize_all(self) -> ProbabilisticDatabase:
        """Fall back to the eager result: every block derived."""
        incomplete = list(self.relation.incomplete_part())
        self.prefetch(incomplete)
        return ProbabilisticDatabase(
            self.relation.schema,
            certain=list(self.relation.complete_part()),
            blocks=[self.block(t) for t in incomplete],
        )

    def __repr__(self) -> str:
        return (
            f"LazyDeriver({self.relation.num_incomplete} incomplete tuples, "
            f"{self.materialized} materialized)"
        )
