"""Lazy, query-targeted learning and inference.

The paper's conclusion names "partial materialization of probability values,
as well as ... lazy, query-targeted learning and inference" as opened-up
possibilities.  This module implements them: a :class:`LazyDeriver` learns
the MRSL model eagerly (cheap, off-line) but derives per-tuple distributions
only when a query actually touches a tuple, memoizing each derived block.

Queries whose predicate is decided by a tuple's *known* attributes never pay
for inference at all: if every completion of the tuple agrees on the
predicate, the block is not materialized.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from ..api.config import DeriveConfig, resolve_config
from ..probdb.blocks import TupleBlock
from ..probdb.database import ProbabilisticDatabase
from ..probdb.distribution import Distribution
from ..relational.relation import Relation
from ..relational.tuples import RelTuple
from .derive import single_missing_blocks
from .engine import BatchInferenceEngine
from .inference import VoterChoice, VotingScheme
from .learning import learn_mrsl
from .tuple_dag import workload_sampling

__all__ = ["LazyDeriver"]


class LazyDeriver:
    """Derives per-tuple distributions on demand, with memoization.

    Parameters mirror :func:`~repro.core.derive.derive_probabilistic_database`;
    the difference is *when* inference runs.
    """

    def __init__(
        self,
        relation: Relation,
        support_threshold: float | None = None,
        v_choice: VoterChoice | str | None = None,
        v_scheme: VotingScheme | str | None = None,
        num_samples: int | None = None,
        burn_in: int | None = None,
        rng: np.random.Generator | int | None = None,
        engine: str | None = None,
        max_itemsets: int | None = None,
        strategy: str | None = None,
        config: DeriveConfig | None = None,
    ):
        cfg = resolve_config(
            config,
            support_threshold=support_threshold,
            max_itemsets=max_itemsets,
            v_choice=v_choice,
            v_scheme=v_scheme,
            num_samples=num_samples,
            burn_in=burn_in,
            strategy=strategy,
            engine=engine,
        )
        self.config = cfg
        self.relation = relation
        self.model = learn_mrsl(
            relation,
            support_threshold=cfg.support_threshold,
            max_itemsets=cfg.max_itemsets,
        ).model
        self.v_choice = VoterChoice(cfg.v_choice)
        self.v_scheme = VotingScheme(cfg.v_scheme)
        self.num_samples = cfg.num_samples
        self.burn_in = cfg.burn_in
        self.strategy = cfg.strategy
        if rng is None:
            rng = cfg.seed
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        self._rng = rng
        self.engine = cfg.engine
        self._batch_engine = (
            BatchInferenceEngine(self.model, self.v_choice, self.v_scheme)
            if self.engine == "compiled"
            else None
        )
        self._cache: dict[RelTuple, TupleBlock] = {}
        #: number of blocks actually derived (the partial-materialization metric)
        self.materialized = 0

    # -- block derivation ------------------------------------------------------

    def block(self, t: RelTuple) -> TupleBlock:
        """Derive (or fetch) the block for one incomplete tuple."""
        cached = self._cache.get(t)
        if cached is not None:
            return cached
        if t.num_missing == 1:
            block = single_missing_blocks(
                [t],
                self.model,
                self.v_choice,
                self.v_scheme,
                engine=self.engine,
                batch_engine=self._batch_engine,
            )[0]
        else:
            blocks, _ = workload_sampling(
                self.model,
                [t],
                num_samples=self.num_samples,
                burn_in=self.burn_in,
                strategy=self.strategy,
                v_choice=self.v_choice,
                v_scheme=self.v_scheme,
                rng=self._rng,
                engine=self.engine,
            )
            block = blocks[0]
        self._cache[t] = block
        self.materialized += 1
        return block

    def prefetch(self, tuples: list[RelTuple]) -> None:
        """Materialize many blocks at once.

        Multi-missing tuples share Gibbs work through the tuple-DAG
        optimization; single-missing tuples are served as one signature-
        grouped batch by the compiled engine — neither win is available to a
        tuple-at-a-time loop over :meth:`block`.
        """
        multi = [
            t for t in tuples
            if t.num_missing > 1 and t not in self._cache
        ]
        if multi:
            blocks, _ = workload_sampling(
                self.model,
                multi,
                num_samples=self.num_samples,
                burn_in=self.burn_in,
                strategy=self.strategy,
                v_choice=self.v_choice,
                v_scheme=self.v_scheme,
                rng=self._rng,
                engine=self.engine,
            )
            for t, block in zip(multi, blocks):
                if t not in self._cache:
                    self._cache[t] = block
                    self.materialized += 1
        single = [
            t for t in tuples
            if t.num_missing == 1 and t not in self._cache
        ]
        if single:
            blocks = single_missing_blocks(
                single,
                self.model,
                self.v_choice,
                self.v_scheme,
                engine=self.engine,
                batch_engine=self._batch_engine,
            )
            for t, block in zip(single, blocks):
                if t not in self._cache:
                    self._cache[t] = block
                    self.materialized += 1

    # -- query-targeted evaluation ------------------------------------------------

    def _decided_without_inference(
        self, t: RelTuple, predicate: Callable[[RelTuple], bool]
    ) -> bool | None:
        """Evaluate the predicate if all completions agree; else None.

        Cheap short-circuit: try the two "extreme" completions first and
        fall back to a scan of the completion space only when it is small.
        """
        from itertools import islice, product

        schema = t.schema
        domains = [schema[p].domain for p in t.missing_positions]
        names = [schema[p].name for p in t.missing_positions]
        space = 1
        for d in domains:
            space *= len(d)
        if space > 4096:
            return None  # too large to decide cheaply; treat as undecided
        result: bool | None = None
        for combo in product(*domains):
            value = predicate(t.complete_with(dict(zip(names, combo))))
            if result is None:
                result = value
            elif result != value:
                return None
        return result

    def expected_count(self, predicate: Callable[[RelTuple], bool]) -> float:
        """Expected number of tuples satisfying ``predicate``.

        Only tuples whose outcome genuinely depends on missing values have
        their distributions derived.
        """
        total = 0.0
        for t in self.relation.complete_part():
            total += 1.0 if predicate(t) else 0.0
        undecided = []
        for t in self.relation.incomplete_part():
            decided = self._decided_without_inference(t, predicate)
            if decided is None:
                undecided.append(t)
            elif decided:
                total += 1.0
        self.prefetch(undecided)
        for t in undecided:
            block = self.block(t)
            total += sum(
                p for completed, p in block.completions() if predicate(completed)
            )
        return total

    def materialize_all(self) -> ProbabilisticDatabase:
        """Fall back to the eager result: every block derived."""
        incomplete = list(self.relation.incomplete_part())
        self.prefetch(incomplete)
        return ProbabilisticDatabase(
            self.relation.schema,
            certain=list(self.relation.complete_part()),
            blocks=[self.block(t) for t in incomplete],
        )

    def __repr__(self) -> str:
        return (
            f"LazyDeriver({self.relation.num_incomplete} incomplete tuples, "
            f"{self.materialized} materialized)"
        )
