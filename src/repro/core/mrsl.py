"""Meta-rule semi-lattices (Defs 2.7-2.9).

``MRSL_a`` is the set of meta-rules with head attribute ``a``, partially
ordered by body subsumption; an :class:`MRSLModel` holds one semi-lattice per
attribute.  The semi-lattice answers the two queries Algorithm 2 needs:

* all meta-rules matching an incomplete tuple, and
* among those, the *best* (most specific) matches — the ones that do not
  subsume any other match.

Matching is served by a body-indexed lookup: a meta-rule matches tuple ``t``
iff its body is a sub-assignment of ``t``'s known values, so the matches are
found by enumerating subsets of the known items bounded by the lattice's
maximum body size (cheap, because bodies beyond the Apriori frontier do not
exist).
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Sequence

from ..relational.schema import Schema
from ..relational.tuples import MISSING_CODE, RelTuple
from .itemsets import Item, Itemset
from .metarule import MetaRule

__all__ = ["MRSL", "MRSLModel"]


class MRSL:
    """The meta-rule semi-lattice for one head attribute."""

    def __init__(self, head_attribute: int, meta_rules: Sequence[MetaRule]):
        self.head_attribute = head_attribute
        for m in meta_rules:
            if m.head_attribute != head_attribute:
                raise ValueError(
                    "meta-rule head attribute does not match the semi-lattice"
                )
        self._by_body: dict[Itemset, MetaRule] = {}
        for m in meta_rules:
            if m.body in self._by_body:
                raise ValueError(f"duplicate meta-rule body {m.body}")
            self._by_body[m.body] = m
        self.max_body_size = max((m.body_size for m in meta_rules), default=0)

    # -- collection protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._by_body)

    def __iter__(self) -> Iterator[MetaRule]:
        return iter(self._by_body.values())

    def __contains__(self, body: Itemset) -> bool:
        return body in self._by_body

    def get(self, body: Itemset) -> MetaRule | None:
        """The meta-rule with exactly this body, if present."""
        return self._by_body.get(body)

    @property
    def root(self) -> MetaRule | None:
        """The top-level meta-rule ``P(a)`` (empty body), if mined."""
        return self._by_body.get(())

    # -- semi-lattice structure ---------------------------------------------------

    def children(self, m: MetaRule) -> list[MetaRule]:
        """Immediate refinements of ``m``: bodies extending it by one item."""
        return [
            other
            for other in self._by_body.values()
            if other.body_size == m.body_size + 1 and m.subsumes(other)
        ]

    def parents(self, m: MetaRule) -> list[MetaRule]:
        """Immediate generalizations: bodies with one item removed."""
        out = []
        for i in range(len(m.body)):
            body = m.body[:i] + m.body[i + 1 :]
            parent = self._by_body.get(body)
            if parent is not None:
                out.append(parent)
        return out

    # -- matching (Algorithm 2, GetMatchingMetaRules) -------------------------------

    def matching(self, t: RelTuple) -> list[MetaRule]:
        """All meta-rules whose body agrees with ``t``'s known values."""
        known_items: list[Item] = [
            (attr, int(code))
            for attr, code in enumerate(t.codes)
            if code != MISSING_CODE and attr != self.head_attribute
        ]
        matches = []
        limit = min(self.max_body_size, len(known_items))
        for size in range(limit + 1):
            for body in combinations(known_items, size):
                m = self._by_body.get(body)
                if m is not None:
                    matches.append(m)
        return matches

    def best_matching(self, t: RelTuple) -> list[MetaRule]:
        """Most specific matches: those that subsume no other match."""
        matches = self.matching(t)
        return self.most_specific(matches)

    @staticmethod
    def most_specific(matches: Sequence[MetaRule]) -> list[MetaRule]:
        """Filter to meta-rules that do not subsume any other in ``matches``.

        Since every match's body is a sub-assignment of the same tuple, the
        subsumption test reduces to strict-subset on bodies.
        """
        bodies = [set(m.body) for m in matches]
        out = []
        for i, m in enumerate(matches):
            if not any(
                i != j and bodies[i] < bodies[j] for j in range(len(matches))
            ):
                out.append(m)
        return out

    def describe(self, schema: Schema) -> str:
        """Multi-line listing of the lattice, one level per line (cf. Fig. 2)."""
        lines = []
        for size in range(self.max_body_size + 1):
            level = [m for m in self if m.body_size == size]
            for m in sorted(level, key=lambda m: m.body):
                lines.append(f"W={m.weight:.2f}  {m.describe(schema)}")
        return "\n".join(lines)

    def to_networkx(self, schema: Schema):
        """The Hasse diagram of the semi-lattice as a networkx DiGraph.

        Nodes are meta-rule bodies (labelled as in Fig. 2); an edge runs
        from each meta-rule to its immediate refinements.  Useful for
        visualizing or programmatically analyzing the learned ensemble.
        """
        import networkx as nx

        graph = nx.DiGraph()
        for m in self:
            graph.add_node(
                m.body,
                label=m.describe(schema),
                weight=m.weight,
                probs=tuple(float(p) for p in m.probs),
            )
        for m in self:
            for child in self.children(m):
                graph.add_edge(m.body, child.body)
        return graph

    def __repr__(self) -> str:
        return (
            f"MRSL(head={self.head_attribute}, {len(self)} meta-rules, "
            f"max body size {self.max_body_size})"
        )


class MRSLModel:
    """One semi-lattice per attribute (Def. 2.9)."""

    def __init__(self, schema: Schema, lattices: Sequence[MRSL]):
        self.schema = schema
        by_attr = {lat.head_attribute: lat for lat in lattices}
        if len(by_attr) != len(lattices):
            raise ValueError("duplicate semi-lattice for an attribute")
        missing = set(range(len(schema))) - set(by_attr)
        if missing:
            names = [schema[i].name for i in sorted(missing)]
            raise ValueError(f"no semi-lattice for attributes {names}")
        self._by_attr = by_attr

    def __getitem__(self, key: int | str) -> MRSL:
        if isinstance(key, str):
            key = self.schema.index(key)
        return self._by_attr[key]

    def __iter__(self) -> Iterator[MRSL]:
        return iter(self._by_attr.values())

    def __len__(self) -> int:
        return len(self._by_attr)

    def size(self) -> int:
        """Total number of meta-rules — the "model size" of Fig. 4(c)."""
        return sum(len(lat) for lat in self._by_attr.values())

    def pruned(self, min_weight: float) -> "MRSLModel":
        """A compressed copy keeping meta-rules with weight >= ``min_weight``.

        Top-level rules (empty body, weight 1) always survive, so inference
        never loses its fallback voter.  This is the "partial
        materialization of probability values" direction of Section VIII:
        trade model size against the specificity of available evidence.
        """
        if not 0.0 <= min_weight <= 1.0:
            raise ValueError("min_weight must be within [0, 1]")
        lattices = []
        for lat in self._by_attr.values():
            kept = [
                m for m in lat if m.weight >= min_weight or not m.body
            ]
            lattices.append(MRSL(lat.head_attribute, kept))
        return MRSLModel(self.schema, lattices)

    def __repr__(self) -> str:
        return f"MRSLModel({len(self)} attributes, {self.size()} meta-rules)"
