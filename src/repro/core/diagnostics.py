"""Gibbs-chain convergence diagnostics.

Section V-A notes that the burn-in length ``B`` and sample count ``N`` "may
be estimated using standard techniques".  This module supplies two such
techniques so the choice is data-driven rather than hard-coded:

* the Gelman-Rubin potential scale reduction factor (PSRF) over several
  independent chains, adapted to discrete states via indicator statistics;
* an automatic ``suggest_chain_lengths`` that grows ``B`` and ``N`` until
  the PSRF falls below a threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..relational.tuples import RelTuple
from .gibbs import GibbsSampler
from .mrsl import MRSLModel

__all__ = ["psrf", "gelman_rubin", "ChainPlan", "suggest_chain_lengths"]


def psrf(chain_stats: np.ndarray) -> float:
    """Potential scale reduction factor for an ``(m, n)`` statistic matrix.

    ``chain_stats[j, t]`` is a scalar statistic of chain ``j`` at step
    ``t``.  Values near 1 indicate the chains have mixed; > ~1.1 means more
    burn-in is needed.
    """
    stats = np.asarray(chain_stats, dtype=np.float64)
    if stats.ndim != 2 or stats.shape[0] < 2 or stats.shape[1] < 2:
        raise ValueError("need at least 2 chains and 2 steps")
    m, n = stats.shape
    chain_means = stats.mean(axis=1)
    grand_mean = chain_means.mean()
    between = n / (m - 1) * ((chain_means - grand_mean) ** 2).sum()
    within = stats.var(axis=1, ddof=1).mean()
    if within <= 0:
        # All chains constant: either perfectly mixed on a point mass
        # (between == 0) or stuck apart (between > 0).
        return 1.0 if between <= 1e-12 else float("inf")
    var_plus = (n - 1) / n * within + between / n
    return float(np.sqrt(var_plus / within))


def gelman_rubin(
    model: MRSLModel,
    base: RelTuple,
    num_chains: int = 4,
    num_steps: int = 200,
    burn_in: int = 0,
    rng: np.random.Generator | int | None = None,
) -> float:
    """PSRF of independent Gibbs chains for one incomplete tuple.

    The per-step scalar statistic is the indicator of the first missing
    attribute's first value — a simple, standard reduction for discrete
    chains (any fixed measurable statistic works for detecting non-mixing).
    The maximum PSRF over all missing attributes is returned, which is the
    conservative (multivariate) choice.
    """
    if num_chains < 2:
        raise ValueError("need at least two chains")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    missing = base.missing_positions
    stats = np.empty((len(missing), num_chains, num_steps))
    for j in range(num_chains):
        sampler = GibbsSampler(model, rng=rng.integers(2**63))
        chain = sampler.chain(base)
        chain.run_burn_in(burn_in)
        for t in range(num_steps):
            sample = chain.step()
            for a, value in enumerate(sample):
                stats[a, j, t] = 1.0 if value == 0 else 0.0
    return max(psrf(stats[a]) for a in range(len(missing)))


@dataclass
class ChainPlan:
    """A suggested Gibbs configuration with its final diagnostic."""

    burn_in: int
    num_samples: int
    psrf: float
    converged: bool


def suggest_chain_lengths(
    model: MRSLModel,
    base: RelTuple,
    target_psrf: float = 1.1,
    num_chains: int = 4,
    initial_burn_in: int = 50,
    initial_samples: int = 200,
    max_samples: int = 5000,
    rng: np.random.Generator | int | None = None,
) -> ChainPlan:
    """Grow ``B``/``N`` geometrically until the PSRF meets ``target_psrf``.

    Returns the first configuration whose diagnostic passes, or the largest
    attempted one flagged ``converged=False``.
    """
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    burn_in, num_samples = initial_burn_in, initial_samples
    while True:
        value = gelman_rubin(
            model,
            base,
            num_chains=num_chains,
            num_steps=num_samples,
            burn_in=burn_in,
            rng=rng,
        )
        if value <= target_psrf:
            return ChainPlan(burn_in, num_samples, value, converged=True)
        if num_samples >= max_samples:
            return ChainPlan(burn_in, num_samples, value, converged=False)
        burn_in *= 2
        num_samples = min(num_samples * 2, max_samples)
