"""The paper's core contribution: MRSL learning and ensemble inference.

Modules map one-to-one onto the paper's sections:

* :mod:`.itemsets` — Apriori mining (Section III);
* :mod:`.rules`, :mod:`.metarule` — Defs 2.5-2.6;
* :mod:`.mrsl` — Defs 2.7-2.9;
* :mod:`.learning` — Algorithm 1;
* :mod:`.inference` — Algorithm 2 (single missing attribute);
* :mod:`.compiled`, :mod:`.engine` — the compiled batch-inference engine;
* :mod:`.gibbs` — ordered Gibbs sampling (Section V-A);
* :mod:`.tuple_dag` — Algorithm 3 (workload-driven sampling);
* :mod:`.derive` — the end-to-end pipeline.
"""

from .compiled import CompiledModel, CompiledMRSL, LRUCache
from .derive import (
    DeriveResult,
    derive_probabilistic_database,
    single_missing_blocks,
)
from .engine import (
    DEFAULT_ENGINE,
    ENGINES,
    BatchInferenceEngine,
    validate_engine,
)
from .diagnostics import ChainPlan, gelman_rubin, psrf, suggest_chain_lengths
from .gibbs import (
    GibbsChain,
    GibbsEnsemble,
    GibbsSampler,
    estimate_joint,
    samples_to_distribution,
)
from .lazy import CacheInfo, LazyDeriver
from .inference import (
    VoteExplanation,
    VoterChoice,
    VotingScheme,
    explain_single,
    infer_all_single_missing,
    infer_single,
    infer_single_codes,
    select_voters,
)
from .itemsets import (
    DEFAULT_MAX_ITEMSETS,
    EMPTY_ITEMSET,
    FrequentItemsets,
    Item,
    Itemset,
    is_subset,
    itemset_attributes,
    make_itemset,
    mine_frequent_itemsets,
)
from .learning import LearnResult, learn_mrsl
from .metarule import MetaRule, build_meta_rules, smooth_cpd
from .mrsl import MRSL, MRSLModel
from .persistence import load_model, model_from_dict, model_to_dict, save_model
from .rules import AssociationRule, compute_association_rules
from .tuple_dag import (
    SamplingStats,
    TupleDAG,
    ensemble_sampling,
    workload_sampling,
)

__all__ = [
    "Item",
    "Itemset",
    "EMPTY_ITEMSET",
    "make_itemset",
    "itemset_attributes",
    "is_subset",
    "FrequentItemsets",
    "mine_frequent_itemsets",
    "DEFAULT_MAX_ITEMSETS",
    "AssociationRule",
    "compute_association_rules",
    "MetaRule",
    "build_meta_rules",
    "smooth_cpd",
    "MRSL",
    "MRSLModel",
    "LearnResult",
    "learn_mrsl",
    "VoterChoice",
    "VotingScheme",
    "infer_single",
    "infer_single_codes",
    "infer_all_single_missing",
    "select_voters",
    "VoteExplanation",
    "explain_single",
    "GibbsSampler",
    "GibbsChain",
    "GibbsEnsemble",
    "estimate_joint",
    "samples_to_distribution",
    "TupleDAG",
    "SamplingStats",
    "workload_sampling",
    "ensemble_sampling",
    "DeriveResult",
    "derive_probabilistic_database",
    "single_missing_blocks",
    "CompiledMRSL",
    "CompiledModel",
    "LRUCache",
    "BatchInferenceEngine",
    "ENGINES",
    "DEFAULT_ENGINE",
    "validate_engine",
    "LazyDeriver",
    "CacheInfo",
    "save_model",
    "load_model",
    "model_to_dict",
    "model_from_dict",
    "psrf",
    "gelman_rubin",
    "ChainPlan",
    "suggest_chain_lengths",
]
