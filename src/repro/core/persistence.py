"""MRSL model persistence: learn once, serve many sessions.

The paper frames MRSL learning as an off-line process ("learning the MRSL
from the data as part of an off-line process is feasible", Section VI-B);
production use therefore needs to store the learned model.  The format is
plain JSON — schema, then per-attribute meta-rules as
``(body, weight, probs)`` triples — versioned for forward compatibility.

Saved documents also carry *compiled-engine metadata* (per-attribute CPD
group signatures, matrix shapes, and content digests) next to the model
itself, so any consumer that recompiles the model — most importantly a
:class:`~repro.exec.executors.ProcessExecutor` worker rebuilding from JSON —
can validate that its compiled structures match the ones the producer had.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..relational.schema import Attribute, Schema
from .compiled import CompiledModel
from .metarule import MetaRule
from .mrsl import MRSL, MRSLModel

__all__ = [
    "save_model",
    "load_model",
    "model_to_dict",
    "model_from_dict",
    "compiled_metadata",
    "verify_compiled_metadata",
]

FORMAT_VERSION = 1

COMPILED_METADATA_VERSION = 1


def model_to_dict(model: MRSLModel) -> dict[str, Any]:
    """Serialize a model (schema + meta-rules) to plain JSON-able data."""
    return {
        "format": "repro-mrsl",
        "version": FORMAT_VERSION,
        "schema": [
            {"name": attr.name, "domain": list(attr.domain)}
            for attr in model.schema
        ],
        "lattices": [
            {
                "head": lattice.head_attribute,
                "meta_rules": [
                    {
                        "body": [list(item) for item in m.body],
                        "weight": m.weight,
                        "probs": [float(p) for p in m.probs],
                    }
                    for m in lattice
                ],
            }
            for lattice in model
        ],
    }


def model_from_dict(data: dict[str, Any]) -> MRSLModel:
    """Rebuild a model from :func:`model_to_dict` output."""
    if data.get("format") != "repro-mrsl":
        raise ValueError("not a repro MRSL model document")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format version {data.get('version')!r}"
        )
    schema = Schema(
        Attribute(entry["name"], entry["domain"]) for entry in data["schema"]
    )
    lattices = []
    for lat in data["lattices"]:
        head = int(lat["head"])
        meta_rules = [
            MetaRule(
                head_attribute=head,
                body=tuple((int(a), int(v)) for a, v in m["body"]),
                weight=float(m["weight"]),
                probs=np.asarray(m["probs"], dtype=np.float64),
            )
            for m in lat["meta_rules"]
        ]
        lattices.append(MRSL(head, meta_rules))
    return MRSLModel(schema, lattices)


def compiled_metadata(
    model: MRSLModel, compiled: CompiledModel | None = None
) -> dict[str, Any]:
    """Fingerprint the compiled form of every per-attribute semi-lattice.

    For each attribute: rule count, maximum body size, stacked CPD matrix
    shape, the evidence-signature attribute set, and a content digest over
    the canonical rule order (bodies, CPD bytes, weight bytes).  Two models
    with equal metadata compile to bit-identical
    :class:`~repro.core.compiled.CompiledMRSL` structures — the handshake
    :class:`~repro.exec.executors.ProcessExecutor` workers use to prove they
    rebuilt the parent's model.

    Pass an existing ``compiled`` model (e.g. a warm engine's) to avoid
    compiling every attribute a second time just for the fingerprint.
    """
    if compiled is None:
        compiled = CompiledModel(model)
    attributes = []
    for lattice in model:
        attr = lattice.head_attribute
        c = compiled[attr]
        h = hashlib.sha256()
        h.update(repr(c.bodies).encode())
        h.update(np.ascontiguousarray(c.cpds).tobytes())
        h.update(np.ascontiguousarray(c.weights).tobytes())
        attributes.append(
            {
                "attribute": model.schema[attr].name,
                "rules": len(c),
                "max_body": int(c.body_sizes.max()) if len(c) else 0,
                "cpd_shape": [int(d) for d in c.cpds.shape],
                "signature_attrs": [int(a) for a in c.signature_attrs],
                "digest": h.hexdigest(),
            }
        )
    return {"version": COMPILED_METADATA_VERSION, "attributes": attributes}


def verify_compiled_metadata(
    model: MRSLModel,
    expected: Mapping[str, Any],
    compiled: CompiledModel | None = None,
) -> None:
    """Raise :class:`ValueError` unless ``model`` compiles to ``expected``.

    Used by process-pool workers after rebuilding a model from JSON, and by
    :func:`load_model` when the saved document carries metadata.  Pass
    ``compiled`` to fingerprint existing compiled structures instead of
    recompiling.
    """
    if expected.get("version") != COMPILED_METADATA_VERSION:
        raise ValueError(
            "unsupported compiled metadata version "
            f"{expected.get('version')!r}"
        )
    actual = compiled_metadata(model, compiled)
    for mine, theirs in zip(actual["attributes"], expected["attributes"]):
        if mine != theirs:
            raise ValueError(
                f"compiled model mismatch on attribute "
                f"{theirs.get('attribute')!r}: rebuilt {mine}, "
                f"expected {theirs}"
            )
    if len(actual["attributes"]) != len(expected["attributes"]):
        raise ValueError(
            f"compiled model has {len(actual['attributes'])} attributes, "
            f"expected {len(expected['attributes'])}"
        )


def save_model(
    model: MRSLModel, path: str | Path, include_compiled: bool = True
) -> None:
    """Write the model as JSON, with compiled metadata alongside by default."""
    doc = model_to_dict(model)
    if include_compiled:
        doc["compiled"] = compiled_metadata(model)
    path = Path(path)
    path.write_text(json.dumps(doc))


def load_model(path: str | Path) -> MRSLModel:
    """Read a model previously written by :func:`save_model`.

    When the document carries compiled metadata, the freshly rebuilt model
    is validated against it, so a corrupted or hand-edited file fails
    loudly instead of serving silently different CPDs.
    """
    path = Path(path)
    doc = json.loads(path.read_text())
    model = model_from_dict(doc)
    if "compiled" in doc:
        verify_compiled_metadata(model, doc["compiled"])
    return model
