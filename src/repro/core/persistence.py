"""MRSL model persistence: learn once, serve many sessions.

The paper frames MRSL learning as an off-line process ("learning the MRSL
from the data as part of an off-line process is feasible", Section VI-B);
production use therefore needs to store the learned model.  The format is
plain JSON — schema, then per-attribute meta-rules as
``(body, weight, probs)`` triples — versioned for forward compatibility.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from ..relational.schema import Attribute, Schema
from .metarule import MetaRule
from .mrsl import MRSL, MRSLModel

__all__ = ["save_model", "load_model", "model_to_dict", "model_from_dict"]

FORMAT_VERSION = 1


def model_to_dict(model: MRSLModel) -> dict[str, Any]:
    """Serialize a model (schema + meta-rules) to plain JSON-able data."""
    return {
        "format": "repro-mrsl",
        "version": FORMAT_VERSION,
        "schema": [
            {"name": attr.name, "domain": list(attr.domain)}
            for attr in model.schema
        ],
        "lattices": [
            {
                "head": lattice.head_attribute,
                "meta_rules": [
                    {
                        "body": [list(item) for item in m.body],
                        "weight": m.weight,
                        "probs": [float(p) for p in m.probs],
                    }
                    for m in lattice
                ],
            }
            for lattice in model
        ],
    }


def model_from_dict(data: dict[str, Any]) -> MRSLModel:
    """Rebuild a model from :func:`model_to_dict` output."""
    if data.get("format") != "repro-mrsl":
        raise ValueError("not a repro MRSL model document")
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported model format version {data.get('version')!r}"
        )
    schema = Schema(
        Attribute(entry["name"], entry["domain"]) for entry in data["schema"]
    )
    lattices = []
    for lat in data["lattices"]:
        head = int(lat["head"])
        meta_rules = [
            MetaRule(
                head_attribute=head,
                body=tuple((int(a), int(v)) for a, v in m["body"]),
                weight=float(m["weight"]),
                probs=np.asarray(m["probs"], dtype=np.float64),
            )
            for m in lat["meta_rules"]
        ]
        lattices.append(MRSL(head, meta_rules))
    return MRSLModel(schema, lattices)


def save_model(model: MRSLModel, path: str | Path) -> None:
    """Write the model as JSON."""
    path = Path(path)
    path.write_text(json.dumps(model_to_dict(model)))


def load_model(path: str | Path) -> MRSLModel:
    """Read a model previously written by :func:`save_model`."""
    path = Path(path)
    return model_from_dict(json.loads(path.read_text()))
