"""Workload-driven sampling: the tuple-DAG optimization in action.

Reproduces the Section V-B story on a live workload: many incomplete tuples
related by subsumption, where the tuple DAG lets specific tuples reuse the
Gibbs samples of the general tuples that subsume them (Fig. 3 / Fig. 11).

Run:  python examples/workload_inference.py
"""

import time

import numpy as np

from repro.bayesnet import forward_sample_relation, make_network
from repro.bench import mask_relation, print_table
from repro.core import TupleDAG, learn_mrsl, workload_sampling


def main() -> None:
    rng = np.random.default_rng(0)
    net = make_network("BN9", rng)  # 6 binary attributes, crown-shaped
    print(f"Generating model: {net}")

    train = forward_sample_relation(net, 5000, rng)
    model = learn_mrsl(train, support_threshold=0.005).model
    print(f"Learned: {model}")

    # A workload of 150 incomplete tuples with 2-5 missing values each.
    test = forward_sample_relation(net, 150, rng)
    workload = list(mask_relation(test, [2, 3, 4, 5], rng))

    dag = TupleDAG(workload)
    roots = dag.roots()
    print(
        f"\nWorkload: {len(workload)} tuples, {len(dag)} distinct, "
        f"{len(roots)} DAG roots"
    )

    rows = []
    blocks_by_strategy = {}
    for strategy in ("tuple_at_a_time", "tuple_dag"):
        start = time.perf_counter()
        blocks, stats = workload_sampling(
            model,
            workload,
            num_samples=500,
            burn_in=100,
            strategy=strategy,
            rng=1,
        )
        elapsed = time.perf_counter() - start
        blocks_by_strategy[strategy] = blocks
        rows.append(
            (
                strategy,
                stats.total_draws,
                stats.shared_tuples,
                stats.promoted_tuples,
                f"{elapsed:.2f}s",
            )
        )
    print_table(
        ["strategy", "total draws", "shared", "promoted", "wall time"],
        rows,
        title="Fig 11-style comparison (500 points per tuple)",
    )

    # The two strategies estimate the same distributions: compare a tuple's
    # marginals under both.
    sample = workload[0]
    dag_block = blocks_by_strategy["tuple_dag"][0]
    base_block = blocks_by_strategy["tuple_at_a_time"][0]
    attr = dag_block.missing_names[0]
    print(f"\nAgreement check on {sample!r}, attribute {attr!r}:")
    print(f"  tuple_dag       : {dag_block.marginal(attr)}")
    print(f"  tuple_at_a_time : {base_block.marginal(attr)}")


if __name__ == "__main__":
    main()
