"""Probabilistic SPJ queries over a derived census database, session-style.

End-to-end on the new API surface: generate census-style microdata with
dropouts, open a :class:`repro.Session` (learn once, serve many), derive the
probabilistic database, then answer queries three ways — the serializable
JSON query AST, the raw lineage engine for lambda-only queries, and the
analysis helpers for cleaning triage.

Run:  python examples/census_queries.py
"""

import json

import numpy as np

from repro import Q, SelectionQuery, Session
from repro.api.config import DeriveConfig
from repro.bench import mask_relation, print_table
from repro.datasets import load_census
from repro.probdb import (
    ProbabilisticDatabase,
    TRUE,
    attribute_distribution,
    rank_blocks_by_entropy,
    top_k_worlds,
)
from repro.relational import Relation


def main() -> None:
    rng = np.random.default_rng(11)
    data, net = load_census(10_000, rng=rng)
    train, test = data.split(0.97, rng)
    test = Relation.from_codes(test.schema, test.codes[:120])
    masked = mask_relation(test, [1, 2], rng)
    combined = Relation(train.schema, list(train) + list(masked))
    print(f"Census input: {combined}")

    # One typed config, one session: the model is learned once and every
    # derive/infer/query call below reuses the warm inference engine.
    session = Session(
        DeriveConfig(support_threshold=0.002, num_samples=800, burn_in=100, seed=1)
    )
    db = session.derive(combined).database
    print(f"Derived: {len(db.blocks)} blocks over {len(db.certain)} certain rows\n")

    # Q1: probabilistic projection — expected income mix across the DB.
    income = attribute_distribution(db, "income")
    print_table(
        ["income", "expected share"],
        [(v, round(p, 4)) for v, p in income],
        title="Q1: expected income distribution (certain + uncertain rows)",
    )

    # Q2: the same query two ways — as a serializable spec (what a remote
    # client would POST to `repro serve`) and through the raw engine.  The
    # lineage evaluation is exact where naive independence math is wrong.
    spec = SelectionQuery(
        where=Q.and_(Q.eq("income", "high"), Q.eq("wealth", "high")),
        project=("age",),
    )
    print(f"Q2 as JSON: {json.dumps(spec.to_dict())}")
    results = session.query(spec)
    print_table(
        ["age", "P(some high-income, high-wealth row)"],
        [(t.values[0], round(t.probability, 4)) for t in results],
        title="Q2: lineage-exact selection + projection (JSON query spec)",
    )

    # Q2b: lambda-only refinement — restrict to *uncertain* rows (rows whose
    # lineage is a real block choice), which the wire format cannot express.
    engine = session.query_engine()
    uncertain = [r for r in engine.scan() if r.event is not TRUE]
    rows = engine.select(
        uncertain,
        lambda r: r.value("income") == "high" and r.value("wealth") == "high",
    )
    results = engine.evaluate(engine.project(rows, ["age"]))
    print_table(
        ["age", "P(some uncertain high-income, high-wealth row)"],
        [(t.values[0], round(t.probability, 4)) for t in results],
        title="Q2b: the same, over uncertain rows only (lambda path)",
    )

    # Q3: cleaning triage — the five most uncertain predictions.
    ranked = rank_blocks_by_entropy(db)[:5]
    print_table(
        ["entropy (nats)", "tuple"],
        [(round(h, 3), repr(db.blocks[i].base)) for h, i in ranked],
        title="Q3: most uncertain blocks (review these first)",
    )

    # Q4: the three most probable completions of the whole uncertain set
    # would be astronomically many worlds; restrict to the 4 most uncertain
    # blocks and enumerate their best joint repairs.
    top_blocks = [db.blocks[i] for _, i in ranked[:4]]
    small = ProbabilisticDatabase(db.schema, [], top_blocks)
    worlds = top_k_worlds(small, 3)
    print_table(
        ["rank", "probability", "first repaired tuple"],
        [
            (i + 1, f"{w.probability:.2e}", repr(w.tuples[0]))
            for i, w in enumerate(worlds)
        ],
        title="Q4: top-3 joint repairs of the 4 most uncertain tuples",
    )


if __name__ == "__main__":
    main()
