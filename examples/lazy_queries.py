"""Lazy, query-targeted derivation (the paper's future-work Section VIII).

Eager derivation pays Gibbs-sampling cost for *every* incomplete tuple up
front.  The lazy deriver materializes a tuple's distribution only when a
query actually needs it — and skips inference entirely when a tuple's known
values already decide the predicate.  This demonstrates the "partial
materialization of probability values" and "lazy, query-targeted learning
and inference" directions the paper proposes.

Run:  python examples/lazy_queries.py
"""

import time

import numpy as np

from repro.bayesnet import forward_sample_relation, make_network
from repro.bench import mask_relation, print_table
from repro.core import LazyDeriver, derive_probabilistic_database
from repro.relational import Relation


def main() -> None:
    rng = np.random.default_rng(1)
    net = make_network("BN9", rng)
    data = forward_sample_relation(net, 6000, rng)
    train, test = data.split(0.9, rng)
    test = Relation.from_codes(test.schema, test.codes[:400])
    masked = mask_relation(test, [1, 2, 3], rng)
    combined = Relation(train.schema, list(train) + list(masked))
    print(f"Input: {combined}")

    # A selective query: x0 is KNOWN for most tuples, so the predicate is
    # decided without inference for the bulk of the workload.
    def predicate(t):
        return t.value("x0") == "v1" and t.value("x1") == "v1"

    t0 = time.perf_counter()
    lazy = LazyDeriver(
        combined, support_threshold=0.005,
        num_samples=500, burn_in=100, rng=2,
    )
    learn_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    lazy_count = lazy.expected_count(predicate)
    lazy_time = time.perf_counter() - t0

    t0 = time.perf_counter()
    eager = derive_probabilistic_database(
        combined, support_threshold=0.005,
        num_samples=500, burn_in=100, rng=2,
    )
    from repro.probdb import expected_count

    eager_count = expected_count(eager.database, predicate)
    eager_time = time.perf_counter() - t0

    print_table(
        ["approach", "answer", "blocks materialized", "time"],
        [
            (
                "lazy (query-targeted)",
                round(lazy_count, 2),
                f"{lazy.materialized} / {combined.num_incomplete}",
                f"{learn_time + lazy_time:.2f}s",
            ),
            (
                "eager (derive everything)",
                round(eager_count, 2),
                f"{len(eager.database.blocks)} / {combined.num_incomplete}",
                f"{eager_time:.2f}s",
            ),
        ],
        title="Expected count of x0=v1 ^ x1=v1",
    )
    print(
        "\nThe lazy deriver only sampled tuples whose missing values could "
        "flip the predicate;\nanswers agree up to Gibbs sampling noise."
    )


if __name__ == "__main__":
    main()
