"""Scientific-data cleaning: bucketed continuous sensors with dropouts.

The paper's introduction cites noisy/missing experimental results in
scientific data management.  This example simulates a sensor deployment
whose continuous readings are bucketed into discrete sub-ranges (Section
II's prescription for continuous attributes), with correlated channels and
random dropouts, then derives a probabilistic database and imputes the most
probable world.

Run:  python examples/sensor_cleaning.py
"""

import numpy as np

from repro.bench import print_table
from repro.core import derive_probabilistic_database
from repro.relational import (
    MISSING,
    Attribute,
    Relation,
    Schema,
    equal_width_buckets,
)


def simulate_readings(n: int, rng: np.random.Generator):
    """Correlated (temperature, humidity, light, occupancy) readings."""
    temperature = rng.normal(22.0, 4.0, size=n)
    # Humidity anti-correlates with temperature; light correlates.
    humidity = 70.0 - 1.8 * (temperature - 22.0) + rng.normal(0, 4.0, size=n)
    light = 300.0 + 40.0 * (temperature - 22.0) + rng.normal(0, 60.0, size=n)
    occupancy = (light + rng.normal(0, 80.0, size=n) > 320.0).astype(int)
    return temperature, humidity, light, occupancy


def main() -> None:
    rng = np.random.default_rng(3)
    n = 12_000
    temperature, humidity, light, occupancy = simulate_readings(n, rng)

    # Discretize the continuous channels into sub-range buckets.
    t_buckets = equal_width_buckets("temperature", temperature, 4)
    h_buckets = equal_width_buckets("humidity", humidity, 4)
    l_buckets = equal_width_buckets("light", light, 4)
    schema = Schema(
        [
            t_buckets.to_attribute(),
            h_buckets.to_attribute(),
            l_buckets.to_attribute(),
            Attribute("occupancy", ["empty", "occupied"]),
        ]
    )
    values = list(
        zip(
            t_buckets.discretize_many(temperature),
            h_buckets.discretize_many(humidity),
            l_buckets.discretize_many(light),
            ["occupied" if o else "empty" for o in occupancy],
        )
    )

    # Drop 12% of the values in the last 1500 rows (sensor outages); the
    # first rows stay complete and train the model.
    rows = [list(row) for row in values]
    truth = {}
    for i in range(n - 1500, n):
        for col in range(4):
            if rng.random() < 0.12:
                truth[(i, col)] = rows[i][col]
                rows[i][col] = MISSING
    relation = Relation.from_rows(schema, rows)
    print(f"Input: {relation}")
    print(f"Dropped readings: {len(truth)}")

    result = derive_probabilistic_database(
        relation,
        support_threshold=0.005,
        num_samples=800,
        burn_in=100,
        rng=4,
    )
    print(f"Model: {result.model}")

    # Impute with the most probable world and measure recovery accuracy.
    recovered = 0
    per_attr_hits = {name: [0, 0] for name in schema.names}
    imputed_by_base = {
        b.base: b.most_probable_completion() for b in result.database.blocks
    }
    incomplete_rows = [
        (i, relation[i]) for i in range(n) if not relation[i].is_complete
    ]
    for i, t in incomplete_rows:
        imputed = imputed_by_base[t]
        for col in t.missing_positions:
            name = schema[col].name
            per_attr_hits[name][1] += 1
            if imputed.values()[col] == truth[(i, col)]:
                per_attr_hits[name][0] += 1
                recovered += 1

    print_table(
        ["attribute", "recovered", "dropped", "accuracy"],
        [
            (name, hits, total, f"{hits / total:.0%}" if total else "-")
            for name, (hits, total) in per_attr_hits.items()
        ],
        title="Most-probable-world imputation accuracy",
    )
    print(
        f"\nOverall: {recovered}/{len(truth)} "
        f"({recovered / len(truth):.0%}) of dropped readings recovered "
        "exactly (bucket-level)."
    )


if __name__ == "__main__":
    main()
