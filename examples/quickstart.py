"""Quickstart: derive a probabilistic database from the paper's Fig. 1 data.

Builds the incomplete matchmaking relation from the paper's running example,
learns an MRSL model from its 8 complete tuples, infers a probability
distribution for every incomplete tuple, and answers a probabilistic query.

Run:  python examples/quickstart.py
"""

from repro import (
    Relation,
    Schema,
    derive_probabilistic_database,
    expected_count,
)

# The relation of Fig. 1 — "?" marks missing values.
SCHEMA = Schema.from_domains(
    {
        "age": ["20", "30", "40"],
        "edu": ["HS", "BS", "MS"],
        "inc": ["50K", "100K"],
        "nw": ["100K", "500K"],
    }
)
ROWS = [
    ["20", "HS", "?", "?"],
    ["20", "BS", "50K", "100K"],
    ["20", "?", "50K", "?"],
    ["20", "HS", "100K", "500K"],
    ["20", "?", "?", "?"],
    ["20", "HS", "50K", "100K"],
    ["20", "HS", "50K", "500K"],
    ["?", "HS", "?", "?"],
    ["30", "BS", "100K", "100K"],
    ["30", "?", "100K", "?"],
    ["30", "HS", "?", "?"],
    ["30", "MS", "?", "?"],
    ["40", "BS", "100K", "100K"],
    ["40", "HS", "?", "?"],
    ["40", "BS", "50K", "500K"],
    ["40", "HS", "?", "500K"],
    ["40", "HS", "100K", "500K"],
]


def main() -> None:
    relation = Relation.from_rows(SCHEMA, ROWS)
    print(f"Input: {relation}")

    # One call: learn the MRSL ensemble from the complete part, run
    # Algorithm 2 for single-missing tuples and workload-driven Gibbs
    # sampling (Algorithm 3) for multi-missing ones.
    result = derive_probabilistic_database(
        relation,
        support_threshold=0.1,
        num_samples=2000,
        burn_in=200,
        rng=0,
    )
    db = result.database
    print(f"Learned model: {result.model}")
    print(f"Derived: {db}\n")

    # Show the block for t12 <30, MS, ?, ?> — the paper's call-out example.
    t12 = next(
        b for b in db.blocks
        if b.base.value("age") == "30" and b.base.value("edu") == "MS"
    )
    print("Block for t12 <age=30, edu=MS, inc=?, nw=?>:")
    for completed, prob in t12.completions():
        print(f"  {completed}  p={prob:.3f}")

    # Probabilistic queries run extensionally over the blocks.
    rich = expected_count(db, lambda t: t.value("nw") == "500K")
    print(f"\nExpected number of profiles with net worth 500K: {rich:.2f}")
    young_rich = expected_count(
        db, lambda t: t.value("age") == "20" and t.value("nw") == "500K"
    )
    print(f"Expected number aged 20 with net worth 500K:      {young_rich:.2f}")


if __name__ == "__main__":
    main()
