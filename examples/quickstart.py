"""Quickstart: the Session API on the paper's Fig. 1 data.

Builds the incomplete matchmaking relation from the paper's running example,
opens a :class:`repro.Session` with a typed, JSON-round-trippable
:class:`repro.DeriveConfig`, derives a probability distribution for every
incomplete tuple, and answers probabilistic queries — both with the
serializable query AST (``Q``) and with the extensional helpers.

Run:  python examples/quickstart.py
"""

import json

from repro import (
    DeriveConfig,
    Q,
    Relation,
    Schema,
    SelectionQuery,
    Session,
    expected_count,
)

# The relation of Fig. 1 — "?" marks missing values.
SCHEMA = Schema.from_domains(
    {
        "age": ["20", "30", "40"],
        "edu": ["HS", "BS", "MS"],
        "inc": ["50K", "100K"],
        "nw": ["100K", "500K"],
    }
)
ROWS = [
    ["20", "HS", "?", "?"],
    ["20", "BS", "50K", "100K"],
    ["20", "?", "50K", "?"],
    ["20", "HS", "100K", "500K"],
    ["20", "?", "?", "?"],
    ["20", "HS", "50K", "100K"],
    ["20", "HS", "50K", "500K"],
    ["?", "HS", "?", "?"],
    ["30", "BS", "100K", "100K"],
    ["30", "?", "100K", "?"],
    ["30", "HS", "?", "?"],
    ["30", "MS", "?", "?"],
    ["40", "BS", "100K", "100K"],
    ["40", "HS", "?", "?"],
    ["40", "BS", "50K", "500K"],
    ["40", "HS", "?", "500K"],
    ["40", "HS", "100K", "500K"],
]


def main() -> None:
    relation = Relation.from_rows(SCHEMA, ROWS)
    print(f"Input: {relation}")

    # One config object carries every pipeline knob and round-trips through
    # JSON — the same dict works in a file, over a wire, or in a log.
    config = DeriveConfig(
        support_threshold=0.1, num_samples=2000, burn_in=200, seed=0
    )
    config = DeriveConfig.from_dict(config.to_dict())  # JSON round-trip
    print(f"Config: {json.dumps(config.to_dict())}\n")

    # The session learns the MRSL once, keeps a warm inference engine, and
    # registers the derived database for querying.
    session = Session(config)
    result = session.derive(relation)
    db = result.database
    print(f"Learned model: {result.model}")
    print(f"Derived: {db}\n")

    # Show the block for t12 <30, MS, ?, ?> — the paper's call-out example.
    t12 = next(
        b for b in db.blocks
        if b.base.value("age") == "30" and b.base.value("edu") == "MS"
    )
    print("Block for t12 <age=30, edu=MS, inc=?, nw=?>:")
    for completed, prob in t12.completions():
        print(f"  {completed}  p={prob:.3f}")

    # Queries are data, not lambdas: this spec serializes to JSON, crosses
    # any wire, and evaluates exactly via the lineage engine.
    spec = SelectionQuery(where=Q.eq("nw", "500K"), project=("age",))
    print(f"\nQuery spec: {json.dumps(spec.to_dict())}")
    for t in session.query(spec):
        print(f"  age={t.values[0]}  P(some such profile)={t.probability:.3f}")

    # Extensional helpers still work over the derived database.
    rich = expected_count(db, lambda t: t.value("nw") == "500K")
    print(f"\nExpected number of profiles with net worth 500K: {rich:.2f}")
    young_rich = expected_count(
        db, lambda t: t.value("age") == "20" and t.value("nw") == "500K"
    )
    print(f"Expected number aged 20 with net worth 500K:      {young_rich:.2f}")


if __name__ == "__main__":
    main()
