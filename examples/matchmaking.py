"""Matchmaking-site scenario: accuracy of derived distributions at scale.

The paper's introduction motivates MRSL with an eHarmony-style profile
relation.  Here we build the full loop the evaluation framework uses:

1. define a ground-truth Bayesian network over five profile attributes
   (age -> income -> net worth, education -> income, age -> education);
2. forward-sample 20,000 complete profiles, keep 10% aside as a test set;
3. learn the MRSL model from the training profiles;
4. mask 1-3 attribute values per test profile (uniformly), derive the
   probabilistic database;
5. score the derived distributions against the network's exact posteriors.

Run:  python examples/matchmaking.py
"""

import numpy as np

from repro.bayesnet import BayesianNetwork, Variable
from repro.bench import (
    aggregate,
    mask_relation,
    print_table,
    random_guess_top1,
    score_prediction,
    true_joint_posterior,
)
from repro.core import derive_probabilistic_database
from repro.relational import Relation


def profile_network() -> BayesianNetwork:
    """A hand-crafted ground truth over matchmaking profile attributes."""
    rng = np.random.default_rng(20110411)  # ICDE 2011's opening day

    def rows(shape, k):
        return rng.dirichlet(np.full(k, 0.4), size=int(np.prod(shape))).reshape(
            tuple(shape) + (k,)
        )

    age = Variable("age", 3, (), rng.dirichlet(np.full(3, 2.0)))
    edu = Variable("edu", 3, ("age",), rows([3], 3))
    inc = Variable("inc", 2, ("age", "edu"), rows([3, 3], 2))
    nw = Variable("nw", 2, ("inc",), rows([2], 2))
    region = Variable("region", 4, (), rng.dirichlet(np.full(4, 1.0)))
    return BayesianNetwork([age, edu, inc, nw, region])


def main() -> None:
    rng = np.random.default_rng(7)
    net = profile_network()
    print(f"Ground truth: {net}")

    from repro.bayesnet import forward_sample_relation

    data = forward_sample_relation(net, 20_000, rng)
    train, test = data.split(0.9, rng)
    test = Relation.from_codes(test.schema, test.codes[:300])
    print(f"Training profiles: {len(train)}, test profiles: {len(test)}")

    # Mask 1-3 attributes per test profile, then merge with the training
    # data so one relation holds both Rc and Ri, as in the paper's input.
    masked = mask_relation(test, [1, 2, 3], rng)
    combined = Relation(train.schema, list(train) + list(masked))

    result = derive_probabilistic_database(
        combined,
        support_threshold=0.002,
        num_samples=1500,
        burn_in=150,
        rng=1,
    )
    print(f"Model: {result.model}")
    print(f"Derived: {result.database}")
    print(
        "Sampling cost: "
        f"{result.sampling_stats.total_draws} draws, "
        f"{result.sampling_stats.shared_tuples} tuples served by the tuple DAG"
    )

    # Score each block against the exact posterior of the generating BN.
    blocks = {b.base: b for b in result.database.blocks}
    scores_by_missing: dict[int, list] = {1: [], 2: [], 3: []}
    guess_floor: dict[int, list] = {1: [], 2: [], 3: []}
    for t in masked:
        true = true_joint_posterior(net, t)
        block = blocks[t]
        scores_by_missing[t.num_missing].append(
            score_prediction(true, block.distribution)
        )
        guess_floor[t.num_missing].append(random_guess_top1(t))

    rows = []
    for k in (1, 2, 3):
        if not scores_by_missing[k]:
            continue
        agg = aggregate(scores_by_missing[k])
        rows.append(
            (
                k,
                agg.count,
                round(agg.mean_kl, 4),
                f"{agg.top1_accuracy:.0%}",
                f"{np.mean(guess_floor[k]):.0%}",
            )
        )
    print_table(
        ["missing attrs", "tuples", "mean KL", "top-1", "random floor"],
        rows,
        title="Derived-distribution accuracy vs exact posterior",
    )


if __name__ == "__main__":
    main()
