"""Unit tests for Algorithm 2 (single-attribute ensemble inference)."""

import numpy as np
import pytest

from repro.core import (
    VoterChoice,
    VotingScheme,
    infer_all_single_missing,
    infer_single,
    learn_mrsl,
)
from repro.relational import Relation, make_tuple


@pytest.fixture
def model(fig1_relation):
    return learn_mrsl(fig1_relation, support_threshold=0.1).model


@pytest.fixture
def t1(fig1_schema):
    # Paper's Section I-B example: <age=?, edu=HS, inc=50K, nw=500K>.
    return make_tuple(fig1_schema, {"edu": "HS", "inc": "50K", "nw": "500K"})


class TestBasics:
    def test_returns_distribution_over_domain(self, model, t1, fig1_schema):
        cpd = infer_single(t1, model["age"])
        assert cpd.outcomes == fig1_schema["age"].domain
        assert sum(cpd.probs) == pytest.approx(1.0)

    def test_all_four_methods_give_valid_cpds(self, model, t1):
        for choice in VoterChoice:
            for scheme in VotingScheme:
                cpd = infer_single(t1, model["age"], choice, scheme)
                assert sum(cpd.probs) == pytest.approx(1.0)
                assert all(p >= 0 for p in cpd.probs)

    def test_string_arguments_accepted(self, model, t1):
        cpd = infer_single(t1, model["age"], "best", "weighted")
        assert sum(cpd.probs) == pytest.approx(1.0)

    def test_bad_method_rejected(self, model, t1):
        with pytest.raises(ValueError):
            infer_single(t1, model["age"], "bogus", "averaged")

    def test_known_head_attribute_rejected(self, model, fig1_schema):
        t = make_tuple(fig1_schema, {"age": "20", "edu": "HS"})
        with pytest.raises(ValueError, match="already assigns"):
            infer_single(t, model["age"])


class TestVotingSemantics:
    def test_all_vs_best_differ_when_lattice_is_deep(self, model, t1):
        all_cpd = infer_single(t1, model["age"], VoterChoice.ALL, VotingScheme.AVERAGED)
        best_cpd = infer_single(t1, model["age"], VoterChoice.BEST, VotingScheme.AVERAGED)
        assert not np.allclose(all_cpd.probs, best_cpd.probs)

    def test_all_averaged_is_mean_of_matches(self, model, t1, fig1_schema):
        lattice = model["age"]
        matches = lattice.matching(t1)
        expected = np.mean([m.probs for m in matches], axis=0)
        cpd = infer_single(t1, lattice, VoterChoice.ALL, VotingScheme.AVERAGED)
        assert np.allclose(cpd.probs, expected)

    def test_weighted_uses_supports(self, model, t1):
        lattice = model["age"]
        matches = lattice.matching(t1)
        w = np.array([m.weight for m in matches])
        w = w / w.sum()
        expected = w @ np.vstack([m.probs for m in matches])
        cpd = infer_single(t1, lattice, VoterChoice.ALL, VotingScheme.WEIGHTED)
        assert np.allclose(cpd.probs, expected)

    def test_single_voter_makes_methods_agree(self, fig1_relation, fig1_schema):
        # With a very high threshold only the root rules survive, so all
        # four methods collapse to the same estimate.
        model = learn_mrsl(fig1_relation, support_threshold=0.6).model
        t = make_tuple(fig1_schema, {"edu": "HS"})
        cpds = [
            infer_single(t, model["age"], c, s).probs
            for c in VoterChoice
            for s in VotingScheme
        ]
        for other in cpds[1:]:
            assert np.allclose(cpds[0], other)

    def test_uniform_fallback_when_no_voters(self, fig1_schema):
        # An empty training relation produces empty lattices; inference
        # falls back to uniform instead of crashing.
        model = learn_mrsl(Relation(fig1_schema), support_threshold=0.1).model
        t = make_tuple(fig1_schema, {"edu": "HS"})
        cpd = infer_single(t, model["age"])
        assert np.allclose(cpd.probs, 1 / 3)


class TestBatch:
    def test_batch_matches_individual(self, model, fig1_schema, t1):
        t2 = make_tuple(fig1_schema, {"age": "20", "edu": "HS", "nw": "100K"})
        # t2 misses inc; run batch over mixed missing attributes.
        out = infer_all_single_missing([t1, t2], model)
        assert np.allclose(out[0].probs, infer_single(t1, model["age"]).probs)
        assert np.allclose(out[1].probs, infer_single(t2, model["inc"]).probs)

    def test_batch_rejects_multi_missing(self, model, fig1_schema):
        t = make_tuple(fig1_schema, {"age": "20"})
        with pytest.raises(ValueError, match="exactly one"):
            infer_all_single_missing([t], model)


class TestPaperNumbers:
    def test_fig2_cpd_for_edu_hs(self, fig1_relation, fig1_schema):
        """P(age | edu=HS) on the actual Fig. 1 points.

        The paper's Fig. 2 numbers ([0.15, 0.70, 0.15]) come from the
        illustrative supports quoted in Section II, not from the 8 points of
        Fig. 1; on the real points (t4, t6, t7 at age=20 and t17 at age=40,
        out of 4 HS points) the estimate is [0.75, 0.0, 0.25] before
        smoothing.  We check the mined values.
        """
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        lattice = model["age"]
        edu = fig1_schema.index("edu")
        hs = fig1_schema["edu"].code("HS")
        m = lattice.get(((edu, hs),))
        assert m is not None
        assert m.probs[0] == pytest.approx(0.75, abs=0.01)
        assert m.probs[2] == pytest.approx(0.25, abs=0.01)
