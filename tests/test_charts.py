"""Unit tests for the ASCII chart renderer."""

import pytest

from repro.bench import ascii_chart


class TestAsciiChart:
    def test_basic_render(self):
        out = ascii_chart(
            {"up": [(0, 0), (1, 1), (2, 2)], "flat": [(0, 1), (2, 1)]},
            width=20,
            height=6,
            x_label="size",
            y_label="time",
        )
        lines = out.splitlines()
        assert lines[0].startswith("time")
        assert any("* = up" in line for line in lines)
        assert any("o = flat" in line for line in lines)
        assert " size: 0 .. 2" in out

    def test_markers_placed_at_extremes(self):
        out = ascii_chart({"s": [(0, 0), (10, 10)]}, width=11, height=5)
        lines = out.splitlines()
        # Bottom-left and top-right of the canvas carry the marker.
        assert lines[1][1 + 10] == "*"   # top row, rightmost column
        assert lines[5][1 + 0] == "*"    # bottom row, leftmost column

    def test_constant_series_handled(self):
        out = ascii_chart({"c": [(1, 5), (2, 5)]}, width=12, height=4)
        assert "*" in out

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"empty": []})

    def test_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({"s": [(0, 0)]}, width=5, height=2)

    def test_many_series_get_distinct_markers(self):
        series = {f"s{i}": [(i, i)] for i in range(5)}
        out = ascii_chart(series)
        for marker in "*o+x#":
            assert f"{marker} = " in out
