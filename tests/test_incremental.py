"""Tests for the update-aware incremental derivation runtime.

The acceptance properties:

* after a ChangeSet touching k of N tuples, a delta re-derive is
  **bit-identical** to a from-scratch derive of the updated relation under
  the same model and base seed — for serial, thread, and process executors;
* the planner replans only shards whose lineage the ChangeSet touched:
  everything else is carried over verbatim and shows up in
  ``ExecReport.carried_over``;
* the same guarantee flows through ``Session.apply_updates``, the
  ``/v1/update`` service endpoint (sync and async), and ``repro update``
  on the CLI.
"""

import numpy as np
import pytest

from repro.api.config import DeriveConfig
from repro.api.service import (
    InferenceService,
    ServiceError,
    UpdateRequest,
    UpdateResponse,
)
from repro.api.session import Session
from repro.bench.masking import mask_relation
from repro.core import derive_probabilistic_database
from repro.core.lazy import LazyDeriver
from repro.core.learning import learn_mrsl
from repro.datasets.census import load_census
from repro.exec import multi_batch_for
from repro.probdb import CarryStore
from repro.relational import ChangeSet, Relation, make_tuple, retract, update
from tests.conftest import FIG1_ROWS
from tests.test_exec import assert_identical_databases

FIG1_SCHEMA = {
    "age": ["20", "30", "40"],
    "edu": ["HS", "BS", "MS"],
    "inc": ["50K", "100K"],
    "nw": ["100K", "500K"],
}
CENSUS_CONFIG = DeriveConfig(
    support_threshold=0.02, num_samples=30, burn_in=5, seed=11
)


@pytest.fixture(scope="module")
def census_relation():
    """A census sample mixing complete, single- and multi-missing tuples."""
    rng = np.random.default_rng(17)
    train, _ = load_census(220, rng)
    test, _ = load_census(24, rng)
    masked = mask_relation(test, (1, 1, 1, 2), rng)
    return Relation(train.schema, list(train) + list(masked))


@pytest.fixture(scope="module")
def census_model(census_relation):
    return learn_mrsl(census_relation, support_threshold=0.02).model


@pytest.fixture(scope="module")
def census_baseline(census_relation, census_model):
    return derive_probabilistic_database(
        census_relation, config=CENSUS_CONFIG, model=census_model
    )


def _single_missing_indices(relation, k=2):
    """Row indices of the first ``k`` single-missing tuples."""
    out = [
        i for i, t in enumerate(relation)
        if t.num_missing == 1
    ]
    assert len(out) >= k
    return out[:k]


@pytest.fixture(scope="module")
def census_updated(census_relation):
    """The census relation after a ChangeSet touching 2 single-missing rows.

    Only incomplete rows change (and they stay incomplete), so the complete
    part — hence a re-learned model — is untouched too.
    """
    idx = _single_missing_indices(census_relation)
    ops = []
    for i in idx:
        t = census_relation[i]
        attr = next(
            a.name for p, a in enumerate(t.schema)
            if p not in t.missing_positions
        )
        current = t.value(attr)
        other = next(v for v in t.schema[attr].domain if v != current)
        ops.append(update(i, {attr: other}, source="editor"))
    updated = census_relation.copy()
    outcome = updated.apply_changeset(ChangeSet(ops))
    assert len(outcome.updated) == len(idx)
    return updated


# -- core delta derivation ---------------------------------------------------


class TestDeltaDerive:
    def test_delta_is_bit_identical_to_from_scratch(
        self, census_updated, census_model, census_baseline
    ):
        scratch = derive_probabilistic_database(
            census_updated,
            config=CENSUS_CONFIG,
            model=census_model,
            rng=census_baseline.base_seed,
        )
        delta = derive_probabilistic_database(
            census_updated, config=CENSUS_CONFIG, previous=census_baseline
        )
        assert_identical_databases(delta.database, scratch.database)
        assert delta.model is census_baseline.model
        assert delta.base_seed == census_baseline.base_seed

    def test_only_dirty_shards_replan(
        self, census_relation, census_updated, census_baseline
    ):
        delta = derive_probabilistic_database(
            census_updated, config=CENSUS_CONFIG, previous=census_baseline
        )
        report = delta.exec_report
        # Two single-missing tuples were touched; everything else carried.
        workload = census_updated.num_incomplete
        assert report.carried_over > 0
        assert report.carried_tuples == workload - 2
        assert report.num_shards >= 1  # only the dirty shards executed
        full = census_baseline.exec_report
        assert report.num_shards < full.num_shards + full.carried_over
        carried_rows = [t for t in report.timings if t.carried]
        assert len(carried_rows) == report.carried_over
        assert all(t.worker == "carry" and t.elapsed == 0.0 for t in carried_rows)

    def test_full_policy_gives_the_same_database(
        self, census_updated, census_baseline
    ):
        delta = derive_probabilistic_database(
            census_updated, config=CENSUS_CONFIG, previous=census_baseline
        )
        full = derive_probabilistic_database(
            census_updated,
            config=CENSUS_CONFIG,
            previous=census_baseline,
            update_policy="full",
        )
        assert_identical_databases(delta.database, full.database)
        assert full.exec_report.carried_over == 0

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_delta_equivalence_across_executors(
        self, census_updated, census_model, census_baseline, executor
    ):
        scratch = derive_probabilistic_database(
            census_updated,
            config=CENSUS_CONFIG,
            model=census_model,
            rng=census_baseline.base_seed,
        )
        delta = derive_probabilistic_database(
            census_updated,
            config=CENSUS_CONFIG,
            previous=census_baseline,
            executor=executor,
            workers=1 if executor == "serial" else 3,
        )
        assert_identical_databases(delta.database, scratch.database)

    def test_retract_and_insert_flow_through(self, fig1_relation):
        config = DeriveConfig(
            support_threshold=0.1, num_samples=60, burn_in=10, seed=2
        )
        baseline = derive_probabilistic_database(fig1_relation, config=config)
        updated = fig1_relation.copy()
        updated.apply_changeset(ChangeSet([retract(0)]))
        scratch = derive_probabilistic_database(
            updated, config=config, model=baseline.model,
            rng=baseline.base_seed,
        )
        delta = derive_probabilistic_database(
            updated, config=config, previous=baseline
        )
        assert_identical_databases(delta.database, scratch.database)

    def test_bad_update_policy_rejected(self, fig1_relation):
        config = DeriveConfig(support_threshold=0.1, seed=2)
        baseline = derive_probabilistic_database(fig1_relation, config=config)
        with pytest.raises(ValueError, match="update_policy"):
            derive_probabilistic_database(
                fig1_relation,
                config=config,
                previous=baseline,
                update_policy="lazy",
            )


# -- the carry store ---------------------------------------------------------


class TestCarryStore:
    def test_unchanged_workload_carries_everything(
        self, census_relation, census_baseline
    ):
        batch = multi_batch_for(CENSUS_CONFIG)
        store = CarryStore.from_database(
            census_baseline.database, census_baseline.base_seed, batch
        )
        workload = list(census_relation.incomplete_part())
        workload.sort(key=lambda t: t.num_missing > 1)
        split = store.split(workload, batch)
        assert split.num_carried_tuples == len(workload)
        assert split.num_dirty_tuples == 0
        assert not split.dirty_single and not split.dirty_multi

    def test_touched_single_is_dirty_alone(
        self, census_relation, census_baseline
    ):
        batch = multi_batch_for(CENSUS_CONFIG)
        store = CarryStore.from_database(
            census_baseline.database, census_baseline.base_seed, batch
        )
        workload = list(census_relation.incomplete_part())
        workload.sort(key=lambda t: t.num_missing > 1)
        target = next(i for i, t in enumerate(workload) if t.num_missing == 1)
        t = workload[target]
        attr = next(
            a.name for p, a in enumerate(t.schema)
            if p not in t.missing_positions
        )
        other = next(v for v in t.schema[attr].domain if v != t.value(attr))
        vals = list(t.values())
        vals[t.schema.index(attr)] = other
        workload[target] = make_tuple(t.schema, vals)
        split = store.split(workload, batch)
        assert split.num_dirty_tuples == 1
        assert [i for i, _ in split.dirty_single] == [target]

    def test_complete_tuples_rejected(self, census_relation, census_baseline):
        store = CarryStore.from_database(
            census_baseline.database, census_baseline.base_seed
        )
        with pytest.raises(ValueError, match="complete tuples"):
            store.split(list(census_relation.complete_part())[:1])


# -- lazy deriver cache ------------------------------------------------------


class TestLazyCache:
    CONFIG = dict(
        support_threshold=0.1, num_samples=40, burn_in=5, rng=4
    )

    def test_cache_info_counts_hits_misses(self, fig1_relation):
        deriver = LazyDeriver(fig1_relation, **self.CONFIG)
        info = deriver.cache_info()
        assert info == (0, 0, 0, 0)
        t = next(iter(fig1_relation.incomplete_part()))
        deriver.block(t)
        assert deriver.cache_info().misses == 1
        deriver.block(t)
        info = deriver.cache_info()
        assert info.hits == 1 and info.misses == 1 and info.size == 1

    def test_prefetch_counts_cached_as_hits(self, fig1_relation):
        deriver = LazyDeriver(fig1_relation, **self.CONFIG)
        incomplete = list(fig1_relation.incomplete_part())
        deriver.prefetch(incomplete)
        first = deriver.cache_info()
        assert first.misses == len(set(incomplete))
        deriver.prefetch(incomplete)
        again = deriver.cache_info()
        assert again.hits == first.hits + len(incomplete)
        assert again.misses == first.misses

    def test_evict_is_targeted(self, fig1_relation):
        deriver = LazyDeriver(fig1_relation, **self.CONFIG)
        incomplete = list(fig1_relation.incomplete_part())
        deriver.prefetch(incomplete)
        size = deriver.cache_info().size
        removed = deriver.evict(incomplete[:2])
        assert removed == 2
        info = deriver.cache_info()
        assert info.evictions == 2 and info.size == size - 2
        # Evicting an absent tuple is a no-op, not an error.
        assert deriver.evict(incomplete[:2]) == 0

    def test_apply_changeset_evicts_touched_blocks(self, fig1_relation):
        deriver = LazyDeriver(fig1_relation.copy(), **self.CONFIG)
        incomplete = list(fig1_relation.incomplete_part())
        deriver.prefetch(incomplete)
        size = deriver.cache_info().size
        # Touch one incomplete row's known cell; its block must go.
        target = next(
            i for i, t in enumerate(fig1_relation) if t.num_missing == 1
        )
        t = fig1_relation[target]
        attr = next(
            a.name for p, a in enumerate(t.schema)
            if p not in t.missing_positions
        )
        other = next(v for v in t.schema[attr].domain if v != t.value(attr))
        removed = deriver.apply_changeset(
            ChangeSet([update(target, {attr: other})])
        )
        assert removed >= 1
        assert deriver.cache_info().size == size - removed
        assert len(deriver.relation.update_log) == 1
        # The next access re-derives against the updated table.
        new_t = deriver.relation[target]
        block = deriver.block(new_t)
        assert block.base == new_t


# -- session and service -----------------------------------------------------


CONFIG = {"support_threshold": 0.1, "num_samples": 200, "burn_in": 20, "seed": 0}
CHANGES = {
    "ops": [{"op": "update", "index": 15, "set": {"age": "30"}, "source": "hr"}]
}


class TestSessionUpdates:
    def test_apply_updates_matches_full_rederive(self):
        session = Session(DeriveConfig(**CONFIG))
        relation = Relation.from_rows(_fig1_schema(), FIG1_ROWS)
        baseline = session.derive(relation)
        updated = session.apply_updates(CHANGES)
        assert updated.policy == "delta"
        assert updated.outcome.updated == (15,)
        # The session's stored relation took the write...
        assert session.relation()[15].value("age") == "30"
        # ...and the caller's relation did not (no aliasing).
        assert relation[15].value("age") == "40"
        # Delta result equals a from-scratch derive of the updated table.
        scratch = derive_probabilistic_database(
            session.relation(),
            config=session.config,
            model=baseline.model,
            rng=baseline.base_seed,
        )
        assert_identical_databases(session.database(), scratch.database)
        assert updated.carried_over > 0

    def test_cancelled_update_commits_nothing(self):
        session = Session(DeriveConfig(**CONFIG))
        relation = Relation.from_rows(_fig1_schema(), FIG1_ROWS)
        session.derive(relation)
        before_db = session.database()
        from repro.exec.base import DerivationCancelled

        with pytest.raises(DerivationCancelled):
            session.apply_updates(CHANGES, cancel=lambda: True)
        assert session.database() is before_db
        assert session.relation()[15].value("age") == "40"
        assert session.relation().update_log == ()

    def test_unknown_database_raises(self):
        session = Session(DeriveConfig(**CONFIG))
        with pytest.raises(LookupError, match="no derived database"):
            session.apply_updates(CHANGES, name="nope")


def _fig1_schema():
    from repro.relational import Attribute, Schema

    return Schema(
        [Attribute(name, domain) for name, domain in FIG1_SCHEMA.items()]
    )


class TestServiceUpdate:
    def _service(self):
        service = InferenceService()
        service.handle_json(
            "derive",
            {"schema": FIG1_SCHEMA, "rows": FIG1_ROWS, "config": CONFIG},
        )
        return service

    def test_request_round_trip(self):
        request = UpdateRequest.from_dict(
            {"changes": CHANGES, "config": {"trust": ["hr"]}}
        )
        assert UpdateRequest.from_dict(request.to_dict()) == request

    def test_update_endpoint(self):
        service = self._service()
        response = UpdateResponse.from_dict(
            service.handle_json("update", {"changes": CHANGES})
        )
        assert response.policy == "delta"
        assert response.applied["updated"] == [15]
        assert response.carried_over > 0
        assert response.executed_shards >= 1
        assert response.num_blocks == 9
        # The updated database serves queries in place.
        assert service.session.relation()[15].value("age") == "30"

    def test_update_unknown_database_is_404(self):
        service = InferenceService()
        with pytest.raises(ServiceError) as err:
            service.handle_json("update", {"changes": CHANGES})
        assert err.value.status == 404

    def test_bad_changeset_is_400(self):
        service = self._service()
        with pytest.raises(ServiceError, match="bad ChangeSet"):
            service.handle_json(
                "update", {"changes": {"ops": [{"op": "merge"}]}}
            )

    def test_update_async_round_trips(self):
        service = self._service()
        sync = service.handle_json("update", {"changes": CHANGES})
        # Reset and replay the same update asynchronously.
        service = self._service()
        ack = service.handle_json("update_async", {"changes": CHANGES})
        job = service.jobs.get(ack["job_id"])
        assert job.wait(timeout=30)
        status = service.job_status(ack["job_id"])
        assert status["state"] == "done"
        assert status["label"] == "update"
        result = service.job_result(ack["job_id"])
        assert result == sync

    def test_update_async_fails_fast(self):
        service = InferenceService()
        with pytest.raises(ServiceError) as err:
            service.handle_json("update_async", {"changes": CHANGES})
        assert err.value.status == 404
        service = self._service()
        with pytest.raises(ServiceError, match="bad ChangeSet"):
            service.handle_json(
                "update_async", {"changes": {"ops": [{"op": "merge"}]}}
            )


# -- CLI ---------------------------------------------------------------------


class TestCliUpdate:
    def test_update_byte_identical_to_from_scratch(self, tmp_path, capsys):
        from repro.cli import main
        from repro.relational.io import write_csv

        data = tmp_path / "data.csv"
        write_csv(Relation.from_rows(_fig1_schema(), FIG1_ROWS), data)
        changes = tmp_path / "changes.json"
        changes.write_text(ChangeSet.from_dict(CHANGES).to_json())
        blocks = tmp_path / "blocks.csv"
        updated_csv = tmp_path / "updated.csv"
        args = ["--support", "0.1", "--samples", "60", "--seed", "9"]
        assert main(
            [
                "update", str(data), str(changes),
                "--output", str(blocks),
                "--save-updated", str(updated_csv),
                *args,
            ]
        ) == 0
        err = capsys.readouterr().err
        assert "re-derived (delta)" in err
        assert "carried over" in err
        scratch = tmp_path / "scratch.csv"
        assert main(
            ["derive", str(updated_csv), "--output", str(scratch), *args]
        ) == 0
        assert blocks.read_bytes() == scratch.read_bytes()
