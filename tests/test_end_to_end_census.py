"""Full-pipeline integration test on the census dataset.

Exercises every layer together: dataset generation -> masking -> derive
(learning + voting + Gibbs + tuple DAG) -> probabilistic DB -> lineage
query engine -> analysis utilities -> accuracy metrics against the exact
generating network.
"""

import numpy as np
import pytest

from repro.bench import aggregate, mask_relation, score_prediction
from repro.bench.metrics import true_joint_posterior
from repro.core import derive_probabilistic_database
from repro.datasets import load_census
from repro.probdb import (
    QueryEngine,
    attribute_distribution,
    expected_count,
    rank_blocks_by_entropy,
)
from repro.relational import Relation


@pytest.fixture(scope="module")
def pipeline():
    rng = np.random.default_rng(99)
    data, net = load_census(6000, rng=rng)
    train, test = data.split(0.98, rng)
    test = Relation.from_codes(test.schema, test.codes[:60])
    masked = mask_relation(test, [1, 2], rng)
    combined = Relation(train.schema, list(train) + list(masked))
    result = derive_probabilistic_database(
        combined, support_threshold=0.002,
        num_samples=600, burn_in=80, rng=1,
    )
    return net, test, masked, result


class TestDerivedDatabase:
    def test_block_count(self, pipeline):
        net, test, masked, result = pipeline
        assert len(result.database.blocks) == len(masked)

    def test_accuracy_against_exact_posteriors(self, pipeline):
        net, test, masked, result = pipeline
        blocks = {b.base: b for b in result.database.blocks}
        scores = [
            score_prediction(
                true_joint_posterior(net, t), blocks[t].distribution
            )
            for t in masked
        ]
        agg = aggregate(scores)
        assert agg.mean_kl < 0.25
        assert agg.top1_accuracy > 0.5

    def test_most_probable_world_recovers_values(self, pipeline):
        """Most-probable-world imputation beats random guessing by far."""
        net, test, masked, result = pipeline
        imputed = {
            b.base: b.most_probable_completion()
            for b in result.database.blocks
        }
        hits = total = 0
        for original, hidden in zip(test, masked):
            guess = imputed[hidden]
            for pos in hidden.missing_positions:
                total += 1
                hits += guess.values()[pos] == original.values()[pos]
        assert total > 0
        assert hits / total > 0.45  # random floor is ~1/3 per attribute


class TestQueriesOverDerivedDB:
    def test_attribute_distribution_is_plausible(self, pipeline):
        net, test, masked, result = pipeline
        dist = attribute_distribution(result.database, "income")
        assert sum(dist.probs) == pytest.approx(1.0)
        # Every income level appears with real mass in 6k census rows.
        assert all(p > 0.05 for p in dist.probs)

    def test_expected_count_bounds(self, pipeline):
        net, test, masked, result = pipeline
        db = result.database
        n = expected_count(db, lambda t: True)
        assert n == pytest.approx(db.total_tuples())
        rich = expected_count(db, lambda t: t.value("wealth") == "high")
        assert 0 < rich < n

    def test_engine_selection_on_uncertain_rows(self, pipeline):
        from repro.probdb import TRUE

        net, test, masked, result = pipeline
        engine = QueryEngine(result.database)
        uncertain = [r for r in engine.scan() if r.event is not TRUE]
        rows = engine.select(
            uncertain, lambda r: r.value("income") == "high"
        )
        results = engine.evaluate(engine.project(rows, ["education"]))
        for t in results:
            assert 0.0 < t.probability <= 1.0 + 1e-9

    def test_entropy_ranking_covers_all_blocks(self, pipeline):
        net, test, masked, result = pipeline
        ranked = rank_blocks_by_entropy(result.database)
        assert len(ranked) == len(result.database.blocks)
        entropies = [h for h, _ in ranked]
        assert entropies == sorted(entropies, reverse=True)
