"""Unit tests for tuples, matching and subsumption (Defs 2.1-2.4)."""

import numpy as np
import pytest

from repro.relational import (
    MISSING,
    MISSING_CODE,
    RelTuple,
    SchemaError,
    make_tuple,
    proper_subsumes,
    subsumes,
)


@pytest.fixture
def t1(fig1_schema):
    # Paper's t1: <age=20, edu=HS, inc=?, nw=?>
    return make_tuple(fig1_schema, {"age": "20", "edu": "HS"})


@pytest.fixture
def t4(fig1_schema):
    # Paper's t4 (a point): <age=20, edu=HS, inc=100K, nw=500K>
    return make_tuple(fig1_schema, ["20", "HS", "100K", "500K"])


class TestConstruction:
    def test_from_mapping_fills_missing(self, fig1_schema):
        t = make_tuple(fig1_schema, {"age": "30"})
        assert t.value("age") == "30"
        assert t.value("edu") == MISSING
        assert t.num_missing == 3

    def test_from_sequence_with_question_marks(self, fig1_schema):
        t = make_tuple(fig1_schema, ["20", "?", "50K", "?"])
        assert t.values() == ("20", MISSING, "50K", MISSING)

    def test_sequence_length_mismatch_raises(self, fig1_schema):
        with pytest.raises(SchemaError, match="expected 4 values"):
            make_tuple(fig1_schema, ["20", "HS"])

    def test_bad_value_raises(self, fig1_schema):
        with pytest.raises(SchemaError, match="not in the domain"):
            make_tuple(fig1_schema, {"age": "99"})

    def test_bad_code_raises(self, fig1_schema):
        with pytest.raises(SchemaError, match="out of range"):
            RelTuple(fig1_schema, [5, 0, 0, 0])

    def test_codes_are_readonly(self, t1):
        with pytest.raises(ValueError):
            t1.codes[0] = 1


class TestCompleteness:
    def test_complete_tuple_is_point(self, t4):
        assert t4.is_complete
        assert t4.num_missing == 0
        assert t4.missing_positions == ()

    def test_incomplete_tuple(self, t1):
        assert not t1.is_complete
        assert t1.complete_positions == (0, 1)
        assert t1.missing_positions == (2, 3)

    def test_as_dict_excludes_missing_by_default(self, t1):
        assert t1.as_dict() == {"age": "20", "edu": "HS"}

    def test_as_dict_include_missing(self, t1):
        d = t1.as_dict(include_missing=True)
        assert d["inc"] == MISSING
        assert d["nw"] == MISSING


class TestMatching:
    def test_point_matches_tuple_def23(self, t1, t4):
        # "point t4 supports tuple t1"
        assert t1.matches_point(t4.codes)

    def test_point_not_matching(self, fig1_schema, t1):
        t2 = make_tuple(fig1_schema, ["20", "BS", "50K", "100K"])
        # "while point t2 does not"
        assert not t1.matches_point(t2.codes)

    def test_fully_missing_tuple_matches_everything(self, fig1_schema, t4):
        t_star = RelTuple(fig1_schema, [MISSING_CODE] * 4)
        assert t_star.matches_point(t4.codes)

    def test_match_mask_over_matrix(self, fig1_schema, t1):
        points = np.array(
            [
                [0, 0, 1, 1],  # 20,HS,100K,500K -> match
                [0, 1, 0, 0],  # 20,BS -> no
                [0, 0, 0, 0],  # 20,HS -> match
            ],
            dtype=np.int32,
        )
        assert t1.match_mask(points).tolist() == [True, False, True]


class TestSubsumption:
    def test_paper_example_t1_subsumes_t5(self, fig1_schema, t1):
        t5 = make_tuple(fig1_schema, {"age": "20"})
        # t1 < t5 in the paper's notation means t5 subsumes t1... Def 2.4:
        # t1 subsumes t5's *more complete* tuples.  Here t5 knows only age,
        # t1 knows age and edu, so t5 subsumes t1 ("t1 ≺ t5").
        assert proper_subsumes(t5, t1)
        assert not proper_subsumes(t1, t5)

    def test_no_subsumption_between_disagreeing(self, fig1_schema, t1):
        t3 = make_tuple(fig1_schema, {"age": "20", "inc": "50K"})
        # "No subsumption holds between t1 and t3."
        assert not proper_subsumes(t1, t3)
        assert not proper_subsumes(t3, t1)

    def test_subsumption_requires_agreement(self, fig1_schema):
        g = make_tuple(fig1_schema, {"age": "20"})
        s = make_tuple(fig1_schema, {"age": "30", "edu": "HS"})
        assert not proper_subsumes(g, s)

    def test_proper_subsumption_is_strict(self, t1):
        assert subsumes(t1, t1)
        assert not proper_subsumes(t1, t1)

    def test_subsumption_is_transitive(self, fig1_schema):
        a = make_tuple(fig1_schema, {"age": "20"})
        b = make_tuple(fig1_schema, {"age": "20", "edu": "HS"})
        c = make_tuple(fig1_schema, {"age": "20", "edu": "HS", "inc": "50K"})
        assert proper_subsumes(a, b) and proper_subsumes(b, c)
        assert proper_subsumes(a, c)


class TestTransforms:
    def test_complete_with(self, fig1_schema, t1):
        done = t1.complete_with({"inc": "50K", "nw": "100K"})
        assert done.is_complete
        assert done.value("inc") == "50K"

    def test_complete_with_known_attribute_raises(self, t1):
        with pytest.raises(SchemaError, match="already has a value"):
            t1.complete_with({"age": "30"})

    def test_restrict(self, t4):
        r = t4.restrict([0, 2])
        assert r.value("age") == "20"
        assert r.value("inc") == "100K"
        assert r.value("edu") == MISSING

    def test_equality_and_hash(self, fig1_schema):
        a = make_tuple(fig1_schema, {"age": "20"})
        b = make_tuple(fig1_schema, {"age": "20"})
        assert a == b
        assert hash(a) == hash(b)
        assert a != make_tuple(fig1_schema, {"age": "30"})

    def test_repr_is_readable(self, t1):
        assert "age=20" in repr(t1)
        assert "inc=?" in repr(t1)

    def test_pickle_recomputes_hash_across_processes(self, fig1_schema):
        # The cached hash is salted per process (PYTHONHASHSEED); a pickled
        # tuple restored in another interpreter must not keep the stale
        # value, or journaled blocks stop matching their workload tuples.
        import os
        import pickle
        import subprocess
        import sys

        t = make_tuple(fig1_schema, {"age": "20", "edu": "HS"})
        out = subprocess.run(
            [
                sys.executable, "-c",
                "import pickle, sys; "
                "sys.stdout.buffer.write("
                "pickle.dumps(pickle.loads(sys.stdin.buffer.read())))",
            ],
            input=pickle.dumps(t),
            capture_output=True,
            check=True,
            env={**os.environ, "PYTHONHASHSEED": "4242"},
        )
        back = pickle.loads(out.stdout)
        assert back == t
        assert hash(back) == hash(t)
        assert back in {t}
