"""Tests for the sharded derivation runtime (repro.exec).

The load-bearing guarantee: serial, thread, and process executors produce
bit-identical probabilistic databases for any worker count, on both the
paper's Fig. 1 relation and a census sample.
"""

import numpy as np
import pytest

from repro.api.config import DeriveConfig
from repro.api.session import Session
from repro.bench.masking import mask_relation
from repro.core import derive_probabilistic_database, single_missing_blocks
from repro.core.lazy import LazyDeriver
from repro.core.learning import learn_mrsl
from repro.core.persistence import (
    compiled_metadata,
    load_model,
    save_model,
    verify_compiled_metadata,
)
from repro.datasets.census import load_census
from repro.exec import (
    EXECUTORS,
    ProcessExecutor,
    SerialExecutor,
    get_executor,
    plan_shards,
    shard_seed,
    stream_derivation,
)
from repro.relational import Relation, make_tuple


def assert_identical_databases(a, b):
    """Bit-for-bit equality of two derived probabilistic databases."""
    assert len(a.blocks) == len(b.blocks)
    for ba, bb in zip(a.blocks, b.blocks):
        assert ba.base == bb.base
        assert ba.distribution.outcomes == bb.distribution.outcomes
        assert (ba.distribution.probs == bb.distribution.probs).all()


@pytest.fixture(scope="module")
def census_relation():
    """A census sample mixing complete, single- and multi-missing tuples."""
    rng = np.random.default_rng(7)
    train, _ = load_census(250, rng)
    test, _ = load_census(30, rng)
    masked = mask_relation(test, (1, 1, 1, 2), rng)
    return Relation(train.schema, list(train) + list(masked))


@pytest.fixture(scope="module")
def census_model(census_relation):
    return learn_mrsl(census_relation, support_threshold=0.02).model


CENSUS_CONFIG = dict(
    support_threshold=0.02, num_samples=40, burn_in=5, seed=5
)


@pytest.fixture(scope="module")
def census_baseline(census_relation, census_model):
    return derive_probabilistic_database(
        census_relation,
        config=DeriveConfig(**CENSUS_CONFIG),
        model=census_model,
    )


# -- the planner -------------------------------------------------------------


class TestPlanner:
    def test_single_shards_group_by_signature(self, census_relation, census_model):
        singles = [
            t for t in census_relation.incomplete_part() if t.num_missing == 1
        ]
        plan = plan_shards(singles, census_model, workers=2)
        assert not plan.multi_shards
        assert sum(len(s) for s in plan.single_shards) == len(singles)
        # Packing is bounded by workers * factor, and every shard carries
        # at least one signature group.
        assert len(plan.single_shards) <= 4
        assert all(s.groups >= 1 for s in plan.single_shards)

    def test_multi_shards_follow_subsumption_components(
        self, fig1_schema, fig1_relation
    ):
        # t5 <20,?,?,?> subsumes t1 <20,HS,?,?>: one component.  t12
        # <30,MS,?,?> is unrelated: its own component.
        t1 = make_tuple(fig1_schema, {"age": "20", "edu": "HS"})
        t5 = make_tuple(fig1_schema, {"age": "20"})
        t12 = make_tuple(fig1_schema, {"age": "30", "edu": "MS"})
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        plan = plan_shards([t1, t12, t5], model, seed=3)
        multis = plan.multi_shards
        assert len(multis) == 2
        by_size = sorted(multis, key=len)
        assert set(by_size[0].tuples) == {t12}
        assert set(by_size[1].tuples) == {t1, t5}

    def test_multi_seeds_independent_of_worker_count(self, fig1_relation):
        multi = [
            t for t in fig1_relation.incomplete_part() if t.num_missing > 1
        ]
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        plans = [
            plan_shards(multi, model, workers=w, seed=5) for w in (1, 2, 4)
        ]
        keys = [
            sorted((s.key, s.seed) for s in p.multi_shards) for p in plans
        ]
        assert keys[0] == keys[1] == keys[2]

    def test_seed_changes_shard_seeds(self, fig1_relation):
        multi = [
            t for t in fig1_relation.incomplete_part() if t.num_missing > 1
        ]
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        a = plan_shards(multi, model, seed=1)
        b = plan_shards(multi, model, seed=2)
        assert [s.seed for s in a.multi_shards] != [
            s.seed for s in b.multi_shards
        ]

    def test_shard_seed_is_stable(self):
        assert shard_seed(11, "multi:abc") == shard_seed(11, "multi:abc")
        assert shard_seed(11, "multi:abc") != shard_seed(12, "multi:abc")

    def test_complete_tuples_rejected(self, fig1_relation):
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        complete = next(iter(fig1_relation.complete_part()))
        with pytest.raises(ValueError, match="complete tuples"):
            plan_shards([complete], model)

    def test_rng_free_workloads_consume_no_entropy(self, fig1_relation):
        singles = [
            t for t in fig1_relation.incomplete_part() if t.num_missing == 1
        ]
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        gen = np.random.default_rng(0)
        state_before = gen.bit_generator.state
        plan = plan_shards(singles, model, rng=gen)
        assert plan.base_seed is None
        assert gen.bit_generator.state == state_before


# -- executor determinism -----------------------------------------------------


FIG1_CONFIG = dict(support_threshold=0.1, num_samples=50, burn_in=10, seed=11)


class TestDeterminism:
    @pytest.fixture
    def fig1_baseline(self, fig1_relation):
        return derive_probabilistic_database(
            fig1_relation, config=DeriveConfig(**FIG1_CONFIG)
        )

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_fig1_bit_identical(
        self, fig1_relation, fig1_baseline, executor, workers
    ):
        cfg = DeriveConfig(**FIG1_CONFIG, executor=executor, workers=workers)
        result = derive_probabilistic_database(fig1_relation, config=cfg)
        assert_identical_databases(fig1_baseline.database, result.database)

    @pytest.mark.parametrize("executor", EXECUTORS)
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_census_bit_identical(
        self, census_relation, census_model, census_baseline, executor,
        workers,
    ):
        cfg = DeriveConfig(
            **CENSUS_CONFIG, executor=executor, workers=workers
        )
        result = derive_probabilistic_database(
            census_relation, config=cfg, model=census_model
        )
        assert_identical_databases(census_baseline.database, result.database)

    def test_naive_engine_identical_across_executors(self, fig1_relation):
        cfg = DeriveConfig(**FIG1_CONFIG, engine="naive")
        baseline = derive_probabilistic_database(fig1_relation, config=cfg)
        threaded = derive_probabilistic_database(
            fig1_relation,
            config=cfg.replacing(executor="thread", workers=2),
        )
        assert_identical_databases(baseline.database, threaded.database)

    def test_reproducible_via_generator(self, fig1_relation):
        """A seeded generator still reproduces across separate runs."""
        runs = [
            derive_probabilistic_database(
                fig1_relation,
                support_threshold=0.1,
                num_samples=50,
                burn_in=10,
                rng=np.random.default_rng(9),
            )
            for _ in range(2)
        ]
        assert_identical_databases(runs[0].database, runs[1].database)


# -- the streaming collector ---------------------------------------------------


class TestStreaming:
    def test_stream_yields_every_shard_once(self, fig1_relation):
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        tuples = list(fig1_relation.incomplete_part())
        cfg = DeriveConfig(**FIG1_CONFIG)
        plan = plan_shards(tuples, model, seed=cfg.seed)
        results = list(
            stream_derivation(tuples, model, cfg, plan=plan)
        )
        assert sorted(r.key for r in results) == sorted(
            s.key for s in plan.shards
        )
        covered = sorted(i for r in results for i in r.indices)
        assert covered == list(range(len(tuples)))
        for r in results:
            assert len(r.blocks) == len(r.indices)
            assert r.elapsed >= 0.0
            assert r.worker

    def test_exec_report_diagnostics(self, fig1_relation):
        cfg = DeriveConfig(**FIG1_CONFIG)
        result = derive_probabilistic_database(fig1_relation, config=cfg)
        report = result.exec_report
        assert report is not None
        assert report.executor == "serial"
        assert report.num_tuples == fig1_relation.num_incomplete
        assert len(report.timings) == report.num_shards
        assert report.slowest(2)
        assert "shards" in report.summary()


# -- executor plumbing ----------------------------------------------------------


class TestExecutorSelection:
    def test_get_executor_by_name(self):
        assert isinstance(get_executor("process", 3), ProcessExecutor)
        assert get_executor("process", 3).workers == 3

    def test_get_executor_passthrough(self):
        ex = SerialExecutor(2)
        assert get_executor(ex) is ex

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="executor"):
            get_executor("gpu")
        with pytest.raises(ValueError, match="executor"):
            DeriveConfig(executor="gpu")

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            DeriveConfig(workers=0)

    def test_executor_instance_conflicts_with_workers(self, fig1_relation):
        with pytest.raises(ValueError, match="pre-built Executor"):
            derive_probabilistic_database(
                fig1_relation,
                support_threshold=0.1,
                executor=SerialExecutor(2),
                workers=4,
            )

    def test_single_missing_blocks_rejects_multi(self, fig1_schema, fig1_relation):
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        t = make_tuple(fig1_schema, {"age": "20"})
        with pytest.raises(ValueError, match="exactly one missing"):
            single_missing_blocks([t], model)

    def test_single_missing_blocks_executor_override(
        self, fig1_schema, fig1_relation
    ):
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        singles = [
            t for t in fig1_relation.incomplete_part() if t.num_missing == 1
        ]
        serial = single_missing_blocks(singles, model)
        threaded = single_missing_blocks(
            singles, model, executor="thread", workers=2
        )
        for a, b in zip(serial, threaded):
            assert a.base == b.base
            assert (a.distribution.probs == b.distribution.probs).all()


# -- the lazy path ---------------------------------------------------------------


class TestLazyPrefetch:
    def test_prefetch_skips_cached_tuples(self, fig1_relation):
        deriver = LazyDeriver(
            fig1_relation, support_threshold=0.1,
            num_samples=50, burn_in=10, rng=0,
        )
        incomplete = list(fig1_relation.incomplete_part())
        deriver.prefetch(incomplete[:3])
        first = deriver.materialized
        cached = {t: deriver.block(t) for t in incomplete[:3]}
        # Prefetching a superset must not re-derive (or replace) the
        # already-cached blocks.
        deriver.prefetch(incomplete)
        assert deriver.materialized == len(set(incomplete))
        for t, block in cached.items():
            assert deriver.block(t) is block
        assert deriver.materialized >= first

    def test_prefetch_dedupes_input(self, fig1_schema, fig1_relation):
        deriver = LazyDeriver(
            fig1_relation, support_threshold=0.1,
            num_samples=50, burn_in=10, rng=0,
        )
        t = make_tuple(fig1_schema, {"age": "30", "edu": "MS"})
        deriver.prefetch([t, t, t])
        assert deriver.materialized == 1

    def test_lazy_executor_knob(self, fig1_relation):
        serial = LazyDeriver(
            fig1_relation, support_threshold=0.1,
            num_samples=50, burn_in=10, rng=4,
        )
        threaded = LazyDeriver(
            fig1_relation, support_threshold=0.1,
            num_samples=50, burn_in=10, rng=4,
            executor="thread", workers=2,
        )
        assert_identical_databases(
            serial.materialize_all(), threaded.materialize_all()
        )


# -- session / service plumbing ---------------------------------------------------


class TestSessionExecutors:
    def test_session_derive_executor_override(self, fig1_relation):
        session = Session(
            {"support_threshold": 0.1, "num_samples": 50,
             "burn_in": 10, "seed": 2}
        )
        baseline = session.derive(fig1_relation, name="serial")
        sharded = session.derive(
            fig1_relation, name="sharded", executor="thread", workers=2
        )
        assert_identical_databases(baseline.database, sharded.database)

    def test_derive_request_executor_fields_roundtrip(self):
        from repro.api.service import DeriveRequest

        request = DeriveRequest.from_dict(
            {"rows": [["20", "HS", "?", "?"]], "executor": "process",
             "workers": 2}
        )
        assert request.executor == "process"
        assert request.workers == 2
        assert DeriveRequest.from_dict(request.to_dict()) == request


# -- process rebuild validation ----------------------------------------------------


class TestCompiledMetadata:
    def test_roundtrip_validates(self, fig1_relation, tmp_path):
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        path = tmp_path / "model.json"
        save_model(model, path)
        reloaded = load_model(path)  # load_model verifies when present
        verify_compiled_metadata(reloaded, compiled_metadata(model))

    def test_tampered_model_rejected(self, fig1_relation, tmp_path):
        import json

        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        path = tmp_path / "model.json"
        save_model(model, path)
        doc = json.loads(path.read_text())
        doc["lattices"][0]["meta_rules"][0]["weight"] *= 0.5
        path.write_text(json.dumps(doc))
        with pytest.raises(ValueError, match="compiled model mismatch"):
            load_model(path)

    def test_metadata_shape(self, census_model):
        meta = compiled_metadata(census_model)
        assert meta["version"] == 1
        assert len(meta["attributes"]) == len(census_model.schema)
        for entry in meta["attributes"]:
            assert set(entry) == {
                "attribute", "rules", "max_body", "cpd_shape",
                "signature_attrs", "digest",
            }
