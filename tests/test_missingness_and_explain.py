"""Tests for MAR/MNAR masking mechanisms and inference explanations."""

import numpy as np
import pytest

from repro.bayesnet import forward_sample_relation, make_network
from repro.bench import mask_relation_mar, mask_relation_mnar
from repro.core import VoterChoice, VotingScheme, explain_single, infer_single, learn_mrsl
from repro.relational import MISSING_CODE, make_tuple


@pytest.fixture(scope="module")
def complete_data():
    rng = np.random.default_rng(2)
    net = make_network("BN9", rng)
    return forward_sample_relation(net, 4000, rng)


class TestMAR:
    def test_only_target_is_masked(self, complete_data, rng):
        masked = mask_relation_mar(complete_data, "x3", "x0", rng)
        codes = masked.codes
        for col in range(6):
            if masked.schema[col].name != "x3":
                assert (codes[:, col] != MISSING_CODE).all()

    def test_rate_depends_on_trigger(self, complete_data):
        rng = np.random.default_rng(9)
        masked = mask_relation_mar(
            complete_data, "x3", "x0", rng, high_rate=0.6, low_rate=0.05
        )
        codes = masked.codes
        orig = complete_data.codes
        x0 = masked.schema.index("x0")
        x3 = masked.schema.index("x3")
        triggered = orig[:, x0] == 0
        rate_triggered = (codes[triggered, x3] == MISSING_CODE).mean()
        rate_other = (codes[~triggered, x3] == MISSING_CODE).mean()
        assert rate_triggered == pytest.approx(0.6, abs=0.05)
        assert rate_other == pytest.approx(0.05, abs=0.03)

    def test_same_attribute_rejected(self, complete_data, rng):
        with pytest.raises(ValueError, match="different"):
            mask_relation_mar(complete_data, "x0", "x0", rng)

    def test_rate_bounds(self, complete_data, rng):
        with pytest.raises(ValueError):
            mask_relation_mar(complete_data, "x3", "x0", rng, high_rate=1.5)


class TestMNAR:
    def test_rate_depends_on_value(self, complete_data):
        rng = np.random.default_rng(10)
        masked = mask_relation_mnar(
            complete_data, "x3", rng, rates=[0.0, 0.7]
        )
        orig = complete_data.codes
        x3 = masked.schema.index("x3")
        was_one = orig[:, x3] == 1
        dropped = masked.codes[:, x3] == MISSING_CODE
        assert (dropped & ~was_one).sum() == 0  # value 0 never dropped
        assert dropped[was_one].mean() == pytest.approx(0.7, abs=0.05)

    def test_default_rates_increase(self, complete_data):
        rng = np.random.default_rng(11)
        masked = mask_relation_mnar(complete_data, "x3", rng)
        assert masked.num_incomplete > 0

    def test_rate_shape_validation(self, complete_data, rng):
        with pytest.raises(ValueError, match="one rate per"):
            mask_relation_mnar(complete_data, "x3", rng, rates=[0.5])
        with pytest.raises(ValueError):
            mask_relation_mnar(complete_data, "x3", rng, rates=[0.5, 1.4])

    def test_mnar_biases_observed_marginal(self, complete_data):
        """Dropping one value preferentially skews the complete part —
        the bias MNAR induces in naive learners."""
        rng = np.random.default_rng(12)
        masked = mask_relation_mnar(
            complete_data, "x3", rng, rates=[0.0, 0.8]
        )
        x3 = masked.schema.index("x3")
        orig_rate = (complete_data.codes[:, x3] == 1).mean()
        rc = masked.complete_part()
        observed_rate = (rc.codes[:, x3] == 1).mean()
        assert observed_rate < orig_rate


class TestExplain:
    @pytest.fixture
    def model(self, fig1_relation):
        return learn_mrsl(fig1_relation, support_threshold=0.1).model

    def test_explanation_cpd_matches_inference(self, model, fig1_schema):
        t = make_tuple(fig1_schema, {"edu": "HS", "inc": "50K", "nw": "500K"})
        for choice in (VoterChoice.ALL, VoterChoice.BEST):
            for scheme in (VotingScheme.AVERAGED, VotingScheme.WEIGHTED):
                exp = explain_single(t, model["age"], choice, scheme)
                direct = infer_single(t, model["age"], choice, scheme)
                assert np.allclose(exp.cpd.probs, direct.probs)

    def test_vote_weights_sum_to_one(self, model, fig1_schema):
        t = make_tuple(fig1_schema, {"edu": "HS"})
        exp = explain_single(t, model["age"], "all", "weighted")
        assert sum(exp.vote_weights) == pytest.approx(1.0)
        assert len(exp.vote_weights) == len(exp.voters)

    def test_describe_is_readable(self, model, fig1_schema):
        t = make_tuple(fig1_schema, {"edu": "HS"})
        text = explain_single(t, model["age"], "all", "averaged").describe()
        assert "P(age)" in text
        assert "P(age | edu=HS)" in text
        assert "result:" in text

    def test_uniform_fallback_explained(self, fig1_schema):
        from repro.relational import Relation

        empty_model = learn_mrsl(
            Relation(fig1_schema), support_threshold=0.1
        ).model
        t = make_tuple(fig1_schema, {"edu": "HS"})
        exp = explain_single(t, empty_model["age"])
        assert exp.voters == []
        assert "uniform fallback" in exp.describe()

    def test_known_head_rejected(self, model, fig1_schema):
        t = make_tuple(fig1_schema, {"age": "20"})
        with pytest.raises(ValueError):
            explain_single(t, model["age"])
