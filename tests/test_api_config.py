"""Unit tests for the typed pipeline configuration (repro.api.config)."""

import dataclasses
import json

import pytest

from repro.api.config import DeriveConfig, resolve_config
from repro.cli import build_parser
from repro.core.engine import DEFAULT_ENGINE
from repro.core.inference import VoterChoice, VotingScheme
from repro.core.itemsets import DEFAULT_MAX_ITEMSETS


class TestDefaults:
    def test_defaults_come_from_the_library_constants(self):
        cfg = DeriveConfig()
        assert cfg.max_itemsets == DEFAULT_MAX_ITEMSETS
        assert cfg.engine == DEFAULT_ENGINE
        assert cfg.v_choice == VoterChoice.BEST.value
        assert cfg.v_scheme == VotingScheme.AVERAGED.value
        assert cfg.burn_in == 100
        assert cfg.seed is None

    def test_frozen(self):
        cfg = DeriveConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.burn_in = 5


class TestValidation:
    def test_enum_normalization(self):
        cfg = DeriveConfig(
            v_choice=VoterChoice.ALL, v_scheme=VotingScheme.WEIGHTED
        )
        assert cfg.v_choice == "all"
        assert cfg.v_scheme == "weighted"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"support_threshold": -0.1},
            {"support_threshold": 1.5},
            {"max_itemsets": 0},
            {"num_samples": 0},
            {"burn_in": -1},
            {"strategy": "bogus"},
            {"engine": "bogus"},
            {"v_choice": "bogus"},
            {"v_scheme": "bogus"},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DeriveConfig(**kwargs)


class TestRoundTrip:
    def test_default_round_trip(self):
        cfg = DeriveConfig()
        assert DeriveConfig.from_dict(cfg.to_dict()) == cfg

    def test_custom_round_trip_through_json(self):
        cfg = DeriveConfig(
            support_threshold=0.05,
            max_itemsets=7,
            v_choice="all",
            v_scheme="log_pool",
            num_samples=123,
            burn_in=9,
            strategy="tuple_at_a_time",
            seed=42,
            engine="naive",
        )
        assert DeriveConfig.from_dict(json.loads(json.dumps(cfg.to_dict()))) == cfg

    def test_partial_dict_fills_defaults(self):
        cfg = DeriveConfig.from_dict({"burn_in": 17})
        assert cfg.burn_in == 17
        assert cfg.num_samples == DeriveConfig().num_samples

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown config keys"):
            DeriveConfig.from_dict({"burnin": 17})


class TestResolveConfig:
    def test_none_gives_defaults(self):
        assert resolve_config(None) == DeriveConfig()

    def test_mapping_accepted(self):
        assert resolve_config({"seed": 3}).seed == 3

    def test_overrides_win_over_config(self):
        base = DeriveConfig(burn_in=50)
        assert resolve_config(base, burn_in=7).burn_in == 7

    def test_none_overrides_ignored(self):
        base = DeriveConfig(burn_in=50)
        assert resolve_config(base, burn_in=None) is base

    def test_unknown_override_rejected(self):
        with pytest.raises(TypeError):
            resolve_config(None, bogus=1)

    def test_bad_config_type_rejected(self):
        with pytest.raises(TypeError):
            resolve_config(3.14)


class TestCliDefaultsMatchConfig:
    """Regression for the burn-in drift: CLI defaults == config defaults."""

    #: argparse dest -> DeriveConfig field, for every shared knob.
    SHARED_KNOBS = {
        "support": "support_threshold",
        "max_itemsets": "max_itemsets",
        "voters": "v_choice",
        "voting": "v_scheme",
        "samples": "num_samples",
        "burn_in": "burn_in",
        "seed": "seed",
        "engine": "engine",
        "executor": "executor",
        "workers": "workers",
        "gibbs_chains": "gibbs_chains",
    }
    # --gibbs-vectorized is a string choice ("on"/"off") wrapping the bool
    # config field; its default is asserted separately below.

    @pytest.mark.parametrize("dest,field", sorted(SHARED_KNOBS.items()))
    def test_derive_defaults(self, dest, field):
        args = build_parser().parse_args(["derive", "data.csv"])
        assert getattr(args, dest) == getattr(DeriveConfig(), field)

    @pytest.mark.parametrize("dest,field", sorted(SHARED_KNOBS.items()))
    def test_serve_defaults(self, dest, field):
        args = build_parser().parse_args(["serve"])
        assert getattr(args, dest) == getattr(DeriveConfig(), field)

    @pytest.mark.parametrize("command", ["derive", "serve"])
    def test_gibbs_vectorized_default(self, command):
        argv = [command, "data.csv"] if command == "derive" else [command]
        args = build_parser().parse_args(argv)
        expected = "on" if DeriveConfig().gibbs_vectorized else "off"
        assert args.gibbs_vectorized == expected
