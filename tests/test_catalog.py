"""Tests that the reconstructed catalog reproduces Table I."""

import numpy as np
import pytest

from repro.bayesnet import CATALOG, get_spec, make_network, table1_rows
from repro.bayesnet.catalog import PUBLISHED_TABLE1


class TestTableI:
    def test_all_twenty_networks_present(self):
        assert set(CATALOG) == {f"BN{i}" for i in range(1, 21)}

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_num_attrs_exact(self, name):
        topo = get_spec(name).topology()
        assert len(topo.names) == PUBLISHED_TABLE1[name][0]

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_domain_size_exact(self, name):
        topo = get_spec(name).topology()
        assert topo.domain_size() == PUBLISHED_TABLE1[name][2]

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_depth_exact(self, name):
        topo = get_spec(name).topology()
        assert topo.depth() == PUBLISHED_TABLE1[name][3]

    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_avg_cardinality_close(self, name):
        # BN1/BN2/BN7 admit no exact factorization at the published average;
        # everything must be within 0.6 of the published value.
        topo = get_spec(name).topology()
        assert topo.average_cardinality() == pytest.approx(
            PUBLISHED_TABLE1[name][1], abs=0.6
        )

    def test_table1_rows_shape(self):
        rows = table1_rows()
        assert len(rows) == 20
        assert rows[0][0] == "BN1"

    def test_crown_family_membership(self):
        for name in ("BN8", "BN9", "BN17", "BN18"):
            assert get_spec(name).family == "crown"

    def test_line_family_membership(self):
        for name in ("BN13", "BN14", "BN15", "BN16"):
            assert get_spec(name).family == "line"

    def test_bn4_is_independent(self):
        assert get_spec("BN4").family == "independent"


class TestMakeNetwork:
    def test_make_network_seeds_reproducibly(self):
        a = make_network("BN8", 0)
        b = make_network("BN8", 0)
        for name in a.names:
            assert np.allclose(a[name].cpt, b[name].cpt)

    def test_make_network_structure(self):
        net = make_network("BN13", 0)
        assert len(net) == 6
        assert net.depth() == 6

    def test_unknown_network_raises(self):
        with pytest.raises(KeyError, match="unknown network"):
            get_spec("BN99")

    def test_instances_differ_across_seeds(self):
        a = make_network("BN9", 1)
        b = make_network("BN9", 2)
        assert any(
            not np.allclose(a[name].cpt, b[name].cpt) for name in a.names
        )
