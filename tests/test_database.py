"""Unit tests for ProbabilisticDatabase and possible-world semantics."""

import pytest

from repro.probdb import Distribution, ProbabilisticDatabase, TupleBlock
from repro.relational import SchemaError, make_tuple


@pytest.fixture
def small_db(fig1_schema):
    certain = [make_tuple(fig1_schema, ["20", "BS", "50K", "100K"])]
    b1 = TupleBlock(
        make_tuple(fig1_schema, {"age": "30", "edu": "MS", "inc": "50K"}),
        Distribution([("100K",), ("500K",)], [0.6, 0.4]),
    )
    b2 = TupleBlock(
        make_tuple(fig1_schema, {"age": "40", "edu": "HS", "nw": "500K"}),
        Distribution([("50K",), ("100K",)], [0.3, 0.7]),
    )
    return ProbabilisticDatabase(fig1_schema, certain, [b1, b2])


class TestConstruction:
    def test_counts(self, small_db):
        assert small_db.total_tuples() == 3
        assert small_db.num_possible_worlds() == 4

    def test_incomplete_certain_tuple_rejected(self, fig1_schema):
        t = make_tuple(fig1_schema, {"age": "20"})
        with pytest.raises(SchemaError, match="complete"):
            ProbabilisticDatabase(fig1_schema, [t], [])

    def test_empty_database(self, fig1_schema):
        db = ProbabilisticDatabase(fig1_schema)
        assert db.num_possible_worlds() == 1
        worlds = list(db.possible_worlds())
        assert len(worlds) == 1
        assert worlds[0].probability == pytest.approx(1.0)


class TestPossibleWorlds:
    def test_world_probabilities_sum_to_one(self, small_db):
        total = sum(w.probability for w in small_db.possible_worlds())
        assert total == pytest.approx(1.0)

    def test_each_world_is_complete(self, small_db):
        for world in small_db.possible_worlds():
            assert len(world) == 3
            assert all(t.is_complete for t in world)

    def test_world_probability_is_product(self, small_db):
        probs = sorted(w.probability for w in small_db.possible_worlds())
        expected = sorted([0.6 * 0.3, 0.6 * 0.7, 0.4 * 0.3, 0.4 * 0.7])
        assert probs == pytest.approx(expected)

    def test_max_worlds_guard(self, small_db):
        with pytest.raises(ValueError, match="exceed"):
            list(small_db.possible_worlds(max_worlds=2))

    def test_sample_world(self, small_db, rng):
        world = small_db.sample_world(rng)
        assert len(world) == 3
        assert all(t.is_complete for t in world)

    def test_sampled_world_frequencies(self, fig1_schema, rng):
        block = TupleBlock(
            make_tuple(fig1_schema, {"age": "30", "edu": "MS", "inc": "50K"}),
            Distribution([("100K",), ("500K",)], [0.9, 0.1]),
        )
        db = ProbabilisticDatabase(fig1_schema, [], [block])
        hits = sum(
            1
            for _ in range(500)
            if db.sample_world(rng).tuples[0].value("nw") == "100K"
        )
        assert hits / 500 == pytest.approx(0.9, abs=0.05)


class TestDerivedViews:
    def test_most_probable_world(self, small_db):
        world = small_db.most_probable_world()
        assert world.probability == pytest.approx(0.6 * 0.7)
        values = {tuple(t.values()) for t in world}
        assert ("30", "MS", "50K", "100K") in values
        assert ("40", "HS", "100K", "500K") in values

    def test_to_relation_is_complete(self, small_db):
        rel = small_db.to_relation()
        assert len(rel) == 3
        assert rel.num_complete == 3
