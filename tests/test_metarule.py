"""Unit tests for meta-rules and CPD smoothing (Def. 2.6, Section III)."""

import numpy as np
import pytest

from repro.core import mine_frequent_itemsets
from repro.core.metarule import MetaRule, build_meta_rules, smooth_cpd
from repro.core.rules import compute_association_rules
from repro.relational import make_tuple


class TestSmoothing:
    def test_full_cpd_unchanged_up_to_floor(self):
        probs = smooth_cpd(np.array([0.5, 0.3, 0.2]))
        assert np.allclose(probs, [0.5, 0.3, 0.2], atol=1e-4)

    def test_deficit_spread_equally(self):
        # Confidences sum to 0.7; the 0.3 deficit splits equally.
        probs = smooth_cpd(np.array([0.4, 0.3, 0.0]))
        assert probs[0] == pytest.approx(0.5, abs=1e-4)
        assert probs[1] == pytest.approx(0.4, abs=1e-4)
        assert probs[2] == pytest.approx(0.1, abs=1e-4)

    def test_all_zero_becomes_uniform(self):
        probs = smooth_cpd(np.zeros(4))
        assert np.allclose(probs, 0.25)

    def test_strictly_positive_output(self):
        probs = smooth_cpd(np.array([1.0, 0.0]), floor=1e-5)
        assert (probs > 0).all()
        assert probs.sum() == pytest.approx(1.0)

    def test_overshoot_rescaled(self):
        # Tiny counting overshoot above 1 is tolerated and rescaled.
        probs = smooth_cpd(np.array([0.7, 0.4]))
        assert probs.sum() == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            smooth_cpd(np.array([-0.1, 1.1]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            smooth_cpd(np.array([]))


class TestMetaRule:
    def test_validation_probs_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            MetaRule(0, (), 1.0, np.array([0.5, 0.6]))

    def test_validation_positive(self):
        with pytest.raises(ValueError, match="positive"):
            MetaRule(0, (), 1.0, np.array([1.0, 0.0]))

    def test_validation_weight(self):
        with pytest.raises(ValueError, match="weight"):
            MetaRule(0, (), 0.0, np.array([0.5, 0.5]))

    def test_validation_body_excludes_head(self):
        with pytest.raises(ValueError, match="head attribute"):
            MetaRule(0, ((0, 1),), 0.5, np.array([0.5, 0.5]))

    def test_matches(self, fig1_schema):
        m = MetaRule(0, ((1, 0),), 0.5, np.array([0.2, 0.3, 0.5]))
        t_yes = make_tuple(fig1_schema, {"edu": "HS"})
        t_no = make_tuple(fig1_schema, {"edu": "BS"})
        assert m.matches(t_yes)
        assert not m.matches(t_no)

    def test_empty_body_matches_everything(self, fig1_schema):
        m = MetaRule(0, (), 1.0, np.array([0.2, 0.3, 0.5]))
        assert m.matches(make_tuple(fig1_schema, {}))
        assert m.matches(make_tuple(fig1_schema, {"edu": "MS", "inc": "50K"}))

    def test_subsumption(self):
        general = MetaRule(0, ((1, 0),), 0.5, np.array([0.5, 0.5, 1e-9 + 0.0]))
        # Build with valid positive probs.
        general = MetaRule(0, ((1, 0),), 0.5, np.array([0.4, 0.3, 0.3]))
        specific = MetaRule(0, ((1, 0), (2, 1)), 0.2, np.array([0.4, 0.3, 0.3]))
        assert general.subsumes(specific)
        assert not specific.subsumes(general)
        assert not general.subsumes(general)

    def test_subsumption_requires_same_head(self):
        m0 = MetaRule(0, (), 1.0, np.array([0.5, 0.5]))
        m1 = MetaRule(1, ((0, 0),), 0.5, np.array([0.5, 0.5]))
        assert not m0.subsumes(m1)

    def test_describe(self, fig1_schema):
        m = MetaRule(0, ((1, 0),), 0.41, np.array([0.15, 0.70, 0.15]))
        assert m.describe(fig1_schema) == "P(age | edu=HS)"
        top = MetaRule(0, (), 1.0, np.array([0.31, 0.38, 0.31]))
        assert top.describe(fig1_schema) == "P(age)"

    def test_cpd_over_domain_values(self, fig1_schema):
        m = MetaRule(0, (), 1.0, np.array([0.2, 0.3, 0.5]))
        cpd = m.cpd(fig1_schema)
        assert cpd.outcomes == ("20", "30", "40")
        assert cpd["40"] == pytest.approx(0.5)


class TestBuildMetaRules:
    @pytest.fixture
    def meta_rules(self, fig1_relation, fig1_schema):
        itemsets = mine_frequent_itemsets(
            fig1_relation.complete_part(), threshold=0.1
        )
        age = fig1_schema.index("age")
        rules = compute_association_rules(itemsets, age)
        return build_meta_rules(rules, age, fig1_schema["age"].cardinality)

    def test_unique_bodies(self, meta_rules):
        bodies = [m.body for m in meta_rules]
        assert len(set(bodies)) == len(bodies)

    def test_all_cpds_valid(self, meta_rules):
        for m in meta_rules:
            assert m.probs.sum() == pytest.approx(1.0)
            assert (m.probs > 0).all()

    def test_weight_is_body_support(self, fig1_relation, fig1_schema, meta_rules):
        # The P(age | edu=HS) meta-rule's weight is supp(edu=HS) = 4/8
        # (points t4, t6, t7, t17).
        edu = fig1_schema.index("edu")
        hs = fig1_schema["edu"].code("HS")
        m = next(m for m in meta_rules if m.body == ((edu, hs),))
        assert m.weight == pytest.approx(4 / 8)

    def test_cpd_estimates_conditional(self, fig1_schema, meta_rules):
        # P(age=20 | edu=HS) = 3/4 on the Fig. 1 points (before smoothing).
        edu = fig1_schema.index("edu")
        hs = fig1_schema["edu"].code("HS")
        m = next(m for m in meta_rules if m.body == ((edu, hs),))
        a20 = fig1_schema["age"].code("20")
        assert m.probs[a20] == pytest.approx(0.75, abs=0.01)

    def test_mismatched_head_rejected(self, fig1_relation, fig1_schema):
        itemsets = mine_frequent_itemsets(
            fig1_relation.complete_part(), threshold=0.1
        )
        rules = compute_association_rules(itemsets, 0)
        with pytest.raises(ValueError, match="does not match"):
            build_meta_rules(rules, 1, 3)
