"""Tests for the learn-once / serve-many Session facade (repro.api.session)."""

import pytest

from repro.api.config import DeriveConfig
from repro.api.query import Q, SelectionQuery
from repro.api.session import Session, SessionError
from repro.core import derive_probabilistic_database, infer_single
from repro.core.inference import VoterChoice, VotingScheme


@pytest.fixture
def config():
    return DeriveConfig(
        support_threshold=0.1, num_samples=200, burn_in=20, seed=0
    )


@pytest.fixture
def session(config):
    return Session(config)


class TestModelRegistry:
    def test_learn_registers(self, session, fig1_relation):
        model = session.learn(fig1_relation)
        assert session.models == ("default",)
        assert session.model() is model

    def test_unknown_model_raises(self, session):
        with pytest.raises(SessionError, match="no model"):
            session.model("nope")

    def test_warm_engine_is_cached_per_model(self, session, fig1_relation):
        session.learn(fig1_relation)
        assert session.engine() is session.engine()

    def test_reregistering_invalidates_engine(self, session, fig1_relation):
        model = session.learn(fig1_relation)
        engine = session.engine()
        session.register_model("default", model)
        assert session.engine() is not engine

    def test_save_load_round_trip(self, session, fig1_relation, tmp_path):
        session.learn(fig1_relation)
        path = tmp_path / "model.json"
        session.save_model(path)

        other = Session(session.config)
        loaded = other.load_model(path, model="census")
        assert other.models == ("census",)
        assert loaded.size() == session.model().size()


class TestDerive:
    def test_matches_direct_pipeline(self, session, config, fig1_relation):
        direct = derive_probabilistic_database(fig1_relation, config=config)
        via_session = session.derive(fig1_relation)
        assert len(via_session.database.blocks) == len(direct.database.blocks)
        for mine, theirs in zip(
            via_session.database.blocks, direct.database.blocks
        ):
            assert mine.base == theirs.base
            assert mine.distribution.outcomes == theirs.distribution.outcomes
            assert (mine.distribution.probs == theirs.distribution.probs).all()

    def test_learns_once_then_reuses(self, session, fig1_relation):
        first = session.derive(fig1_relation)
        model = session.model()
        second = session.derive(fig1_relation)
        assert session.model() is model  # no re-learning
        assert first.learn_result is None and second.learn_result is None

    def test_registers_database_for_queries(self, session, fig1_relation):
        session.derive(fig1_relation, name="fig1")
        assert session.databases == ("fig1",)
        assert session.database("fig1") is session.result("fig1").database

    def test_unknown_database_raises(self, session):
        with pytest.raises(SessionError, match="no derived database"):
            session.database("nope")

    def test_per_call_config_override(self, session, fig1_relation):
        result = session.derive(
            fig1_relation, config=session.config.replacing(num_samples=50)
        )
        assert len(result.database.blocks) == fig1_relation.num_incomplete

    def test_partial_override_keeps_session_config(self, session, config):
        """A partial per-call dict overrides *on top of* the session config,
        not on top of the global defaults."""
        resolved = session._per_call_config({"num_samples": 50})
        assert resolved.num_samples == 50
        assert resolved.support_threshold == config.support_threshold  # 0.1
        assert resolved.seed == config.seed
        assert session._per_call_config(None) is session.config


class TestInferBatch:
    def test_matches_naive_single_inference(self, session, fig1_relation):
        session.learn(fig1_relation)
        singles = [
            t for t in fig1_relation.incomplete_part() if t.num_missing == 1
        ]
        dists = session.infer_batch(singles)
        for t, dist in zip(singles, dists):
            naive = infer_single(
                t,
                session.model()[t.missing_positions[0]],
                VoterChoice.BEST,
                VotingScheme.AVERAGED,
            )
            assert dist.outcomes == naive.outcomes
            assert (dist.probs == naive.probs).all()


class TestQuery:
    def test_accepts_spec_predicate_and_dict(self, session, fig1_relation):
        session.derive(fig1_relation)
        spec = SelectionQuery(where=Q.eq("nw", "500K"), project=("age",))
        from_spec = session.query(spec)
        from_dict = session.query(spec.to_dict())
        from_predicate = session.query(Q.eq("nw", "500K"))
        assert [(t.values, t.probability) for t in from_spec] == [
            (t.values, t.probability) for t in from_dict
        ]
        assert from_predicate  # bare predicate selects whole rows
        assert len(from_predicate[0].values) == len(fig1_relation.schema)

    def test_bad_spec_type_rejected(self, session, fig1_relation):
        session.derive(fig1_relation)
        with pytest.raises(TypeError):
            session.query(lambda r: True)
