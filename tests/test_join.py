"""Unit tests for primary-/foreign-key joins across relations."""

import pytest

from repro.relational import (
    MISSING,
    Relation,
    Schema,
    SchemaError,
    pk_fk_join,
)


@pytest.fixture
def profiles():
    schema = Schema.from_domains(
        {
            "age": ["20", "30"],
            "city": ["NYC", "PHL", "SFO"],
        }
    )
    return Relation.from_rows(
        schema,
        [
            ["20", "NYC"],
            ["30", "?"],      # missing FK
            ["20", "SFO"],    # dangling FK (no SFO row on the right)
            ["?", "PHL"],
        ],
    )


@pytest.fixture
def cities():
    schema = Schema.from_domains(
        {
            "city": ["PHL", "NYC"],  # note: different domain order
            "coast": ["east", "west"],
            "size": ["big", "small"],
        }
    )
    return Relation.from_rows(
        schema,
        [
            ["NYC", "east", "big"],
            ["PHL", "east", "?"],   # non-key values may be missing
        ],
    )


class TestJoin:
    def test_result_schema(self, profiles, cities):
        joined = pk_fk_join(profiles, cities, "city", "city", drop_key=True,
                            prefix="c_")
        assert joined.schema.names == ("age", "city", "c_coast", "c_size")

    def test_matched_rows_copy_right_values(self, profiles, cities):
        joined = pk_fk_join(profiles, cities, "city", "city", drop_key=True,
                            prefix="c_")
        row0 = joined[0]
        assert row0.value("c_coast") == "east"
        assert row0.value("c_size") == "big"

    def test_matching_is_by_value_not_code(self, profiles, cities):
        # "PHL" has code 1 on the left and code 0 on the right; the join
        # must match values.
        joined = pk_fk_join(profiles, cities, "city", "city", drop_key=True,
                            prefix="c_")
        row3 = joined[3]
        assert row3.value("city") == "PHL"
        assert row3.value("c_coast") == "east"

    def test_missing_fk_yields_missing_right(self, profiles, cities):
        joined = pk_fk_join(profiles, cities, "city", "city", drop_key=True,
                            prefix="c_")
        row1 = joined[1]
        assert row1.value("c_coast") == MISSING
        assert row1.value("c_size") == MISSING

    def test_dangling_fk_yields_missing_right(self, profiles, cities):
        joined = pk_fk_join(profiles, cities, "city", "city", drop_key=True,
                            prefix="c_")
        row2 = joined[2]
        assert row2.value("city") == "SFO"
        assert row2.value("c_coast") == MISSING

    def test_right_missing_values_propagate(self, profiles, cities):
        joined = pk_fk_join(profiles, cities, "city", "city", drop_key=True,
                            prefix="c_")
        assert joined[3].value("c_size") == MISSING

    def test_keep_key_column(self, profiles, cities):
        joined = pk_fk_join(profiles, cities, "city", "city", prefix="c_")
        assert "c_city" in joined.schema
        assert joined[0].value("c_city") == "NYC"

    def test_name_collision_rejected(self, profiles, cities):
        with pytest.raises(SchemaError, match="collision"):
            pk_fk_join(profiles, cities, "city", "city")

    def test_duplicate_pk_rejected(self, profiles):
        schema = Schema.from_domains({"city": ["NYC"], "x": ["a", "b"]})
        dup = Relation.from_rows(schema, [["NYC", "a"], ["NYC", "b"]])
        with pytest.raises(SchemaError, match="not unique"):
            pk_fk_join(profiles, dup, "city", "city", prefix="r_")

    def test_missing_pk_rejected(self, profiles):
        schema = Schema.from_domains({"city": ["NYC"], "x": ["a"]})
        bad = Relation.from_rows(schema, [["?", "a"]])
        with pytest.raises(SchemaError, match="missing values"):
            pk_fk_join(profiles, bad, "city", "city", prefix="r_")

    def test_joined_relation_feeds_learning(self, profiles, cities):
        """The Section I-B use case: mine cross-relation correlations."""
        from repro.core import learn_mrsl

        joined = pk_fk_join(profiles, cities, "city", "city", drop_key=True,
                            prefix="c_")
        result = learn_mrsl(joined, support_threshold=0.2)
        # The coast attribute's lattice exists and can host cross-relation
        # bodies like {age=...}.
        assert result.model["c_coast"] is not None
