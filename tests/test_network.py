"""Unit tests for BayesianNetwork structure and validation."""

import numpy as np
import pytest

from repro.bayesnet import BayesianNetwork, Variable, network_depth


class TestVariable:
    def test_root_variable(self):
        v = Variable("a", 3, (), np.array([0.2, 0.3, 0.5]))
        assert v.cardinality == 3
        assert v.parents == ()

    def test_cpt_rows_must_sum_to_one(self):
        with pytest.raises(ValueError, match="sum to 1"):
            Variable("a", 2, (), np.array([0.5, 0.6]))

    def test_cpt_axis_count_must_match_parents(self):
        with pytest.raises(ValueError, match="axes"):
            Variable("b", 2, ("a",), np.array([0.5, 0.5]))

    def test_negative_cpt_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Variable("a", 2, (), np.array([1.5, -0.5]))

    def test_cardinality_below_two_rejected(self):
        with pytest.raises(ValueError):
            Variable("a", 1, (), np.array([1.0]))

    def test_to_factor_scope(self):
        v = Variable("b", 2, ("a",), np.array([[0.9, 0.1], [0.2, 0.8]]))
        f = v.to_factor()
        assert f.variables == ("a", "b")


class TestNetwork:
    def test_chain_structure(self, chain_network):
        assert len(chain_network) == 3
        assert chain_network.edges() == [("a", "b"), ("b", "c")]
        assert chain_network.children("a") == ["b"]

    def test_topological_order_respects_edges(self, chain_network):
        order = chain_network.order
        assert order.index("a") < order.index("b") < order.index("c")

    def test_unknown_parent_rejected(self):
        b = Variable("b", 2, ("zzz",), np.array([[0.5, 0.5], [0.5, 0.5]]))
        with pytest.raises(ValueError, match="unknown parent"):
            BayesianNetwork([b])

    def test_parent_cardinality_mismatch_rejected(self):
        a = Variable("a", 3, (), np.array([0.2, 0.3, 0.5]))
        b = Variable("b", 2, ("a",), np.array([[0.5, 0.5], [0.5, 0.5]]))
        with pytest.raises(ValueError, match="axis has size"):
            BayesianNetwork([a, b])

    def test_cycle_rejected(self):
        a = Variable("a", 2, ("b",), np.array([[0.5, 0.5], [0.5, 0.5]]))
        b = Variable("b", 2, ("a",), np.array([[0.5, 0.5], [0.5, 0.5]]))
        with pytest.raises(ValueError, match="cycle"):
            BayesianNetwork([a, b])

    def test_duplicate_names_rejected(self):
        a1 = Variable("a", 2, (), np.array([0.5, 0.5]))
        a2 = Variable("a", 2, (), np.array([0.5, 0.5]))
        with pytest.raises(ValueError, match="duplicate"):
            BayesianNetwork([a1, a2])

    def test_to_schema(self, chain_network):
        schema = chain_network.to_schema()
        assert schema.names == ("a", "b", "c")
        assert schema["a"].domain == ("v0", "v1")

    def test_joint_factor_sums_to_one(self, chain_network):
        joint = chain_network.joint_factor()
        assert joint.table.sum() == pytest.approx(1.0)

    def test_joint_factor_matches_hand_computation(self, chain_network):
        joint = chain_network.joint_factor().transpose(("a", "b", "c"))
        # P(a=0, b=0, c=0) = 0.7 * 0.9 * 0.6
        assert joint.table[0, 0, 0] == pytest.approx(0.7 * 0.9 * 0.6)
        # P(a=1, b=1, c=1) = 0.3 * 0.8 * 0.7
        assert joint.table[1, 1, 1] == pytest.approx(0.3 * 0.8 * 0.7)


class TestDepth:
    def test_chain_depth_counts_nodes(self, chain_network):
        assert chain_network.depth() == 3

    def test_edge_free_depth_is_zero(self):
        assert network_depth([], ["a", "b"]) == 0

    def test_single_edge_depth_is_two(self):
        assert network_depth([("a", "b")], ["a", "b"]) == 2

    def test_diamond_depth(self):
        edges = [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        assert network_depth(edges, ["a", "b", "c", "d"]) == 3
