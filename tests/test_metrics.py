"""Unit tests for accuracy metrics and ground-truth posteriors."""

import pytest

from repro.bench import (
    aggregate,
    score_prediction,
    true_joint_posterior,
    true_single_posterior,
)
from repro.probdb import Distribution
from repro.relational import make_tuple


class TestScoring:
    def test_score_prediction_perfect(self):
        d = Distribution(["a", "b"], [0.7, 0.3])
        kl, hit = score_prediction(d, d)
        assert kl == pytest.approx(0.0)
        assert hit

    def test_score_prediction_wrong_mode(self):
        true = Distribution(["a", "b"], [0.7, 0.3])
        pred = Distribution(["a", "b"], [0.3, 0.7])
        kl, hit = score_prediction(true, pred)
        assert kl > 0
        assert not hit

    def test_aggregate(self):
        scores = [(0.1, True), (0.3, False), (0.2, True)]
        agg = aggregate(scores)
        assert agg.mean_kl == pytest.approx(0.2)
        assert agg.top1_accuracy == pytest.approx(2 / 3)
        assert agg.count == 3

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_str_formats(self):
        agg = aggregate([(0.5, True)])
        assert "KL=0.5" in str(agg)


class TestTruePosteriors:
    def test_single_posterior_values(self, chain_network):
        schema = chain_network.to_schema()
        t = make_tuple(schema, {"b": "v0", "c": "v0"})
        dist = true_single_posterior(chain_network, t)
        # P(a=0 | b=0) = 0.63/0.69 (c is d-separated given b).
        assert dist["v0"] == pytest.approx(0.63 / 0.69)
        assert dist.outcomes == ("v0", "v1")

    def test_single_posterior_requires_one_missing(self, chain_network):
        schema = chain_network.to_schema()
        t = make_tuple(schema, {"c": "v0"})
        with pytest.raises(ValueError, match="exactly one"):
            true_single_posterior(chain_network, t)

    def test_joint_posterior_outcomes_are_value_tuples(self, chain_network):
        schema = chain_network.to_schema()
        t = make_tuple(schema, {"b": "v1"})
        dist = true_joint_posterior(chain_network, t)
        assert set(dist.outcomes) == {
            ("v0", "v0"), ("v0", "v1"), ("v1", "v0"), ("v1", "v1")
        }
        assert sum(dist.probs) == pytest.approx(1.0)

    def test_joint_posterior_requires_missing(self, chain_network):
        schema = chain_network.to_schema()
        t = make_tuple(schema, ["v0", "v0", "v0"])
        with pytest.raises(ValueError, match="no missing"):
            true_joint_posterior(chain_network, t)

    def test_joint_conditional_independence(self, chain_network):
        # Given b, a and c are independent: joint = product of marginals.
        schema = chain_network.to_schema()
        t = make_tuple(schema, {"b": "v0"})
        joint = true_joint_posterior(chain_network, t)
        ta = make_tuple(schema, {"b": "v0", "c": "v0"})
        pa = true_single_posterior(chain_network, ta)
        for (va, vc), p in joint:
            # marginalize c from the joint and compare to pa
            pass
        marg_a0 = joint[("v0", "v0")] + joint[("v0", "v1")]
        assert marg_a0 == pytest.approx(pa["v0"])
