"""Unit tests for the comparison baselines."""

import pytest

from repro.bayesnet import forward_sample_relation, make_network
from repro.bench import independent_product, random_guess_top1
from repro.bench.metrics import true_joint_posterior
from repro.core import estimate_joint, learn_mrsl
from repro.relational import make_tuple


class TestIndependentProduct:
    def test_outcomes_cover_joint_space(self, fig1_relation, fig1_schema):
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        t = make_tuple(fig1_schema, {"age": "20", "edu": "HS"})
        joint = independent_product(model, t)
        assert len(joint) == 4  # inc x nw
        assert sum(joint.probs) == pytest.approx(1.0)

    def test_product_factorizes(self, fig1_relation, fig1_schema):
        from repro.core import infer_single

        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        t = make_tuple(fig1_schema, {"age": "20", "edu": "HS"})
        joint = independent_product(model, t)
        p_inc = infer_single(t, model["inc"])
        p_nw = infer_single(t, model["nw"])
        for (vi, vn), p in joint:
            assert p == pytest.approx(p_inc[vi] * p_nw[vn])

    def test_no_missing_rejected(self, fig1_relation, fig1_schema):
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        t = make_tuple(fig1_schema, ["20", "HS", "50K", "100K"])
        with pytest.raises(ValueError):
            independent_product(model, t)

    def test_gibbs_beats_product_on_correlated_network(self, rng):
        """The Section V motivation: joint sampling beats naive products.

        On a line network (strong chained correlations) the Gibbs estimate
        of the joint should explain the exact posterior at least as well as
        the independence-assuming product, on average.
        """
        net = make_network("BN13", rng)
        data = forward_sample_relation(net, 6000, rng)
        model = learn_mrsl(data, support_threshold=0.005).model
        schema = data.schema
        tuples = [
            make_tuple(schema, {"x0": "v0", "x3": "v1", "x5": "v0"}),
            make_tuple(schema, {"x1": "v1", "x4": "v0", "x5": "v1"}),
            make_tuple(schema, {"x0": "v1", "x2": "v0", "x4": "v1"}),
        ]
        gibbs_kl = []
        prod_kl = []
        for t in tuples:
            true = true_joint_posterior(net, t)
            block = estimate_joint(model, t, num_samples=3000, burn_in=300, rng=0)
            gibbs_kl.append(true.kl_divergence(block.distribution))
            prod_kl.append(true.kl_divergence(independent_product(model, t)))
        assert sum(gibbs_kl) / 3 <= sum(prod_kl) / 3 + 0.05


class TestRandomGuess:
    def test_floor_is_inverse_domain_product(self, fig1_schema):
        t = make_tuple(fig1_schema, {"age": "20", "edu": "HS"})
        assert random_guess_top1(t) == pytest.approx(1 / 4)

    def test_single_missing(self, fig1_schema):
        t = make_tuple(fig1_schema, {"age": "20", "edu": "HS", "inc": "50K"})
        assert random_guess_top1(t) == pytest.approx(1 / 2)
