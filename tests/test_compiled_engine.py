"""Equivalence and regression tests for the compiled batch-inference engine.

The compiled engine must reproduce the naive Algorithm 2 path *bit for bit*
for every ``vChoice`` x ``vScheme`` combination, on BN-generated census data
and on the rule-based cars data, including pruned models — the naive path
stays in the tree as the correctness oracle.
"""

import numpy as np
import pytest

from repro.core import (
    BatchInferenceEngine,
    CompiledModel,
    CompiledMRSL,
    GibbsSampler,
    LRUCache,
    MetaRule,
    MRSL,
    MRSLModel,
    derive_probabilistic_database,
    learn_mrsl,
    single_missing_blocks,
    validate_engine,
)
from repro.core.inference import (
    VoterChoice,
    VotingScheme,
    _combine,
    infer_all_single_missing,
    infer_single_codes,
    select_voters,
)
from repro.bench.masking import mask_relation
from repro.datasets.cars import load_cars
from repro.datasets.census import load_census
from repro.probdb.engine import QueryEngine
from repro.relational import MISSING_CODE, Relation, Schema, make_tuple

ALL_COMBOS = [
    (vc, vs) for vc in VoterChoice for vs in VotingScheme
]


@pytest.fixture(scope="module")
def census_setup():
    rng = np.random.default_rng(7)
    relation, _ = load_census(2500, rng)
    model = learn_mrsl(relation, support_threshold=0.005).model
    test, _ = load_census(300, rng)
    masked = list(mask_relation(test, 1, rng))
    return model, masked


@pytest.fixture(scope="module")
def cars_setup():
    rng = np.random.default_rng(11)
    relation = load_cars(2500, rng)
    model = learn_mrsl(relation, support_threshold=0.01).model
    test = load_cars(300, rng)
    masked = list(mask_relation(test, 1, rng))
    return model, masked


def _assert_bit_identical(model, masked, v_choice, v_scheme):
    engine = BatchInferenceEngine(model, v_choice, v_scheme)
    compiled = engine.infer_batch_codes(masked)
    for t, got in zip(masked, compiled):
        want = infer_single_codes(
            t, model[t.missing_positions[0]], v_choice, v_scheme
        )
        assert got.shape == want.shape
        assert (got == want).all(), (
            f"compiled CPD differs for {t!r} under "
            f"{v_choice.value}/{v_scheme.value}"
        )


class TestEquivalence:
    @pytest.mark.parametrize("v_choice,v_scheme", ALL_COMBOS)
    def test_census_bit_for_bit(self, census_setup, v_choice, v_scheme):
        model, masked = census_setup
        _assert_bit_identical(model, masked, v_choice, v_scheme)

    @pytest.mark.parametrize("v_choice,v_scheme", ALL_COMBOS)
    def test_cars_bit_for_bit(self, cars_setup, v_choice, v_scheme):
        model, masked = cars_setup
        _assert_bit_identical(model, masked, v_choice, v_scheme)

    @pytest.mark.parametrize("min_weight", [0.02, 0.1, 0.5])
    def test_pruned_models_bit_for_bit(self, census_setup, min_weight):
        model, masked = census_setup
        pruned = model.pruned(min_weight)
        for v_choice, v_scheme in ALL_COMBOS:
            _assert_bit_identical(pruned, masked, v_choice, v_scheme)

    def test_voter_rows_match_naive_selection(self, census_setup):
        """The compiled voter set is the naive one, in enumeration order."""
        model, masked = census_setup
        compiled = CompiledModel(model)
        for t in masked[:50]:
            attr = t.missing_positions[0]
            lat = compiled[attr]
            for v_choice in VoterChoice:
                naive = select_voters(model[attr], t, v_choice)
                rows = lat.voter_rows(t.codes, v_choice)
                assert [lat.bodies[r] for r in rows] == [m.body for m in naive]

    def test_infer_all_single_missing_engines_agree(self, census_setup):
        model, masked = census_setup
        naive = infer_all_single_missing(masked, model, engine="naive")
        compiled = infer_all_single_missing(masked, model, engine="compiled")
        for a, b in zip(naive, compiled):
            assert a.outcomes == b.outcomes
            assert (a.probs == b.probs).all()

    def test_derive_engines_agree(self):
        """Full derivation (singles + Gibbs) matches across engines."""
        rng = np.random.default_rng(3)
        relation, _ = load_census(600, rng)
        codes = relation.codes.copy()
        codes[:80, 4] = MISSING_CODE  # single-missing blocks
        codes[80:90, 3] = MISSING_CODE  # double-missing blocks (Gibbs)
        codes[80:90, 4] = MISSING_CODE
        masked = Relation.from_codes(relation.schema, codes)
        # Pin the scalar Gibbs kernel: this test compares the *engines*, and
        # the naive engine has no vectorized path (the vectorized-vs-scalar
        # comparison lives in tests/test_gibbs_vectorized.py).
        kwargs = dict(
            support_threshold=0.01, num_samples=50, burn_in=10, rng=5,
            gibbs_vectorized=False,
        )
        naive = derive_probabilistic_database(masked, engine="naive", **kwargs)
        compiled = derive_probabilistic_database(
            masked, engine="compiled", **kwargs
        )
        assert len(naive.database.blocks) == len(compiled.database.blocks)
        for nb, cb in zip(naive.database.blocks, compiled.database.blocks):
            assert nb.base == cb.base
            assert nb.distribution.outcomes == cb.distribution.outcomes
            # Conditional CPDs agree bit for bit, so the Gibbs chains visit
            # identical states under the same seed: exact equality holds for
            # multi-missing blocks too.
            assert (nb.distribution.probs == cb.distribution.probs).all()

    def test_gibbs_engines_identical_chains(self, census_setup):
        model, _ = census_setup
        t = make_tuple(
            model.schema, {"age": "26-40", "education": "BS"}
        )
        naive = GibbsSampler(model, rng=9, engine="naive")
        compiled = GibbsSampler(model, rng=9, engine="compiled")
        n_chain = naive.chain(t)
        c_chain = compiled.chain(t)
        for _ in range(25):
            assert n_chain.step() == c_chain.step()


def _zero_prob_meta_rule(head, body, weight, probs):
    """A hand-built meta-rule with exact-zero entries.

    The constructor enforces strict positivity (learned CPDs are smoothed),
    so the zero-probability voter of the regression scenario is produced by
    overwriting ``probs`` afterwards — exactly what ad-hoc user code can do.
    """
    card = len(probs)
    rule = MetaRule(head, body, weight, np.full(card, 1.0 / card))
    rule.probs = np.asarray(probs, dtype=np.float64)
    return rule


class TestLogPoolZeroProbability:
    """Regression: LOG_POOL must stay finite with a zero-probability voter."""

    def _zero_voter_lattice(self):
        schema = Schema.from_domains(
            {"a": ["x", "y"], "b": ["u", "v", "w"]}
        )
        point_mass = _zero_prob_meta_rule(
            1, ((0, 0),), 0.5, [1.0, 0.0, 0.0]
        )
        broad = MetaRule(1, (), 1.0, np.array([0.2, 0.3, 0.5]))
        return schema, MRSL(1, [broad, point_mass])

    def test_naive_log_pool_finite_and_normalized(self):
        schema, lattice = self._zero_voter_lattice()
        t = make_tuple(schema, {"a": "x"})
        probs = infer_single_codes(
            t, lattice, VoterChoice.ALL, VotingScheme.LOG_POOL
        )
        assert np.isfinite(probs).all()
        assert probs.sum() == pytest.approx(1.0)
        assert (probs > 0).all()

    def test_compiled_log_pool_matches_naive(self):
        schema, lattice = self._zero_voter_lattice()
        compiled = CompiledMRSL(lattice, schema[1].cardinality)
        t = make_tuple(schema, {"a": "x"})
        want = infer_single_codes(
            t, lattice, VoterChoice.ALL, VotingScheme.LOG_POOL
        )
        got = compiled.infer(t.codes, VoterChoice.ALL, VotingScheme.LOG_POOL)
        assert (got == want).all()

    def test_combine_emits_no_warning(self):
        point = _zero_prob_meta_rule(1, (), 1.0, [1.0, 0.0])
        with np.errstate(divide="raise", invalid="raise"):
            probs = _combine([point], 2, VotingScheme.LOG_POOL)
        assert np.isfinite(probs).all()

    def test_gibbs_with_zero_probability_voter(self):
        """The crash path: NaN CPDs used to kill rng.choice inside sweeps."""
        schema, lattice = self._zero_voter_lattice()
        root_a = MetaRule(0, (), 1.0, np.array([0.6, 0.4]))
        point_a = _zero_prob_meta_rule(0, ((1, 0),), 0.4, [0.0, 1.0])
        model = MRSLModel(schema, [MRSL(0, [root_a, point_a]), lattice])
        sampler = GibbsSampler(
            model, v_choice="all", v_scheme="log_pool", rng=0
        )
        t = make_tuple(schema, {})
        chain = sampler.chain(t)
        for _ in range(20):
            chain.sweep()  # must not raise


class TestMissingCodeSentinel:
    def test_assigned_head_rejected_via_constant(self, census_setup):
        model, masked = census_setup
        complete = None
        for t in masked:
            attr = t.missing_positions[0]
            complete = t.complete_with(
                {model.schema[attr].name: model.schema[attr].domain[0]}
            )
            with pytest.raises(ValueError, match="already assigns"):
                infer_single_codes(complete, model[attr])
            break

    def test_no_stray_sentinel_literals_in_inference(self):
        import inspect

        from repro.core import inference

        source = inspect.getsource(inference)
        assert "!= -1" not in source and "== -1" not in source


class TestLRUCache:
    def test_eviction_order_and_counters(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        info = cache.info()
        assert info["hits"] == 3
        assert info["misses"] == 1
        assert info["evictions"] == 1
        assert info["size"] == 2

    def test_unbounded_mode(self):
        cache = LRUCache(None)
        for i in range(1000):
            cache.put(i, i)
        assert len(cache) == 1000
        assert cache.evictions == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_gibbs_cache_is_bounded(self, census_setup):
        model, _ = census_setup
        sampler = GibbsSampler(model, rng=0, cache_size=4)
        t = make_tuple(model.schema, {"age": "26-40"})
        chain = sampler.chain(t)
        for _ in range(30):
            chain.sweep()
        assert len(sampler._cpd_cache) <= 4
        info = sampler.cache_info()
        assert info["maxsize"] == 4
        assert sampler.cpd_evaluations == info["misses"]
        assert sampler.cache_hits == info["hits"]
        assert info["hits"] + info["misses"] > 0

    def test_bounded_cache_does_not_change_results(self, census_setup):
        model, _ = census_setup
        t = make_tuple(model.schema, {"age": "26-40", "sector": "tech"})
        big = GibbsSampler(model, rng=2, cache_size=None)
        small = GibbsSampler(model, rng=2, cache_size=2)
        b_chain, s_chain = big.chain(t), small.chain(t)
        for _ in range(20):
            assert b_chain.step() == s_chain.step()


class TestEngineSelection:
    def test_validate_engine(self):
        assert validate_engine("naive") == "naive"
        assert validate_engine("compiled") == "compiled"
        with pytest.raises(ValueError, match="engine must be one of"):
            validate_engine("turbo")

    def test_sampler_rejects_unknown_engine(self, census_setup):
        model, _ = census_setup
        with pytest.raises(ValueError, match="engine"):
            GibbsSampler(model, engine="turbo")

    def test_infer_all_rejects_unknown_engine(self, census_setup):
        model, masked = census_setup
        with pytest.raises(ValueError, match="engine"):
            infer_all_single_missing(masked, model, engine="turbo")

    def test_single_missing_blocks_engines_agree(self, census_setup):
        model, masked = census_setup
        naive = single_missing_blocks(
            masked, model, "best", "weighted", engine="naive"
        )
        compiled = single_missing_blocks(
            masked, model, "best", "weighted", engine="compiled"
        )
        for nb, cb in zip(naive, compiled):
            assert nb.base == cb.base
            assert (nb.distribution.probs == cb.distribution.probs).all()

    def test_query_engine_from_relation(self):
        rng = np.random.default_rng(13)
        relation, _ = load_census(400, rng)
        codes = relation.codes.copy()
        codes[:40, 4] = MISSING_CODE
        incomplete = Relation.from_codes(relation.schema, codes)
        qe = QueryEngine.from_relation(
            incomplete, engine="compiled", support_threshold=0.01, rng=0
        )
        assert qe.derive_result is not None
        assert len(qe.db.blocks) == 40
        rows = qe.selection_query(lambda r: r.value("wealth") == "high")
        assert all(0.0 < r.probability <= 1.0 for r in rows)


class TestBatchEngineMechanics:
    def test_cache_reuse_across_batches(self, census_setup):
        model, masked = census_setup
        engine = BatchInferenceEngine(model)
        engine.infer_batch_codes(masked)
        computed = engine.groups_computed
        engine.infer_batch_codes(masked)  # identical batch: all cached
        assert engine.groups_computed == computed
        assert engine.cache.hits > 0

    def test_signature_grouping_shares_work(self, census_setup):
        model, masked = census_setup
        engine = BatchInferenceEngine(model)
        engine.infer_batch_codes(masked)
        assert engine.groups_computed < len(masked)
        assert engine.tuples_served == len(masked)

    def test_multi_missing_rejected(self, census_setup):
        model, _ = census_setup
        t = make_tuple(model.schema, {"age": "26-40"})
        engine = BatchInferenceEngine(model)
        with pytest.raises(ValueError, match="exactly one missing"):
            engine.infer_batch_codes([t])

    def test_conditional_probs_matches_naive(self, census_setup):
        model, masked = census_setup
        engine = BatchInferenceEngine(model, "best", "averaged")
        for t in masked[:20]:
            attr = t.missing_positions[0]
            want = infer_single_codes(t, model[attr], "best", "averaged")
            got = engine.conditional_probs(t.codes, attr)
            assert (got == want).all()

    def test_empty_lattice_uniform_fallback(self):
        schema = Schema.from_domains({"a": ["x", "y"], "b": ["u", "v"]})
        compiled = CompiledMRSL(MRSL(1, []), 2)
        t = make_tuple(schema, {"a": "x"})
        probs = compiled.infer(t.codes, VoterChoice.ALL, VotingScheme.AVERAGED)
        assert (probs == 0.5).all()
