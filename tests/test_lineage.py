"""Unit tests for event lineage and exact probability computation."""

import numpy as np
import pytest

from repro.probdb import (
    FALSE,
    TRUE,
    BlockChoice,
    Distribution,
    ProbabilisticDatabase,
    TupleBlock,
    conjunction,
    disjunction,
    estimate_event_probability,
    event_probability,
    negation,
)
from repro.relational import make_tuple


@pytest.fixture
def db(fig1_schema):
    blocks = [
        TupleBlock(
            make_tuple(fig1_schema, {"age": "30", "edu": "MS", "inc": "50K"}),
            Distribution([("100K",), ("500K",)], [0.6, 0.4]),
        ),
        TupleBlock(
            make_tuple(fig1_schema, {"age": "40", "edu": "HS", "nw": "500K"}),
            Distribution([("50K",), ("100K",)], [0.3, 0.7]),
        ),
    ]
    return ProbabilisticDatabase(fig1_schema, [], blocks)


class TestConstantFolding:
    def test_conjunction_identity_and_zero(self):
        a = BlockChoice(0, "x")
        assert conjunction([TRUE, a]) is a
        assert conjunction([FALSE, a]) is FALSE
        assert conjunction([]) is TRUE

    def test_disjunction_identity_and_one(self):
        a = BlockChoice(0, "x")
        assert disjunction([FALSE, a]) is a
        assert disjunction([TRUE, a]) is TRUE
        assert disjunction([]) is FALSE

    def test_contradictory_block_choices_fold_to_false(self):
        a = BlockChoice(0, "x")
        b = BlockChoice(0, "y")
        assert conjunction([a, b]) is FALSE

    def test_same_choice_twice_is_fine(self):
        a = BlockChoice(0, "x")
        e = conjunction([a, BlockChoice(0, "x")])
        assert e.blocks() == frozenset({0})

    def test_negation_folds(self):
        assert negation(TRUE) is FALSE
        assert negation(FALSE) is TRUE
        a = BlockChoice(0, "x")
        assert negation(negation(a)) is a

    def test_nested_flattening(self):
        a, b, c = BlockChoice(0, "x"), BlockChoice(1, "y"), BlockChoice(2, "z")
        e = conjunction([conjunction([a, b]), c])
        assert e.blocks() == frozenset({0, 1, 2})


class TestEventProbability:
    def test_constants(self, db):
        assert event_probability(TRUE, db) == 1.0
        assert event_probability(FALSE, db) == 0.0

    def test_atom_probability(self, db):
        assert event_probability(BlockChoice(0, ("100K",)), db) == pytest.approx(0.6)

    def test_conjunction_of_independent_blocks(self, db):
        e = BlockChoice(0, ("100K",)) & BlockChoice(1, ("50K",))
        assert event_probability(e, db) == pytest.approx(0.6 * 0.3)

    def test_disjunction_within_block_is_additive(self, db):
        e = BlockChoice(0, ("100K",)) | BlockChoice(0, ("500K",))
        assert event_probability(e, db) == pytest.approx(1.0)

    def test_disjunction_across_blocks_inclusion_exclusion(self, db):
        e = BlockChoice(0, ("100K",)) | BlockChoice(1, ("50K",))
        assert event_probability(e, db) == pytest.approx(0.6 + 0.3 - 0.6 * 0.3)

    def test_negation(self, db):
        e = negation(BlockChoice(0, ("100K",)))
        assert event_probability(e, db) == pytest.approx(0.4)

    def test_contradiction_within_block(self, db):
        e = conjunction([BlockChoice(0, ("100K",)), BlockChoice(0, ("500K",))])
        assert event_probability(e, db) == 0.0

    def test_block_cap_enforced(self, db):
        # Atom conjunctions/disjunctions use closed forms regardless of
        # block count; only mixed shapes fall back to Shannon expansion,
        # where the cap applies.
        e = negation(BlockChoice(0, ("100K",))) & BlockChoice(1, ("50K",))
        with pytest.raises(ValueError, match="capped"):
            event_probability(e, db, max_blocks=1)

    def test_closed_forms_match_expansion(self, db):
        cases = [
            BlockChoice(0, ("100K",)) & BlockChoice(1, ("50K",)),
            BlockChoice(0, ("100K",)) | BlockChoice(1, ("50K",)),
            BlockChoice(0, ("100K",)) | BlockChoice(0, ("500K",)),
        ]
        from repro.probdb.lineage import _Not

        for e in cases:
            closed = event_probability(e, db)
            # Force Shannon expansion by wrapping in a raw double negation
            # (the folding constructors would collapse it back to `e`).
            expanded = event_probability(_Not(_Not(e)), db)
            assert closed == pytest.approx(expanded)


class TestMonteCarlo:
    def test_estimate_converges(self, db):
        rng = np.random.default_rng(0)
        e = BlockChoice(0, ("100K",)) | BlockChoice(1, ("50K",))
        exact = event_probability(e, db)
        estimate = estimate_event_probability(e, db, 20_000, rng)
        assert estimate == pytest.approx(exact, abs=0.01)

    def test_bad_sample_count(self, db):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            estimate_event_probability(TRUE, db, 0, rng)
