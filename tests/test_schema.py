"""Unit tests for repro.relational.schema."""

import pytest

from repro.relational import Attribute, Schema, SchemaError


class TestAttribute:
    def test_basic_construction(self):
        attr = Attribute("age", ["20", "30", "40"])
        assert attr.name == "age"
        assert attr.cardinality == 3
        assert attr.domain == ("20", "30", "40")

    def test_code_and_value_roundtrip(self):
        attr = Attribute("edu", ["HS", "BS", "MS"])
        for i, value in enumerate(attr.domain):
            assert attr.code(value) == i
            assert attr.value(i) == value

    def test_domain_order_defines_codes(self):
        attr = Attribute("x", ["b", "a"])
        assert attr.code("b") == 0
        assert attr.code("a") == 1

    def test_contains(self):
        attr = Attribute("x", [1, 2, 3])
        assert 2 in attr
        assert 9 not in attr

    def test_unknown_value_raises(self):
        attr = Attribute("x", ["a"])
        with pytest.raises(SchemaError, match="not in the domain"):
            attr.code("zzz")

    def test_out_of_range_code_raises(self):
        attr = Attribute("x", ["a", "b"])
        with pytest.raises(SchemaError, match="out of range"):
            attr.value(5)

    def test_empty_domain_rejected(self):
        with pytest.raises(SchemaError, match="empty domain"):
            Attribute("x", [])

    def test_duplicate_domain_values_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Attribute("x", ["a", "a"])

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("", ["a"])

    def test_equality_and_hash(self):
        a1 = Attribute("x", ["a", "b"])
        a2 = Attribute("x", ["a", "b"])
        a3 = Attribute("x", ["b", "a"])
        assert a1 == a2
        assert hash(a1) == hash(a2)
        assert a1 != a3

    def test_integer_domain_values(self):
        attr = Attribute("count", [0, 1, 2])
        assert attr.code(2) == 2
        assert attr.value(0) == 0


class TestSchema:
    def test_from_domains_preserves_order(self):
        schema = Schema.from_domains({"a": [1], "b": [1, 2], "c": [1]})
        assert schema.names == ("a", "b", "c")

    def test_lookup_by_name_and_index(self, fig1_schema):
        assert fig1_schema["age"].name == "age"
        assert fig1_schema[0].name == "age"
        assert fig1_schema.index("nw") == 3

    def test_contains(self, fig1_schema):
        assert "edu" in fig1_schema
        assert "salary" not in fig1_schema

    def test_unknown_attribute_raises(self, fig1_schema):
        with pytest.raises(SchemaError, match="no attribute"):
            fig1_schema.index("zzz")

    def test_len_and_iter(self, fig1_schema):
        assert len(fig1_schema) == 4
        assert [a.name for a in fig1_schema] == ["age", "edu", "inc", "nw"]

    def test_cardinalities(self, fig1_schema):
        assert fig1_schema.cardinalities == (3, 3, 2, 2)

    def test_domain_size_is_cartesian_product(self, fig1_schema):
        assert fig1_schema.domain_size() == 3 * 3 * 2 * 2

    def test_average_cardinality(self, fig1_schema):
        assert fig1_schema.average_cardinality() == pytest.approx(2.5)

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema([Attribute("x", [1]), Attribute("x", [2])])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_equality(self, fig1_schema):
        other = Schema.from_domains(
            {
                "age": ["20", "30", "40"],
                "edu": ["HS", "BS", "MS"],
                "inc": ["50K", "100K"],
                "nw": ["100K", "500K"],
            }
        )
        assert fig1_schema == other
        assert hash(fig1_schema) == hash(other)
