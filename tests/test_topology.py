"""Unit tests for the topology builders."""

import pytest

from repro.bayesnet import (
    crown_topology,
    independent_topology,
    layered_topology,
    line_topology,
    random_dag_topology,
    tree_topology,
)
from repro.bayesnet.topology import Topology


class TestTopology:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Topology(["a", "b"], [2], [])

    def test_unknown_edge_node_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            Topology(["a"], [2], [("a", "zzz")])

    def test_domain_size_and_avg_card(self):
        t = Topology(["a", "b"], [3, 4], [])
        assert t.domain_size() == 12
        assert t.average_cardinality() == pytest.approx(3.5)


class TestFamilies:
    def test_independent_has_no_edges_depth_zero(self):
        t = independent_topology([2, 2, 2])
        assert t.edges == ()
        assert t.depth() == 0

    def test_line_depth_equals_node_count(self):
        t = line_topology([2] * 6)
        assert t.depth() == 6
        assert len(t.edges) == 5

    def test_line_is_a_chain(self):
        t = line_topology([2, 2, 2])
        assert t.edges == (("x0", "x1"), ("x1", "x2"))

    def test_crown_depth_is_two(self):
        for n in (3, 4, 6, 8, 10):
            assert crown_topology([2] * n).depth() == 2

    def test_crown_children_have_parents_in_roots(self):
        t = crown_topology([2] * 6)
        roots = {"x0", "x1", "x2"}
        for parent, child in t.edges:
            assert parent in roots
            assert child not in roots

    def test_crown_too_small_rejected(self):
        with pytest.raises(ValueError):
            crown_topology([2, 2])

    def test_layered_depth_exact(self):
        for depth in (2, 3, 4, 5):
            t = layered_topology([2] * 10, depth=depth, seed=1)
            assert t.depth() == depth

    def test_layered_every_nonroot_has_a_parent(self):
        t = layered_topology([2] * 9, depth=3, seed=0)
        children = {c for _, c in t.edges}
        # Layers of 3: x3..x8 are non-top and must each have a parent.
        assert children == {f"x{i}" for i in range(3, 9)}

    def test_layered_is_deterministic_per_seed(self):
        a = layered_topology([2] * 8, depth=4, seed=7)
        b = layered_topology([2] * 8, depth=4, seed=7)
        assert a.edges == b.edges

    def test_layered_depth_bounds(self):
        with pytest.raises(ValueError):
            layered_topology([2, 2], depth=3)
        with pytest.raises(ValueError):
            layered_topology([2, 2], depth=0)

    def test_tree_structure(self):
        t = tree_topology([2] * 7, branching=2)
        # Node i's parent is (i-1)//2: a complete binary tree.
        assert ("x0", "x1") in t.edges
        assert ("x0", "x2") in t.edges
        assert ("x1", "x3") in t.edges
        assert len(t.edges) == 6

    def test_random_dag_is_acyclic_by_construction(self):
        t = random_dag_topology([2] * 8, edge_prob=0.5, seed=3)
        # Edges only go from lower to higher index.
        for parent, child in t.edges:
            assert int(parent[1:]) < int(child[1:])

    def test_random_dag_edge_prob_bounds(self):
        with pytest.raises(ValueError):
            random_dag_topology([2, 2], edge_prob=1.5)

    def test_random_dag_extremes(self):
        none = random_dag_topology([2] * 5, edge_prob=0.0)
        full = random_dag_topology([2] * 5, edge_prob=1.0)
        assert len(none.edges) == 0
        assert len(full.edges) == 10
