"""The vectorized multi-chain Gibbs kernel: equivalence and determinism.

Three layers of guarantees:

* ``BatchInferenceEngine.conditional_probs_batch`` is bit-identical to the
  scalar ``conditional_probs`` row by row (they share the same LRU
  entries).
* A one-tuple, one-chain :class:`~repro.core.gibbs.GibbsEnsemble` consumes
  the same RNG stream as the scalar :class:`~repro.core.gibbs.GibbsChain`
  and emits identical samples under the same seed; multi-chain /
  multi-tuple ensembles draw in a different (equally admissible) order and
  are checked for KL-closeness against the scalar sampler and the exact
  posterior instead.
* Derivations running the vectorized kernel stay bit-identical across
  executors and worker counts — the PR 3 guarantee extends to the new
  kernel because multi-shard batching never depends on the pool size.
"""

import numpy as np
import pytest

from repro.api.config import DeriveConfig
from repro.api.service import DeriveRequest
from repro.bayesnet import forward_sample_relation, make_network
from repro.bench.metrics import true_joint_posterior
from repro.cli import build_parser, config_from_args
from repro.core import (
    BatchInferenceEngine,
    GibbsSampler,
    derive_probabilistic_database,
    ensemble_sampling,
    learn_mrsl,
    workload_sampling,
)
from repro.exec.plan import MULTI_TUPLES_PER_SHARD, plan_shards
from repro.relational import Relation, make_tuple


@pytest.fixture(scope="module")
def bn8_setup():
    rng = np.random.default_rng(42)
    net = make_network("BN8", rng)
    data = forward_sample_relation(net, 6000, rng)
    model = learn_mrsl(data, support_threshold=0.005).model
    return net, data.schema, model


# -- batched conditional CPDs --------------------------------------------------


class TestConditionalProbsBatch:
    def test_rows_bit_identical_to_scalar(self, bn8_setup):
        net, schema, model = bn8_setup
        engine = BatchInferenceEngine(model)
        rng = np.random.default_rng(0)
        states = rng.integers(0, 2, size=(64, 4)).astype(np.int32)
        for attr in range(4):
            batch = engine.conditional_probs_batch(states, attr)
            assert batch.shape == (64, schema[attr].cardinality)
            for i in range(states.shape[0]):
                scalar = engine.conditional_probs(states[i], attr)
                assert (batch[i] == scalar).all()

    def test_shares_the_scalar_lru_entries(self, bn8_setup):
        net, schema, model = bn8_setup
        engine = BatchInferenceEngine(model)
        states = np.zeros((8, 4), dtype=np.int32)
        engine.conditional_probs(states[0], 1)
        before = engine.cache.misses
        engine.conditional_probs_batch(states, 1)
        # All eight rows share the signature already cached by the scalar
        # call: no new miss.
        assert engine.cache.misses == before

    def test_empty_batch(self, bn8_setup):
        net, schema, model = bn8_setup
        engine = BatchInferenceEngine(model)
        out = engine.conditional_probs_batch(
            np.empty((0, 4), dtype=np.int32), 0
        )
        assert out.shape == (0, schema[0].cardinality)

    def test_unpackable_signature_space_falls_back(self, bn8_setup):
        """When the packed signature space would overflow int64 the
        grouping falls back to row-wise unique with identical results."""
        net, schema, model = bn8_setup
        engine = BatchInferenceEngine(model)
        rng = np.random.default_rng(3)
        states = rng.integers(0, 2, size=(48, 4)).astype(np.int32)
        packed = engine.conditional_probs_batch(states, 1)
        engine._sig_packers = dict.fromkeys(range(4))  # force the fallback
        engine.cache.clear()
        fallback = engine.conditional_probs_batch(states, 1)
        assert (packed == fallback).all()

    def test_counters_track_batches(self, bn8_setup):
        net, schema, model = bn8_setup
        engine = BatchInferenceEngine(model)
        rng = np.random.default_rng(1)
        states = rng.integers(0, 2, size=(32, 4)).astype(np.int32)
        engine.conditional_probs_batch(states, 2)
        assert engine.tuples_served == 32
        assert engine.groups_computed >= 1


# -- scalar vs vectorized chains -------------------------------------------------


class TestEnsembleEquivalence:
    def test_single_chain_same_seed_identical_samples(self, bn8_setup):
        """One tuple, one chain: the ensemble replays the scalar stream."""
        net, schema, model = bn8_setup
        t = make_tuple(schema, {"x0": "v1", "x1": "v0"})

        scalar_sampler = GibbsSampler(model, rng=np.random.default_rng(7))
        chain = scalar_sampler.chain(t)
        chain.run_burn_in(25)
        scalar = [chain.step() for _ in range(120)]

        vector_sampler = GibbsSampler(model, rng=np.random.default_rng(7))
        ensemble = vector_sampler.ensemble([t], chains=1)
        (samples,) = ensemble.run(120, burn_in=25)
        assert scalar == [tuple(int(v) for v in row) for row in samples]

    def test_ensemble_sampling_matches_workload_sampling_single_tuple(
        self, bn8_setup
    ):
        """Whole-pipeline single-tuple parity: identical distributions."""
        net, schema, model = bn8_setup
        t = make_tuple(schema, {"x0": "v0", "x1": "v1"})
        vec, _ = ensemble_sampling(
            model, [t], num_samples=150, burn_in=20, rng=11
        )
        scal, _ = workload_sampling(
            model, [t], num_samples=150, burn_in=20, rng=11
        )
        assert vec[0].distribution.outcomes == scal[0].distribution.outcomes
        assert (
            np.asarray(vec[0].distribution.probs)
            == np.asarray(scal[0].distribution.probs)
        ).all()

    def test_multi_tuple_ensemble_kl_close(self, bn8_setup):
        """Ensembles draw differently but estimate the same joints."""
        net, schema, model = bn8_setup
        tuples = [
            make_tuple(schema, {"x0": "v0", "x1": "v1"}),
            make_tuple(schema, {"x0": "v1", "x3": "v0"}),
            make_tuple(schema, {"x2": "v1"}),
        ]
        vec, _ = ensemble_sampling(
            model, tuples, num_samples=3000, burn_in=200, chains=4, rng=1
        )
        scal, _ = workload_sampling(
            model, tuples, num_samples=3000, burn_in=200, rng=1
        )
        for bv, bs in zip(vec, scal):
            kl = bs.distribution.kl_divergence(bv.distribution)
            assert kl < 0.05, f"vectorized joint drifted: KL={kl}"

    def test_ensemble_tracks_true_posterior(self, bn8_setup):
        """Multi-chain pooling converges on the exact BN posterior."""
        net, schema, model = bn8_setup
        t = make_tuple(schema, {"x0": "v0", "x1": "v1"})
        blocks, _ = ensemble_sampling(
            model, [t], num_samples=3000, burn_in=200, chains=4, rng=2
        )
        true = true_joint_posterior(net, t)
        kl = true.kl_divergence(blocks[0].distribution)
        assert kl < 0.12, f"KL {kl} too large: ensemble not converging"

    def test_duplicates_share_blocks(self, bn8_setup):
        net, schema, model = bn8_setup
        t = make_tuple(schema, {"x0": "v0"})
        blocks, _ = ensemble_sampling(
            model, [t, t], num_samples=50, burn_in=5, rng=0
        )
        assert blocks[0] is blocks[1]

    def test_chains_pool_into_the_sample_budget(self, bn8_setup):
        net, schema, model = bn8_setup
        t = make_tuple(schema, {"x0": "v0"})
        for chains in (1, 3, 4):
            blocks, stats = ensemble_sampling(
                model, [t], num_samples=100, burn_in=10, chains=chains, rng=0
            )
            # ceil(100 / chains) recorded sweeps plus burn-in, per chain.
            sweeps = -(-100 // chains)
            assert stats.total_draws == (10 + sweeps) * chains
            assert stats.burn_in_draws == 10 * chains
            assert stats.shared_tuples == 0
            assert sum(
                1 for _ in blocks[0].distribution.outcomes
            ) == len(blocks[0].distribution)

    def test_ensemble_requires_compiled_engine(self, bn8_setup):
        net, schema, model = bn8_setup
        sampler = GibbsSampler(model, rng=0, engine="naive")
        t = make_tuple(schema, {"x0": "v0"})
        with pytest.raises(ValueError, match="compiled"):
            sampler.ensemble([t])

    def test_ensemble_rejects_bad_inputs(self, bn8_setup):
        net, schema, model = bn8_setup
        sampler = GibbsSampler(model, rng=0)
        t = make_tuple(schema, {"x0": "v0"})
        complete = make_tuple(schema, ["v0"] * 4)
        with pytest.raises(ValueError, match="incomplete"):
            sampler.ensemble([complete])
        with pytest.raises(ValueError, match="distinct"):
            sampler.ensemble([t, t])
        with pytest.raises(ValueError, match="chains"):
            sampler.ensemble([t], chains=0)
        with pytest.raises(ValueError, match="at least one"):
            sampler.ensemble([])

    def test_warm_engine_reuse_is_transparent(self, bn8_setup):
        """A caller's warm engine changes cost, never results."""
        net, schema, model = bn8_setup
        tuples = [
            make_tuple(schema, {"x0": "v0", "x1": "v1"}),
            make_tuple(schema, {"x2": "v0"}),
        ]
        warm = BatchInferenceEngine(model)
        a, _ = ensemble_sampling(
            model, tuples, num_samples=80, burn_in=10, rng=4, batch_engine=warm
        )
        b, _ = ensemble_sampling(model, tuples, num_samples=80, burn_in=10, rng=4)
        for ba, bb in zip(a, b):
            assert ba.distribution.outcomes == bb.distribution.outcomes
            assert (
                np.asarray(ba.distribution.probs)
                == np.asarray(bb.distribution.probs)
            ).all()

    def test_warm_engine_must_wrap_the_same_model(self, bn8_setup):
        net, schema, model = bn8_setup
        rng = np.random.default_rng(0)
        other = learn_mrsl(
            forward_sample_relation(net, 500, rng), support_threshold=0.01
        ).model
        with pytest.raises(ValueError, match="different model"):
            GibbsSampler(model, batch_engine=BatchInferenceEngine(other))


# -- planner batching -------------------------------------------------------------


class TestMultiShardBatching:
    def _multi_workload(self, fig1_relation):
        return [
            t for t in fig1_relation.incomplete_part() if t.num_missing > 1
        ]

    def test_components_pack_into_batches(self, fig1_relation):
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        multi = self._multi_workload(fig1_relation)
        scalar_plan = plan_shards(multi, model, seed=3)
        packed_plan = plan_shards(multi, model, seed=3, multi_batch=128)
        assert len(scalar_plan.multi_shards) > 1
        assert len(packed_plan.multi_shards) == 1
        assert sum(len(s) for s in packed_plan.multi_shards) == len(multi)

    def test_batching_is_worker_count_independent(self, fig1_relation):
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        multi = self._multi_workload(fig1_relation)
        plans = [
            plan_shards(multi, model, workers=w, seed=5, multi_batch=2)
            for w in (1, 2, 8)
        ]
        keyed = [
            sorted((s.key, s.seed) for s in p.multi_shards) for p in plans
        ]
        assert keyed[0] == keyed[1] == keyed[2]

    def test_oversized_component_is_split(self, fig1_schema):
        """Components bigger than the batch target split: the ensemble
        shares nothing across tuples, so splitting costs nothing and keeps
        shard sizes (hence worker load) bounded."""
        # <20,?,?,?> subsumes the other two: one 3-tuple component.
        tuples = [
            make_tuple(fig1_schema, {"age": "20", "edu": "HS"}),
            make_tuple(fig1_schema, {"age": "20", "edu": "BS"}),
            make_tuple(fig1_schema, {"age": "20"}),
        ]
        model = learn_mrsl(
            Relation(fig1_schema, []), support_threshold=0.99
        ).model
        plan = plan_shards(tuples, model, seed=0, multi_batch=2)
        assert [s.groups for s in plan.multi_shards] == [2, 1]
        assert sorted(
            i for s in plan.multi_shards for i in s.indices
        ) == [0, 1, 2]

    def test_duplicates_stay_in_one_shard(self, fig1_schema):
        """Duplicate workload entries share a shard (hence a block) even
        when re-batching splits their component."""
        a = make_tuple(fig1_schema, {"age": "20", "edu": "HS"})
        b = make_tuple(fig1_schema, {"age": "20", "edu": "BS"})
        c = make_tuple(fig1_schema, {"age": "20"})
        model = learn_mrsl(
            Relation(fig1_schema, []), support_threshold=0.99
        ).model
        plan = plan_shards([a, b, c, a], model, seed=0, multi_batch=2)
        for shard in plan.multi_shards:
            count = sum(1 for t in shard.tuples if t == a)
            assert count in (0, 2)

    def test_derive_plans_batched_multi_shards(self, fig1_relation):
        vec = derive_probabilistic_database(
            fig1_relation, support_threshold=0.1, num_samples=40,
            burn_in=5, rng=3,
        )
        scal = derive_probabilistic_database(
            fig1_relation, support_threshold=0.1, num_samples=40,
            burn_in=5, rng=3, gibbs_vectorized=False,
        )
        def multis(result):
            return [
                t for t in result.exec_report.timings if t.kind == "multi"
            ]

        assert len(multis(vec)) < len(multis(scal))
        assert MULTI_TUPLES_PER_SHARD >= sum(t.groups for t in multis(vec))


# -- executor / worker-count determinism for the new kernel -----------------------


def _assert_identical(a, b):
    assert len(a.blocks) == len(b.blocks)
    for ba, bb in zip(a.blocks, b.blocks):
        assert ba.base == bb.base
        assert ba.distribution.outcomes == bb.distribution.outcomes
        assert (
            np.asarray(ba.distribution.probs)
            == np.asarray(bb.distribution.probs)
        ).all()


class TestVectorizedDeterminism:
    CFG = dict(support_threshold=0.1, num_samples=60, burn_in=10, seed=17)

    def test_bit_identical_across_executors_and_workers(self, fig1_relation):
        base = DeriveConfig(gibbs_chains=3, **self.CFG)
        baseline = derive_probabilistic_database(fig1_relation, config=base)
        for executor, workers in (
            ("serial", 1),
            ("thread", 2),
            ("thread", 4),
            ("process", 2),
        ):
            cfg = base.replacing(executor=executor, workers=workers)
            run = derive_probabilistic_database(fig1_relation, config=cfg)
            _assert_identical(baseline.database, run.database)

    def test_vectorized_and_scalar_disagree_on_samples(self, fig1_relation):
        """The kernels are different admissible samplers, not one sampler."""
        vec = derive_probabilistic_database(
            fig1_relation, config=DeriveConfig(**self.CFG)
        )
        scal = derive_probabilistic_database(
            fig1_relation,
            config=DeriveConfig(gibbs_vectorized=False, **self.CFG),
        )
        same = all(
            ba.distribution.outcomes == bb.distribution.outcomes
            and (
                np.asarray(ba.distribution.probs)
                == np.asarray(bb.distribution.probs)
            ).all()
            for ba, bb in zip(vec.database.blocks, scal.database.blocks)
            if ba.base.num_missing > 1
        )
        assert not same

    def test_scalar_oracle_unchanged_by_the_knobs(self, fig1_relation):
        """`gibbs_vectorized=False` reproduces the pre-kernel pipeline:
        gibbs_chains has no effect on the scalar path."""
        a = derive_probabilistic_database(
            fig1_relation,
            config=DeriveConfig(gibbs_vectorized=False, **self.CFG),
        )
        b = derive_probabilistic_database(
            fig1_relation,
            config=DeriveConfig(
                gibbs_vectorized=False, gibbs_chains=5, **self.CFG
            ),
        )
        _assert_identical(a.database, b.database)

    def test_ablation_strategies_stay_scalar(self, fig1_relation):
        """Non-default strategies keep their faithful scalar kernels.

        (``all_at_a_time`` is excluded: the bounded unclamped chain can
        legitimately run out of draws on tiny workloads, which is the
        strawman's point, not a kernel property.)
        """
        cfg = DeriveConfig(strategy="tuple_at_a_time", **self.CFG)
        on = derive_probabilistic_database(fig1_relation, config=cfg)
        off = derive_probabilistic_database(
            fig1_relation,
            config=cfg.replacing(gibbs_vectorized=False),
        )
        _assert_identical(on.database, off.database)


# -- knob plumbing -----------------------------------------------------------------


class TestKnobPlumbing:
    def test_config_validates_gibbs_chains(self):
        with pytest.raises(ValueError, match="gibbs_chains"):
            DeriveConfig(gibbs_chains=0)

    def test_config_rejects_string_gibbs_vectorized(self):
        """bool("off") is True — strings must be rejected, not coerced."""
        for bad in ("off", "on", "false", 0):
            with pytest.raises(ValueError, match="gibbs_vectorized"):
                DeriveConfig(gibbs_vectorized=bad)

    def test_derive_request_rejects_string_gibbs_vectorized(self):
        from repro.api.service import ServiceError

        with pytest.raises(ServiceError, match="gibbs_vectorized"):
            DeriveRequest.from_dict(
                {"rows": [], "gibbs_vectorized": "off"}
            )

    def test_config_round_trips_the_knobs(self):
        cfg = DeriveConfig(gibbs_chains=4, gibbs_vectorized=False)
        again = DeriveConfig.from_dict(cfg.to_dict())
        assert again.gibbs_chains == 4
        assert again.gibbs_vectorized is False

    def test_cli_flags_reach_the_config(self):
        args = build_parser().parse_args(
            ["derive", "data.csv", "--gibbs-chains", "4",
             "--gibbs-vectorized", "off"]
        )
        cfg = config_from_args(args)
        assert cfg.gibbs_chains == 4
        assert cfg.gibbs_vectorized is False

    def test_cli_defaults_match_config_defaults(self):
        args = build_parser().parse_args(["derive", "data.csv"])
        cfg = config_from_args(args)
        assert cfg.gibbs_chains == DeriveConfig().gibbs_chains
        assert cfg.gibbs_vectorized is DeriveConfig().gibbs_vectorized

    def test_derive_request_round_trips_the_knobs(self):
        req = DeriveRequest(
            rows=(("a", "?"),), gibbs_chains=2, gibbs_vectorized=False
        )
        again = DeriveRequest.from_dict(req.to_dict())
        assert again == req
        assert DeriveRequest.from_dict({"rows": []}).gibbs_chains is None

    def test_session_derive_accepts_the_knobs(self, fig1_relation):
        from repro.api.session import Session

        session = Session(
            DeriveConfig(support_threshold=0.1, num_samples=40, burn_in=5,
                         seed=9)
        )
        a = session.derive(fig1_relation, gibbs_chains=2)
        b = session.derive(
            fig1_relation, config={"gibbs_chains": 2}
        )
        _assert_identical(a.database, b.database)
        off = session.derive(fig1_relation, gibbs_vectorized=False)
        assert len(off.database.blocks) == len(a.database.blocks)
