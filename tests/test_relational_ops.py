"""Unit tests for relational operators (select / project / distinct)."""

import pytest

from repro.relational import make_tuple


class TestSelect:
    def test_select_filters_rows(self, fig1_relation):
        young = fig1_relation.select(lambda t: t.value("age") == "20")
        assert len(young) == 7
        assert all(t.value("age") == "20" for t in young)

    def test_select_preserves_schema(self, fig1_relation):
        sub = fig1_relation.select(lambda t: True)
        assert sub.schema == fig1_relation.schema
        assert len(sub) == len(fig1_relation)

    def test_select_empty_result(self, fig1_relation):
        none = fig1_relation.select(lambda t: False)
        assert len(none) == 0

    def test_select_on_missing_values(self, fig1_relation):
        from repro.relational import MISSING

        unknown_income = fig1_relation.select(
            lambda t: t.value("inc") == MISSING
        )
        # t1, t5, t8, t11, t12, t14, t16 have inc = "?".
        assert len(unknown_income) == 7
        assert all(not t.is_complete for t in unknown_income)


class TestProject:
    def test_project_narrows_schema(self, fig1_relation):
        pair = fig1_relation.project(["age", "inc"])
        assert pair.schema.names == ("age", "inc")
        assert len(pair) == len(fig1_relation)

    def test_project_keeps_values(self, fig1_relation, fig1_schema):
        pair = fig1_relation.project(["edu", "nw"])
        assert pair[1].value("edu") == "BS"
        assert pair[1].value("nw") == "100K"

    def test_project_reorders(self, fig1_relation):
        flipped = fig1_relation.project(["nw", "age"])
        assert flipped.schema.names == ("nw", "age")
        assert flipped[3].value("nw") == "500K"
        assert flipped[3].value("age") == "20"

    def test_project_unknown_attribute_raises(self, fig1_relation):
        from repro.relational import SchemaError

        with pytest.raises(SchemaError):
            fig1_relation.project(["bogus"])


class TestDistinct:
    def test_removes_duplicates(self, fig1_schema, fig1_relation):
        from repro.relational import Relation

        doubled = Relation(
            fig1_schema, list(fig1_relation) + list(fig1_relation)
        )
        assert len(doubled.distinct()) == len(fig1_relation.distinct())

    def test_preserves_first_seen_order(self, fig1_schema):
        from repro.relational import Relation

        a = make_tuple(fig1_schema, ["20", "HS", "50K", "100K"])
        b = make_tuple(fig1_schema, ["30", "BS", "100K", "500K"])
        rel = Relation(fig1_schema, [b, a, b, a, a])
        out = rel.distinct()
        assert list(out) == [b, a]

    def test_projection_then_distinct(self, fig1_relation):
        ages = fig1_relation.project(["age"]).distinct()
        values = {t.value("age") for t in ages}
        # 20, 30, 40 and "?".
        assert len(ages) == 4
        assert "20" in values


class TestMRSLGraphExport:
    def test_to_networkx_structure(self, fig1_relation, fig1_schema):
        import networkx as nx

        from repro.core import learn_mrsl

        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        lattice = model["age"]
        graph = lattice.to_networkx(fig1_schema)
        assert isinstance(graph, nx.DiGraph)
        assert graph.number_of_nodes() == len(lattice)
        # The root has no incoming edges; its label matches Fig. 2's top.
        assert graph.in_degree(()) == 0
        assert graph.nodes[()]["label"] == "P(age)"
        # Edges step exactly one level down the lattice.
        for parent, child in graph.edges:
            assert len(child) == len(parent) + 1
        # The graph is a DAG.
        assert nx.is_directed_acyclic_graph(graph)
