"""Unit tests for the BN instance generator and forward sampler."""

import numpy as np
import pytest

from repro.bayesnet import (
    forward_sample_codes,
    forward_sample_relation,
    generate_instance,
    line_topology,
    crown_topology,
)


@pytest.fixture
def line3():
    return line_topology([2, 3, 4])


class TestGenerator:
    def test_structure_matches_topology(self, line3, rng):
        net = generate_instance(line3, rng)
        assert net.names == ("x0", "x1", "x2")
        assert net["x1"].parents == ("x0",)
        assert net["x2"].cardinality == 4

    def test_cpt_rows_are_distributions(self, line3, rng):
        net = generate_instance(line3, rng)
        for v in net:
            sums = v.cpt.sum(axis=-1)
            assert np.allclose(sums, 1.0)
            assert (v.cpt >= 0).all()

    def test_different_rngs_give_different_instances(self, line3):
        a = generate_instance(line3, np.random.default_rng(1))
        b = generate_instance(line3, np.random.default_rng(2))
        assert not np.allclose(a["x0"].cpt, b["x0"].cpt)

    def test_same_seed_reproducible(self, line3):
        a = generate_instance(line3, np.random.default_rng(5))
        b = generate_instance(line3, np.random.default_rng(5))
        for name in a.names:
            assert np.allclose(a[name].cpt, b[name].cpt)

    def test_low_concentration_is_skewed(self, line3):
        net = generate_instance(
            line3, np.random.default_rng(0), concentration=0.05
        )
        # With alpha=0.05 nearly all rows put most mass on one value.
        maxima = [v.cpt.max(axis=-1).mean() for v in net]
        assert np.mean(maxima) > 0.8

    def test_bad_concentration_rejected(self, line3, rng):
        with pytest.raises(ValueError):
            generate_instance(line3, rng, concentration=0.0)


class TestSampler:
    def test_sample_shape_and_ranges(self, line3, rng):
        net = generate_instance(line3, rng)
        codes = forward_sample_codes(net, 100, rng)
        assert codes.shape == (100, 3)
        for col, card in enumerate([2, 3, 4]):
            assert codes[:, col].min() >= 0
            assert codes[:, col].max() < card

    def test_zero_samples(self, line3, rng):
        net = generate_instance(line3, rng)
        assert forward_sample_codes(net, 0, rng).shape == (0, 3)

    def test_negative_samples_rejected(self, line3, rng):
        net = generate_instance(line3, rng)
        with pytest.raises(ValueError):
            forward_sample_codes(net, -1, rng)

    def test_root_marginal_converges(self, chain_network, rng):
        codes = forward_sample_codes(chain_network, 20000, rng)
        freq = (codes[:, 0] == 0).mean()
        assert freq == pytest.approx(0.7, abs=0.02)

    def test_conditional_frequencies_converge(self, chain_network, rng):
        codes = forward_sample_codes(chain_network, 20000, rng)
        mask = codes[:, 0] == 0
        freq = (codes[mask, 1] == 0).mean()
        # P(b=0 | a=0) = 0.9
        assert freq == pytest.approx(0.9, abs=0.02)

    def test_relation_output_is_complete(self, chain_network, rng):
        rel = forward_sample_relation(chain_network, 50, rng)
        assert len(rel) == 50
        assert rel.num_complete == 50
        assert rel.schema.names == ("a", "b", "c")

    def test_crown_sampling_covers_all_columns(self, rng):
        net = generate_instance(crown_topology([2] * 6), rng)
        codes = forward_sample_codes(net, 500, rng)
        # Every column should show both values at this sample size for
        # typical draws (CPTs are strictly positive almost surely).
        assert codes.shape == (500, 6)
