"""Integration tests for the Section VI experimental framework.

These run the full pipeline at reduced scale and assert the qualitative
findings of the paper rather than absolute numbers.
"""

import pytest

from repro.bench import (
    ALL_VOTING_METHODS,
    ExperimentConfig,
    run_learning_experiment,
    run_multi_attribute_experiment,
    run_single_attribute_experiment,
)
from repro.core import VoterChoice, VotingScheme


@pytest.fixture(scope="module")
def quick_config():
    return ExperimentConfig(
        training_size=2000,
        support_threshold=0.01,
        num_instances=1,
        num_splits=1,
        max_test_tuples=40,
        seed=11,
    )


class TestLearningExperiment:
    def test_learning_run_fields(self, quick_config):
        run = run_learning_experiment("BN8", quick_config)
        assert run.network == "BN8"
        assert run.learn_time_sec > 0
        assert run.model_size > 0

    def test_more_data_does_not_shrink_model(self, quick_config):
        small = run_learning_experiment(
            "BN8", quick_config.scaled(training_size=500)
        )
        large = run_learning_experiment(
            "BN8", quick_config.scaled(training_size=4000)
        )
        # Fig. 4: model size stays roughly constant with training size, but
        # sampling noise at tiny sizes can only drop rules below threshold.
        assert large.model_size >= small.model_size * 0.5

    def test_higher_support_smaller_model(self, quick_config):
        low = run_learning_experiment(
            "BN9", quick_config.scaled(support_threshold=0.005)
        )
        high = run_learning_experiment(
            "BN9", quick_config.scaled(support_threshold=0.2)
        )
        assert high.model_size < low.model_size


class TestSingleAttributeExperiment:
    def test_returns_all_methods(self, quick_config):
        runs = run_single_attribute_experiment("BN8", quick_config)
        assert set(runs) == set(ALL_VOTING_METHODS)

    def test_accuracy_above_random(self, quick_config):
        runs = run_single_attribute_experiment("BN8", quick_config)
        best = runs[(VoterChoice.BEST, VotingScheme.AVERAGED)]
        # BN8 has cardinality 2: random top-1 is 0.5.
        assert best.score.top1_accuracy > 0.6
        assert best.score.mean_kl < 0.5

    def test_best_methods_no_worse_than_all(self, quick_config):
        """The Table II finding at 'enough training data'."""
        cfg = quick_config.scaled(training_size=5000, max_test_tuples=60)
        runs = run_single_attribute_experiment("BN8", cfg)
        best_avg = runs[(VoterChoice.BEST, VotingScheme.AVERAGED)].score.mean_kl
        all_wgt = runs[(VoterChoice.ALL, VotingScheme.WEIGHTED)].score.mean_kl
        assert best_avg <= all_wgt + 0.02

    def test_scores_counted(self, quick_config):
        runs = run_single_attribute_experiment("BN8", quick_config)
        for run in runs.values():
            assert run.score.count == 40


class TestMultiAttributeExperiment:
    def test_multi_run_fields(self, quick_config):
        run = run_multi_attribute_experiment(
            "BN8", quick_config.scaled(max_test_tuples=20),
            num_missing=2, num_samples=200, burn_in=40,
        )
        assert run.num_missing == 2
        assert run.stats.total_draws > 0
        assert run.score.count == 20

    def test_dag_not_less_accurate_than_baseline(self, quick_config):
        cfg = quick_config.scaled(max_test_tuples=20)
        dag = run_multi_attribute_experiment(
            "BN8", cfg, num_missing=2, num_samples=400, burn_in=50,
            strategy="tuple_dag",
        )
        base = run_multi_attribute_experiment(
            "BN8", cfg, num_missing=2, num_samples=400, burn_in=50,
            strategy="tuple_at_a_time",
        )
        # Fig. 11's companion claim: "no difference" in accuracy.
        assert abs(dag.score.mean_kl - base.score.mean_kl) < 0.15
        # And the DAG draws no more samples.
        assert dag.stats.total_draws <= base.stats.total_draws
