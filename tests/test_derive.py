"""Integration tests for the end-to-end derive pipeline."""

import pytest

from repro import derive_probabilistic_database
from repro.relational import make_tuple


@pytest.fixture
def result(fig1_relation):
    return derive_probabilistic_database(
        fig1_relation,
        support_threshold=0.1,
        num_samples=300,
        burn_in=50,
        rng=0,
    )


class TestDeriveOnFig1:
    def test_one_block_per_incomplete_tuple(self, result, fig1_relation):
        assert len(result.database.blocks) == fig1_relation.num_incomplete
        assert len(result.database.certain) == fig1_relation.num_complete

    def test_block_bases_cover_incomplete_tuples(self, result, fig1_relation):
        bases = {b.base for b in result.database.blocks}
        assert bases == set(fig1_relation.incomplete_part())

    def test_every_block_sums_to_one(self, result):
        for block in result.database.blocks:
            assert sum(block.distribution.probs) == pytest.approx(1.0)

    def test_single_missing_blocks_cover_full_domain(self, result, fig1_schema):
        for block in result.database.blocks:
            if block.base.num_missing == 1:
                attr = block.missing_names[0]
                assert len(block) == fig1_schema[attr].cardinality

    def test_model_attached(self, result, fig1_schema):
        assert len(result.model) == len(fig1_schema)
        assert result.learn_result.model is result.model

    def test_sampling_stats_populated(self, result, fig1_relation):
        multi = sum(
            1 for t in fig1_relation.incomplete_part() if t.num_missing > 1
        )
        assert multi > 0
        assert result.sampling_stats.total_draws > 0

    def test_reproducible_with_seed(self, fig1_relation):
        a = derive_probabilistic_database(
            fig1_relation, support_threshold=0.1,
            num_samples=200, burn_in=20, rng=5,
        )
        b = derive_probabilistic_database(
            fig1_relation, support_threshold=0.1,
            num_samples=200, burn_in=20, rng=5,
        )
        for ba, bb in zip(a.database.blocks, b.database.blocks):
            assert ba.base == bb.base
            for o in ba.distribution.outcomes:
                assert ba.distribution[o] == pytest.approx(bb.distribution[o])

    def test_strategy_passthrough(self, fig1_relation):
        result = derive_probabilistic_database(
            fig1_relation, support_threshold=0.1,
            num_samples=100, burn_in=10, strategy="tuple_at_a_time", rng=0,
        )
        assert len(result.database.blocks) == fig1_relation.num_incomplete


class TestDeriveEdgeCases:
    def test_fully_complete_relation(self, fig1_relation):
        complete = fig1_relation.complete_part()
        result = derive_probabilistic_database(complete, support_threshold=0.1)
        assert len(result.database.blocks) == 0
        assert result.database.num_possible_worlds() == 1
        assert result.sampling_stats.total_draws == 0

    def test_single_missing_only_uses_no_sampling(self, fig1_schema, fig1_relation):
        from repro.relational import Relation

        rows = list(fig1_relation.complete_part())
        rows.append(make_tuple(fig1_schema, {"age": "20", "edu": "HS", "inc": "50K"}))
        rel = Relation(fig1_schema, rows)
        result = derive_probabilistic_database(rel, support_threshold=0.1)
        assert len(result.database.blocks) == 1
        assert result.sampling_stats.total_draws == 0
