"""Tests for the JSON service layer and HTTP front-end (repro.api.service/http).

The acceptance workflow: config dict -> derive -> JSON query spec ->
QueryRequest over HTTP -> probabilities bit-identical to the in-process
lambda-based QueryEngine path.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api.http import make_server
from repro.api.query import Q, SelectionQuery
from repro.api.service import (
    DeriveRequest,
    DeriveResponse,
    InferenceService,
    InferRequest,
    LearnRequest,
    QueryRequest,
    QueryResponse,
    ServiceError,
)
from repro.api.session import Session
from repro.probdb import QueryEngine
from tests.conftest import FIG1_ROWS

FIG1_SCHEMA = {
    "age": ["20", "30", "40"],
    "edu": ["HS", "BS", "MS"],
    "inc": ["50K", "100K"],
    "nw": ["100K", "500K"],
}
CONFIG = {"support_threshold": 0.1, "num_samples": 200, "burn_in": 20, "seed": 0}
QUERY_SPEC = SelectionQuery(where=Q.eq("nw", "500K"), project=("age",)).to_dict()


@pytest.fixture
def service():
    return InferenceService()


def _derive_payload(**overrides):
    payload = {
        "schema": FIG1_SCHEMA,
        "rows": FIG1_ROWS,
        "config": CONFIG,
        "include_blocks": True,
    }
    payload.update(overrides)
    return payload


class TestRequestRoundTrips:
    @pytest.mark.parametrize(
        "cls,payload",
        [
            (LearnRequest, {"schema": FIG1_SCHEMA, "rows": FIG1_ROWS}),
            (DeriveRequest, {"rows": FIG1_ROWS, "schema": FIG1_SCHEMA}),
            (InferRequest, {"rows": [["20", "HS", "?", "100K"]]}),
            (QueryRequest, {"query": QUERY_SPEC, "database": "d1"}),
        ],
    )
    def test_round_trip(self, cls, payload):
        request = cls.from_dict(payload)
        again = cls.from_dict(json.loads(json.dumps(request.to_dict())))
        assert again == request

    def test_missing_required_field(self):
        with pytest.raises(ServiceError, match="missing required field"):
            QueryRequest.from_dict({"database": "d1"})


class TestJsonWorkflow:
    def test_derive_then_query_matches_lambda_path(self, service):
        derive = DeriveResponse.from_dict(
            service.handle_json("derive", _derive_payload())
        )
        assert derive.num_blocks == len(derive.blocks) > 0
        for block in derive.blocks:
            assert sum(c["prob"] for c in block["completions"]) == pytest.approx(1.0)

        response = QueryResponse.from_dict(
            service.handle_json("query", {"query": QUERY_SPEC})
        )

        # The in-process lambda path over the very same derived database.
        engine = QueryEngine(service.session.database())
        expected = engine.selection_query(
            lambda r: r.value("nw") == "500K", project_to=("age",)
        )
        assert list(response.attributes) == ["age"]
        assert [tuple(r["values"]) for r in response.results] == [
            t.values for t in expected
        ]
        assert [r["probability"] for r in response.results] == [
            t.probability for t in expected  # bit-identical
        ]

    def test_learn_then_infer(self, service):
        learn = service.handle_json(
            "learn",
            {"schema": FIG1_SCHEMA, "rows": FIG1_ROWS, "config": CONFIG},
        )
        assert learn["meta_rules"] > 0
        assert learn["attributes"] == list(FIG1_SCHEMA)

        infer = service.handle_json(
            "infer", {"rows": [["20", "HS", "?", "100K"]]}
        )
        (cpd,) = infer["cpds"]
        assert cpd["attribute"] == "inc"
        assert cpd["outcomes"] == ["50K", "100K"]
        assert sum(cpd["probs"]) == pytest.approx(1.0)

    def test_derive_reuses_registered_model(self, service):
        service.handle_json(
            "learn", {"schema": FIG1_SCHEMA, "rows": FIG1_ROWS, "config": CONFIG}
        )
        model = service.session.model()
        # No schema in the request: rows are read under the model's schema.
        response = service.handle_json(
            "derive",
            {"rows": FIG1_ROWS, "config": CONFIG, "include_blocks": False},
        )
        assert response["num_blocks"] > 0
        assert response["blocks"] == []
        assert service.session.model() is model

    def test_health(self, service):
        health = service.handle_json("health", {})
        assert health["status"] == "ok"
        assert health["config"]["burn_in"] == Session().config.burn_in


class TestErrors:
    def test_unknown_endpoint_is_404(self, service):
        with pytest.raises(ServiceError) as err:
            service.handle_json("bogus", {})
        assert err.value.status == 404

    def test_unknown_database_is_404(self, service):
        with pytest.raises(ServiceError) as err:
            service.handle_json("query", {"query": QUERY_SPEC, "database": "x"})
        assert err.value.status == 404

    def test_derive_without_schema_or_model_is_400(self, service):
        with pytest.raises(ServiceError) as err:
            service.handle_json("derive", {"rows": FIG1_ROWS})
        assert err.value.status == 400

    def test_bad_rows_are_400(self, service):
        with pytest.raises(ServiceError) as err:
            service.handle_json(
                "derive", _derive_payload(rows=[["20", "HS", "50K"]])
            )
        assert err.value.status == 400

    @pytest.mark.parametrize(
        "endpoint,payload",
        [("infer", {"rows": 5}), ("learn", {"schema": 3, "rows": []})],
    )
    def test_malformed_request_shapes_are_400(self, service, endpoint, payload):
        """Request parsing failures surface as ServiceError(400), not as raw
        TypeError/ValueError (which the HTTP layer would turn into a 500)."""
        with pytest.raises(ServiceError) as err:
            service.handle_json(endpoint, payload)
        assert err.value.status == 400


@pytest.fixture
def http_server():
    service = InferenceService()
    service.handle_json("derive", _derive_payload(include_blocks=False))
    server = make_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, server.server_address[1]
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def _post(port, endpoint, payload):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}/v1/{endpoint}",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.loads(response.read())


class TestHttp:
    def test_query_round_trip_bit_identical(self, http_server):
        service, port = http_server
        status, body = _post(port, "query", {"query": QUERY_SPEC})
        assert status == 200

        engine = QueryEngine(service.session.database())
        expected = engine.selection_query(
            lambda r: r.value("nw") == "500K", project_to=("age",)
        )
        assert [r["probability"] for r in body["results"]] == [
            t.probability for t in expected
        ]

    def test_health_endpoint(self, http_server):
        _, port = http_server
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/v1/health", timeout=30
        ) as response:
            body = json.loads(response.read())
        assert body["status"] == "ok"
        assert body["databases"] == ["default"]

    def test_http_errors_carry_json_bodies(self, http_server):
        _, port = http_server
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(port, "bogus", {})
        assert err.value.code == 404
        assert "error" in json.loads(err.value.read())

    def test_census_json_only_workflow_bit_identical(self):
        """The acceptance path: DeriveConfig.from_dict -> Session.derive ->
        JSON query spec -> QueryRequest over HTTP -> probabilities
        bit-identical to the in-process lambda-based QueryEngine path."""
        import numpy as np

        from repro.api.config import DeriveConfig
        from repro.bench import mask_relation
        from repro.datasets import load_census
        from repro.relational import Relation

        config = DeriveConfig.from_dict(
            {
                "support_threshold": 0.002,
                "num_samples": 300,
                "burn_in": 50,
                "seed": 1,
            }
        )
        rng = np.random.default_rng(7)
        data, _ = load_census(3000, rng=rng)
        train, test = data.split(0.98, rng)
        test = Relation.from_codes(test.schema, test.codes[:40])
        masked = mask_relation(test, [1, 2], rng)
        combined = Relation(train.schema, list(train) + list(masked))

        session = Session(config)
        session.derive(combined)
        service = InferenceService(session)
        server = make_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            spec = SelectionQuery(
                where=Q.and_(Q.eq("income", "high"), Q.ne("education", "HS")),
                project=("age",),
            )
            status, body = _post(
                server.server_address[1],
                "query",
                {"query": json.loads(json.dumps(spec.to_dict()))},
            )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

        assert status == 200
        engine = QueryEngine(session.database())
        expected = engine.selection_query(
            lambda r: r.value("income") == "high"
            and r.value("education") != "HS",
            project_to=("age",),
        )
        assert body["results"]  # non-vacuous
        assert [tuple(r["values"]) for r in body["results"]] == [
            t.values for t in expected
        ]
        assert [r["probability"] for r in body["results"]] == [
            t.probability for t in expected  # bit-identical through JSON
        ]

    def test_malformed_json_is_structured_400(self, http_server):
        """Malformed bodies get a structured {"error": ...} 400, never a
        traceback-driven 500 (regression: the old handler only special-cased
        JSONDecodeError, so other body malformations fell through to 500)."""
        _, port = http_server
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/v1/query",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400
        error = json.loads(err.value.read())["error"]
        assert error["status"] == 400
        assert "not valid JSON" in error["message"]

    def test_non_utf8_body_is_structured_400(self, http_server):
        _, port = http_server
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/v1/query",
            data=b"\xff\xfe\xfa",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=30)
        assert err.value.code == 400
        error = json.loads(err.value.read())["error"]
        assert "not valid UTF-8" in error["message"]

    def test_unknown_job_is_404(self, http_server):
        _, port = http_server
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(
                f"http://127.0.0.1:{port}/v1/jobs/no-such-job", timeout=30
            )
        assert err.value.code == 404
        assert "error" in json.loads(err.value.read())
