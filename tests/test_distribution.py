"""Unit tests for Distribution: normalization, KL, top-1, mixtures."""

import numpy as np
import pytest

from repro.probdb import Distribution, mixture
from repro.probdb.distribution import DEFAULT_SMOOTHING_FLOOR


class TestConstruction:
    def test_normalizes_on_construction(self):
        d = Distribution(["a", "b"], [2.0, 2.0])
        assert d["a"] == pytest.approx(0.5)

    def test_from_counts(self):
        d = Distribution.from_counts({"x": 3, "y": 1})
        assert d["x"] == pytest.approx(0.75)

    def test_from_counts_with_outcome_order(self):
        d = Distribution.from_counts({"y": 1}, outcomes=["x", "y"])
        assert d.outcomes == ("x", "y")
        assert d["x"] == 0.0

    def test_uniform(self):
        d = Distribution.uniform(["a", "b", "c", "d"])
        assert all(p == pytest.approx(0.25) for _, p in d)

    def test_point_mass(self):
        d = Distribution.point_mass(["a", "b"], "b")
        assert d["b"] == 1.0

    def test_negative_prob_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            Distribution(["a"], [-0.1])

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            Distribution(["a", "b"], [0.0, 0.0])

    def test_duplicate_outcomes_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Distribution(["a", "a"], [0.5, 0.5])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Distribution([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Distribution(["a", "b"], [1.0])


class TestAccessors:
    def test_getitem_absent_outcome_is_zero(self):
        d = Distribution(["a"], [1.0])
        assert d["zzz"] == 0.0

    def test_top1(self):
        d = Distribution(["a", "b", "c"], [0.2, 0.5, 0.3])
        assert d.top1() == "b"

    def test_top1_tie_breaks_by_order(self):
        d = Distribution(["a", "b"], [0.5, 0.5])
        assert d.top1() == "a"

    def test_entropy_of_point_mass_is_zero(self):
        d = Distribution.point_mass(["a", "b"], "a")
        assert d.entropy() == pytest.approx(0.0)

    def test_entropy_of_uniform_is_log_n(self):
        d = Distribution.uniform(list(range(8)))
        assert d.entropy() == pytest.approx(np.log(8))


class TestKL:
    def test_kl_of_identical_is_zero(self):
        d = Distribution(["a", "b"], [0.3, 0.7])
        assert d.kl_divergence(d) == pytest.approx(0.0)

    def test_kl_is_positive_for_different(self):
        p = Distribution(["a", "b"], [0.9, 0.1])
        q = Distribution(["a", "b"], [0.5, 0.5])
        assert p.kl_divergence(q) > 0

    def test_kl_matches_closed_form(self):
        p = Distribution(["a", "b"], [0.75, 0.25])
        q = Distribution(["a", "b"], [0.5, 0.5])
        expected = 0.75 * np.log(1.5) + 0.25 * np.log(0.5)
        assert p.kl_divergence(q) == pytest.approx(expected)

    def test_kl_matches_outcomes_by_value_not_position(self):
        p = Distribution(["a", "b"], [0.3, 0.7])
        q = Distribution(["b", "a"], [0.7, 0.3])
        assert p.kl_divergence(q) == pytest.approx(0.0)

    def test_kl_infinite_when_support_not_covered(self):
        p = Distribution(["a", "b"], [0.5, 0.5])
        q = Distribution.point_mass(["a", "b"], "a")
        assert p.kl_divergence(q) == float("inf")

    def test_kl_asymmetric(self):
        p = Distribution(["a", "b"], [0.9, 0.1])
        q = Distribution(["a", "b"], [0.6, 0.4])
        assert p.kl_divergence(q) != pytest.approx(q.kl_divergence(p))


class TestTransforms:
    def test_smoothed_is_strictly_positive(self):
        d = Distribution(["a", "b", "c"], [1.0, 0.0, 0.0])
        s = d.smoothed()
        assert all(p >= DEFAULT_SMOOTHING_FLOOR / 2 for p in s.probs)
        assert s.probs.sum() == pytest.approx(1.0)

    def test_smoothed_preserves_ranking(self):
        d = Distribution(["a", "b"], [0.8, 0.2])
        assert d.smoothed().top1() == "a"

    def test_reordered(self):
        d = Distribution(["a", "b"], [0.3, 0.7])
        r = d.reordered(["b", "a"])
        assert r.outcomes == ("b", "a")
        assert r["b"] == pytest.approx(0.7)

    def test_total_variation(self):
        p = Distribution(["a", "b"], [1.0, 0.0])
        q = Distribution(["a", "b"], [0.0, 1.0])
        assert p.total_variation(q) == pytest.approx(1.0)


class TestSampling:
    def test_sample_frequencies_converge(self, rng):
        d = Distribution(["a", "b"], [0.8, 0.2])
        draws = d.sample_many(5000, rng)
        freq_a = draws.count("a") / 5000
        assert freq_a == pytest.approx(0.8, abs=0.03)

    def test_point_mass_always_sampled(self, rng):
        d = Distribution.point_mass(["a", "b"], "b")
        assert all(v == "b" for v in d.sample_many(50, rng))


class TestMixture:
    def test_unweighted_mixture_is_mean(self):
        p = Distribution(["a", "b"], [1.0, 0.0])
        q = Distribution(["a", "b"], [0.0, 1.0])
        m = mixture([p, q])
        assert m["a"] == pytest.approx(0.5)

    def test_weighted_mixture(self):
        p = Distribution(["a", "b"], [1.0, 0.0])
        q = Distribution(["a", "b"], [0.0, 1.0])
        m = mixture([p, q], weights=[3, 1])
        assert m["a"] == pytest.approx(0.75)

    def test_mixture_over_union_of_outcomes(self):
        p = Distribution(["a"], [1.0])
        q = Distribution(["b"], [1.0])
        m = mixture([p, q])
        assert set(m.outcomes) == {"a", "b"}

    def test_empty_mixture_rejected(self):
        with pytest.raises(ValueError):
            mixture([])

    def test_bad_weights_rejected(self):
        p = Distribution(["a"], [1.0])
        with pytest.raises(ValueError):
            mixture([p], weights=[-1])
        with pytest.raises(ValueError):
            mixture([p, p], weights=[1])
