"""Unit tests for Relation: Rc/Ri split and support counting."""

import numpy as np
import pytest

from repro.relational import Relation, SchemaError, make_tuple


class TestConstruction:
    def test_empty_relation(self, fig1_schema):
        rel = Relation(fig1_schema)
        assert len(rel) == 0
        assert rel.num_complete == 0

    def test_from_rows(self, fig1_relation):
        assert len(fig1_relation) == 17

    def test_from_codes_validates_shape(self, fig1_schema):
        with pytest.raises(SchemaError):
            Relation.from_codes(fig1_schema, np.zeros((3, 2), dtype=np.int32))

    def test_schema_mismatch_rejected(self, fig1_schema, fig1_relation):
        from repro.relational import Schema

        other = Schema.from_domains({"x": [1, 2]})
        t = make_tuple(other, {"x": 1})
        with pytest.raises(SchemaError):
            fig1_relation.append(t)

    def test_append_and_extend(self, fig1_schema):
        rel = Relation(fig1_schema)
        t = make_tuple(fig1_schema, ["20", "HS", "50K", "100K"])
        rel.append(t)
        rel.extend([t, t])
        assert len(rel) == 3

    def test_getitem_roundtrip(self, fig1_relation, fig1_schema):
        t = fig1_relation[1]
        assert t == make_tuple(fig1_schema, ["20", "BS", "50K", "100K"])

    def test_iteration_yields_tuples(self, fig1_relation):
        tuples = list(fig1_relation)
        assert len(tuples) == 17
        assert tuples[0].value("age") == "20"


class TestSplit:
    def test_complete_incomplete_partition(self, fig1_relation):
        # Fig. 1 has 8 points (t2,t4,t6,t7,t9,t13,t15,t17) and 9 incomplete.
        assert fig1_relation.num_complete == 8
        assert fig1_relation.num_incomplete == 9
        assert len(fig1_relation.complete_part()) == 8
        assert len(fig1_relation.incomplete_part()) == 9

    def test_complete_part_is_all_points(self, fig1_relation):
        assert all(t.is_complete for t in fig1_relation.complete_part())

    def test_incomplete_part_has_missing(self, fig1_relation):
        assert all(not t.is_complete for t in fig1_relation.incomplete_part())

    def test_random_split_partitions_rows(self, fig1_relation, rng):
        a, b = fig1_relation.split(0.5, rng)
        assert len(a) + len(b) == len(fig1_relation)

    def test_split_fraction_bounds(self, fig1_relation, rng):
        with pytest.raises(ValueError):
            fig1_relation.split(0.0, rng)
        with pytest.raises(ValueError):
            fig1_relation.split(1.0, rng)


class TestSupport:
    def test_paper_support_example(self, fig1_schema, fig1_relation):
        # supp(t1) = 3/8: points t4, t6, t7 match <age=20, edu=HS>.
        t1 = make_tuple(fig1_schema, {"age": "20", "edu": "HS"})
        assert fig1_relation.count_matches(t1) == 3
        assert fig1_relation.support(t1) == pytest.approx(3 / 8)

    def test_support_of_fully_missing_is_one(self, fig1_schema, fig1_relation):
        t = make_tuple(fig1_schema, {})
        assert fig1_relation.support(t) == pytest.approx(1.0)

    def test_support_counts_only_points(self, fig1_schema, fig1_relation):
        # <age=20> appears in many incomplete rows; only points may count.
        t = make_tuple(fig1_schema, {"age": "20"})
        assert fig1_relation.count_matches(t) == 4  # t2, t4, t6, t7

    def test_zero_support(self, fig1_schema, fig1_relation):
        t = make_tuple(fig1_schema, {"age": "30", "edu": "MS"})
        assert fig1_relation.support(t) == 0.0

    def test_support_on_empty_relation(self, fig1_schema):
        rel = Relation(fig1_schema)
        t = make_tuple(fig1_schema, {"age": "20"})
        assert rel.support(t) == 0.0

    def test_codes_view_is_readonly(self, fig1_relation):
        with pytest.raises(ValueError):
            fig1_relation.codes[0, 0] = 0
