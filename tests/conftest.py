"""Shared fixtures: the paper's Figure 1 relation and small seeded models."""

import numpy as np
import pytest

from repro.bayesnet import BayesianNetwork, Variable
from repro.relational import Relation, Schema

#: The incomplete matchmaking relation of the paper's Fig. 1 (ids t1..t17).
FIG1_ROWS = [
    ["20", "HS", "?", "?"],      # t1
    ["20", "BS", "50K", "100K"],  # t2
    ["20", "?", "50K", "?"],      # t3
    ["20", "HS", "100K", "500K"],  # t4
    ["20", "?", "?", "?"],        # t5
    ["20", "HS", "50K", "100K"],  # t6
    ["20", "HS", "50K", "500K"],  # t7
    ["?", "HS", "?", "?"],        # t8
    ["30", "BS", "100K", "100K"],  # t9
    ["30", "?", "100K", "?"],     # t10
    ["30", "HS", "?", "?"],       # t11
    ["30", "MS", "?", "?"],       # t12
    ["40", "BS", "100K", "100K"],  # t13
    ["40", "HS", "?", "?"],       # t14
    ["40", "BS", "50K", "500K"],  # t15
    ["40", "HS", "?", "500K"],    # t16
    ["40", "HS", "100K", "500K"],  # t17
]


@pytest.fixture
def fig1_schema():
    return Schema.from_domains(
        {
            "age": ["20", "30", "40"],
            "edu": ["HS", "BS", "MS"],
            "inc": ["50K", "100K"],
            "nw": ["100K", "500K"],
        }
    )


@pytest.fixture
def fig1_relation(fig1_schema):
    return Relation.from_rows(fig1_schema, FIG1_ROWS)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


@pytest.fixture
def chain_network():
    """A tiny hand-parameterized chain a -> b -> c with known posteriors."""
    a = Variable("a", 2, (), np.array([0.7, 0.3]))
    b = Variable("b", 2, ("a",), np.array([[0.9, 0.1], [0.2, 0.8]]))
    c = Variable("c", 2, ("b",), np.array([[0.6, 0.4], [0.3, 0.7]]))
    return BayesianNetwork([a, b, c])
