"""Unit tests for Algorithm 1 (MRSL learning)."""

import pytest

from repro.bayesnet import forward_sample_relation, make_network
from repro.core import learn_mrsl
from repro.relational import Relation


class TestLearnOnFig1:
    def test_returns_model_and_itemsets(self, fig1_relation):
        result = learn_mrsl(fig1_relation, support_threshold=0.1)
        assert result.model_size == result.model.size()
        assert result.itemsets.num_points == 8

    def test_every_attribute_has_root_rule(self, fig1_relation):
        result = learn_mrsl(fig1_relation, support_threshold=0.1)
        for lattice in result.model:
            assert lattice.root is not None, "P(a) must always be mined"

    def test_root_cpd_matches_value_frequencies(self, fig1_relation, fig1_schema):
        result = learn_mrsl(fig1_relation, support_threshold=0.1)
        root = result.model["age"].root
        # Among the 8 points: age=20 x4, 30 x1, 40 x3.
        a = fig1_schema["age"]
        assert root.probs[a.code("20")] == pytest.approx(0.5, abs=0.01)
        assert root.probs[a.code("30")] == pytest.approx(0.125, abs=0.01)
        assert root.probs[a.code("40")] == pytest.approx(0.375, abs=0.01)

    def test_learning_ignores_incomplete_rows(self, fig1_relation):
        full = learn_mrsl(fig1_relation, support_threshold=0.1)
        only_complete = learn_mrsl(
            fig1_relation.complete_part(), support_threshold=0.1
        )
        assert full.model_size == only_complete.model_size

    def test_higher_support_gives_smaller_model(self, fig1_relation):
        low = learn_mrsl(fig1_relation, support_threshold=0.05)
        high = learn_mrsl(fig1_relation, support_threshold=0.4)
        assert high.model_size < low.model_size

    def test_max_itemsets_controls_depth(self, fig1_relation):
        capped = learn_mrsl(fig1_relation, support_threshold=0.05, max_itemsets=3)
        assert capped.itemsets.truncated

    def test_meta_rule_weights_are_supports(self, fig1_relation, fig1_schema):
        result = learn_mrsl(fig1_relation, support_threshold=0.1)
        itemsets = result.itemsets
        for lattice in result.model:
            for m in lattice:
                assert m.weight == pytest.approx(itemsets.support(m.body))


class TestLearnOnSampledData:
    def test_cpds_approach_truth_with_data(self, rng):
        net = make_network("BN8", rng)
        data = forward_sample_relation(net, 8000, rng)
        result = learn_mrsl(data, support_threshold=0.01)
        # Each root CPD should be close to the variable's true marginal.
        from repro.bayesnet import marginal

        for i, name in enumerate(net.names):
            true = marginal(net, name)
            learned = result.model[i].root
            for code in range(net[name].cardinality):
                assert learned.probs[code] == pytest.approx(
                    true[code], abs=0.05
                )

    def test_empty_training_data_yields_empty_lattices(self, fig1_schema):
        result = learn_mrsl(Relation(fig1_schema), support_threshold=0.1)
        assert result.model_size == 0
