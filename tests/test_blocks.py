"""Unit tests for TupleBlock (the Δt objects)."""

import pytest

from repro.probdb import Distribution, TupleBlock
from repro.relational import SchemaError, make_tuple


@pytest.fixture
def t12(fig1_schema):
    # Paper's t12: <age=30, edu=MS, inc=?, nw=?>
    return make_tuple(fig1_schema, {"age": "30", "edu": "MS"})


@pytest.fixture
def delta_t12(fig1_schema, t12):
    # The Fig. 1 call-out: Δt12 over (inc, nw).
    dist = Distribution(
        [("50K", "100K"), ("50K", "500K"), ("100K", "100K"), ("100K", "500K")],
        [0.30, 0.45, 0.10, 0.15],
    )
    return TupleBlock(t12, dist)


class TestConstruction:
    def test_missing_names_in_position_order(self, delta_t12):
        assert delta_t12.missing_names == ("inc", "nw")

    def test_complete_base_rejected(self, fig1_schema):
        point = make_tuple(fig1_schema, ["20", "HS", "50K", "100K"])
        with pytest.raises(SchemaError, match="incomplete"):
            TupleBlock(point, Distribution([("x",)], [1.0]))

    def test_outcomes_outside_domain_rejected(self, t12):
        bad = Distribution([("50K", "bogus")], [1.0])
        with pytest.raises(SchemaError, match="outside"):
            TupleBlock(t12, bad)

    def test_partial_outcome_space_allowed(self, t12):
        # Gibbs may report only observed outcomes for huge spaces.
        dist = Distribution([("50K", "100K")], [1.0])
        block = TupleBlock(t12, dist)
        assert len(block) == 1


class TestCompletions:
    def test_completions_match_fig1_callout(self, delta_t12):
        rows = {
            tuple(t.values()): p for t, p in delta_t12.completions()
        }
        assert rows[("30", "MS", "50K", "500K")] == pytest.approx(0.45)
        assert len(rows) == 4

    def test_completions_are_complete_tuples(self, delta_t12):
        assert all(t.is_complete for t, _ in delta_t12.completions())

    def test_completion_probabilities_sum_to_one(self, delta_t12):
        assert sum(p for _, p in delta_t12.completions()) == pytest.approx(1.0)

    def test_most_probable_completion(self, delta_t12):
        best = delta_t12.most_probable_completion()
        # t12.2: inc=50K, nw=500K with probability 0.45.
        assert best.value("inc") == "50K"
        assert best.value("nw") == "500K"


class TestMarginal:
    def test_marginal_inc(self, delta_t12):
        m = delta_t12.marginal("inc")
        assert m["50K"] == pytest.approx(0.75)
        assert m["100K"] == pytest.approx(0.25)

    def test_marginal_nw(self, delta_t12):
        m = delta_t12.marginal("nw")
        assert m["100K"] == pytest.approx(0.40)
        assert m["500K"] == pytest.approx(0.60)

    def test_marginal_of_known_attribute_rejected(self, delta_t12):
        with pytest.raises(SchemaError, match="not missing"):
            delta_t12.marginal("age")

    def test_certain_block(self, fig1_schema, t12):
        block = TupleBlock.certain(t12, ("100K", "500K"))
        assert block.most_probable_completion().value("inc") == "100K"
        assert block.distribution[("100K", "500K")] == pytest.approx(1.0)
