"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    CARS_SCHEMA,
    cars_class,
    census_network,
    load_cars,
    load_census,
)


class TestCensus:
    def test_load_shapes(self):
        rel, net = load_census(500, rng=0)
        assert len(rel) == 500
        assert rel.num_complete == 500
        assert rel.schema.names == (
            "age", "education", "sector", "income", "wealth"
        )
        assert net.names == rel.schema.names

    def test_network_is_fixed(self):
        a = census_network()
        b = census_network()
        for name in a.names:
            assert np.allclose(a[name].cpt, b[name].cpt)

    def test_cpts_are_valid(self):
        net = census_network()
        for v in net:
            assert np.allclose(v.cpt.sum(axis=-1), 1.0)
            assert (v.cpt >= 0).all()

    def test_income_monotone_in_education(self):
        """P(income=high) rises with education at fixed age/sector."""
        net = census_network()
        cpt = net["income"].cpt  # (age, edu, sector, income)
        high = cpt[1, :, 1, 2]
        assert high[0] < high[1] < high[2]

    def test_reproducible(self):
        a, _ = load_census(100, rng=7)
        b, _ = load_census(100, rng=7)
        assert (a.codes == b.codes).all()

    def test_exact_posteriors_available(self):
        from repro.bench.metrics import true_single_posterior
        from repro.relational import make_tuple

        rel, net = load_census(10, rng=0)
        t = make_tuple(
            rel.schema,
            {"age": "41-60", "education": "MS+", "sector": "tech",
             "wealth": "high"},
        )
        posterior = true_single_posterior(net, t)
        assert sum(posterior.probs) == pytest.approx(1.0)
        # A high-wealth, well-educated tech profile should skew to high income.
        assert posterior.top1() == "high"

    def test_mrsl_learns_census(self):
        from repro.core import learn_mrsl

        rel, net = load_census(4000, rng=1)
        result = learn_mrsl(rel, support_threshold=0.01)
        assert result.model_size > 50


class TestCars:
    def test_rule_unacceptable_cases(self):
        assert cars_class("low", "low", "4plus", "more", "low") == "unacc"
        assert cars_class("low", "low", "4plus", "2", "high") == "unacc"
        assert cars_class("vhigh", "high", "4plus", "more", "high") == "unacc"

    def test_rule_good_case(self):
        assert cars_class("low", "low", "4plus", "more", "high") == "good"

    def test_rule_acceptable_case(self):
        assert cars_class("med", "med", "3", "4", "med") == "acc"

    def test_load_without_noise_matches_rule(self):
        rel = load_cars(300, rng=0, label_noise=0.0)
        for t in rel:
            values = t.values()
            assert values[5] == cars_class(*values[:5])

    def test_label_noise_rate(self):
        clean = load_cars(4000, rng=3, label_noise=0.0)
        noisy = load_cars(4000, rng=3, label_noise=0.3)
        disagreements = (
            clean.codes[:, 5] != noisy.codes[:, 5]
        ).mean()
        # 30% resampled uniformly over 3 classes -> ~20% visible changes.
        assert disagreements == pytest.approx(0.2, abs=0.03)

    def test_schema(self):
        assert CARS_SCHEMA.names[-1] == "class"
        assert CARS_SCHEMA.domain_size() == 4 * 4 * 3 * 3 * 3 * 3

    def test_noise_validation(self):
        with pytest.raises(ValueError):
            load_cars(10, rng=0, label_noise=1.0)

    def test_mrsl_predicts_class(self):
        """MRSL recovers the near-functional class dependency."""
        from repro.bench import mask_relation
        from repro.core import infer_single, learn_mrsl

        rng = np.random.default_rng(4)
        rel = load_cars(6000, rng=rng, label_noise=0.02)
        train, test = rel.split(0.9, rng)
        model = learn_mrsl(train, support_threshold=0.002).model
        hits = 0
        n = 80
        for i in range(n):
            t = test[i]
            masked = t.restrict([0, 1, 2, 3, 4])  # hide the class
            pred = infer_single(masked, model["class"], "best", "averaged")
            hits += pred.top1() == t.value("class")
        # Rule + 2% noise: the ensemble should get the vast majority right.
        assert hits / n > 0.75
