"""Unit tests for Apriori frequent-itemset mining."""

import itertools

import numpy as np
import pytest

from repro.core import mine_frequent_itemsets
from repro.core.itemsets import (
    EMPTY_ITEMSET,
    is_subset,
    itemset_attributes,
    make_itemset,
)
from repro.relational import Relation


@pytest.fixture
def rc(fig1_relation):
    return fig1_relation.complete_part()


def brute_force_supports(relation, threshold):
    """All itemsets (any size) meeting the threshold, by enumeration."""
    codes = relation.codes
    n = codes.shape[0]
    schema = relation.schema
    items = [
        (attr, value)
        for attr in range(len(schema))
        for value in range(schema[attr].cardinality)
    ]
    out = {EMPTY_ITEMSET: 1.0}
    for size in range(1, len(schema) + 1):
        for combo in itertools.combinations(items, size):
            attrs = [a for a, _ in combo]
            if len(set(attrs)) != size:
                continue
            mask = np.ones(n, dtype=bool)
            for attr, value in combo:
                mask &= codes[:, attr] == value
            supp = mask.sum() / n
            if supp >= threshold:
                out[tuple(sorted(combo))] = supp
    return out


class TestHelpers:
    def test_make_itemset_canonicalizes(self):
        assert make_itemset([(2, 1), (0, 3)]) == ((0, 3), (2, 1))

    def test_make_itemset_rejects_duplicate_attribute(self):
        with pytest.raises(ValueError, match="twice"):
            make_itemset([(0, 1), (0, 2)])

    def test_itemset_attributes(self):
        assert itemset_attributes(((0, 3), (2, 1))) == (0, 2)

    def test_is_subset(self):
        small = ((0, 1),)
        large = ((0, 1), (1, 0))
        assert is_subset(small, large)
        assert not is_subset(large, small)
        assert is_subset(EMPTY_ITEMSET, small)


class TestMining:
    def test_empty_itemset_always_present(self, rc):
        fi = mine_frequent_itemsets(rc, threshold=0.5)
        assert EMPTY_ITEMSET in fi
        assert fi.support(EMPTY_ITEMSET) == 1.0

    def test_matches_brute_force(self, rc):
        for theta in (0.1, 0.25, 0.5):
            fi = mine_frequent_itemsets(rc, threshold=theta)
            expected = brute_force_supports(rc, theta)
            got = dict(fi.items())
            assert got.keys() == expected.keys()
            for k in expected:
                assert got[k] == pytest.approx(expected[k])

    def test_paper_support_value(self, fig1_schema, rc):
        # supp(edu=HS) = 4/8 among the Fig. 1 points (t4, t6, t7, t17).
        fi = mine_frequent_itemsets(rc, threshold=0.1)
        edu_hs = ((fig1_schema.index("edu"), fig1_schema["edu"].code("HS")),)
        assert fi.support(edu_hs) == pytest.approx(4 / 8)

    def test_higher_threshold_shrinks_result(self, rc):
        low = mine_frequent_itemsets(rc, threshold=0.05)
        high = mine_frequent_itemsets(rc, threshold=0.5)
        assert len(high) < len(low)
        # Monotonicity: high-threshold itemsets are a subset.
        assert set(high).issubset(set(low))

    def test_downward_closure(self, rc):
        fi = mine_frequent_itemsets(rc, threshold=0.2)
        for itemset in fi:
            for m in range(len(itemset)):
                subset = itemset[:m] + itemset[m + 1 :]
                assert subset in fi

    def test_support_monotone_under_subset(self, rc):
        fi = mine_frequent_itemsets(rc, threshold=0.1)
        for itemset in fi:
            for m in range(len(itemset)):
                subset = itemset[:m] + itemset[m + 1 :]
                assert fi.support(subset) >= fi.support(itemset) - 1e-12

    def test_max_itemsets_truncation(self, rc):
        fi = mine_frequent_itemsets(rc, threshold=0.01, max_itemsets=2)
        assert fi.truncated
        # The capped round's own itemsets are still recorded (paper: "stop
        # after round k"), deeper ones are not explored.
        full = mine_frequent_itemsets(rc, threshold=0.01)
        assert len(fi) <= len(full)

    def test_untruncated_flag(self, rc):
        fi = mine_frequent_itemsets(rc, threshold=0.2)
        assert not fi.truncated

    def test_incomplete_rows_ignored(self, fig1_relation):
        # Mining over the mixed relation must equal mining over Rc.
        mixed = mine_frequent_itemsets(fig1_relation, threshold=0.2)
        pure = mine_frequent_itemsets(
            fig1_relation.complete_part(), threshold=0.2
        )
        assert dict(mixed.items()) == dict(pure.items())

    def test_empty_relation(self, fig1_schema):
        fi = mine_frequent_itemsets(Relation(fig1_schema), threshold=0.1)
        assert len(fi) == 1  # just the empty itemset
        assert fi.num_points == 0

    def test_threshold_bounds(self, rc):
        with pytest.raises(ValueError):
            mine_frequent_itemsets(rc, threshold=0.0)
        with pytest.raises(ValueError):
            mine_frequent_itemsets(rc, threshold=1.5)

    def test_of_size_and_max_size(self, rc):
        fi = mine_frequent_itemsets(rc, threshold=0.25)
        assert all(len(s) == 1 for s in fi.of_size(1))
        assert fi.max_size() >= 2
