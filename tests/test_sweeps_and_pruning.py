"""Tests for the sweep runner, model pruning and block top-k."""

import numpy as np
import pytest

from repro.bench import Sweep, SweepResult
from repro.core import infer_single, learn_mrsl
from repro.probdb import Distribution, TupleBlock
from repro.relational import SchemaError, Relation, make_tuple


class TestSweep:
    def test_points_cover_grid(self):
        sweep = Sweep("s", grid={"a": [1, 2], "b": ["x", "y", "z"]})
        points = list(sweep.points())
        assert len(points) == len(sweep) == 6
        assert {"a": 2, "b": "z"} in points

    def test_empty_grid_has_one_point(self):
        sweep = Sweep("s")
        assert list(sweep.points()) == [{}]
        assert len(sweep) == 1

    def test_run_calls_function_per_point(self):
        sweep = Sweep("s", grid={"a": [1, 2, 3]})
        results = sweep.run(lambda a: a * 10)
        assert [r.value for r in results] == [10, 20, 30]
        assert all(r.elapsed_sec >= 0 for r in results)

    def test_progress_callback(self):
        seen = []
        sweep = Sweep("s", grid={"a": [1, 2]})
        sweep.run(lambda a: a, on_point=lambda p, v: seen.append((p["a"], v)))
        assert seen == [(1, 1), (2, 2)]

    def test_save_load_roundtrip(self, tmp_path):
        sweep = Sweep("fig", grid={"x": [1, 2]})
        results = sweep.run(lambda x: x + 0.5)
        path = tmp_path / "sweep.json"
        sweep.save(results, path)
        loaded_sweep, loaded = Sweep.load(path)
        assert loaded_sweep.name == "fig"
        assert [r.value for r in loaded] == [1.5, 2.5]
        assert loaded[0].params == {"x": 1}

    def test_tabulate(self):
        results = [
            SweepResult({"x": 1}, {"kl": 0.5}, 0.0),
            SweepResult({"x": 2}, {"kl": 0.25}, 0.0),
        ]
        series = Sweep.tabulate(results, "x", value_key=lambda v: v["kl"])
        assert series == [(1, 0.5), (2, 0.25)]


class TestModelPruning:
    @pytest.fixture
    def model(self, fig1_relation):
        return learn_mrsl(fig1_relation, support_threshold=0.1).model

    def test_pruning_shrinks_model(self, model):
        pruned = model.pruned(0.4)
        assert pruned.size() < model.size()

    def test_roots_always_survive(self, model):
        pruned = model.pruned(1.0)
        for lattice in pruned:
            assert lattice.root is not None
            # Only empty bodies have weight 1 by definition here.
            assert all(m.body == () for m in lattice)

    def test_pruned_weights_respect_threshold(self, model):
        pruned = model.pruned(0.3)
        for lattice in pruned:
            for m in lattice:
                assert m.weight >= 0.3 or m.body == ()

    def test_prune_zero_is_identity(self, model):
        assert model.pruned(0.0).size() == model.size()

    def test_bad_threshold_rejected(self, model):
        with pytest.raises(ValueError):
            model.pruned(-0.1)
        with pytest.raises(ValueError):
            model.pruned(1.5)

    def test_inference_still_works_after_pruning(self, model, fig1_schema):
        pruned = model.pruned(0.5)
        t = make_tuple(fig1_schema, {"edu": "HS", "inc": "50K"})
        cpd = infer_single(t, pruned["age"])
        assert sum(cpd.probs) == pytest.approx(1.0)


class TestBlockTopK:
    @pytest.fixture
    def block(self, fig1_schema):
        base = make_tuple(fig1_schema, {"age": "30", "edu": "MS"})
        dist = Distribution(
            [("50K", "100K"), ("50K", "500K"), ("100K", "100K"), ("100K", "500K")],
            [0.30, 0.45, 0.10, 0.15],
        )
        return TupleBlock(base, dist)

    def test_top_k_order(self, block):
        top2 = block.top_k(2)
        assert top2[0][1] == pytest.approx(0.45)
        assert top2[1][1] == pytest.approx(0.30)
        assert top2[0][0].value("nw") == "500K"

    def test_top_k_caps_at_size(self, block):
        assert len(block.top_k(100)) == 4

    def test_top_k_validation(self, block):
        with pytest.raises(ValueError):
            block.top_k(0)


class TestFromCodesValidation:
    def test_out_of_range_code_rejected(self, fig1_schema):
        bad = np.array([[0, 0, 0, 9]], dtype=np.int32)
        with pytest.raises(SchemaError, match="outside"):
            Relation.from_codes(fig1_schema, bad)

    def test_negative_non_missing_code_rejected(self, fig1_schema):
        bad = np.array([[-2, 0, 0, 0]], dtype=np.int32)
        with pytest.raises(SchemaError, match="outside"):
            Relation.from_codes(fig1_schema, bad)

    def test_missing_code_allowed(self, fig1_schema):
        ok = np.array([[-1, 0, 0, 0]], dtype=np.int32)
        rel = Relation.from_codes(fig1_schema, ok)
        assert rel.num_incomplete == 1
