"""Unit tests for continuous-attribute bucketing."""

import numpy as np
import pytest

from repro.relational import Bucketing, equal_frequency_buckets, equal_width_buckets


class TestBucketing:
    def test_labels_cover_edges(self):
        b = Bucketing("x", [0.0, 1.0, 2.0])
        assert b.num_buckets == 2
        assert b.labels == ("[0,1)", "[1,2)")

    def test_bucket_index_interior(self):
        b = Bucketing("x", [0.0, 1.0, 2.0])
        assert b.bucket_index(0.5) == 0
        assert b.bucket_index(1.5) == 1

    def test_left_edge_inclusive(self):
        b = Bucketing("x", [0.0, 1.0, 2.0])
        assert b.bucket_index(0.0) == 0
        assert b.bucket_index(1.0) == 1

    def test_right_edge_clamped_into_last(self):
        b = Bucketing("x", [0.0, 1.0, 2.0])
        assert b.bucket_index(2.0) == 1

    def test_out_of_range_clamped(self):
        b = Bucketing("x", [0.0, 1.0, 2.0])
        assert b.bucket_index(-100) == 0
        assert b.bucket_index(100) == 1

    def test_discretize_returns_label(self):
        b = Bucketing("x", [0.0, 10.0, 20.0])
        assert b.discretize(5) == "[0,10)"

    def test_discretize_many_matches_scalar(self):
        b = Bucketing("x", [0.0, 1.0, 2.0, 3.0])
        values = [-1, 0.2, 1.7, 2.4, 99]
        assert b.discretize_many(values) == [b.discretize(v) for v in values]

    def test_to_attribute(self):
        b = Bucketing("income", [0, 50, 100])
        attr = b.to_attribute()
        assert attr.name == "income"
        assert attr.cardinality == 2

    def test_non_increasing_edges_rejected(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Bucketing("x", [0.0, 0.0, 1.0])

    def test_too_few_edges_rejected(self):
        with pytest.raises(ValueError):
            Bucketing("x", [1.0])


class TestEqualWidth:
    def test_covers_data_range(self, rng):
        values = rng.uniform(10, 20, size=100)
        b = equal_width_buckets("x", values, 4)
        assert b.edges[0] == pytest.approx(values.min())
        assert b.edges[-1] == pytest.approx(values.max())

    def test_equal_widths(self):
        b = equal_width_buckets("x", [0.0, 8.0], 4)
        widths = np.diff(b.edges)
        assert np.allclose(widths, 2.0)

    def test_constant_values_handled(self):
        b = equal_width_buckets("x", [5.0, 5.0, 5.0], 2)
        assert b.num_buckets == 2
        assert b.bucket_index(5.0) == 0

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            equal_width_buckets("x", [], 2)

    def test_bad_bucket_count_rejected(self):
        with pytest.raises(ValueError):
            equal_width_buckets("x", [1.0], 0)


class TestEqualFrequency:
    def test_balanced_populations(self, rng):
        values = rng.normal(size=1000)
        b = equal_frequency_buckets("x", values, 4)
        counts = np.bincount(
            [b.bucket_index(v) for v in values], minlength=b.num_buckets
        )
        # Quartile buckets of a continuous sample should be near-equal.
        assert counts.min() > 200

    def test_duplicate_quantiles_collapse(self):
        b = equal_frequency_buckets("x", [1.0] * 50, 4)
        assert b.num_buckets >= 1

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            equal_frequency_buckets("x", [], 3)
