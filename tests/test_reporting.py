"""Unit tests for benchmark reporting helpers."""

import pytest

from repro.bench import format_series, format_table, print_table


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        # Columns align: every line has the same separator position.
        assert lines[1].startswith("-" * len("long-name"))

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table II")
        assert out.splitlines()[0] == "Table II"

    def test_float_formatting(self):
        out = format_table(["v"], [[0.123456789]])
        assert "0.1235" in out

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_print_table(self, capsys):
        print_table(["x"], [[1]])
        captured = capsys.readouterr()
        assert "x" in captured.out


class TestFormatSeries:
    def test_series_is_two_columns(self):
        out = format_series("support", "KL", [(0.001, 0.1), (0.01, 0.2)])
        lines = out.splitlines()
        assert "support" in lines[0]
        assert "KL" in lines[0]
        assert len(lines) == 4
