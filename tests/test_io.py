"""Unit tests for CSV import/export."""

import pytest

from repro.relational import (
    MISSING,
    Schema,
    SchemaError,
    infer_schema,
    read_csv,
    write_csv,
)


@pytest.fixture
def csv_path(tmp_path, fig1_relation):
    path = tmp_path / "fig1.csv"
    write_csv(fig1_relation, path)
    return path


class TestWriteRead:
    def test_roundtrip_with_explicit_schema(self, csv_path, fig1_schema, fig1_relation):
        back = read_csv(csv_path, schema=fig1_schema)
        assert len(back) == len(fig1_relation)
        assert list(back) == list(fig1_relation)

    def test_missing_serialized_as_question_mark(self, csv_path):
        text = csv_path.read_text()
        assert "?" in text
        assert text.splitlines()[0] == "age,edu,inc,nw"

    def test_roundtrip_with_inferred_schema(self, csv_path, fig1_relation):
        back = read_csv(csv_path)
        assert len(back) == len(fig1_relation)
        # Inferred domains are sorted, so supports must still agree.
        assert back.num_complete == fig1_relation.num_complete

    def test_header_mismatch_raises(self, csv_path):
        wrong = Schema.from_domains({"a": ["1"], "b": ["1"], "c": ["1"], "d": ["1"]})
        with pytest.raises(SchemaError, match="header"):
            read_csv(csv_path, schema=wrong)


class TestInferSchema:
    def test_inferred_domains_exclude_missing(self, csv_path):
        schema = infer_schema(csv_path)
        for attr in schema:
            assert MISSING not in attr.domain

    def test_inferred_domains_are_sorted(self, csv_path):
        schema = infer_schema(csv_path)
        assert schema["age"].domain == ("20", "30", "40")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            infer_schema(path)

    def test_all_missing_column_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,?\n2,?\n")
        with pytest.raises(SchemaError, match="no known values"):
            infer_schema(path)

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a,b\n1\n")
        with pytest.raises(SchemaError, match="fields"):
            infer_schema(path)

    def test_custom_delimiter(self, tmp_path, fig1_relation):
        path = tmp_path / "semi.csv"
        write_csv(fig1_relation, path, delimiter=";")
        back = read_csv(path, delimiter=";")
        assert len(back) == len(fig1_relation)
