"""Unit tests for MRSL model persistence."""

import json

import numpy as np
import pytest

from repro.core import (
    infer_single,
    learn_mrsl,
    load_model,
    model_from_dict,
    model_to_dict,
    save_model,
)
from repro.relational import make_tuple


@pytest.fixture
def model(fig1_relation):
    return learn_mrsl(fig1_relation, support_threshold=0.1).model


class TestRoundtrip:
    def test_dict_roundtrip_preserves_structure(self, model):
        back = model_from_dict(model_to_dict(model))
        assert back.schema == model.schema
        assert back.size() == model.size()
        for lat, lat2 in zip(model, back):
            assert lat.head_attribute == lat2.head_attribute
            assert len(lat) == len(lat2)

    def test_dict_roundtrip_preserves_cpds(self, model):
        back = model_from_dict(model_to_dict(model))
        for lat in model:
            for m in lat:
                m2 = back[lat.head_attribute].get(m.body)
                assert m2 is not None
                assert np.allclose(m.probs, m2.probs)
                assert m.weight == pytest.approx(m2.weight)

    def test_file_roundtrip(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_model(model, path)
        back = load_model(path)
        assert back.size() == model.size()

    def test_file_is_plain_json(self, model, tmp_path):
        path = tmp_path / "model.json"
        save_model(model, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-mrsl"
        assert data["version"] == 1

    def test_inference_identical_after_reload(self, model, tmp_path, fig1_schema):
        path = tmp_path / "model.json"
        save_model(model, path)
        back = load_model(path)
        t = make_tuple(fig1_schema, {"edu": "HS", "inc": "50K"})
        a = infer_single(t, model["age"])
        b = infer_single(t, back["age"])
        assert np.allclose(a.probs, b.probs)


class TestValidation:
    def test_wrong_format_rejected(self):
        with pytest.raises(ValueError, match="not a repro"):
            model_from_dict({"format": "something-else"})

    def test_wrong_version_rejected(self, model):
        data = model_to_dict(model)
        data["version"] = 999
        with pytest.raises(ValueError, match="version"):
            model_from_dict(data)
