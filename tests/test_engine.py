"""Tests for the intensional SPJ engine, validated against enumeration."""

import pytest

from repro.probdb import (
    Distribution,
    ProbabilisticDatabase,
    QueryEngine,
    TupleBlock,
)
from repro.relational import make_tuple


@pytest.fixture
def db(fig1_schema):
    certain = [make_tuple(fig1_schema, ["20", "BS", "50K", "100K"])]
    blocks = [
        TupleBlock(
            make_tuple(fig1_schema, {"age": "30", "edu": "MS", "inc": "50K"}),
            Distribution([("100K",), ("500K",)], [0.6, 0.4]),
        ),
        TupleBlock(
            make_tuple(fig1_schema, {"age": "40", "edu": "HS", "nw": "500K"}),
            Distribution([("50K",), ("100K",)], [0.3, 0.7]),
        ),
    ]
    return ProbabilisticDatabase(fig1_schema, certain, blocks)


def world_probability_of(db, value_predicate):
    """P(at least one tuple satisfying predicate) via world enumeration."""
    total = 0.0
    for world in db.possible_worlds():
        if any(value_predicate(t) for t in world):
            total += world.probability
    return total


class TestScan:
    def test_scan_row_count(self, db):
        engine = QueryEngine(db)
        rows = engine.scan()
        # 1 certain + 2 + 2 block completions.
        assert len(rows) == 5

    def test_certain_rows_have_true_event(self, db):
        engine = QueryEngine(db)
        rows = engine.scan()
        from repro.probdb import TRUE

        assert rows[0].event is TRUE

    def test_prefix_renames(self, db):
        engine = QueryEngine(db)
        rows = engine.scan(prefix="l_")
        assert rows[0].attributes == ("l_age", "l_edu", "l_inc", "l_nw")


class TestSelectionQueries:
    def test_selection_probabilities_match_enumeration(self, db):
        engine = QueryEngine(db)
        results = engine.selection_query(
            lambda r: r.value("nw") == "500K", project_to=["age"]
        )
        by_age = {t.values[0]: t.probability for t in results}
        # Per age value, P(some tuple with that age has nw=500K).
        for age, p in by_age.items():
            expected = world_probability_of(
                db,
                lambda t, a=age: t.value("age") == a and t.value("nw") == "500K",
            )
            assert p == pytest.approx(expected)

    def test_certain_hit_has_probability_one(self, db):
        engine = QueryEngine(db)
        results = engine.selection_query(lambda r: r.value("edu") == "BS")
        assert len(results) == 1
        assert results[0].probability == pytest.approx(1.0)

    def test_projection_merges_correlated_rows(self, db):
        """Both completions of block 0 share age=30: P(age=30 exists)=1."""
        engine = QueryEngine(db)
        results = engine.selection_query(
            lambda r: r.value("age") == "30", project_to=["age"]
        )
        assert len(results) == 1
        assert results[0].probability == pytest.approx(1.0)

    def test_empty_result(self, db):
        engine = QueryEngine(db)
        assert engine.selection_query(lambda r: False) == []

    def test_results_sorted_by_probability(self, db):
        engine = QueryEngine(db)
        results = engine.selection_query(lambda r: True, project_to=["inc"])
        probs = [t.probability for t in results]
        assert probs == sorted(probs, reverse=True)


class TestJoins:
    def test_self_join_respects_block_consistency(self, db):
        """Joining a block's completions with themselves must not mix outcomes.

        An extensional engine would multiply the two completions'
        probabilities (0.6 * 0.4) and report a spurious pair; the lineage
        engine folds contradictory choices to FALSE.
        """
        engine = QueryEngine(db)
        results = engine.self_join_query(
            on=[("age", "age")],
            predicate=lambda r: r.value("l_age") == "30"
            and r.value("l_nw") != r.value("r_nw"),
        )
        # Only block 0 has age=30; its two completions have different nw but
        # can never coexist in one world.
        assert results == []

    def test_self_join_equal_rows(self, db):
        engine = QueryEngine(db)
        results = engine.self_join_query(
            on=[("age", "age"), ("nw", "nw")],
            predicate=lambda r: r.value("l_age") == "30",
            project_to=["l_nw"],
        )
        by_nw = {t.values[0]: t.probability for t in results}
        assert by_nw[("100K")] == pytest.approx(0.6)
        assert by_nw[("500K")] == pytest.approx(0.4)

    def test_join_across_blocks_multiplies(self, db):
        engine = QueryEngine(db)
        left = engine.scan(prefix="l_")
        right = engine.scan(prefix="r_")
        rows = engine.join(left, right, on=[("l_nw", "r_nw")])
        rows = engine.select(
            rows,
            lambda r: r.value("l_age") == "30" and r.value("r_age") == "40",
        )
        results = engine.evaluate(rows)
        # Only block 0's 500K completion (p=0.4) joins block 1, whose nw is
        # always 500K; the pair splits over block 1's two inc choices.
        probs = sorted(t.probability for t in results)
        assert probs == pytest.approx([0.4 * 0.3, 0.4 * 0.7])
        assert sum(probs) == pytest.approx(0.4)

    def test_join_requires_on(self, db):
        engine = QueryEngine(db)
        with pytest.raises(ValueError):
            engine.join(engine.scan("l_"), engine.scan("r_"), on=[])


class TestExpectedCountConsistency:
    def test_sum_of_membership_probs_is_expected_count(self, db):
        """Without projection, result probabilities sum to the E[count]."""
        from repro.probdb import expected_count

        engine = QueryEngine(db)
        rows = engine.select(
            engine.scan(), lambda r: r.value("nw") == "500K"
        )
        results = engine.evaluate(rows, dedup=False)
        total = sum(t.probability for t in results)
        assert total == pytest.approx(
            expected_count(db, lambda t: t.value("nw") == "500K")
        )
