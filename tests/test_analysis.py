"""Unit tests for probabilistic-DB analysis utilities."""

import pytest

from repro.probdb import (
    Distribution,
    ProbabilisticDatabase,
    TupleBlock,
    attribute_distribution,
    rank_blocks_by_entropy,
    top_k_worlds,
)
from repro.relational import make_tuple


@pytest.fixture
def db(fig1_schema):
    certain = [
        make_tuple(fig1_schema, ["20", "BS", "50K", "100K"]),
        make_tuple(fig1_schema, ["40", "HS", "100K", "500K"]),
    ]
    blocks = [
        TupleBlock(
            make_tuple(fig1_schema, {"age": "30", "edu": "MS", "inc": "50K"}),
            Distribution([("100K",), ("500K",)], [0.6, 0.4]),
        ),
        TupleBlock(
            make_tuple(fig1_schema, {"age": "40", "edu": "HS", "nw": "500K"}),
            Distribution([("50K",), ("100K",)], [0.99, 0.01]),
        ),
    ]
    return ProbabilisticDatabase(fig1_schema, certain, blocks)


class TestAttributeDistribution:
    def test_counts_certain_and_blocks(self, db):
        dist = attribute_distribution(db, "nw")
        # nw: certain 100K x1, 500K x1; block0 marginal .6/.4; block1 known 500K.
        assert dist["100K"] == pytest.approx((1 + 0.6) / 4)
        assert dist["500K"] == pytest.approx((1 + 0.4 + 1) / 4)

    def test_known_attribute_in_block_counts_fully(self, db):
        dist = attribute_distribution(db, "age")
        assert dist["40"] == pytest.approx(2 / 4)
        assert dist["30"] == pytest.approx(1 / 4)

    def test_matches_possible_world_expectation(self, db):
        dist = attribute_distribution(db, "inc")
        total = 0.0
        count_50 = 0.0
        for world in db.possible_worlds():
            for t in world:
                total += world.probability
                if t.value("inc") == "50K":
                    count_50 += world.probability
        assert dist["50K"] == pytest.approx(count_50 / total)


class TestEntropyRanking:
    def test_order_is_by_uncertainty(self, db):
        ranked = rank_blocks_by_entropy(db)
        # Block 0 (0.6/0.4) is far more uncertain than block 1 (0.99/0.01).
        assert [i for _, i in ranked] == [0, 1]
        assert ranked[0][0] > ranked[1][0]

    def test_ascending_option(self, db):
        ranked = rank_blocks_by_entropy(db, descending=False)
        assert [i for _, i in ranked] == [1, 0]


class TestTopKWorlds:
    def test_first_world_is_most_probable(self, db):
        worlds = top_k_worlds(db, 1)
        assert worlds[0].probability == pytest.approx(
            db.most_probable_world().probability
        )

    def test_worlds_are_sorted_and_distinct(self, db):
        worlds = top_k_worlds(db, 4)
        probs = [w.probability for w in worlds]
        assert probs == sorted(probs, reverse=True)
        assert len(worlds) == 4
        signatures = {
            tuple(tuple(t.values()) for t in w) for w in worlds
        }
        assert len(signatures) == 4

    def test_matches_full_enumeration(self, db):
        worlds = top_k_worlds(db, 4)
        brute = sorted(
            db.possible_worlds(), key=lambda w: w.probability, reverse=True
        )
        for got, want in zip(worlds, brute):
            assert got.probability == pytest.approx(want.probability)

    def test_k_larger_than_world_count(self, db):
        worlds = top_k_worlds(db, 100)
        assert len(worlds) == db.num_possible_worlds()

    def test_no_blocks(self, fig1_schema):
        db = ProbabilisticDatabase(
            fig1_schema, [make_tuple(fig1_schema, ["20", "HS", "50K", "100K"])]
        )
        worlds = top_k_worlds(db, 3)
        assert len(worlds) == 1
        assert worlds[0].probability == pytest.approx(1.0)

    def test_bad_k_rejected(self, db):
        with pytest.raises(ValueError):
            top_k_worlds(db, 0)
