"""Unit tests for the command-line interface."""

import csv

import pytest

from repro.api.config import DeriveConfig
from repro.cli import build_parser, config_from_args, main
from repro.relational import write_csv


@pytest.fixture
def csv_path(tmp_path, fig1_relation):
    path = tmp_path / "data.csv"
    write_csv(fig1_relation, path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_derive_defaults(self, csv_path):
        args = build_parser().parse_args(["derive", str(csv_path)])
        assert args.support == 0.01
        assert args.voters == "best"

    def test_derive_defaults_build_the_default_config(self, csv_path):
        """The burn-in drift regression: CLI args == DeriveConfig defaults."""
        args = build_parser().parse_args(["derive", str(csv_path)])
        assert config_from_args(args) == DeriveConfig()

    def test_serve_parses_without_input(self):
        args = build_parser().parse_args(["serve"])
        assert args.input is None
        assert args.host == "127.0.0.1"
        assert args.port == 8642
        assert config_from_args(args) == DeriveConfig()

    def test_serve_accepts_pipeline_knobs(self):
        args = build_parser().parse_args(
            ["serve", "data.csv", "--support", "0.1", "--burn-in", "7",
             "--seed", "3", "--port", "9000"]
        )
        cfg = config_from_args(args)
        assert cfg.support_threshold == 0.1
        assert cfg.burn_in == 7
        assert cfg.seed == 3
        assert args.port == 9000


class TestDerive:
    def test_derive_writes_blocks(self, csv_path, tmp_path, fig1_relation):
        out = tmp_path / "out.csv"
        code = main(
            [
                "derive", str(csv_path),
                "--support", "0.1",
                "--samples", "200",
                "--burn-in", "20",
                "--output", str(out),
            ]
        )
        assert code == 0
        with out.open() as f:
            rows = list(csv.reader(f))
        header, body = rows[0], rows[1:]
        assert header[:2] == ["block", "prob"]
        certain = [r for r in body if r[0] == "-"]
        assert len(certain) == fig1_relation.num_complete
        # Each block's probabilities sum to ~1.
        blocks: dict[str, float] = {}
        for r in body:
            if r[0] != "-":
                blocks[r[0]] = blocks.get(r[0], 0.0) + float(r[1])
        assert len(blocks) == fig1_relation.num_incomplete
        for total in blocks.values():
            assert total == pytest.approx(1.0, abs=1e-3)

    def test_derive_progress_bar(self, csv_path, tmp_path, capsys):
        out = tmp_path / "out.csv"
        code = main(
            ["derive", str(csv_path), "--support", "0.1",
             "--samples", "100", "--burn-in", "10", "--seed", "0",
             "--progress", "--output", str(out)]
        )
        assert code == 0
        err = capsys.readouterr().err
        # The bar redraws in place and reports shard/tuple progress.
        assert "shards" in err and "tuples" in err and "\r" in err
        # The final redraw shows a complete run.
        last = err.rsplit("\r", 1)[-1]
        first_line = last.splitlines()[0]
        # One single shard plus one batched multi shard (the vectorized
        # kernel packs fig1's three subsumption components together).
        assert "2/2 shards" in first_line and "9/9 tuples" in first_line

    def test_derive_progress_output_identical_to_plain(self, csv_path, tmp_path):
        """--progress is pure observation: the derived CSV is byte-identical."""
        plain, bar = tmp_path / "plain.csv", tmp_path / "bar.csv"
        common = ["derive", str(csv_path), "--support", "0.1",
                  "--samples", "100", "--burn-in", "10", "--seed", "0"]
        assert main(common + ["--output", str(plain)]) == 0
        assert main(common + ["--progress", "--output", str(bar)]) == 0
        assert plain.read_bytes() == bar.read_bytes()

    def test_derive_to_stdout(self, csv_path, capsys):
        code = main(
            ["derive", str(csv_path), "--support", "0.1",
             "--samples", "100", "--burn-in", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("block,prob,")


class TestInspect:
    def test_inspect_prints_lattice(self, csv_path, capsys):
        code = main(
            ["inspect", str(csv_path), "--support", "0.1",
             "--attribute", "age"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "P(age)" in out

    def test_inspect_unknown_attribute(self, csv_path, capsys):
        code = main(
            ["inspect", str(csv_path), "--support", "0.1",
             "--attribute", "bogus"]
        )
        assert code == 2


class TestLearnAndInfo:
    def test_learn_saves_model(self, csv_path, tmp_path):
        model_path = tmp_path / "model.json"
        code = main(
            ["learn", str(csv_path), "--support", "0.1",
             "--model", str(model_path)]
        )
        assert code == 0
        assert model_path.exists()

    def test_model_info(self, csv_path, tmp_path, capsys):
        model_path = tmp_path / "model.json"
        main(["learn", str(csv_path), "--support", "0.1",
              "--model", str(model_path)])
        capsys.readouterr()
        code = main(["model-info", str(model_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "meta-rules" in out
        assert "age" in out
