"""Unit tests for Factor algebra."""

import numpy as np
import pytest

from repro.bayesnet import Factor


@pytest.fixture
def phi_ab():
    return Factor(("a", "b"), np.array([[0.1, 0.2], [0.3, 0.4]]))


@pytest.fixture
def phi_bc():
    return Factor(("b", "c"), np.array([[0.5, 0.5], [0.9, 0.1]]))


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="axes"):
            Factor(("a",), np.zeros((2, 2)))

    def test_duplicate_variables_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            Factor(("a", "a"), np.zeros((2, 2)))

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            Factor(("a",), np.array([-1.0, 2.0]))

    def test_cardinality(self, phi_ab):
        assert phi_ab.cardinality("a") == 2
        assert phi_ab.cardinality("b") == 2


class TestMultiply:
    def test_product_scope_is_union(self, phi_ab, phi_bc):
        prod = phi_ab.multiply(phi_bc)
        assert set(prod.variables) == {"a", "b", "c"}
        assert prod.table.shape == (2, 2, 2)

    def test_product_values(self, phi_ab, phi_bc):
        prod = phi_ab.multiply(phi_bc)
        idx = {v: i for i, v in enumerate(prod.variables)}
        sel = [0, 0, 0]
        sel[idx["a"]], sel[idx["b"]], sel[idx["c"]] = 1, 0, 1
        assert prod.table[tuple(sel)] == pytest.approx(0.3 * 0.5)

    def test_multiply_disjoint_scopes(self):
        f = Factor(("a",), np.array([1.0, 2.0]))
        g = Factor(("b",), np.array([3.0, 4.0]))
        prod = f.multiply(g)
        assert prod.table.shape == (2, 2)
        assert prod.table[1, 0] == pytest.approx(6.0)

    def test_multiply_is_commutative(self, phi_ab, phi_bc):
        p = phi_ab.multiply(phi_bc)
        q = phi_bc.multiply(phi_ab).transpose(p.variables)
        assert np.allclose(p.table, q.table)


class TestMarginalize:
    def test_marginalize_sums_axis(self, phi_ab):
        m = phi_ab.marginalize("b")
        assert m.variables == ("a",)
        assert np.allclose(m.table, [0.3, 0.7])

    def test_marginalize_unknown_variable(self, phi_ab):
        with pytest.raises(ValueError):
            phi_ab.marginalize("z")

    def test_marginalize_all_but(self, phi_ab, phi_bc):
        prod = phi_ab.multiply(phi_bc)
        kept = prod.marginalize_all_but(["c"])
        assert kept.variables == ("c",)
        assert kept.table.sum() == pytest.approx(prod.table.sum())


class TestReduce:
    def test_reduce_drops_axis(self, phi_ab):
        r = phi_ab.reduce({"a": 1})
        assert r.variables == ("b",)
        assert np.allclose(r.table, [0.3, 0.4])

    def test_reduce_multiple(self, phi_ab):
        r = phi_ab.reduce({"a": 0, "b": 1})
        assert r.variables == ()
        assert r.table == pytest.approx(0.2)

    def test_reduce_ignores_unrelated_evidence(self, phi_ab):
        r = phi_ab.reduce({"z": 0})
        assert r.variables == ("a", "b")


class TestNormalizeTranspose:
    def test_normalized_sums_to_one(self, phi_ab):
        assert phi_ab.normalized().table.sum() == pytest.approx(1.0)

    def test_normalize_zero_factor_rejected(self):
        f = Factor(("a",), np.zeros(2))
        with pytest.raises(ValueError):
            f.normalized()

    def test_transpose_permutes(self, phi_ab):
        t = phi_ab.transpose(("b", "a"))
        assert t.variables == ("b", "a")
        assert t.table[0, 1] == pytest.approx(phi_ab.table[1, 0])

    def test_transpose_requires_permutation(self, phi_ab):
        with pytest.raises(ValueError):
            phi_ab.transpose(("a", "z"))
