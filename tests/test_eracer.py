"""Unit tests for the ERACER-style naive-Bayes comparator."""

import numpy as np
import pytest

from repro.bayesnet import forward_sample_relation, make_network
from repro.bench import NaiveBayesImputer
from repro.bench.metrics import true_joint_posterior, true_single_posterior
from repro.relational import make_tuple


@pytest.fixture(scope="module")
def trained():
    rng = np.random.default_rng(5)
    net = make_network("BN8", rng)
    data = forward_sample_relation(net, 8000, rng)
    imputer = NaiveBayesImputer().fit(data)
    return net, data.schema, imputer


class TestFit:
    def test_requires_fit_before_predict(self, fig1_schema):
        imputer = NaiveBayesImputer()
        t = make_tuple(fig1_schema, {"age": "20"})
        with pytest.raises(RuntimeError, match="fit"):
            imputer.predict_marginals(t)

    def test_fit_on_fig1(self, fig1_relation, fig1_schema):
        imputer = NaiveBayesImputer().fit(fig1_relation)
        t = make_tuple(fig1_schema, {"edu": "HS", "inc": "50K"})
        marginals = imputer.predict_marginals(t)
        assert set(marginals) == {"age", "nw"}
        for dist in marginals.values():
            assert sum(dist.probs) == pytest.approx(1.0)

    def test_laplace_validation(self):
        with pytest.raises(ValueError):
            NaiveBayesImputer(laplace=0.0)

    def test_no_missing_rejected(self, trained):
        net, schema, imputer = trained
        t = make_tuple(schema, ["v0"] * 4)
        with pytest.raises(ValueError, match="no missing"):
            imputer.predict_marginals(t)


class TestAccuracy:
    def test_single_attribute_tracks_posterior(self, trained):
        """On a small binary network the NB posterior is a fair estimate."""
        net, schema, imputer = trained
        kls = []
        for x0 in ("v0", "v1"):
            for x1 in ("v0", "v1"):
                for x3 in ("v0", "v1"):
                    t = make_tuple(schema, {"x0": x0, "x1": x1, "x3": x3})
                    true = true_single_posterior(net, t)
                    pred = imputer.predict_marginals(t)["x2"]
                    kls.append(true.kl_divergence(pred))
        assert float(np.mean(kls)) < 0.25

    def test_joint_prediction_valid(self, trained):
        net, schema, imputer = trained
        t = make_tuple(schema, {"x0": "v0"})
        joint = imputer.predict_joint(t)
        assert len(joint) == 8
        assert sum(joint.probs) == pytest.approx(1.0)

    def test_joint_outcome_order_matches_metrics(self, trained):
        net, schema, imputer = trained
        t = make_tuple(schema, {"x0": "v0", "x3": "v1"})
        joint = imputer.predict_joint(t)
        true = true_joint_posterior(net, t)
        assert set(joint.outcomes) == set(true.outcomes)
        assert np.isfinite(true.kl_divergence(joint))

    def test_impute_fills_all_missing(self, trained):
        net, schema, imputer = trained
        t = make_tuple(schema, {"x1": "v1"})
        filled = imputer.impute(t)
        assert filled.is_complete
        assert filled.value("x1") == "v1"


class TestRelaxation:
    def test_beliefs_converge_deterministically(self, trained):
        net, schema, imputer = trained
        t = make_tuple(schema, {"x0": "v0"})
        a = imputer.predict_joint(t)
        b = imputer.predict_joint(t)
        assert np.allclose(a.probs, b.probs)

    def test_soft_evidence_influences_result(self, fig1_relation, fig1_schema):
        """The belief over one missing attr shifts the other's estimate."""
        imputer = NaiveBayesImputer().fit(fig1_relation)
        # With edu unknown, the age estimate uses edu's soft belief; it
        # must differ from the estimate that ignores edu entirely
        # (single-round prior-only computation).
        t = make_tuple(fig1_schema, {"inc": "100K", "nw": "500K"})
        marginals = imputer.predict_marginals(t)
        assert "age" in marginals and "edu" in marginals
        assert sum(marginals["age"].probs) == pytest.approx(1.0)
