"""Kill ``repro serve`` mid-derivation and resume from the durable journal.

The end-to-end durability contract: a server started with ``--state-dir``
that dies mid-derive (SIGTERM or SIGKILL — no shutdown hooks get to run)
resumes the interrupted job on restart, serves the journaled shards from
the carry store instead of re-executing them, and produces a result
bit-identical to an uninterrupted blocking derive.
"""

import json
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.api.service import InferenceService
from repro.bench.masking import mask_relation
from repro.datasets.census import load_census
from repro.jobs import JobStore
from repro.relational import Relation

#: Vectorization off so each subsumption component is its own multi shard —
#: many slow shards means the kill reliably lands mid-plan, and multi
#: shards carry over by exact content key, so "no re-execution" is a
#: countable claim: resumed-plan carried_over == journaled shard rows.
CONFIG = {
    "support_threshold": 0.02,
    "num_samples": 120,
    "burn_in": 15,
    "seed": 13,
    "gibbs_vectorized": False,
}


@pytest.fixture(scope="module")
def census_payload():
    rng = np.random.default_rng(21)
    train, _ = load_census(200, rng)
    test, _ = load_census(40, rng)
    masked = mask_relation(test, 2, rng)  # all multi-missing: pure Gibbs shards
    relation = Relation(train.schema, list(train) + list(masked))
    schema = {field.name: list(field.domain) for field in relation.schema}
    rows = [list(t.values()) for t in relation]
    return {
        "schema": schema,
        "rows": rows,
        "config": CONFIG,
        "include_blocks": True,
    }


@pytest.fixture(scope="module")
def reference(census_payload):
    """The uninterrupted blocking derive every recovery must reproduce."""
    return InferenceService().handle_json("derive", census_payload)


def _free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def _start_server(state_dir):
    port = _free_port()
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--host", "127.0.0.1", "--port", str(port),
            "--state-dir", str(state_dir),
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    base = f"http://127.0.0.1:{port}/v1"
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(f"server died on startup (rc={proc.returncode})")
        try:
            with urllib.request.urlopen(f"{base}/health", timeout=1.0):
                return proc, base
        except (urllib.error.URLError, ConnectionError, OSError):
            time.sleep(0.1)
    proc.kill()
    raise RuntimeError("server did not come up")


def _post(base, path, payload):
    req = urllib.request.Request(
        f"{base}{path}",
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=60.0) as resp:
        return json.loads(resp.read())


def _get(base, path):
    with urllib.request.urlopen(f"{base}{path}", timeout=60.0) as resp:
        return json.loads(resp.read())


def _wait_for_journaled_shards(state_dir, job_id, minimum, timeout=180.0):
    """Poll the journal (WAL allows concurrent reads) for completed shards."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        store = JobStore(state_dir)
        try:
            count = len(store.load_shards(job_id))
            record = store.get(job_id)
        finally:
            store.close()
        if record is not None and record.state not in ("queued", "running"):
            raise AssertionError(
                f"job reached {record.state!r} before the kill landed; "
                "grow the workload"
            )
        if count >= minimum:
            return count
        time.sleep(0.1)
    raise AssertionError("journaled shards never appeared")


def _wait_for_terminal(base, job_id, timeout=300.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = _get(base, f"/jobs/{job_id}")
        if status["state"] in ("done", "failed", "cancelled"):
            return status
        time.sleep(0.25)
    raise AssertionError(f"job {job_id} never finished")


def _ndjson_events(base, job_id):
    raw = urllib.request.urlopen(
        f"{base}/jobs/{job_id}/events?timeout=2&heartbeat=0", timeout=60.0
    ).read()
    return [json.loads(line) for line in raw.splitlines() if line.strip()]


@pytest.mark.parametrize(
    "sig", [signal.SIGTERM, signal.SIGKILL], ids=["sigterm", "sigkill"]
)
def test_killed_server_resumes_bit_identically(
    sig, tmp_path, census_payload, reference
):
    state_dir = tmp_path / "state"
    proc, base = _start_server(state_dir)
    try:
        ack = _post(base, "/derive?mode=async", census_payload)
        job_id = ack["job_id"]
        assert ack["state"] in ("queued", "running")
        _wait_for_journaled_shards(state_dir, job_id, minimum=2)
        proc.send_signal(sig)
        proc.wait(timeout=30.0)
    finally:
        if proc.poll() is None:
            proc.kill()

    # The journal must show an unfinished job with work already banked.
    store = JobStore(state_dir)
    try:
        record = store.get(job_id)
        assert record is not None
        assert record.state in ("queued", "running")
        assert record.base_seed is not None
        journaled_keys = {key for key, _, _ in store.load_shards(job_id)}
        journaled = len(journaled_keys)
        assert journaled >= 2
    finally:
        store.close()

    proc, base = _start_server(state_dir)
    try:
        status = _wait_for_terminal(base, job_id)
        assert status["state"] == "done", status

        # Bit-identical to the uninterrupted run: same blocks, same probs.
        result = _get(base, f"/jobs/{job_id}/result")
        assert result["num_blocks"] == reference["num_blocks"]
        assert result["blocks"] == reference["blocks"]

        # No re-execution of journaled work: the resumed plan reports the
        # journaled shards as carried, and exactly the remaining shards
        # produced shard events.
        events = _ndjson_events(base, job_id)
        plans = [e for e in events if e.get("event") == "plan"]
        assert plans, events[:3]
        progress = plans[0]["progress"]
        assert progress["carried_over"] == journaled
        executed = [e for e in events if e.get("event") == "shard"]
        assert len(executed) == progress["shards_total"]
        # ... and none of them was a shard the journal already held.
        assert not journaled_keys & {e["shard"]["key"] for e in executed}
        assert events[-1]["event"] == "done"
    finally:
        proc.terminate()
        proc.wait(timeout=30.0)
