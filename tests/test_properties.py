"""Property-based tests (hypothesis) on core invariants.

Each property pins an invariant the paper's correctness rests on:
distribution normalization, KL non-negativity, Apriori downward closure and
support monotonicity, subsumption partial-order laws, smoothing positivity,
and voting outputs being valid CPDs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.itemsets import is_subset, mine_frequent_itemsets
from repro.core.learning import learn_mrsl
from repro.core.metarule import smooth_cpd
from repro.probdb import Distribution, mixture
from repro.relational import Relation, RelTuple, Schema
from repro.relational.tuples import MISSING_CODE, proper_subsumes, subsumes

# -- strategies ---------------------------------------------------------------

cards = st.lists(st.integers(min_value=2, max_value=4), min_size=2, max_size=4)


@st.composite
def schema_and_codes(draw, min_rows=1, max_rows=40, allow_missing=False):
    """A random schema plus a random code matrix over it."""
    cs = draw(cards)
    schema = Schema.from_domains(
        {f"a{i}": [f"v{j}" for j in range(c)] for i, c in enumerate(cs)}
    )
    n = draw(st.integers(min_value=min_rows, max_value=max_rows))
    rows = []
    for _ in range(n):
        row = []
        for c in cs:
            lo = -1 if allow_missing else 0
            row.append(draw(st.integers(min_value=lo, max_value=c - 1)))
        rows.append(row)
    return schema, np.asarray(rows, dtype=np.int32)


@st.composite
def probability_vectors(draw, max_len=6):
    n = draw(st.integers(min_value=1, max_value=max_len))
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=100.0),
            min_size=n,
            max_size=n,
        )
    )
    return np.asarray(weights)


# -- Distribution invariants ------------------------------------------------------


@given(probability_vectors())
def test_distribution_always_normalized(weights):
    d = Distribution(list(range(len(weights))), weights)
    assert np.isclose(sum(d.probs), 1.0)
    assert all(p >= 0 for p in d.probs)


@given(probability_vectors(), probability_vectors())
def test_kl_nonnegative_and_zero_iff_equal(w1, w2):
    n = min(len(w1), len(w2))
    p = Distribution(list(range(n)), w1[:n]).smoothed()
    q = Distribution(list(range(n)), w2[:n]).smoothed()
    assert p.kl_divergence(q) >= 0.0
    assert p.kl_divergence(p) == pytest.approx(0.0, abs=1e-12)


@given(probability_vectors())
def test_smoothing_preserves_normalization_and_positivity(weights):
    probs = smooth_cpd(weights / weights.sum())
    assert np.isclose(probs.sum(), 1.0)
    assert (probs > 0).all()


@given(st.lists(probability_vectors(max_len=4), min_size=1, max_size=5))
def test_mixture_is_valid_distribution(vectors):
    comps = [
        Distribution(list(range(len(v))), v) for v in vectors
    ]
    m = mixture(comps)
    assert np.isclose(sum(m.probs), 1.0)


@given(probability_vectors(max_len=5))
def test_top1_has_max_probability(weights):
    d = Distribution(list(range(len(weights))), weights)
    assert d[d.top1()] == pytest.approx(max(d.probs))


# -- subsumption partial order -----------------------------------------------------


@given(schema_and_codes(min_rows=2, max_rows=8, allow_missing=True))
def test_subsumption_is_a_partial_order(sc):
    schema, codes = sc
    tuples = [RelTuple(schema, row) for row in codes]
    for a in tuples:
        assert subsumes(a, a)  # reflexive (non-strict)
        assert not proper_subsumes(a, a)  # irreflexive (strict)
    for a in tuples:
        for b in tuples:
            if proper_subsumes(a, b):
                assert not proper_subsumes(b, a)  # antisymmetric
            for c in tuples:
                if proper_subsumes(a, b) and proper_subsumes(b, c):
                    assert proper_subsumes(a, c)  # transitive


@given(schema_and_codes(min_rows=1, max_rows=10, allow_missing=True))
def test_restriction_always_subsumes(sc):
    schema, codes = sc
    for row in codes:
        t = RelTuple(schema, row)
        known = t.complete_positions
        if len(known) < 2:
            continue
        restricted = t.restrict(known[:-1])
        assert subsumes(restricted, t)


# -- Apriori invariants ---------------------------------------------------------------


@settings(deadline=None, max_examples=30)
@given(
    schema_and_codes(min_rows=2, max_rows=30),
    st.sampled_from([0.05, 0.1, 0.25, 0.5]),
)
def test_apriori_downward_closure_and_monotonicity(sc, theta):
    schema, codes = sc
    rel = Relation.from_codes(schema, codes)
    fi = mine_frequent_itemsets(rel, threshold=theta)
    for itemset in fi:
        assert fi.support(itemset) >= theta or itemset == ()
        for m in range(len(itemset)):
            subset = itemset[:m] + itemset[m + 1 :]
            assert subset in fi
            assert fi.support(subset) >= fi.support(itemset) - 1e-12


@settings(deadline=None, max_examples=30)
@given(schema_and_codes(min_rows=2, max_rows=30))
def test_apriori_supports_match_relation_counts(sc):
    schema, codes = sc
    rel = Relation.from_codes(schema, codes)
    fi = mine_frequent_itemsets(rel, threshold=0.2)
    for itemset in fi:
        arr = np.full(len(schema), MISSING_CODE, dtype=np.int32)
        for attr, value in itemset:
            arr[attr] = value
        t = RelTuple(schema, arr)
        assert fi.support(itemset) == pytest.approx(rel.support(t))


@given(schema_and_codes(min_rows=2, max_rows=20))
def test_is_subset_consistent_with_set_semantics(sc):
    schema, codes = sc
    rel = Relation.from_codes(schema, codes)
    fi = mine_frequent_itemsets(rel, threshold=0.3)
    itemsets = list(fi)
    for a in itemsets[:10]:
        for b in itemsets[:10]:
            assert is_subset(a, b) == set(a).issubset(set(b))


# -- learned model invariants ------------------------------------------------------------


@settings(deadline=None, max_examples=15)
@given(schema_and_codes(min_rows=5, max_rows=40))
def test_learned_meta_rules_are_valid_cpds(sc):
    schema, codes = sc
    rel = Relation.from_codes(schema, codes)
    result = learn_mrsl(rel, support_threshold=0.15)
    for lattice in result.model:
        for m in lattice:
            assert np.isclose(m.probs.sum(), 1.0)
            assert (m.probs > 0).all()
            assert 0.0 < m.weight <= 1.0
            # Body never assigns the head attribute.
            assert all(attr != lattice.head_attribute for attr, _ in m.body)


@settings(deadline=None, max_examples=15)
@given(schema_and_codes(min_rows=5, max_rows=40))
def test_voting_always_yields_valid_cpd(sc):
    from repro.core import VoterChoice, VotingScheme, infer_single

    schema, codes = sc
    rel = Relation.from_codes(schema, codes)
    model = learn_mrsl(rel, support_threshold=0.15).model
    # Mask the first attribute of the first row.
    masked = codes[0].copy()
    masked[0] = MISSING_CODE
    t = RelTuple(schema, masked)
    for choice in VoterChoice:
        for scheme in VotingScheme:
            cpd = infer_single(t, model[0], choice, scheme)
            assert np.isclose(sum(cpd.probs), 1.0)
            assert len(cpd) == schema[0].cardinality
