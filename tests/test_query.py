"""Unit tests for extensional query evaluation, validated by enumeration."""

import pytest

from repro.probdb import (
    Distribution,
    ProbabilisticDatabase,
    TupleBlock,
    block_selection_probability,
    count_distribution,
    expected_count,
    possible_worlds_expected_count,
    selection_probabilities,
)
from repro.relational import make_tuple


@pytest.fixture
def db(fig1_schema):
    certain = [
        make_tuple(fig1_schema, ["20", "BS", "50K", "100K"]),
        make_tuple(fig1_schema, ["40", "HS", "100K", "500K"]),
    ]
    blocks = [
        TupleBlock(
            make_tuple(fig1_schema, {"age": "30", "edu": "MS", "inc": "50K"}),
            Distribution([("100K",), ("500K",)], [0.6, 0.4]),
        ),
        TupleBlock(
            make_tuple(fig1_schema, {"age": "40", "edu": "HS", "nw": "500K"}),
            Distribution([("50K",), ("100K",)], [0.3, 0.7]),
        ),
        TupleBlock(
            make_tuple(fig1_schema, {"age": "20", "edu": "HS", "inc": "50K"}),
            Distribution([("100K",), ("500K",)], [0.5, 0.5]),
        ),
    ]
    return ProbabilisticDatabase(fig1_schema, certain, blocks)


def rich(t):
    return t.value("nw") == "500K"


class TestSelection:
    def test_block_selection_probability(self, db):
        assert block_selection_probability(db, 0, rich) == pytest.approx(0.4)
        # Block 1 has nw=500K known: always satisfied.
        assert block_selection_probability(db, 1, rich) == pytest.approx(1.0)

    def test_selection_probabilities_shape(self, db):
        certain_hits, block_probs = selection_probabilities(db, rich)
        assert certain_hits == [False, True]
        assert len(block_probs) == 3

    def test_expected_count(self, db):
        # 1 certain + 0.4 + 1.0 + 0.5
        assert expected_count(db, rich) == pytest.approx(2.9)

    def test_expected_count_agrees_with_enumeration(self, db):
        exact = possible_worlds_expected_count(db, rich)
        assert expected_count(db, rich) == pytest.approx(exact)

    def test_unsatisfiable_predicate(self, db):
        assert expected_count(db, lambda t: False) == 0.0

    def test_tautology_counts_all_rows(self, db):
        assert expected_count(db, lambda t: True) == pytest.approx(5.0)


class TestCountDistribution:
    def test_count_distribution_sums_to_one(self, db):
        dist = count_distribution(db, rich)
        assert sum(dist.probs) == pytest.approx(1.0)

    def test_count_distribution_mean_is_expected_count(self, db):
        dist = count_distribution(db, rich)
        mean = sum(k * p for k, p in dist)
        assert mean == pytest.approx(expected_count(db, rich))

    def test_count_distribution_matches_enumeration(self, db):
        dist = count_distribution(db, rich)
        # Brute force the count distribution over the 8 worlds.
        from collections import Counter

        counts = Counter()
        for world in db.possible_worlds():
            k = sum(1 for t in world if rich(t))
            counts[k] += world.probability
        for k, p in counts.items():
            assert dist[k] == pytest.approx(p)

    def test_certain_only_database(self, fig1_schema):
        db = ProbabilisticDatabase(
            fig1_schema,
            [make_tuple(fig1_schema, ["20", "HS", "50K", "500K"])],
            [],
        )
        dist = count_distribution(db, rich)
        assert dist[1] == pytest.approx(1.0)
