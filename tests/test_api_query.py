"""Tests for the serializable query AST (repro.api.query).

The load-bearing property: a query expressed as JSON, deserialized and
evaluated, returns *bit-identical* results to the hand-written lambda path
on the same engine — selection and self-join alike.
"""

import json

import numpy as np
import pytest

from repro.api.query import (
    And,
    Cmp,
    In,
    Not,
    Q,
    SelectionQuery,
    SelfJoinQuery,
    predicate_from_dict,
    query_from_dict,
)
from repro.bench import mask_relation
from repro.core import derive_probabilistic_database
from repro.datasets import load_census
from repro.probdb import QueryEngine
from repro.relational import Relation


def _round_trip_predicate(pred):
    return predicate_from_dict(json.loads(json.dumps(pred.to_dict())))


def _round_trip_query(spec):
    return query_from_dict(json.loads(json.dumps(spec.to_dict())))


class TestPredicateAst:
    def test_builders(self):
        assert Q.eq("age", "30") == Cmp("age", "eq", "30")
        assert Q.in_("age", ["20", "30"]) == In("age", ("20", "30"))
        assert Q.not_(Q.eq("a", 1)) == Not(Cmp("a", "eq", 1))
        assert Q.and_(Q.eq("a", 1), Q.ne("b", 2)) == And(
            (Cmp("a", "eq", 1), Cmp("b", "ne", 2))
        )

    def test_symbolic_op_aliases_normalize(self):
        assert Q.cmp("age", "==", "30") == Q.eq("age", "30")
        assert Q.cmp("age", ">=", "30").op == "ge"

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown comparison operator"):
            Q.cmp("age", "~", "30")

    @pytest.mark.parametrize(
        "pred",
        [
            Q.eq("age", "30"),
            Q.ne("edu", "HS"),
            Q.cmp("inc", "le", "50K"),
            Q.in_("age", ("20", "40")),
            Q.not_(Q.eq("nw", "500K")),
            Q.and_(Q.eq("age", "20"), Q.or_(Q.eq("nw", "500K"), Q.ne("edu", "HS"))),
        ],
    )
    def test_round_trip(self, pred):
        assert _round_trip_predicate(pred) == pred

    def test_compiled_semantics(self, fig1_relation):
        rows = list(fig1_relation.complete_part())
        pred = Q.and_(Q.eq("age", "20"), Q.not_(Q.eq("nw", "500K")))
        fn = pred.compile()
        expected = [
            t.value("age") == "20" and not t.value("nw") == "500K" for t in rows
        ]
        assert [fn(t) for t in rows] == expected
        # The node itself is callable too.
        assert [pred(t) for t in rows] == expected

    def test_empty_connectives(self, fig1_relation):
        t = next(iter(fig1_relation))
        assert Q.and_()(t) is True
        assert Q.or_()(t) is False


class TestQuerySpecs:
    def test_selection_round_trip(self):
        spec = SelectionQuery(where=Q.eq("nw", "500K"), project=["age"])
        again = _round_trip_query(spec)
        assert again == spec
        assert again.project == ("age",)

    def test_self_join_round_trip(self):
        spec = SelfJoinQuery(
            on=(("nw", "nw"),),
            where=Q.ne("l_age", "20"),
            project=("l_age", "r_age"),
        )
        assert _round_trip_query(spec) == spec

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown query type"):
            query_from_dict({"type": "cartesian"})


@pytest.fixture(scope="module")
def fig1_engine():
    from tests.conftest import FIG1_ROWS

    from repro.relational import Schema

    schema = Schema.from_domains(
        {
            "age": ["20", "30", "40"],
            "edu": ["HS", "BS", "MS"],
            "inc": ["50K", "100K"],
            "nw": ["100K", "500K"],
        }
    )
    relation = Relation.from_rows(schema, FIG1_ROWS)
    return QueryEngine.from_relation(
        relation, support_threshold=0.1, num_samples=200, burn_in=20, rng=0
    )


@pytest.fixture(scope="module")
def census_engine():
    """A derived census database, as in the paper's evaluation setting."""
    rng = np.random.default_rng(7)
    data, _ = load_census(3000, rng=rng)
    train, test = data.split(0.98, rng)
    test = Relation.from_codes(test.schema, test.codes[:40])
    masked = mask_relation(test, [1, 2], rng)
    combined = Relation(train.schema, list(train) + list(masked))
    result = derive_probabilistic_database(
        combined, support_threshold=0.002, num_samples=300, burn_in=50, rng=1
    )
    return QueryEngine(result.database)


def _assert_bit_identical(json_results, lambda_results):
    assert len(json_results) == len(lambda_results)
    for got, want in zip(json_results, lambda_results):
        assert got.attributes == want.attributes
        assert got.values == want.values
        assert got.probability == want.probability  # bit-identical floats


class TestJsonEqualsLambdaPath:
    def test_fig1_selection(self, fig1_engine):
        spec = _round_trip_query(
            SelectionQuery(where=Q.eq("nw", "500K"), project=("age",))
        )
        _assert_bit_identical(
            spec.run(fig1_engine),
            fig1_engine.selection_query(
                lambda r: r.value("nw") == "500K", project_to=("age",)
            ),
        )

    def test_fig1_self_join(self, fig1_engine):
        spec = _round_trip_query(
            SelfJoinQuery(
                on=(("nw", "nw"),),
                where=Q.ne("l_age", "20"),
                project=("l_age", "r_age"),
            )
        )
        _assert_bit_identical(
            spec.run(fig1_engine),
            fig1_engine.self_join_query(
                on=(("nw", "nw"),),
                predicate=lambda r: r.value("l_age") != "20",
                project_to=("l_age", "r_age"),
            ),
        )

    def test_census_selection(self, census_engine):
        # education is one of the masked attributes, so this touches blocks.
        spec = _round_trip_query(
            SelectionQuery(
                where=Q.and_(Q.eq("income", "high"), Q.ne("education", "HS")),
                project=("age",),
            )
        )
        json_results = spec.run(census_engine)
        lambda_results = census_engine.selection_query(
            lambda r: r.value("income") == "high"
            and r.value("education") != "HS",
            project_to=("age",),
        )
        assert json_results  # non-vacuous
        _assert_bit_identical(json_results, lambda_results)

    def test_census_membership(self, census_engine):
        spec = _round_trip_query(
            SelectionQuery(
                where=Q.in_("education", ("BS", "MS+")), project=("income",)
            )
        )
        _assert_bit_identical(
            spec.run(census_engine),
            census_engine.selection_query(
                lambda r: r.value("education") in ("BS", "MS+"),
                project_to=("income",),
            ),
        )
