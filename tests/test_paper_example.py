"""End-to-end integration test replaying the paper's running example.

Works through Sections I-II on the Fig. 1 matchmaking relation: supports,
subsumption, the meta-rule construction example, MRSL matching for t1, and
the final derived probabilistic database.
"""

import pytest

from repro import derive_probabilistic_database
from repro.core import learn_mrsl, mine_frequent_itemsets
from repro.probdb import expected_count
from repro.relational import make_tuple


class TestSectionII:
    def test_support_of_t1(self, fig1_schema, fig1_relation):
        """supp(t1) = 3/8: t4, t6 and t7 match <age=20, edu=HS>."""
        t1 = make_tuple(fig1_schema, {"age": "20", "edu": "HS"})
        assert fig1_relation.support(t1) == pytest.approx(3 / 8)

    def test_meta_rule_construction_example(self, fig1_schema, fig1_relation):
        """The Def. 2.6 walk-through: supports over edu=HS sum correctly.

        supp(t8) = supp(t1) + supp(t11) + supp(t14), because t1, t11, t14
        agree on edu=HS and enumerate all ages.
        """
        t8 = make_tuple(fig1_schema, {"edu": "HS"})
        parts = [
            make_tuple(fig1_schema, {"age": a, "edu": "HS"})
            for a in ("20", "30", "40")
        ]
        total = sum(fig1_relation.support(p) for p in parts)
        assert fig1_relation.support(t8) == pytest.approx(total)

    def test_association_rule_r_t3_t5(self, fig1_schema, fig1_relation):
        """r: <t3, t5> with body {age=20} and head {inc=50K}."""
        itemsets = mine_frequent_itemsets(
            fig1_relation.complete_part(), threshold=0.1
        )
        age, inc = fig1_schema.index("age"), fig1_schema.index("inc")
        a20 = fig1_schema["age"].code("20")
        i50 = fig1_schema["inc"].code("50K")
        body = ((age, a20),)
        full = tuple(sorted([(age, a20), (inc, i50)]))
        conf = itemsets.support(full) / itemsets.support(body)
        # Among the 4 complete age=20 points, 3 have inc=50K.
        assert conf == pytest.approx(3 / 4)


class TestSectionIV:
    def test_t1_has_five_matching_meta_rules(self, fig1_schema, fig1_relation):
        """Fig. 2 / Section I-B: five meta-rules match t1 at low support.

        The exact five of the paper correspond to the bodies {}, {edu=HS},
        {inc=50K}, {nw=500K}, {edu=HS, inc=50K}; whether each exists in the
        mined lattice depends on theta, so we mine at 0.1 and check the
        matched bodies are the expected subset family.
        """
        model = learn_mrsl(fig1_relation, support_threshold=0.1).model
        t1 = make_tuple(
            fig1_schema, {"edu": "HS", "inc": "50K", "nw": "500K"}
        )
        matches = model["age"].matching(t1)
        bodies = {m.body for m in matches}
        edu, inc, nw = (
            fig1_schema.index("edu"),
            fig1_schema.index("inc"),
            fig1_schema.index("nw"),
        )
        hs = fig1_schema["edu"].code("HS")
        i50 = fig1_schema["inc"].code("50K")
        n500 = fig1_schema["nw"].code("500K")
        expected = {
            (),
            ((edu, hs),),
            ((inc, i50),),
            ((nw, n500),),
        }
        assert expected.issubset(bodies)
        # Every matched body only uses t1's known attribute-value pairs.
        allowed = {(edu, hs), (inc, i50), (nw, n500)}
        for body in bodies:
            assert set(body).issubset(allowed)


class TestEndToEnd:
    def test_derived_database_answers_queries(self, fig1_relation):
        result = derive_probabilistic_database(
            fig1_relation, support_threshold=0.1,
            num_samples=400, burn_in=50, rng=0,
        )
        db = result.database
        total = expected_count(db, lambda t: True)
        assert total == pytest.approx(17.0)
        rich = expected_count(db, lambda t: t.value("nw") == "500K")
        assert 0.0 < rich < 17.0

    def test_block_marginals_are_plausible(self, fig1_schema, fig1_relation):
        """t16 <40, HS, ?, 500K>: the mined data favors inc=100K.

        Among complete points with age=40 (t13, t15, t17): two have
        inc=100K.  The prediction should not be degenerate and should sum
        to 1.
        """
        result = derive_probabilistic_database(
            fig1_relation, support_threshold=0.1,
            num_samples=400, burn_in=50, rng=0,
        )
        t16 = make_tuple(
            fig1_schema, {"age": "40", "edu": "HS", "nw": "500K"}
        )
        block = next(b for b in result.database.blocks if b.base == t16)
        m = block.marginal("inc")
        assert m["50K"] + m["100K"] == pytest.approx(1.0)
        assert 0.0 < m["100K"] < 1.0
