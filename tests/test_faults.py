"""Deterministic fault injection against the derivation runtime.

The contract under test: an injected shard failure — error, worker crash,
or hang past the deadline — is retried/recovered and the derived database
is *bit-identical* to a fault-free run, with every failed attempt surfaced
in the :class:`~repro.exec.base.ExecReport`.
"""

import threading

import pytest

from repro.api.config import DeriveConfig
from repro.core.lazy import LazyDeriver
from repro.core.learning import learn_mrsl
from repro.exec import (
    FaultPlan,
    ShardFault,
    ShardExecutionError,
    WorkerPoolError,
    bind_faults,
    execute_derivation,
    plan_shards,
    resolve_fault_plan,
    stream_derivation,
)
from repro.exec.faults import FAULT_PLAN_ENV


def _config(**overrides):
    base = dict(
        support_threshold=0.1, num_samples=20, burn_in=3, seed=11,
        executor="serial", workers=1,
    )
    base.update(overrides)
    return DeriveConfig(**base)


def assert_identical_blocks(a, b):
    assert len(a) == len(b)
    for ba, bb in zip(a, b):
        assert ba.base == bb.base
        assert ba.distribution.outcomes == bb.distribution.outcomes
        assert (ba.distribution.probs == bb.distribution.probs).all()


@pytest.fixture()
def fig1_model(fig1_relation):
    return learn_mrsl(fig1_relation, support_threshold=0.1).model


@pytest.fixture()
def fig1_tuples(fig1_relation):
    return list(fig1_relation.incomplete_part())


@pytest.fixture()
def baseline(fig1_tuples, fig1_model):
    return execute_derivation(fig1_tuples, fig1_model, _config())


# -- the plan format ---------------------------------------------------------


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(faults=(
            ShardFault(kind="error", index=0, attempt=2),
            ShardFault(kind="hang", key="abc", delay=0.5),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_coerce_accepts_bare_fault_list(self):
        plan = FaultPlan.coerce([{"kind": "crash", "index": 1}])
        assert plan.faults[0].kind == "crash"
        assert plan.faults[0].attempt == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="kind"):
            ShardFault(kind="explode", index=0)
        with pytest.raises(ValueError, match="selector"):
            ShardFault(kind="error")
        with pytest.raises(ValueError, match="1-based"):
            ShardFault(kind="error", index=0, attempt=0)

    def test_from_env_json_and_file(self, monkeypatch, tmp_path):
        plan = FaultPlan(faults=(ShardFault(kind="error", index=0),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        assert FaultPlan.from_env() == plan
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        monkeypatch.setenv(FAULT_PLAN_ENV, f"@{path}")
        assert FaultPlan.from_env() == plan
        monkeypatch.delenv(FAULT_PLAN_ENV)
        assert FaultPlan.from_env() is None

    def test_resolution_order(self, monkeypatch):
        env_plan = FaultPlan(faults=(ShardFault(kind="error", index=9),))
        monkeypatch.setenv(FAULT_PLAN_ENV, env_plan.to_json())
        explicit = FaultPlan(faults=(ShardFault(kind="error", index=0),))
        cfg = _config()
        assert resolve_fault_plan(explicit, cfg) == explicit
        assert resolve_fault_plan(None, cfg) == env_plan

    def test_bind_ignores_out_of_range_index(self, fig1_tuples, fig1_model):
        plan = plan_shards(fig1_tuples, fig1_model, seed=11)
        faults = FaultPlan(faults=(
            ShardFault(kind="error", index=0),
            ShardFault(kind="error", index=10_000),
        ))
        bound = bind_faults(faults, plan)
        assert list(bound) == [(plan.shards[0].key, 1)]

    def test_bind_key_selector_wins(self, fig1_tuples, fig1_model):
        plan = plan_shards(fig1_tuples, fig1_model, seed=11)
        target = plan.shards[-1].key
        bound = bind_faults(
            FaultPlan(faults=(ShardFault(kind="error", key=target, index=0),)),
            plan,
        )
        assert list(bound) == [(target, 1)]


# -- retries keep results bit-identical --------------------------------------


class TestErrorRetry:
    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_one_error_is_retried_bit_identically(
        self, executor, fig1_tuples, fig1_model, baseline
    ):
        faults = FaultPlan(faults=(
            ShardFault(kind="error", index=0, attempt=1),
        ))
        out = execute_derivation(
            fig1_tuples, fig1_model,
            _config(executor=executor, workers=2, shard_retries=1),
            faults=faults,
        )
        assert_identical_blocks(out.blocks, baseline.blocks)
        report = out.report
        assert len(report.failures) == 1
        failure = report.failures[0]
        assert failure.attempt == 1
        assert not failure.fatal
        assert failure.backoff > 0
        assert "FaultInjected" in failure.error or "injected" in failure.error
        retried = [t for t in report.timings if t.key == failure.key]
        assert retried and retried[0].attempts == 2

    def test_exhausted_retries_raise_with_report(
        self, fig1_tuples, fig1_model
    ):
        faults = FaultPlan(faults=(
            ShardFault(kind="error", index=0, attempt=1),
            ShardFault(kind="error", index=0, attempt=2),
        ))
        with pytest.raises(ShardExecutionError) as excinfo:
            execute_derivation(
                fig1_tuples, fig1_model, _config(shard_retries=1),
                faults=faults,
            )
        exc = excinfo.value
        assert exc.report is not None
        assert exc.failure is not None and exc.failure.fatal
        assert exc.report.failures[-1].fatal
        assert exc.report.failures[-1].backoff == 0.0

    def test_zero_retries_fail_on_first_error(self, fig1_tuples, fig1_model):
        faults = FaultPlan(faults=(ShardFault(kind="error", index=0),))
        with pytest.raises(ShardExecutionError):
            execute_derivation(
                fig1_tuples, fig1_model, _config(shard_retries=0),
                faults=faults,
            )


# -- worker-crash recovery ---------------------------------------------------


class TestWorkerCrash:
    def test_crashed_pool_is_rebuilt_bit_identically(
        self, fig1_tuples, fig1_model, baseline
    ):
        faults = FaultPlan(faults=(ShardFault(kind="crash", index=0),))
        out = execute_derivation(
            fig1_tuples, fig1_model,
            _config(executor="process", workers=2, shard_retries=1),
            faults=faults,
        )
        assert_identical_blocks(out.blocks, baseline.blocks)
        assert out.report.pool_restarts >= 1
        assert any("crash" in f.error for f in out.report.failures)

    def test_repeated_crashes_raise_pool_error_when_strict(
        self, fig1_tuples, fig1_model
    ):
        faults = FaultPlan(faults=tuple(
            ShardFault(kind="crash", index=0, attempt=a) for a in (1, 2, 3)
        ))
        with pytest.raises(WorkerPoolError) as excinfo:
            execute_derivation(
                fig1_tuples, fig1_model,
                _config(executor="process", workers=1, shard_retries=5),
                faults=faults,
            )
        report = excinfo.value.report
        assert report is not None
        assert report.pool_restarts >= 2

    def test_degrade_policy_falls_back_to_threads(
        self, fig1_tuples, fig1_model, baseline
    ):
        faults = FaultPlan(faults=tuple(
            ShardFault(kind="crash", index=0, attempt=a) for a in (1, 2, 3)
        ))
        out = execute_derivation(
            fig1_tuples, fig1_model,
            _config(
                executor="process", workers=1, shard_retries=5,
                failure_policy="degrade",
            ),
            faults=faults,
        )
        assert_identical_blocks(out.blocks, baseline.blocks)
        assert "process->thread" in out.report.degraded
        assert out.report.pool_restarts == 3

    def test_crash_downgrades_to_error_in_serial(
        self, fig1_tuples, fig1_model, baseline
    ):
        faults = FaultPlan(faults=(ShardFault(kind="crash", index=0),))
        out = execute_derivation(
            fig1_tuples, fig1_model, _config(shard_retries=1), faults=faults
        )
        assert_identical_blocks(out.blocks, baseline.blocks)
        assert len(out.report.failures) == 1


# -- hang detection via the shard deadline -----------------------------------


class TestHangDeadline:
    def test_hung_shard_is_killed_and_requeued(
        self, fig1_tuples, fig1_model, baseline
    ):
        faults = FaultPlan(faults=(
            ShardFault(kind="hang", index=0, delay=30.0),
        ))
        out = execute_derivation(
            fig1_tuples, fig1_model,
            _config(
                executor="process", workers=2,
                shard_retries=1, shard_deadline=1.0,
            ),
            faults=faults,
        )
        assert_identical_blocks(out.blocks, baseline.blocks)
        assert out.report.pool_restarts >= 1
        assert any("deadline" in f.error for f in out.report.failures)


# -- the streaming collector reaps its pools (regression) --------------------


def _exec_threads():
    return [
        t for t in threading.enumerate() if t.name.startswith("repro-exec")
    ]


class TestStreamCleanup:
    def test_abandoned_stream_reaps_worker_threads(
        self, fig1_tuples, fig1_model
    ):
        stream = stream_derivation(
            fig1_tuples, fig1_model, _config(executor="thread", workers=2)
        )
        next(stream)
        assert _exec_threads()
        stream.close()
        for t in _exec_threads():
            t.join(timeout=10.0)
        assert not _exec_threads()

    def test_lazy_prefetch_closes_stream_when_caching_raises(
        self, fig1_relation
    ):
        deriver = LazyDeriver(
            fig1_relation, support_threshold=0.1, num_samples=20,
            burn_in=3, rng=11, executor="thread", workers=2,
        )

        class ExplodingCache(dict):
            def __setitem__(self, key, value):
                raise RuntimeError("cache full")

        deriver._cache = ExplodingCache()
        with pytest.raises(RuntimeError, match="cache full"):
            deriver.prefetch(list(fig1_relation.incomplete_part()))
        for t in _exec_threads():
            t.join(timeout=10.0)
        assert not _exec_threads()


# -- failures and degradations land on the report wire form ------------------


def test_report_wire_form_carries_fault_fields(
    fig1_tuples, fig1_model
):
    faults = FaultPlan(faults=(ShardFault(kind="error", index=0),))
    out = execute_derivation(
        fig1_tuples, fig1_model, _config(shard_retries=1), faults=faults
    )
    doc = out.report.to_dict()
    assert doc["pool_restarts"] == 0
    assert doc["degraded"] == []
    assert len(doc["failures"]) == 1
    assert doc["failures"][0]["attempt"] == 1
    assert "failed attempts" in out.report.summary()
