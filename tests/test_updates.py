"""Tests for ChangeSets, trust-based conflict resolution, and apply_changeset.

The acceptance properties:

* a ChangeSet round-trips through JSON losslessly;
* conflicting cell writes resolve by the trust ordering, and ties are
  *reported* (first-writer-wins applied), never silently dropped;
* ``Relation.apply_changeset`` applies updates, then retractions, then
  insertions, with every op index addressing the pre-apply relation, and
  appends the ChangeSet + outcome to the append-only update log.
"""

import json

import pytest

from repro.relational import (
    ChangeSet,
    UpdateOp,
    insert,
    rank_source,
    retract,
    update,
)
from repro.relational.schema import SchemaError
from repro.relational.tuples import MISSING
from repro.relational.updates import RETRACT_CLAIM


# -- op construction and validation -----------------------------------------


class TestUpdateOp:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown op kind"):
            UpdateOp(kind="upsert", index=0, cells=(("age", "20"),))

    def test_insert_requires_row(self):
        with pytest.raises(ValueError, match="requires a row"):
            UpdateOp(kind="insert")

    def test_update_requires_cells(self):
        with pytest.raises(ValueError, match="at least one cell"):
            UpdateOp(kind="update", index=0)

    def test_retract_takes_no_cells(self):
        with pytest.raises(ValueError, match="does not take cell"):
            UpdateOp(kind="retract", index=0, cells=(("age", "20"),))

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            retract(-1)

    def test_empty_source_rejected(self):
        with pytest.raises(ValueError, match="source"):
            UpdateOp(kind="retract", index=0, source="")

    def test_helpers_build_the_three_kinds(self):
        ops = [
            insert(["20", "HS", "50K", "100K"], source="a"),
            update(3, {"inc": "50K"}, source="b"),
            retract(5, source="c"),
        ]
        assert [op.kind for op in ops] == ["insert", "update", "retract"]
        assert ops[1].cell_map == {"inc": "50K"}


# -- serialization -----------------------------------------------------------


class TestSerialization:
    def changeset(self):
        return ChangeSet(
            [
                insert(["20", "HS", "50K", "100K"], source="census"),
                update(2, {"inc": "100K", "nw": MISSING}, source="hr"),
                retract(4, source="audit"),
            ]
        )

    def test_json_round_trip(self):
        cs = self.changeset()
        again = ChangeSet.from_json(cs.to_json())
        assert again == cs
        # And the wire form itself is plain JSON.
        payload = json.loads(cs.to_json())
        assert [op["op"] for op in payload["ops"]] == [
            "insert", "update", "retract",
        ]
        assert payload["ops"][1]["set"] == {"inc": "100K", "nw": MISSING}

    def test_from_dict_accepts_alternate_keys(self):
        cs = ChangeSet.from_dict(
            {"ops": [{"kind": "update", "index": 1, "cells": {"age": "30"}}]}
        )
        (op,) = cs.ops
        assert op.kind == "update" and op.cell_map == {"age": "30"}
        assert op.source == "anonymous"

    def test_missing_ops_rejected(self):
        with pytest.raises(ValueError, match="missing 'ops'"):
            ChangeSet.from_dict({})

    def test_sources_and_by_kind(self):
        cs = self.changeset()
        assert cs.sources == ("census", "hr", "audit")
        assert len(cs.by_kind("update")) == 1
        with pytest.raises(ValueError, match="unknown op kind"):
            cs.by_kind("merge")


# -- trust-based conflict resolution ----------------------------------------


class TestResolve:
    def test_rank_source(self):
        trust = ("a", "b")
        assert rank_source("a", trust) == 0
        assert rank_source("b", trust) == 1
        # Unlisted sources tie one past the end.
        assert rank_source("x", trust) == rank_source("y", trust) == 2

    def test_agreeing_sources_do_not_conflict(self):
        cs = ChangeSet(
            [update(0, {"age": "30"}, "a"), update(0, {"age": "30"}, "b")]
        )
        assignments, retracted, conflicts = cs.resolve()
        assert assignments == {0: {"age": "30"}}
        assert not retracted and not conflicts

    def test_trust_picks_the_winner(self):
        cs = ChangeSet(
            [update(0, {"age": "30"}, "low"), update(0, {"age": "40"}, "high")]
        )
        assignments, _, conflicts = cs.resolve(trust=("high", "low"))
        assert assignments == {0: {"age": "40"}}
        (conflict,) = conflicts
        assert conflict.winner == "high" and not conflict.tie
        assert conflict.attr == "age" and conflict.index == 0
        assert set(conflict.claims) == {("low", "30"), ("high", "40")}

    def test_tie_is_reported_not_dropped(self):
        cs = ChangeSet(
            [update(0, {"age": "30"}, "a"), update(0, {"age": "40"}, "b")]
        )
        assignments, _, conflicts = cs.resolve(trust=())
        # First writer wins, but the tie is visible to the caller.
        assert assignments == {0: {"age": "30"}}
        (conflict,) = conflicts
        assert conflict.tie and conflict.winner == "a"

    def test_retract_vs_update_is_a_row_conflict(self):
        cs = ChangeSet([update(2, {"age": "30"}, "a"), retract(2, "b")])
        assignments, retracted, conflicts = cs.resolve(trust=("b", "a"))
        assert retracted == {2}
        assert 2 not in assignments
        (conflict,) = conflicts
        assert conflict.attr is None
        assert conflict.value == RETRACT_CLAIM
        # The losing direction: trust the updater instead.
        assignments, retracted, conflicts = cs.resolve(trust=("a", "b"))
        assert not retracted
        assert assignments == {2: {"age": "30"}}
        assert conflicts[0].winner == "a"

    def test_conflict_to_dict_is_json_able(self):
        cs = ChangeSet(
            [update(0, {"age": "30"}, "a"), update(0, {"age": "40"}, "b")]
        )
        _, _, conflicts = cs.resolve()
        payload = json.loads(json.dumps([c.to_dict() for c in conflicts]))
        assert payload[0]["tie"] is True


# -- applying to a relation ---------------------------------------------------


class TestApplyChangeset:
    def test_update_retract_insert(self, fig1_relation):
        n = len(fig1_relation)
        rel = fig1_relation.copy()
        cs = ChangeSet(
            [
                update(1, {"inc": "100K"}, "hr"),
                retract(3, "audit"),
                insert(["40", "MS", "100K", "500K"], "census"),
            ]
        )
        outcome = rel.apply_changeset(cs)
        assert len(rel) == n  # one out, one in
        assert outcome.updated == (1,)
        assert outcome.retracted == (3,)
        assert outcome.inserted_at == (n - 1,)
        assert rel[1].value("inc") == "100K"
        assert outcome.updated_before[0] == fig1_relation[1]
        assert outcome.retracted_tuples[0].value("inc") == \
            fig1_relation[3].value("inc")
        assert rel[n - 1].values() == ("40", "MS", "100K", "500K")
        # Indices address the PRE-apply relation: row 3's retraction did
        # not shift what "row 1" meant for the update.
        assert outcome.num_touched == 3

    def test_question_mark_unsets_a_cell(self, fig1_relation):
        rel = fig1_relation.copy()
        assert rel[1].is_complete
        rel.apply_changeset(ChangeSet([update(1, {"nw": MISSING})]))
        assert not rel[1].is_complete
        assert rel[1].value("nw") == MISSING

    def test_noop_write_not_reported_as_update(self, fig1_relation):
        rel = fig1_relation.copy()
        value = rel[0].value("age")
        outcome = rel.apply_changeset(ChangeSet([update(0, {"age": value})]))
        assert outcome.updated == ()
        assert outcome.num_touched == 0

    def test_update_log_is_append_only(self, fig1_relation):
        rel = fig1_relation.copy()
        assert rel.update_log == ()
        cs = ChangeSet([retract(0)])
        outcome = rel.apply_changeset(cs)
        (entry,) = rel.update_log
        assert entry.changeset is cs and entry.outcome is outcome
        # A copy inherits the log but does not share its spine.
        twin = rel.copy()
        twin.apply_changeset(ChangeSet([retract(0)]))
        assert len(twin.update_log) == 2 and len(rel.update_log) == 1

    def test_out_of_range_index_rejected(self, fig1_relation):
        rel = fig1_relation.copy()
        with pytest.raises(IndexError, match="addresses row"):
            rel.apply_changeset(ChangeSet([retract(len(rel))]))

    def test_bad_insert_arity_rejected(self, fig1_relation):
        rel = fig1_relation.copy()
        with pytest.raises(SchemaError, match="insert row has"):
            rel.apply_changeset(ChangeSet([insert(["20", "HS"])]))

    def test_trust_flows_through_and_ties_surface(self, fig1_relation):
        rel = fig1_relation.copy()
        cs = ChangeSet(
            [update(0, {"age": "30"}, "a"), update(0, {"age": "40"}, "b")]
        )
        outcome = rel.apply_changeset(cs, trust=("b",))
        assert rel[0].value("age") == "40"
        assert outcome.ties == ()
        rel2 = fig1_relation.copy()
        outcome2 = rel2.apply_changeset(cs)
        assert rel2[0].value("age") == "30"
        assert len(outcome2.ties) == 1
        assert outcome2.to_dict()["ties"] == 1

    def test_touched_tuples_cover_updates_and_retracts(self, fig1_relation):
        rel = fig1_relation.copy()
        cs = ChangeSet([update(1, {"inc": "100K"}), retract(3)])
        outcome = rel.apply_changeset(cs)
        touched = outcome.touched_tuples()
        assert fig1_relation[1] in touched and fig1_relation[3] in touched
